#!/usr/bin/env python3
"""Pipeline-benchmark regression gate.

Compares a fresh `pipeline --quick` run against the checked-in
BENCH_pipeline.json and fails (exit 1) when either:

- any fresh run lost the bitwise cross-thread identity gate, or
- any (particles, threads) row's fresh step-latency median exceeds the
  checked-in median by more than the tolerance factor.

The gate uses the *median* (p50), not the p99: quick mode times only ~20
steps, so its p99 is effectively the max of a small sample and one noisy-
neighbour preemption spike on a shared CI runner would fail the build.
The median is robust to those spikes while still catching real
regressions (losing the compressed-LUT fan fast path alone is a >2x
median hit at 4000 particles).

Usage: bench_gate.py BASELINE FRESH TOLERANCE
       e.g. bench_gate.py BENCH_pipeline.json BENCH_pipeline_fresh.json 2.5
"""

import json
import sys


def rows(doc):
    out = {}
    for run in doc.get("runs", []):
        for row in run.get("threads", []):
            out[(run["particles"], row["threads"])] = row
    return out


def main():
    if len(sys.argv) != 4:
        sys.exit(__doc__)
    with open(sys.argv[1]) as f:
        baseline = json.load(f)
    with open(sys.argv[2]) as f:
        fresh = json.load(f)
    tolerance = float(sys.argv[3])

    failures = []
    for run in fresh.get("runs", []):
        if not run["divergence"]["bitwise_identical"]:
            failures.append(
                f"N={run['particles']}: fused kernel diverged bitwise "
                f"(max |dw| = {run['divergence']['max_abs_weight_delta']})"
            )

    base_rows = rows(baseline)
    for key, fresh_row in sorted(rows(fresh).items()):
        base_row = base_rows.get(key)
        if base_row is None:
            continue  # new configuration: nothing to regress against
        limit = tolerance * base_row["step_ms_p50"]
        got = fresh_row["step_ms_p50"]
        n, threads = key
        status = "ok" if got <= limit else "REGRESSED"
        print(
            f"N={n} threads={threads}: step p50 {got:.3f} ms "
            f"(baseline {base_row['step_ms_p50']:.3f} ms, "
            f"limit {limit:.3f} ms) {status}"
        )
        if got > limit:
            failures.append(
                f"N={n} threads={threads}: step p50 {got:.3f} ms > "
                f"{tolerance}x baseline {base_row['step_ms_p50']:.3f} ms"
            )

    if failures:
        print("\npipeline benchmark regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print("pipeline benchmark regression gate passed")


if __name__ == "__main__":
    main()
