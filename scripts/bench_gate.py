#!/usr/bin/env python3
"""Benchmark regression gates.

Pipeline mode (default) compares a fresh `pipeline --quick` run against
the checked-in BENCH_pipeline.json and fails (exit 1) when either:

- any fresh run lost the bitwise cross-thread identity gate, or
- any (particles, threads) row's fresh step-latency median exceeds the
  checked-in median by more than the tolerance factor.

The gate uses the *median* (p50), not the p99: quick mode times only ~20
steps, so its p99 is effectively the max of a small sample and one noisy-
neighbour preemption spike on a shared CI runner would fail the build.
The median is robust to those spikes while still catching real
regressions (losing the compressed-LUT fan fast path alone is a >2x
median hit at 4000 particles).

Deadline mode (`--deadline FILE`) checks a BENCH_deadline.json sweep for
the accuracy shape the scheduler promises:

- uncapped rows never book a deadline miss and are identical across
  pressure scenarios (ComputePressure only scales the budget, so without
  a controller it must be a perfect no-op),
- on the nominal scenario, mean lateral error is monotone non-increasing
  as the budget grows (uncapped counts as the largest budget), with a
  1.15x slack factor absorbing sampling noise between adjacent rungs, and
- every capped pressure row stays within a bounded factor of its nominal
  same-budget counterpart — degradation under pressure must be graceful,
  never divergence.

Budget monotonicity is deliberately NOT gated inside pressure windows:
there, error is governed by whether the halved budget forces a ladder
transition, and a mid-sized budget that straddles a rung boundary can
transiently do worse than a starved one that was already settled below
it.

Fleet-cache mode (`--fleet-cache FIRST SECOND STATS`) checks the cell
cache round trip the CI fleet-cache-smoke job exercises: the two report
artifacts from back-to-back runs over one cache directory must be
byte-identical (the cache may never change a report), and the second
run's stats file must show a 100% cache-hit rate — every cell resolved
from cache, zero cells executed, zero fresh stores.

Usage: bench_gate.py BASELINE FRESH TOLERANCE
       e.g. bench_gate.py BENCH_pipeline.json BENCH_pipeline_fresh.json 2.5
       bench_gate.py --deadline BENCH_deadline.json
       bench_gate.py --fleet-cache first.json second.json stats2.json
"""

import json
import sys

# Adjacent-budget slack for the nominal monotonicity gate: coarser rungs
# trade accuracy for cost, but between neighbouring budgets the gap can be
# inside run-to-run noise, so a strict <= would flake.
DEADLINE_SLACK = 1.15

# Ceiling on how much worse a capped row may get under pressure relative
# to its nominal same-budget counterpart. Pressure windows legitimately
# cost accuracy (forced descents, coasting); this bound separates that
# graceful degradation from outright divergence (checked-in full sweep
# peaks at ~11x on the 2% cliff).
DEADLINE_PRESSURE_BOUND = 15.0


def deadline_gate(path):
    with open(path) as f:
        doc = json.load(f)

    by_scenario = {}
    for row in doc.get("rows", []):
        by_scenario.setdefault(row["scenario"], []).append(row)

    failures = []
    nominal = {r["budget_units"]: r for r in by_scenario.get("nominal", [])}

    # Gate 1: without a controller, pressure must be a perfect no-op —
    # the uncapped row repeats bitwise in every scenario, miss-free.
    for scenario, rows in sorted(by_scenario.items()):
        for row in rows:
            if row["budget_units"] != 0:
                continue
            if row["misses"] != 0:
                failures.append(
                    f"{scenario} × {row['budget_label']}: uncapped row "
                    f"booked {row['misses']} deadline misses"
                )
            base = nominal.get(0)
            if base is not None and (
                row["rmse_cm"] != base["rmse_cm"]
                or row["mean_lat_err_cm"] != base["mean_lat_err_cm"]
            ):
                failures.append(
                    f"{scenario}: uncapped row differs from nominal "
                    f"({row['mean_lat_err_cm']:.2f} vs "
                    f"{base['mean_lat_err_cm']:.2f} cm) — pressure leaked "
                    f"into an uncontrolled run"
                )

    # Gate 2: nominal accuracy is monotone non-increasing in budget
    # (uncapped = largest budget), within the adjacent-rung slack.
    ordered = sorted(
        by_scenario.get("nominal", []),
        key=lambda r: r["budget_units"] if r["budget_units"] else float("inf"),
    )
    for prev, cur in zip(ordered, ordered[1:]):
        limit = DEADLINE_SLACK * prev["mean_lat_err_cm"]
        got = cur["mean_lat_err_cm"]
        status = "ok" if got <= limit else "REGRESSED"
        print(
            f"nominal: {cur['budget_label']} lat err {got:.2f} cm "
            f"(<= {DEADLINE_SLACK}x {prev['budget_label']} "
            f"{prev['mean_lat_err_cm']:.2f} cm) {status}"
        )
        if got > limit:
            failures.append(
                f"nominal: {cur['budget_label']} lat err {got:.2f} cm > "
                f"{DEADLINE_SLACK}x {prev['budget_label']} "
                f"{prev['mean_lat_err_cm']:.2f} cm — more budget made "
                f"accuracy worse"
            )

    # Gate 3: capped rows degrade gracefully under pressure — bounded
    # relative to the same budget without pressure, never divergent.
    for scenario, rows in sorted(by_scenario.items()):
        if scenario == "nominal":
            continue
        for row in rows:
            if row["budget_units"] == 0:
                continue
            base = nominal.get(row["budget_units"])
            if base is None:
                continue
            limit = DEADLINE_PRESSURE_BOUND * base["mean_lat_err_cm"]
            got = row["mean_lat_err_cm"]
            status = "ok" if got <= limit else "DIVERGED"
            print(
                f"{scenario}: {row['budget_label']} lat err {got:.2f} cm "
                f"(<= {DEADLINE_PRESSURE_BOUND}x nominal "
                f"{base['mean_lat_err_cm']:.2f} cm) {status}"
            )
            if got > limit:
                failures.append(
                    f"{scenario}: {row['budget_label']} lat err "
                    f"{got:.2f} cm > {DEADLINE_PRESSURE_BOUND}x nominal "
                    f"{base['mean_lat_err_cm']:.2f} cm — degradation is "
                    f"not graceful"
                )

    if failures:
        print("\ndeadline sweep gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print("deadline sweep gate passed")


def fleet_cache_gate(first_path, second_path, stats_path):
    with open(first_path, "rb") as f:
        first = f.read()
    with open(second_path, "rb") as f:
        second = f.read()
    with open(stats_path) as f:
        stats = json.load(f)

    failures = []
    if first != second:
        failures.append(
            f"{first_path} and {second_path} differ — the cell cache "
            f"changed the report bytes"
        )
    total = stats.get("cells_total", 0)
    hits = stats.get("cache_hits", 0)
    print(
        f"warm run: {hits}/{total} cells from cache, "
        f"{stats.get('journal_hits', 0)} from journal, "
        f"{stats.get('executed_cells', 0)} executed "
        f"({stats.get('executed_runs', 0)} runs)"
    )
    if total == 0:
        failures.append(f"{stats_path}: cells_total is 0 — nothing was gated")
    if hits != total:
        failures.append(
            f"{stats_path}: {hits}/{total} cache hits on an unchanged "
            f"spec — expected 100%"
        )
    if stats.get("executed_cells", 0) != 0 or stats.get("executed_runs", 0) != 0:
        failures.append(
            f"{stats_path}: warm run still executed "
            f"{stats.get('executed_cells', 0)} cells "
            f"({stats.get('executed_runs', 0)} runs)"
        )
    if stats.get("cache_stores", 0) != 0:
        failures.append(
            f"{stats_path}: warm run stored {stats['cache_stores']} fresh "
            f"entries — cache keys are unstable"
        )

    if failures:
        print("\nfleet cache gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print(f"fleet cache gate passed ({len(first)} identical report bytes)")


def rows(doc):
    out = {}
    for run in doc.get("runs", []):
        for row in run.get("threads", []):
            out[(run["particles"], row["threads"])] = row
    return out


def main():
    if len(sys.argv) == 3 and sys.argv[1] == "--deadline":
        deadline_gate(sys.argv[2])
        return
    if len(sys.argv) == 5 and sys.argv[1] == "--fleet-cache":
        fleet_cache_gate(sys.argv[2], sys.argv[3], sys.argv[4])
        return
    if len(sys.argv) != 4:
        sys.exit(__doc__)
    with open(sys.argv[1]) as f:
        baseline = json.load(f)
    with open(sys.argv[2]) as f:
        fresh = json.load(f)
    tolerance = float(sys.argv[3])

    failures = []
    for run in fresh.get("runs", []):
        if not run["divergence"]["bitwise_identical"]:
            failures.append(
                f"N={run['particles']}: fused kernel diverged bitwise "
                f"(max |dw| = {run['divergence']['max_abs_weight_delta']})"
            )

    base_rows = rows(baseline)
    for key, fresh_row in sorted(rows(fresh).items()):
        base_row = base_rows.get(key)
        if base_row is None:
            continue  # new configuration: nothing to regress against
        limit = tolerance * base_row["step_ms_p50"]
        got = fresh_row["step_ms_p50"]
        n, threads = key
        status = "ok" if got <= limit else "REGRESSED"
        print(
            f"N={n} threads={threads}: step p50 {got:.3f} ms "
            f"(baseline {base_row['step_ms_p50']:.3f} ms, "
            f"limit {limit:.3f} ms) {status}"
        )
        if got > limit:
            failures.append(
                f"N={n} threads={threads}: step p50 {got:.3f} ms > "
                f"{tolerance}x baseline {base_row['step_ms_p50']:.3f} ms"
            )

    if failures:
        print("\npipeline benchmark regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print("pipeline benchmark regression gate passed")


if __name__ == "__main__":
    main()
