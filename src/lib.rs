#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! **raceloc** — robust localization for autonomous racing.
//!
//! A from-scratch Rust reproduction of *"Robustness Evaluation of
//! Localization Techniques for Autonomous Racing"* (DATE 2024): the SynPF
//! Monte-Carlo localizer, a Cartographer-style pose-graph SLAM baseline,
//! a `rangelibc`-style ray-casting library, and an F1TENTH-scale vehicle /
//! sensor simulator that closes the loop between localization quality and
//! racing performance.
//!
//! This crate is a facade: everything lives in the workspace sub-crates and
//! is re-exported here under one roof.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `raceloc-core` | SE(2) poses, angles, PRNG, statistics, the [`core::localizer::Localizer`] trait |
//! | [`map`] | `raceloc-map` | occupancy grids, distance transforms, PGM I/O, track generation |
//! | [`range`] | `raceloc-range` | Bresenham / ray-marching / CDDT / LUT range queries |
//! | [`par`] | `raceloc-par` | deterministic chunking + the persistent worker pool (DESIGN.md §11) |
//! | [`sim`] | `raceloc-sim` | vehicle dynamics with tire slip, sensors, pure pursuit, the closed-loop [`sim::World`] |
//! | [`pf`] | `raceloc-pf` | **SynPF** — the paper's particle filter |
//! | [`slam`] | `raceloc-slam` | Cartographer-style SLAM + pure localization baseline |
//! | [`metrics`] | `raceloc-metrics` | lap times, lateral error, scan alignment, latency, ATE/RPE |
//! | [`obs`] | `raceloc-obs` | telemetry spans/counters/histograms, JSONL run recording |
//! | [`serve`] | `raceloc-serve` | multi-session localization service over shared map artifacts (DESIGN.md §13) |
//!
//! # Quickstart
//!
//! ```
//! use raceloc::map::{TrackShape, TrackSpec};
//! use raceloc::pf::{SynPf, SynPfConfig};
//! use raceloc::range::RayMarching;
//! use raceloc::sim::{World, WorldConfig};
//! use raceloc::core::localizer::Localizer;
//!
//! // Generate a race track, build a localizer, race one simulated second.
//! let track = TrackSpec::new(TrackShape::Oval { width: 12.0, height: 7.0 })
//!     .resolution(0.1)
//!     .build();
//! let caster = RayMarching::new(&track.grid, 10.0);
//! let config = SynPfConfig::builder().particles(300).build().expect("valid config");
//! let mut pf = SynPf::new(caster, config);
//! let mut world = World::new(track, WorldConfig::default());
//! let log = world.run(&mut pf, 1.0);
//! assert!(!log.samples.is_empty());
//! ```

pub use raceloc_core as core;
pub use raceloc_map as map;
pub use raceloc_metrics as metrics;
pub use raceloc_obs as obs;
pub use raceloc_par as par;
pub use raceloc_pf as pf;
pub use raceloc_range as range;
pub use raceloc_serve as serve;
pub use raceloc_sim as sim;
pub use raceloc_slam as slam;
