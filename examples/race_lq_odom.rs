//! The paper's core scenario in miniature: race the same track on grippy
//! and on "taped" slippery tires, with both localization algorithms, and
//! watch what degraded wheel odometry does to each.
//!
//! Each run is streamed to a JSONL file (one `step` record per scan
//! correction, carrying the localizer's [`Diagnostics`]) and the printed
//! statistics are computed by parsing those files back — the same
//! machine-readable pipeline EXPERIMENTS.md uses to regenerate tables.
//!
//! Run with `cargo run --release --example race_lq_odom`.
//!
//! [`Diagnostics`]: raceloc::core::Diagnostics

use raceloc::core::localizer::Localizer;
use raceloc::core::RunningStats;
use raceloc::map::{Track, TrackShape, TrackSpec};
use raceloc::obs::{parse_steps, RunRecorder};
use raceloc::pf::{SynPf, SynPfConfig};
use raceloc::range::{ArtifactParams, MapArtifacts};
use raceloc::sim::{World, WorldConfig};
use raceloc::slam::{CartoLocalizer, CartoLocalizerConfig};
use std::path::PathBuf;

fn track() -> Track {
    TrackSpec::new(TrackShape::RandomFourier {
        seed: 33,
        mean_radius: 6.0,
        amplitude: 0.26,
        harmonics: 4,
    })
    .half_width(1.25)
    .resolution(0.05)
    .build()
}

struct RaceResult {
    name: String,
    est_error_cm: f64,
    mean_slip: f64,
    mean_ess: Option<f64>,
    mean_match: Option<f64>,
    crashed: bool,
    log_path: PathBuf,
}

fn race<L: Localizer>(
    mut loc: L,
    mu: f64,
    use_imu_yaw: bool,
    tires: &str,
    out_dir: &std::path::Path,
) -> RaceResult {
    let mut cfg = WorldConfig::default();
    cfg.vehicle.mu = mu;
    cfg.odom.use_imu_yaw = use_imu_yaw;
    let mut world = World::new(track(), cfg);

    let log_path = out_dir.join(format!("race_{}_{}.jsonl", loc.name(), tires));
    let mut recorder = RunRecorder::to_file(&log_path).expect("create JSONL log");
    let log = world
        .run_recorded(&mut loc, 25.0, &mut recorder)
        .expect("write JSONL log");

    // Everything below comes from re-parsing the JSONL file, proving the
    // recorded stream is self-sufficient for analysis.
    let text = std::fs::read_to_string(&log_path).expect("read back JSONL log");
    let steps = parse_steps(&text).expect("recorded JSONL parses");
    assert_eq!(steps.len(), log.samples.len());
    let mut err = RunningStats::new();
    let mut ess = RunningStats::new();
    let mut score = RunningStats::new();
    for s in &steps {
        err.push(100.0 * s.position_error());
        if let Some(e) = s.diag.ess {
            ess.push(e);
        }
        if let Some(m) = s.diag.match_score {
            score.push(m);
        }
    }
    let mut slip = RunningStats::new();
    for s in &log.samples {
        slip.push((s.wheel_speed - s.true_speed).max(0.0));
    }
    RaceResult {
        name: loc.name().to_string(),
        est_error_cm: err.mean(),
        mean_slip: slip.mean(),
        mean_ess: (ess.count() > 0).then(|| ess.mean()),
        mean_match: (score.count() > 0).then(|| score.mean()),
        crashed: log.crashed,
        log_path,
    }
}

fn main() {
    println!("building track and shared map artifacts…");
    let t = track();
    let artifacts = std::sync::Arc::new(MapArtifacts::build(&t.grid, ArtifactParams::default()));
    let out_dir = std::env::temp_dir().join("raceloc_runs");
    std::fs::create_dir_all(&out_dir).expect("create run-log directory");

    println!();
    println!(
        "{:<14} {:<9} {:>14} {:>16} {:>10} {:>11} {:>8}",
        "localizer", "tires", "est error [cm]", "mean slip [m/s]", "mean ESS", "match", "crashed"
    );
    let fmt_opt = |v: Option<f64>| v.map(|x| format!("{x:.2}")).unwrap_or_else(|| "-".into());
    let mut paths = Vec::new();
    for (label, mu) in [("grippy", 1.0), ("taped", 19.0 / 26.0)] {
        // Cartographer runs on the stock Ackermann (VESC) odometry.
        let r = race(
            CartoLocalizer::from_artifacts(&artifacts, CartoLocalizerConfig::default()),
            mu,
            false,
            label,
            &out_dir,
        );
        println!(
            "{:<14} {label:<9} {:>14.2} {:>16.3} {:>10} {:>11} {:>8}",
            r.name,
            r.est_error_cm,
            r.mean_slip,
            fmt_opt(r.mean_ess),
            fmt_opt(r.mean_match),
            r.crashed
        );
        paths.push(r.log_path);
        // SynPF runs on IMU-fused odometry (the TUM PF input convention).
        let r = race(
            SynPf::from_artifacts(std::sync::Arc::clone(&artifacts), SynPfConfig::default()),
            mu,
            true,
            label,
            &out_dir,
        );
        println!(
            "{:<14} {label:<9} {:>14.2} {:>16.3} {:>10} {:>11} {:>8}",
            r.name,
            r.est_error_cm,
            r.mean_slip,
            fmt_opt(r.mean_ess),
            fmt_opt(r.mean_match),
            r.crashed
        );
        paths.push(r.log_path);
    }
    println!();
    println!("Taping the tires increases wheel slip; Cartographer's single-hypothesis");
    println!("matcher inherits the corrupted odometry prior while SynPF's particle");
    println!("cloud absorbs it — the paper's Table I in one run.");
    println!();
    println!("JSONL run logs (schema: DESIGN.md \"Observability\"):");
    for p in &paths {
        println!("  {}", p.display());
    }
}
