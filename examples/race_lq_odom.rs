//! The paper's core scenario in miniature: race the same track on grippy
//! and on "taped" slippery tires, with both localization algorithms, and
//! watch what degraded wheel odometry does to each.
//!
//! Run with `cargo run --release --example race_lq_odom`.

use raceloc::core::localizer::Localizer;
use raceloc::core::RunningStats;
use raceloc::map::{Track, TrackShape, TrackSpec};
use raceloc::pf::{SynPf, SynPfConfig};
use raceloc::range::RangeLut;
use raceloc::sim::{World, WorldConfig};
use raceloc::slam::{CartoLocalizer, CartoLocalizerConfig};

fn track() -> Track {
    TrackSpec::new(TrackShape::RandomFourier {
        seed: 33,
        mean_radius: 6.0,
        amplitude: 0.26,
        harmonics: 4,
    })
    .half_width(1.25)
    .resolution(0.05)
    .build()
}

fn race<L: Localizer>(mut loc: L, mu: f64, use_imu_yaw: bool) -> (String, f64, f64, bool) {
    let mut cfg = WorldConfig::default();
    cfg.vehicle.mu = mu;
    cfg.odom.use_imu_yaw = use_imu_yaw;
    let mut world = World::new(track(), cfg);
    let log = world.run(&mut loc, 25.0);
    let mut err = RunningStats::new();
    let mut slip = RunningStats::new();
    for s in &log.samples {
        err.push(100.0 * s.true_pose.dist(s.est_pose));
        slip.push((s.wheel_speed - s.true_speed).max(0.0));
    }
    (loc.name().to_string(), err.mean(), slip.mean(), log.crashed)
}

fn main() {
    println!("building track and range structures…");
    let t = track();
    let lut = RangeLut::new(&t.grid, 10.0, 72);

    println!();
    println!(
        "{:<14} {:<9} {:>14} {:>16} {:>8}",
        "localizer", "tires", "est error [cm]", "mean slip [m/s]", "crashed"
    );
    for (label, mu) in [("grippy", 1.0), ("taped", 19.0 / 26.0)] {
        // Cartographer runs on the stock Ackermann (VESC) odometry.
        let (name, err, slip, crashed) = race(
            CartoLocalizer::new(&t.grid, CartoLocalizerConfig::default()),
            mu,
            false,
        );
        println!("{name:<14} {label:<9} {err:>14.2} {slip:>16.3} {crashed:>8}");
        // SynPF runs on IMU-fused odometry (the TUM PF input convention).
        let (name, err, slip, crashed) =
            race(SynPf::new(lut.clone(), SynPfConfig::default()), mu, true);
        println!("{name:<14} {label:<9} {err:>14.2} {slip:>16.3} {crashed:>8}");
    }
    println!();
    println!("Taping the tires increases wheel slip; Cartographer's single-hypothesis");
    println!("matcher inherits the corrupted odometry prior while SynPF's particle");
    println!("cloud absorbs it — the paper's Table I in one run.");
}
