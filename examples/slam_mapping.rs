//! Build a map from scratch with the Cartographer-style SLAM pipeline:
//! drive the car around an unknown track on raw odometry + LiDAR, then
//! print the stitched map next to the ground truth.
//!
//! Run with `cargo run --release --example slam_mapping`.

use raceloc::map::{TrackShape, TrackSpec};
use raceloc::sim::{World, WorldConfig};
use raceloc::slam::{CartoSlam, CartoSlamConfig};

fn main() {
    let track = TrackSpec::new(TrackShape::Oval {
        width: 12.0,
        height: 7.0,
    })
    .resolution(0.05)
    .build();

    let mut slam = CartoSlam::new(CartoSlamConfig {
        resolution: 0.05,
        ..CartoSlamConfig::default()
    });

    // Drive gently — mapping runs are not hot laps.
    let mut cfg = WorldConfig::default();
    cfg.pursuit.speed_scale = 0.55;
    let mut world = World::new(track, cfg);

    println!("mapping run: 30 simulated seconds of driving on odometry + LiDAR…");
    // The oracle controller plays the human driver of a real mapping run;
    // the SLAM system sees only odometry and LiDAR.
    let log = world.run_with_oracle_control(&mut slam, 30.0);

    println!(
        "{} scan nodes, {} submaps, {} loop closures, crashed: {}",
        slam.node_count(),
        slam.submap_count(),
        slam.closure_count(),
        log.crashed
    );

    let map = slam.map();
    let (free, occ, _) = map.census();
    println!("stitched map: {free} free / {occ} wall cells");
    println!();
    println!("--- SLAM map ---");
    println!("{}", map.to_ascii(88));
    println!("--- ground truth ---");
    println!("{}", world.track().grid.to_ascii(88));

    // Trajectory error against ground truth.
    let truth: Vec<_> = log.samples.iter().map(|s| s.true_pose).collect();
    let est: Vec<_> = log.samples.iter().map(|s| s.est_pose).collect();
    let ate = raceloc::metrics::trajectory::absolute_trajectory_error(&truth, &est);
    println!("trajectory ATE: {}", ate);

    // Map quality against the ground-truth grid.
    let q = raceloc::metrics::compare_maps(&world.track().grid, &map, 0.15);
    println!(
        "map quality: wall F1 {:.2} (precision {:.2}, recall {:.2}), free IoU {:.2}, coverage {:.2}",
        q.wall_f1, q.wall_precision, q.wall_recall, q.free_iou, q.coverage
    );
}
