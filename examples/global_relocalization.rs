//! The kidnapped-robot problem: SynPF recovers the car's pose from a
//! uniform particle cloud over the whole track — the capability a
//! single-hypothesis scan matcher structurally lacks.
//!
//! Run with `cargo run --release --example global_relocalization`.

use raceloc::core::localizer::Localizer;
use raceloc::core::{Odometry, Pose2, Twist2};
use raceloc::map::{TrackShape, TrackSpec};
use raceloc::pf::{KldConfig, SynPf, SynPfConfig};
use raceloc::range::{RangeMethod, RayMarching};

fn main() {
    // A track with continuously varying curvature: straight corridors and
    // identical 90° corners (e.g. an L-shape) are perceptually aliased and
    // defeat *any* global localizer without motion.
    let track = TrackSpec::new(TrackShape::RandomFourier {
        seed: 33,
        mean_radius: 6.0,
        amplitude: 0.26,
        harmonics: 4,
    })
    .resolution(0.1)
    .build();

    let caster = RayMarching::new(&track.grid, 10.0);
    let config = SynPfConfig::builder()
        .particles(12_000)
        // A wider, uniform beam spread and a sharper likelihood help
        // disambiguate aliased corridor segments during recovery.
        .layout(raceloc::pf::ScanLayout::Uniform { count: 90 })
        .squash(8.0)
        // KLD shrinks the set as the posterior collapses.
        .kld(KldConfig {
            max_particles: 12_000,
            ..KldConfig::default()
        })
        .build()
        .expect("relocalization config is valid");
    let mut pf = SynPf::new(RayMarching::new(&track.grid, 10.0), config);

    // The car wakes up somewhere on the track; the filter knows nothing.
    let s = 0.37 * track.raceline.total_length();
    let p = track.raceline.point_at(s);
    let truth = Pose2::new(p.x, p.y, track.raceline.heading_at(s));
    pf.global_init(&track.grid);
    println!(
        "kidnapped at {truth}; filter starts with {} particles spread over the track",
        pf.particles().len()
    );

    // Straight corridor segments are perceptually aliased, so a stationary
    // filter can lock onto the wrong one — drive slowly along the track
    // while relocalizing, exactly as a real recovery behavior does.
    let beams = 181;
    let fov = 270.0f64.to_radians();
    let inc = fov / (beams - 1) as f64;
    let mount = pf.config().lidar_mount;
    let v = 1.0; // m/s creep
    let dt = 0.1;
    let mut odom_pose = Pose2::IDENTITY;
    let mut s_now = s;
    for step in 0..120 {
        // Advance ground truth along the raceline and produce exact odometry.
        let s_next = s_now + v * dt;
        let prev = Pose2::from_point(
            track.raceline.point_at(s_now),
            track.raceline.heading_at(s_now),
        );
        let next = Pose2::from_point(
            track.raceline.point_at(s_next),
            track.raceline.heading_at(s_next),
        );
        odom_pose = odom_pose * prev.relative_to(next);
        s_now = s_next;
        // The TUM motion model propagates from the measured twist, so the
        // yaw rate must reflect the cornering.
        let omega = raceloc::core::angle::diff(next.theta, prev.theta) / dt;
        pf.predict(&Odometry::new(
            odom_pose,
            Twist2::new(v, 0.0, omega),
            step as f64 * dt,
        ));
        let sensor = next * mount;
        let ranges: Vec<f64> = (0..beams)
            .map(|i| {
                caster.range(
                    sensor.x,
                    sensor.y,
                    sensor.theta - 0.5 * fov + i as f64 * inc,
                )
            })
            .collect();
        let scan = raceloc::core::LaserScan::new(-0.5 * fov, inc, ranges, 10.0);
        let est = pf.correct(&scan);
        if step % 20 == 0 || step == 119 {
            println!(
                "step {step:>2}: {} particles, estimate error {:.2} m",
                pf.particles().len(),
                est.dist(next)
            );
        }
    }
    let truth = Pose2::from_point(
        track.raceline.point_at(s_now),
        track.raceline.heading_at(s_now),
    );
    let final_err = pf.pose().dist(truth);
    println!();
    if final_err < 0.5 {
        println!("recovered: final error {final_err:.2} m ✓");
    } else {
        println!("did not converge to the true pose (error {final_err:.2} m) —");
        println!("try more particles or an even less symmetric track.");
    }
}
