//! Compare the diff-drive and TUM motion models interactively: propagate a
//! particle cloud at a speed given on the command line and print its
//! dispersion (a runnable version of the paper's Fig. 1).
//!
//! Run with `cargo run --release --example motion_models -- 7.0`.

use raceloc::core::{Pose2, Rng64, Twist2};
use raceloc::pf::motion::{dispersion, propagate, DiffDriveModel, MotionModel, TumMotionModel};

fn main() {
    let v: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(7.0);
    println!("propagating 4000 particles for 0.2 s at {v} m/s (straight line)\n");
    let dd = DiffDriveModel::default();
    let tum = TumMotionModel::default();
    for (name, model) in [("diff-drive", &dd as &dyn MotionModel), ("tum", &tum)] {
        let mut rng = Rng64::new(9);
        let mut particles = vec![Pose2::IDENTITY; 4000];
        let dt = 0.02;
        let delta = Pose2::new(v * dt, 0.0, 0.0);
        let twist = Twist2::new(v, 0.0, 0.0);
        for _ in 0..10 {
            propagate(model, &mut particles, delta, twist, dt, &mut rng);
        }
        let reference = Pose2::new(v * 0.2, 0.0, 0.0);
        let d = dispersion(&particles, reference).expect("non-empty cloud");
        println!(
            "{name:<11}: σ_long={:.3} m  σ_lat={:.3} m  σ_heading={:.2}°",
            d.longitudinal,
            d.lateral,
            d.heading.to_degrees()
        );
    }
    println!();
    println!("Try 0.5 (similar clouds) vs 7.0 (TUM collapses, diff-drive fans out).");
}
