//! Exercise the four rangelibc-style range-query methods on a generated
//! map and print a consistency/performance snapshot.
//!
//! Run with `cargo run --release --example range_methods`.

use raceloc::map::{TrackShape, TrackSpec};
use raceloc::range::{
    ArtifactParams, BresenhamCasting, Cddt, MapArtifacts, RangeMethod, RayMarching,
};
use std::time::Instant;

fn main() {
    let track = TrackSpec::new(TrackShape::Oval {
        width: 12.0,
        height: 7.0,
    })
    .resolution(0.05)
    .build();

    // Query from a pose on the raceline looking down-track.
    let pose = track.start_pose();
    println!(
        "casting from {} on a {:.0}×{:.0} cell map\n",
        pose,
        track.grid.width() as f64,
        track.grid.height() as f64
    );

    let bres = BresenhamCasting::new(&track.grid, 10.0);
    let rm = RayMarching::new(&track.grid, 10.0);
    let cddt = Cddt::new(&track.grid, 10.0, 180);
    // The LUT row goes through the shared artifact bundle (the form every
    // localizer constructor now takes); its RangeMethod impl delegates to
    // the lazily-built table.
    let artifacts = MapArtifacts::build(&track.grid, ArtifactParams::default());

    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>12}",
        "method", "ahead", "left", "right", "mem [MB]"
    );
    let methods: [(&str, &dyn RangeMethod); 4] = [
        ("bresenham", &bres),
        ("ray-marching", &rm),
        ("cddt", &cddt),
        ("lut", &artifacts),
    ];
    for (name, m) in methods {
        let ahead = m.range(pose.x, pose.y, pose.theta);
        let left = m.range(pose.x, pose.y, pose.theta + std::f64::consts::FRAC_PI_2);
        let right = m.range(pose.x, pose.y, pose.theta - std::f64::consts::FRAC_PI_2);
        println!(
            "{name:<14} {ahead:>8.2}m {left:>8.2}m {right:>8.2}m {:>12.2}",
            m.memory_bytes() as f64 / 1e6
        );
    }

    // A quick throughput shoot-out on a 360° sweep.
    println!();
    let sweep: Vec<(f64, f64, f64)> = (0..3600)
        .map(|i| (pose.x, pose.y, i as f64 * 0.1f64.to_radians()))
        .collect();
    for (name, m) in [
        ("bresenham", &bres as &dyn RangeMethod),
        ("ray-marching", &rm),
        ("cddt", &cddt),
        ("lut", &artifacts),
    ] {
        let mut out = vec![0.0; sweep.len()];
        let t0 = Instant::now();
        m.ranges_into(&sweep, &mut out);
        println!(
            "{name:<14} 3600-beam sweep in {:>7.2} ms",
            t0.elapsed().as_secs_f64() * 1e3
        );
    }
}
