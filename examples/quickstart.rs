//! Quickstart: generate a track, localize a racing car with SynPF for a few
//! simulated seconds, and print how well it tracked.
//!
//! Run with `cargo run --release --example quickstart`.

use raceloc::map::{TrackShape, TrackSpec};
use raceloc::pf::{SynPf, SynPfConfig};
use raceloc::range::{ArtifactParams, MapArtifacts};
use raceloc::sim::{World, WorldConfig};
use std::sync::Arc;

fn main() {
    // 1. A race track: corridor walls rasterized into an occupancy grid,
    //    with a centerline and a smoothed raceline.
    let track = TrackSpec::new(TrackShape::RoundedRectangle {
        width: 14.0,
        height: 8.0,
        corner_radius: 2.4,
    })
    .resolution(0.05)
    .build();
    println!(
        "track: raceline {:.1} m, grid {}×{} cells",
        track.raceline.total_length(),
        track.grid.width(),
        track.grid.height()
    );

    // 2. SynPF in the paper's configuration: constant-time LUT range
    //    queries, boxed 60-beam layout, TUM high-speed motion model.
    println!("building the shared map artifacts (EDT + range LUT)…");
    let artifacts = Arc::new(MapArtifacts::build(&track.grid, ArtifactParams::default()));
    let mut pf = SynPf::from_artifacts(artifacts, SynPfConfig::default());

    // 3. The closed loop: vehicle dynamics + sensors + pure-pursuit racing
    //    controller, all fed by the filter's pose estimate.
    let mut world = World::new(track, WorldConfig::default());
    println!("racing for 15 simulated seconds…");
    let log = world.run(&mut pf, 15.0);

    let mut worst: f64 = 0.0;
    let mut total = 0.0;
    for s in &log.samples {
        let err = s.true_pose.dist(s.est_pose);
        worst = worst.max(err);
        total += err;
    }
    println!(
        "{} scan corrections | mean error {:.1} cm | worst {:.1} cm | {:.2} ms per correction",
        log.samples.len(),
        100.0 * total / log.samples.len() as f64,
        100.0 * worst,
        1e3 * log.mean_correct_seconds(),
    );
    println!(
        "top speed {:.1} m/s | crashed: {}",
        log.samples
            .iter()
            .map(|s| s.true_speed)
            .fold(0.0f64, f64::max),
        log.crashed
    );
}
