//! Golden-run regression snapshots: fixed-seed closed-loop fleets whose
//! serialized reports are checked in byte-for-byte.
//!
//! The entire raceloc pipeline is deterministic by construction (rule
//! R3), so the strongest possible regression test is also the simplest:
//! run a small fixed-seed fleet and compare the report JSON against a
//! committed snapshot. Any behavioural drift — in the simulator, a
//! localizer, the fault engine, or the aggregation — shows up as a byte
//! diff, with the changed statistics named in the failure message.
//!
//! - The worker-pool width comes from `RACELOC_THREADS` (default 2), so
//!   the CI thread matrix doubles as a thread-independence check: the
//!   same snapshot must hold at every width.
//! - To regenerate after an *intentional* behavioural change, run
//!   `RACELOC_BLESS=1 cargo test --test golden_runs` and commit the
//!   rewritten files under `tests/golden/`.

use std::path::PathBuf;

use raceloc_eval::{run_fleet, EvalMethod, FleetSpec, GripSpec, MapSpec, ScenarioSpec};
use raceloc_faults::FaultSchedule;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn threads() -> usize {
    std::env::var("RACELOC_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(2)
}

fn blessing() -> bool {
    std::env::var("RACELOC_BLESS").is_ok_and(|v| v == "1")
}

/// Compares `actual` against the committed snapshot `name`, or rewrites
/// the snapshot when `RACELOC_BLESS=1`.
fn check_snapshot(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if blessing() {
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("bless {name}: {e}"));
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing snapshot {name} ({e}); run with RACELOC_BLESS=1 to create it")
    });
    assert_eq!(
        expected.trim_end(),
        actual.trim_end(),
        "golden run {name} drifted: a deliberate behavioural change must be \
         re-blessed with RACELOC_BLESS=1 and the new snapshot committed"
    );
}

/// A small but representative fleet: one map, low-quality grip, a
/// fault-free control plus a slip burst, all three localizers, one
/// replicate each. Roughly four seconds of wall clock in debug builds.
fn golden_spec() -> FleetSpec {
    FleetSpec {
        name: "golden-small".into(),
        master_seed: 20240831,
        replicates: 1,
        duration_s: 1.5,
        particles: 80,
        beams: 61,
        success_lat_cm: 50.0,
        maps: vec![MapSpec {
            name: "fourier-33".into(),
            fourier_seed: 33,
            half_width: 1.25,
            mean_radius: 6.0,
        }],
        grips: vec![GripSpec {
            name: "LQ".into(),
            mu: 19.0 / 26.0,
        }],
        scenarios: vec![
            ScenarioSpec {
                name: "nominal".into(),
                schedule: FaultSchedule::builder().seed(5).build().expect("valid"),
                measure_from: 0,
                recovery_budget: None,
            },
            ScenarioSpec {
                name: "odom_slip".into(),
                schedule: FaultSchedule::builder()
                    .seed(5)
                    .odom_slip(20, 35, 1.8)
                    .build()
                    .expect("valid"),
                measure_from: 35,
                recovery_budget: None,
            },
        ],
        budgets: vec![0],
        methods: vec![
            EvalMethod::SynPf,
            EvalMethod::Cartographer,
            EvalMethod::DeadReckoning,
        ],
    }
}

#[test]
fn golden_fleet_report_matches_snapshot() {
    let spec = golden_spec();
    let report = run_fleet(&spec, threads()).expect("valid spec");
    let json = format!("{}\n", report.to_json());
    check_snapshot("fleet_small.json", &json);
}

#[test]
fn golden_spec_round_trips_and_matches_snapshot() {
    // The spec itself is part of the contract: a silent change to the
    // spec JSON mapping (or to this fixture) also shows up as a diff.
    let spec = golden_spec();
    let json = format!("{}\n", spec.to_json());
    check_snapshot("fleet_small_spec.json", &json);
    let back = FleetSpec::from_json_str(&json).expect("spec parses back");
    assert_eq!(back.to_json().to_string(), spec.to_json().to_string());
}
