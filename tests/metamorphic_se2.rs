//! Metamorphic SE(2) equivariance of the localizers.
//!
//! Localization consumes only frame-relative inputs — robot-frame scans
//! and odometry-frame increments — so rigidly moving the *world* (map +
//! initial pose) must rigidly move the *estimate* and change nothing
//! else. The test runs each localizer twice on identical scan/odometry
//! streams: once on the original map, once on a transformed map with a
//! transformed initial pose, and checks every per-step estimate maps
//! across by the same transform.
//!
//! Transforms are chosen so the transformed grid is exact (no cell
//! resampling): arbitrary translations, and the +90° quarter turn.
//! SynPF is exercised under translation with resampling disabled (its
//! init/motion noise is additive in map axes, which is only
//! translation-equivariant draw-for-draw); Cartographer's deterministic
//! matcher is exercised under both.

use raceloc_core::localizer::Localizer;
use raceloc_core::sensor_data::{LaserScan, Odometry};
use raceloc_core::{Point2, Pose2, Twist2};
use raceloc_map::transform::{rotated90, rotated90_pose, translated, translated_pose};
use raceloc_map::{CellState, GridIndex, OccupancyGrid};
use raceloc_pf::{SynPf, SynPfConfig};
use raceloc_range::{ArtifactParams, BresenhamCasting, MapArtifacts, RangeMethod};
use raceloc_slam::{CartoLocalizer, CartoLocalizerConfig};

const MAX_RANGE: f64 = 12.0;
const BEAMS: usize = 121;
const DT: f64 = 0.1;
const STEPS: usize = 25;

/// An asymmetric walled room: border walls plus two interior blocks, so
/// scans pin down the pose with no rotational or translational ambiguity.
fn room() -> OccupancyGrid {
    let (w, h) = (140usize, 100usize);
    let mut g = OccupancyGrid::new(w, h, 0.1, Point2::new(-7.0, -5.0));
    g.fill(CellState::Free);
    for c in 0..w as i64 {
        g.set(GridIndex::new(c, 0), CellState::Occupied);
        g.set(GridIndex::new(c, h as i64 - 1), CellState::Occupied);
    }
    for r in 0..h as i64 {
        g.set(GridIndex::new(0, r), CellState::Occupied);
        g.set(GridIndex::new(w as i64 - 1, r), CellState::Occupied);
    }
    for c in 30..40 {
        for r in 20..28 {
            g.set(GridIndex::new(c, r), CellState::Occupied);
        }
    }
    for c in 110..115 {
        for r in 60..80 {
            g.set(GridIndex::new(c, r), CellState::Occupied);
        }
    }
    g
}

/// True poses: a gentle circle around the room center.
fn trajectory() -> Vec<Pose2> {
    (0..=STEPS)
        .map(|k| {
            let phi = 0.15 * k as f64;
            Pose2::new(
                2.5 * phi.cos(),
                2.5 * phi.sin(),
                raceloc_core::angle::normalize(phi + std::f64::consts::FRAC_PI_2),
            )
        })
        .collect()
}

/// Casts a full-circle scan from `pose` against `grid` (sensor at the
/// body origin: both localizers run with an identity LiDAR mount here).
fn cast_scan(grid: &OccupancyGrid, pose: Pose2, stamp: f64) -> LaserScan {
    let caster = BresenhamCasting::new(grid, MAX_RANGE);
    let angle_min = -std::f64::consts::PI;
    let increment = 2.0 * std::f64::consts::PI / BEAMS as f64;
    let ranges = (0..BEAMS)
        .map(|i| {
            let theta = pose.theta + angle_min + increment * i as f64;
            caster.range(pose.x, pose.y, theta)
        })
        .collect();
    LaserScan {
        angle_min,
        angle_increment: increment,
        ranges,
        max_range: MAX_RANGE,
        stamp,
    }
}

/// The shared (frame-independent) input stream: per-step odometry and
/// robot-frame scans cast on the ORIGINAL map from the true trajectory.
fn input_stream(grid: &OccupancyGrid) -> Vec<(Odometry, LaserScan)> {
    let poses = trajectory();
    poses
        .iter()
        .enumerate()
        .map(|(k, &p)| {
            let stamp = k as f64 * DT;
            let twist = Twist2::new(2.5 * 0.15 / DT, 0.0, 0.15 / DT);
            (Odometry::new(p, twist, stamp), cast_scan(grid, p, stamp))
        })
        .collect()
}

/// Drives one localizer over the stream and returns the per-correction
/// estimates.
fn run<L: Localizer>(loc: &mut L, start: Pose2, stream: &[(Odometry, LaserScan)]) -> Vec<Pose2> {
    loc.reset(start);
    stream
        .iter()
        .map(|(odom, scan)| {
            loc.predict(odom);
            loc.correct(scan)
        })
        .collect()
}

fn assert_equivariant(
    label: &str,
    original: &[Pose2],
    transformed: &[Pose2],
    map: impl Fn(Pose2) -> Pose2,
    tol_m: f64,
    tol_rad: f64,
) {
    assert_eq!(original.len(), transformed.len());
    for (k, (&a, &b)) in original.iter().zip(transformed).enumerate() {
        let expect = map(a);
        let d = expect.dist(b);
        let dth = expect.heading_dist(b);
        assert!(
            d <= tol_m && dth <= tol_rad,
            "{label} step {k}: expected {expect:?}, got {b:?} (d={d:.6} m, dθ={dth:.6} rad)"
        );
    }
}

fn carto(grid: &OccupancyGrid) -> CartoLocalizer {
    let config = CartoLocalizerConfig {
        lidar_mount: Pose2::IDENTITY,
        ..Default::default()
    };
    CartoLocalizer::from_artifacts(
        &MapArtifacts::build(grid, ArtifactParams::default()),
        config,
    )
}

#[test]
fn cartographer_is_equivariant_under_translation_and_quarter_turn() {
    let grid = room();
    let stream = input_stream(&grid);
    let start = trajectory()[0];
    let baseline = run(&mut carto(&grid), start, &stream);

    // Sanity: the baseline actually tracks the circle.
    for (k, est) in baseline.iter().enumerate() {
        assert!(
            est.dist(trajectory()[k]) < 0.5,
            "baseline diverged at step {k}: {est:?}"
        );
    }

    let (dx, dy) = (6.4, -3.2);
    let shifted = run(
        &mut carto(&translated(&grid, dx, dy)),
        translated_pose(start, dx, dy),
        &stream,
    );
    assert_equivariant(
        "carto/translation",
        &baseline,
        &shifted,
        |p| translated_pose(p, dx, dy),
        1e-3,
        1e-3,
    );

    let turned = run(
        &mut carto(&rotated90(&grid)),
        rotated90_pose(start),
        &stream,
    );
    assert_equivariant(
        "carto/rotation90",
        &baseline,
        &turned,
        rotated90_pose,
        1e-3,
        1e-3,
    );
}

#[test]
fn synpf_is_equivariant_under_translation() {
    let grid = room();
    let stream = input_stream(&grid);
    let start = trajectory()[0];
    let config = SynPfConfig::builder()
        .particles(400)
        .threads(1)
        .seed(99)
        // Resampling is a discrete, winner-takes-all operation: a
        // boundary-grazing beam whose Bresenham cell flips under the
        // shifted grid arithmetic could select a different survivor set.
        // With resampling off the estimate is a continuous function of
        // the weights and the comparison stays tight.
        .resample_ess_frac(0.0)
        .lidar_mount(Pose2::IDENTITY)
        .build()
        .expect("valid config");

    let mut pf = SynPf::new(BresenhamCasting::new(&grid, MAX_RANGE), config.clone());
    let baseline = run(&mut pf, start, &stream);
    for (k, est) in baseline.iter().enumerate() {
        assert!(
            est.dist(trajectory()[k]) < 0.5,
            "baseline diverged at step {k}: {est:?}"
        );
    }

    let (dx, dy) = (6.4, -3.2);
    let moved = translated(&grid, dx, dy);
    let mut pf2 = SynPf::new(BresenhamCasting::new(&moved, MAX_RANGE), config);
    let shifted = run(&mut pf2, translated_pose(start, dx, dy), &stream);
    assert_equivariant(
        "synpf/translation",
        &baseline,
        &shifted,
        |p| translated_pose(p, dx, dy),
        1e-2,
        1e-2,
    );
}
