//! Failure-injection tests: degraded and adversarial sensor conditions that
//! a robust localizer must survive (beam dropout storms, heavy range noise,
//! odometry blackouts).

use raceloc::core::localizer::Localizer;
use raceloc::core::sensor_data::{LaserScan, Odometry};
use raceloc::core::{Pose2, Rng64, Twist2};
use raceloc::map::{Track, TrackShape, TrackSpec};
use raceloc::pf::{SynPf, SynPfConfig};
use raceloc::range::{ArtifactParams, MapArtifacts, RangeMethod, RayMarching};
use raceloc::slam::{CartoLocalizer, CartoLocalizerConfig};

/// Builds the Cartographer baseline over a fresh artifact bundle.
fn carto(t: &Track) -> CartoLocalizer {
    CartoLocalizer::from_artifacts(
        &MapArtifacts::build(&t.grid, ArtifactParams::default()),
        CartoLocalizerConfig::default(),
    )
}

fn pf_with(t: &Track, particles: usize) -> SynPf<RayMarching> {
    let config = SynPfConfig::builder()
        .particles(particles)
        .build()
        .expect("valid config");
    SynPf::new(RayMarching::new(&t.grid, 10.0), config)
}

fn track() -> Track {
    TrackSpec::new(TrackShape::Oval {
        width: 11.0,
        height: 6.5,
    })
    .resolution(0.1)
    .build()
}

/// A scan from `pose` with configurable dropout and noise.
fn degraded_scan(
    track: &Track,
    pose: Pose2,
    mount: Pose2,
    dropout: f64,
    noise: f64,
    rng: &mut Rng64,
) -> LaserScan {
    let caster = RayMarching::new(&track.grid, 10.0);
    let beams = 181;
    let fov = 270.0f64.to_radians();
    let inc = fov / (beams - 1) as f64;
    let sensor = pose * mount;
    let ranges: Vec<f64> = (0..beams)
        .map(|i| {
            if rng.bernoulli(dropout) {
                10.0
            } else {
                let r = caster.range(
                    sensor.x,
                    sensor.y,
                    sensor.theta - 0.5 * fov + i as f64 * inc,
                );
                rng.gaussian_with(r, noise).clamp(0.0, 10.0)
            }
        })
        .collect();
    LaserScan::new(-0.5 * fov, inc, ranges, 10.0)
}

#[test]
fn synpf_survives_half_the_beams_dropping_out() {
    let t = track();
    let mut pf = pf_with(&t, 400);
    let pose = t.start_pose();
    pf.reset(pose);
    let mut rng = Rng64::new(3);
    for i in 0..20 {
        pf.predict(&Odometry::new(
            Pose2::IDENTITY,
            Twist2::ZERO,
            i as f64 * 0.025,
        ));
        let scan = degraded_scan(&t, pose, pf.config().lidar_mount, 0.5, 0.02, &mut rng);
        let est = pf.correct(&scan);
        assert!(est.dist(pose) < 0.3, "step {i}: drifted to {est}");
    }
}

#[test]
fn synpf_survives_heavy_range_noise() {
    let t = track();
    let mut pf = pf_with(&t, 400);
    let pose = t.start_pose();
    pf.reset(pose);
    let mut rng = Rng64::new(5);
    for i in 0..20 {
        pf.predict(&Odometry::new(
            Pose2::IDENTITY,
            Twist2::ZERO,
            i as f64 * 0.025,
        ));
        // σ = 0.3 m range noise — 6× the sensor model's hit sigma.
        let scan = degraded_scan(&t, pose, pf.config().lidar_mount, 0.0, 0.3, &mut rng);
        let est = pf.correct(&scan);
        assert!(est.dist(pose) < 0.4, "step {i}: drifted to {est}");
    }
}

#[test]
fn synpf_all_beams_dropped_keeps_estimate_finite() {
    let t = track();
    let mut pf = pf_with(&t, 200);
    let pose = t.start_pose();
    pf.reset(pose);
    // Every beam at max range: the sensor model's max-range mass applies
    // uniformly; weights degenerate toward uniform but never NaN.
    let blind = LaserScan::new(-2.35, 4.7 / 180.0, vec![10.0; 181], 10.0);
    for _ in 0..10 {
        let est = pf.correct(&blind);
        assert!(est.is_finite());
    }
    let sum: f64 = pf.weights().iter().sum();
    assert!((sum - 1.0).abs() < 1e-9);
}

#[test]
fn cartographer_survives_dropout_storm() {
    let t = track();
    let mut loc = carto(&t);
    let pose = t.start_pose();
    loc.reset(pose);
    let mut rng = Rng64::new(7);
    for i in 0..20 {
        let scan = degraded_scan(&t, pose, loc.config().lidar_mount, 0.5, 0.02, &mut rng);
        let est = loc.correct(&scan);
        assert!(est.dist(pose) < 0.3, "step {i}: drifted to {est}");
    }
}

#[test]
fn odometry_blackout_degrades_gracefully() {
    // Scans keep coming but odometry stops (predict never called): both
    // localizers must keep a stationary estimate stationary.
    let t = track();
    let pose = t.start_pose();
    let mut rng = Rng64::new(11);

    let mut pf = pf_with(&t, 300);
    pf.reset(pose);
    let mut carto = carto(&t);
    carto.reset(pose);
    for _ in 0..15 {
        let scan = degraded_scan(&t, pose, Pose2::new(0.1, 0.0, 0.0), 0.0, 0.02, &mut rng);
        assert!(pf.correct(&scan).dist(pose) < 0.25);
        assert!(carto.correct(&scan).dist(pose) < 0.25);
    }
}

#[test]
fn corrupted_scan_with_nonsense_ranges_is_contained() {
    // A scan whose ranges are garbage (alternating 0 and max): the filter's
    // weights must stay a valid distribution and the estimate finite.
    let t = track();
    let mut pf = pf_with(&t, 200);
    pf.reset(t.start_pose());
    let garbage: Vec<f64> = (0..181)
        .map(|i| if i % 2 == 0 { 0.0 } else { 10.0 })
        .collect();
    let scan = LaserScan::new(-2.35, 4.7 / 180.0, garbage, 10.0);
    for _ in 0..5 {
        let est = pf.correct(&scan);
        assert!(est.is_finite());
    }
    let sum: f64 = pf.weights().iter().sum();
    assert!((sum - 1.0).abs() < 1e-9);
    assert!(pf.ess() >= 1.0);
}
