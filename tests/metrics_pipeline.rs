//! Integration of the metrics crate with real simulator output: lap
//! timing, lateral deviation, scan alignment, and trajectory error computed
//! from an actual closed-loop log.

use raceloc::core::Pose2;
use raceloc::map::{Track, TrackShape, TrackSpec};
use raceloc::metrics::alignment::ScanAlignmentScorer;
use raceloc::metrics::error::lateral_deviation_summary;
use raceloc::metrics::lap::{lap_times, total_progress};
use raceloc::metrics::trajectory::{absolute_trajectory_error, relative_pose_error};
use raceloc::pf::{SynPf, SynPfConfig};
use raceloc::range::RayMarching;
use raceloc::sim::{SimLog, World, WorldConfig};

fn run_laps(duration: f64) -> (Track, SimLog) {
    let track = TrackSpec::new(TrackShape::Oval {
        width: 11.0,
        height: 6.5,
    })
    .resolution(0.1)
    .build();
    let mut cfg = WorldConfig::default();
    cfg.lidar.beams = 121;
    cfg.pursuit.speed_scale = 0.8;
    let mut world = World::new(track.clone(), cfg);
    let config = SynPfConfig::builder()
        .particles(250)
        .build()
        .expect("valid config");
    let mut pf = SynPf::new(RayMarching::new(&track.grid, 10.0), config);
    let log = world.run(&mut pf, duration);
    (track, log)
}

#[test]
fn full_metrics_suite_on_a_real_run() {
    let (track, log) = run_laps(16.0);
    assert!(!log.crashed);

    let trace: Vec<(f64, Pose2)> = log.samples.iter().map(|s| (s.stamp, s.true_pose)).collect();

    // Lap timing: ~28 m raceline at ~3.5 m/s average → at least one lap.
    let laps = lap_times(&trace, &track.raceline);
    assert!(!laps.is_empty(), "no laps completed in 16 s");
    for lap in &laps {
        assert!((5.0..=16.0).contains(lap), "implausible lap time {lap}");
    }

    // Progress is consistent with the lap count.
    let progress = total_progress(&trace, &track.raceline);
    assert!(progress >= laps.len() as f64 * track.raceline.total_length() * 0.99);

    // Lateral deviation: the car races within the corridor.
    let poses: Vec<Pose2> = log.samples.iter().map(|s| s.true_pose).collect();
    let dev = lateral_deviation_summary(&poses, &track.raceline);
    assert!(dev.mean < 0.5, "mean deviation {:.3} m", dev.mean);
    assert!(dev.max < track.half_width, "left the corridor");

    // Scan alignment with the true poses is high; with garbage poses low.
    let scorer = ScanAlignmentScorer::new(&track.grid, 0.1, Pose2::new(0.1, 0.0, 0.0));
    let good = scorer.mean_percentage(log.scans.iter().map(|(_, pose, scan)| (*pose, scan)));
    assert!(good > 70.0, "alignment {good}");
    let bad = scorer.mean_percentage(
        log.scans
            .iter()
            .map(|(_, pose, scan)| (*pose * Pose2::new(1.0, 1.0, 0.7), scan)),
    );
    assert!(bad < good - 20.0, "garbage poses scored {bad} vs {good}");

    // Trajectory error metrics.
    let truth: Vec<Pose2> = log.samples.iter().map(|s| s.true_pose).collect();
    let est: Vec<Pose2> = log.samples.iter().map(|s| s.est_pose).collect();
    let ate = absolute_trajectory_error(&truth, &est);
    assert!(ate.mean < 0.3, "ATE {:.3}", ate.mean);
    let rpe = relative_pose_error(&truth, &est, 10);
    assert!(rpe.mean < 0.2, "RPE {:.3}", rpe.mean);
}

#[test]
fn latency_accounting_matches_log() {
    let (_, log) = run_laps(4.0);
    let mean = log.mean_correct_seconds();
    assert!(mean > 0.0);
    // The load proxy is consistent with the raw numbers.
    let load = raceloc::metrics::latency::cpu_load_percent(mean, 40.0);
    assert!(load > 0.0 && load < 100.0, "load {load}");
}
