//! End-to-end integration: the full simulator → localizer → controller loop
//! across crates, in miniature (small grids and particle counts so the
//! suite stays fast in debug builds).

use raceloc::map::{Track, TrackShape, TrackSpec};
use raceloc::pf::{SynPf, SynPfConfig};
use raceloc::range::{ArtifactParams, MapArtifacts, RayMarching};
use raceloc::sim::{World, WorldConfig};
use raceloc::slam::{CartoLocalizer, CartoLocalizerConfig};

fn small_track() -> Track {
    TrackSpec::new(TrackShape::Oval {
        width: 11.0,
        height: 6.5,
    })
    .resolution(0.1)
    .build()
}

fn small_world(mu: f64) -> World {
    let mut cfg = WorldConfig::default();
    cfg.vehicle.mu = mu;
    cfg.lidar.beams = 121; // lighter scans for debug-mode speed
    cfg.pursuit.speed_scale = 0.8;
    World::new(small_track(), cfg)
}

fn small_pf(track: &Track) -> SynPf<RayMarching> {
    let config = SynPfConfig::builder()
        .particles(250)
        .build()
        .expect("valid config");
    SynPf::new(RayMarching::new(&track.grid, 10.0), config)
}

#[test]
fn synpf_tracks_the_car_through_corners() {
    let track = small_track();
    let mut world = small_world(1.0);
    let mut pf = small_pf(&track);
    let log = world.run(&mut pf, 8.0);
    assert!(!log.crashed, "crashed with SynPF localization");
    // Estimate error stays bounded after the launch transient.
    let late: Vec<_> = log.samples.iter().filter(|s| s.stamp > 2.0).collect();
    assert!(!late.is_empty());
    let mean_err: f64 = late
        .iter()
        .map(|s| s.true_pose.dist(s.est_pose))
        .sum::<f64>()
        / late.len() as f64;
    assert!(mean_err < 0.25, "mean estimate error {mean_err}");
}

#[test]
fn cartographer_tracks_the_car_through_corners() {
    let track = small_track();
    let mut world = small_world(1.0);
    let mut loc = CartoLocalizer::from_artifacts(
        &MapArtifacts::build(&track.grid, ArtifactParams::default()),
        CartoLocalizerConfig::default(),
    );
    let log = world.run(&mut loc, 8.0);
    assert!(!log.crashed, "crashed with Cartographer localization");
    let late: Vec<_> = log.samples.iter().filter(|s| s.stamp > 2.0).collect();
    let mean_err: f64 = late
        .iter()
        .map(|s| s.true_pose.dist(s.est_pose))
        .sum::<f64>()
        / late.len().max(1) as f64;
    assert!(mean_err < 0.25, "mean estimate error {mean_err}");
}

#[test]
fn low_grip_degrades_wheel_odometry_but_not_synpf() {
    // The paper's robustness claim in miniature: taped tires corrupt the
    // encoder signal, yet the particle filter's estimate barely suffers.
    let run = |mu: f64| {
        let track = small_track();
        let mut world = small_world(mu);
        let mut pf = small_pf(&track);
        let log = world.run(&mut pf, 8.0);
        assert!(!log.crashed, "crash at mu={mu}");
        let mut slip = 0.0;
        let mut err = 0.0;
        let n = log.samples.len() as f64;
        for s in &log.samples {
            slip += (s.wheel_speed - s.true_speed).abs();
            err += s.true_pose.dist(s.est_pose);
        }
        (slip / n, err / n)
    };
    let (slip_hq, err_hq) = run(1.0);
    let (slip_lq, err_lq) = run(19.0 / 26.0);
    assert!(
        slip_lq > slip_hq * 1.15,
        "taped tires must slip more: {slip_lq} vs {slip_hq}"
    );
    // "Robust" = the estimate error stays small in absolute terms and does
    // not blow up relative to the nominal condition.
    assert!(
        err_lq < 0.15 && err_lq < err_hq * 3.0,
        "SynPF must stay robust: LQ {err_lq} vs HQ {err_hq}"
    );
}

#[test]
fn oracle_control_is_the_upper_bound() {
    let track = small_track();
    let mut world = small_world(1.0);
    let mut pf = small_pf(&track);
    let log = world.run_with_oracle_control(&mut pf, 6.0);
    assert!(!log.crashed);
    // The filter still produced estimates even though control used truth.
    assert!(!log.samples.is_empty());
}

#[test]
fn deterministic_end_to_end() {
    let run = || {
        let track = small_track();
        let mut world = small_world(1.0);
        let mut pf = small_pf(&track);
        let log = world.run(&mut pf, 3.0);
        log.samples
            .iter()
            .map(|s| (s.true_pose.to_array(), s.est_pose.to_array()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
