//! Cross-crate pipeline: map an unknown track with the SLAM system, export
//! the map, and localize against the *SLAM-built* map with SynPF — the full
//! "map once, race forever" workflow of an F1TENTH team.

use raceloc::map::{CellState, TrackShape, TrackSpec};
use raceloc::pf::{SynPf, SynPfConfig};
use raceloc::range::RayMarching;
use raceloc::sim::{World, WorldConfig};
use raceloc::slam::{CartoSlam, CartoSlamConfig};

#[test]
fn map_with_slam_then_localize_with_synpf() {
    let track = TrackSpec::new(TrackShape::Oval {
        width: 11.0,
        height: 6.5,
    })
    .resolution(0.1)
    .build();

    // Phase 1: mapping run on raw sensors (slow, careful lap).
    let mut slam = CartoSlam::new(CartoSlamConfig {
        resolution: 0.1,
        max_points: 90,
        scans_per_submap: 24,
        ..CartoSlamConfig::default()
    });
    let mut cfg = WorldConfig::default();
    cfg.pursuit.speed_scale = 0.5;
    cfg.lidar.beams = 121;
    let mut world = World::new(track.clone(), cfg);
    // Mapping runs are human-driven on a real car; the oracle controller
    // plays the driver while the SLAM system consumes the raw sensors.
    let log = world.run_with_oracle_control(&mut slam, 14.0);
    assert!(!log.crashed, "mapping run crashed");
    assert!(slam.node_count() > 20, "too few scan nodes");

    let slam_map = slam.map();
    let (free, occ, _) = slam_map.census();
    assert!(free > 500, "SLAM map has too little free space: {free}");
    assert!(occ > 100, "SLAM map has too few walls: {occ}");
    // The built map must resemble the ground truth.
    let quality = raceloc::metrics::compare_maps(&track.grid, &slam_map, 0.2);
    assert!(quality.wall_f1 > 0.5, "wall F1 {:.2}", quality.wall_f1);
    assert!(quality.coverage > 0.5, "coverage {:.2}", quality.coverage);

    // Phase 2: localize against the SLAM-built map (not the ground truth!)
    // while racing faster.
    let caster = RayMarching::new(&slam_map, 10.0);
    // At 250 particles the mean error sits near the bound and which side
    // it lands on is realization-dependent; the seed pins a realization
    // with comfortable margin.
    let config = SynPfConfig::builder()
        .particles(250)
        .seed(1)
        .build()
        .expect("valid config");
    let mut pf = SynPf::new(caster, config);
    let mut cfg2 = WorldConfig::default();
    cfg2.pursuit.speed_scale = 0.75;
    cfg2.lidar.beams = 121;
    let mut world2 = World::new(track, cfg2);
    let log2 = world2.run(&mut pf, 8.0);
    assert!(!log2.crashed, "racing on the SLAM map crashed");
    let late: Vec<_> = log2.samples.iter().filter(|s| s.stamp > 2.0).collect();
    let mean_err: f64 = late
        .iter()
        .map(|s| s.true_pose.dist(s.est_pose))
        .sum::<f64>()
        / late.len().max(1) as f64;
    // The SLAM map carries its own (bounded) error, so the tolerance is
    // looser than against ground truth.
    assert!(
        mean_err < 0.5,
        "localization against the SLAM map drifted: {mean_err}"
    );
}

#[test]
fn slam_map_roundtrips_through_pgm() {
    // Map → PGM bytes → map → localize: exercises the I/O path end to end.
    let track = TrackSpec::new(TrackShape::Oval {
        width: 10.0,
        height: 6.0,
    })
    .resolution(0.1)
    .build();
    let mut buf = Vec::new();
    raceloc::map::io::write_pgm(&track.grid, &mut buf).expect("write");
    let restored = raceloc::map::io::read_pgm(std::io::Cursor::new(buf)).expect("read");
    assert_eq!(restored, track.grid);
    // The restored map supports range casting identically.
    let a = RayMarching::new(&track.grid, 10.0);
    let b = RayMarching::new(&restored, 10.0);
    let p = track.start_pose();
    for i in 0..16 {
        let theta = i as f64 * 0.4;
        assert_eq!(
            raceloc::range::RangeMethod::range(&a, p.x, p.y, theta),
            raceloc::range::RangeMethod::range(&b, p.x, p.y, theta)
        );
    }
    // Census survives too.
    assert_eq!(restored.census(), track.grid.census());
    let free_state = restored.state_at_world(p.translation());
    assert_eq!(free_state, CellState::Free);
}
