//! Closed-loop observability integration: the world drives real localizers
//! with telemetry enabled and a JSONL recorder attached, and every
//! correction step must come out with populated diagnostics, consistent
//! span statistics, and a parseable record stream.

use raceloc::core::localizer::Localizer;
use raceloc::map::{Track, TrackShape, TrackSpec};
use raceloc::obs::{parse_steps, Json, RunRecorder, SharedBuffer, Telemetry};
use raceloc::pf::{SynPf, SynPfConfig};
use raceloc::range::{ArtifactParams, MapArtifacts, RayMarching};
use raceloc::sim::{World, WorldConfig};
use raceloc::slam::{CartoLocalizer, CartoLocalizerConfig};

fn track() -> Track {
    TrackSpec::new(TrackShape::Oval {
        width: 11.0,
        height: 6.5,
    })
    .resolution(0.1)
    .build()
}

fn world(t: &Track) -> World {
    let mut cfg = WorldConfig::default();
    cfg.lidar.beams = 121; // lighter scans for debug-mode speed
    cfg.pursuit.speed_scale = 0.8;
    World::new(t.clone(), cfg)
}

#[test]
fn synpf_closed_loop_populates_diagnostics_every_step() {
    let t = track();
    let mut w = world(&t);
    let tel = Telemetry::enabled();
    w.set_telemetry(tel.clone());

    let config = SynPfConfig::builder()
        .particles(250)
        .build()
        .expect("valid config");
    let mut pf = SynPf::new(RayMarching::new(&t.grid, 10.0), config);
    pf.set_telemetry(tel.clone());

    let buf = SharedBuffer::new();
    let mut rec = RunRecorder::new(buf.clone());
    let log = w.run_recorded(&mut pf, 2.0, &mut rec).expect("record run");
    assert!(!log.samples.is_empty());

    let steps = parse_steps(&buf.contents()).expect("JSONL parses");
    assert_eq!(steps.len(), log.samples.len());
    for (i, s) in steps.iter().enumerate() {
        // Every correction step carries full SynPF diagnostics.
        assert_eq!(s.step, i as u64, "steps are sequential");
        assert_eq!(s.diag.particles, Some(250), "step {i} particle count");
        let ess = s.diag.ess.expect("ESS populated");
        assert!((1.0..=250.0 + 1e-6).contains(&ess), "step {i} ESS {ess}");
        let cov = s.diag.covariance_trace.expect("covariance populated");
        assert!(cov.is_finite() && cov >= 0.0, "step {i} cov {cov}");
        assert!(!s.diag.stages.is_empty(), "step {i} has stage timings");
        // The in-correction stages never sum past the whole correction
        // ("motion" is excluded: it accumulates across the predict calls
        // that happened *before* this correction).
        let in_correction: f64 = s
            .diag
            .stages
            .iter()
            .filter(|(n, _)| n != "motion")
            .map(|(_, sec)| sec)
            .sum();
        assert!(
            in_correction <= s.correct_seconds + 1e-4,
            "step {i}: stages {in_correction} > correct {}",
            s.correct_seconds
        );
    }

    // The shared telemetry handle aggregated the same loop: one pf.correct
    // and one sim.correct span per recorded step.
    let snap = tel.snapshot();
    let sim_correct = snap.span("sim.correct").expect("sim.correct span");
    assert_eq!(sim_correct.count as usize, steps.len());
    let pf_correct = snap.span("pf.correct").expect("pf.correct span");
    assert_eq!(pf_correct.count as usize, steps.len());
    for stage in ["pf.motion", "pf.raycast", "pf.sensor", "pf.resample"] {
        assert!(snap.span(stage).is_some(), "missing span {stage}");
    }
    assert!(
        snap.counter("range.queries").unwrap_or(0) > 0,
        "batched range queries counted"
    );
    // The latency histogram saw every correction too.
    let hist = snap.histogram("pf.correct").expect("latency histogram");
    assert_eq!(hist.total() as usize, steps.len());
}

#[test]
fn cartographer_closed_loop_reports_match_scores() {
    let t = track();
    let mut w = world(&t);
    let mut loc = CartoLocalizer::from_artifacts(
        &MapArtifacts::build(&t.grid, ArtifactParams::default()),
        CartoLocalizerConfig::default(),
    );
    let tel = Telemetry::enabled();
    loc.set_telemetry(tel.clone());

    let buf = SharedBuffer::new();
    let mut rec = RunRecorder::new(buf.clone());
    let log = w.run_recorded(&mut loc, 2.0, &mut rec).expect("record run");
    assert!(!log.samples.is_empty());

    let text = buf.contents();
    let meta = Json::parse(text.lines().next().expect("meta line")).expect("meta parses");
    assert_eq!(meta.get("type").and_then(Json::as_str), Some("meta"));
    assert_eq!(
        meta.get("localizer").and_then(Json::as_str),
        Some(loc.name())
    );

    let steps = parse_steps(&text).expect("JSONL parses");
    assert_eq!(steps.len(), log.samples.len());
    for (i, s) in steps.iter().enumerate() {
        let score = s.diag.match_score.expect("match score populated");
        assert!((0.0..=1.0).contains(&score), "step {i} score {score}");
        assert!(s.diag.stage("refine").is_some(), "step {i} refine stage");
    }
    let snap = tel.snapshot();
    assert_eq!(
        snap.span("slam.correct").map(|s| s.count as usize),
        Some(steps.len())
    );
}
