//! The closed-loop world: physics, sensors, controller, and the localizer
//! under test, scheduled at their real rates.

use crate::controller::{PurePursuit, PurePursuitConfig, SpeedProfile};
use crate::sensors::{Lidar, LidarSpec, WheelOdometer, WheelOdometerConfig};
use crate::vehicle::{DriveCommand, Vehicle, VehicleParams, VehicleState};
use raceloc_core::localizer::Localizer;
use raceloc_core::sensor_data::LaserScan;
use raceloc_core::{Health, Pose2};
use raceloc_faults::{FaultSchedule, FaultTracker};
use raceloc_map::{CellState, Track};
use raceloc_obs::Stopwatch;
use raceloc_obs::{Json, RunRecorder, StepRecord, Telemetry};
use raceloc_range::{PooledCaster, RayMarching};
use std::collections::VecDeque;
use std::io;

/// Configuration of a closed-loop run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldConfig {
    /// Physics integration step \[s\].
    pub physics_dt: f64,
    /// Wheel-odometry rate \[Hz\].
    pub odom_hz: f64,
    /// LiDAR sweep rate \[Hz\].
    pub lidar_hz: f64,
    /// Controller rate \[Hz\].
    pub control_hz: f64,
    /// LiDAR geometry and noise.
    pub lidar: LidarSpec,
    /// Odometer noise.
    pub odom: WheelOdometerConfig,
    /// Vehicle parameters (grip lives here: `vehicle.mu`).
    pub vehicle: VehicleParams,
    /// Lateral acceleration budget for the speed profile \[m/s²\].
    pub a_lat_max: f64,
    /// Acceleration limit for the speed profile \[m/s²\].
    pub a_accel: f64,
    /// Braking limit for the speed profile \[m/s²\].
    pub a_brake: f64,
    /// Top speed for the speed profile \[m/s\].
    pub v_max: f64,
    /// Pure-pursuit tuning (speed scaling lives here).
    pub pursuit: PurePursuitConfig,
    /// Master noise seed.
    pub seed: u64,
    /// Keep every k-th scan in the log (for scan-alignment scoring).
    pub scan_log_stride: usize,
    /// Relative grip variation σ: the effective friction follows an
    /// Ornstein–Uhlenbeck process `μ_eff = μ·(1 + g)` with stationary
    /// standard deviation `grip_noise` and ~0.5 s correlation time —
    /// the "varying grip levels" of a real track (dust, tire temperature).
    pub grip_noise: f64,
    /// Worker threads for the simulator's own ray casting (the LiDAR
    /// sweep). `1` (the default) keeps everything on the caller thread;
    /// higher values batch the sweep onto a persistent
    /// [`raceloc_range::PooledCaster`] pool. Scans are bit-identical for
    /// every value (rule R3) — see DESIGN.md §11.
    pub threads: usize,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            physics_dt: 0.002,
            odom_hz: 50.0,
            lidar_hz: 40.0,
            control_hz: 50.0,
            lidar: LidarSpec::default(),
            odom: WheelOdometerConfig::default(),
            vehicle: VehicleParams::f1tenth(),
            a_lat_max: 5.8,
            a_accel: 4.4,
            a_brake: 4.2,
            v_max: 7.6,
            pursuit: PurePursuitConfig::default(),
            seed: 42,
            scan_log_stride: 4,
            grip_noise: 0.05,
            threads: 1,
        }
    }
}

/// One logged LiDAR-rate sample of the closed loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogSample {
    /// Simulation time \[s\].
    pub stamp: f64,
    /// Ground-truth vehicle pose.
    pub true_pose: Pose2,
    /// Localizer estimate after the scan correction.
    pub est_pose: Pose2,
    /// Wall-clock seconds the localizer's `correct` call took.
    pub correct_seconds: f64,
    /// Ground-truth chassis speed \[m/s\].
    pub true_speed: f64,
    /// Encoder wheel speed \[m/s\] (differs from `true_speed` under slip).
    pub wheel_speed: f64,
    /// The localizer's self-reported health after this correction
    /// ([`Health::Nominal`] for localizers without health monitoring).
    pub health: Health,
}

/// The record of a closed-loop run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimLog {
    /// One entry per LiDAR correction.
    pub samples: Vec<LogSample>,
    /// Subsampled scans with their estimates (for scan-alignment scoring):
    /// `(stamp, estimated body pose, scan)`.
    pub scans: Vec<(f64, Pose2, LaserScan)>,
    /// Wall-clock seconds spent in `predict` calls, total.
    pub predict_seconds_total: f64,
    /// Number of `predict` calls.
    pub predict_calls: usize,
    /// True when the car left free space and the run was aborted.
    pub crashed: bool,
    /// Simulated duration actually run \[s\].
    pub duration: f64,
}

impl SimLog {
    /// Mean wall-clock seconds per scan correction.
    pub fn mean_correct_seconds(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.correct_seconds).sum::<f64>() / self.samples.len() as f64
    }
}

/// The runtime state of an installed [`FaultSchedule`]: the schedule
/// itself plus everything the closed loop needs to execute it — the
/// telemetry tracker, a pre-built caster over the corrupted map, the
/// latency queue, and the stuck-encoder capture. All of it is keyed on the
/// LiDAR correction-step counter, which resets at the start of every run,
/// so runs replay bit-identically (rule R3).
struct FaultBox {
    schedule: FaultSchedule,
    tracker: FaultTracker,
    /// Caster over the map with every corruption region burned in as
    /// occupied (`None` when the schedule declares no map corruption).
    /// Built once at install time; swapped in per-step while a
    /// map-corruption window is active.
    corrupt_caster: Option<PooledCaster<RayMarching>>,
    /// Scans awaiting emission while a latency fault is active.
    delay_queue: VecDeque<LaserScan>,
    /// `(wheel_speed, steer)` frozen at the first step of a stuck-encoder
    /// window.
    stuck_capture: Option<(f64, f64)>,
    /// LiDAR correction-step counter — the schedule's clock.
    scan_step: u64,
}

impl FaultBox {
    fn new(schedule: FaultSchedule, track: &Track, config: &WorldConfig) -> Self {
        let regions = schedule.corruption_regions();
        let corrupt_caster = (!regions.is_empty()).then(|| {
            let mut grid = track.grid.clone();
            for region in &regions {
                let a = grid.world_to_index(raceloc_core::Point2::new(region.x0, region.y0));
                let b = grid.world_to_index(raceloc_core::Point2::new(region.x1, region.y1));
                for row in a.row.min(b.row)..=a.row.max(b.row) {
                    for col in a.col.min(b.col)..=a.col.max(b.col) {
                        grid.set((col, row).into(), CellState::Occupied);
                    }
                }
            }
            PooledCaster::new(
                RayMarching::new(&grid, config.lidar.max_range),
                config.threads.max(1),
            )
        });
        let tracker = FaultTracker::new(&schedule);
        Self {
            schedule,
            tracker,
            corrupt_caster,
            delay_queue: VecDeque::new(),
            stuck_capture: None,
            scan_step: 0,
        }
    }

    /// Forgets all per-run state (call at the start of a run).
    fn reset(&mut self) {
        self.tracker.reset();
        self.delay_queue.clear();
        self.stuck_capture = None;
        self.scan_step = 0;
    }
}

/// The closed-loop simulation world.
///
/// Owns the ground truth (track + vehicle state), the sensor simulators, and
/// the racing controller; [`World::run`] drives a [`Localizer`] exactly the
/// way the on-car software stack would.
pub struct World {
    track: Track,
    config: WorldConfig,
    vehicle: Vehicle,
    state: VehicleState,
    caster: PooledCaster<RayMarching>,
    lidar: Lidar,
    odometer: WheelOdometer,
    pursuit: PurePursuit,
    time: f64,
    grip_rng: raceloc_core::Rng64,
    /// Current grip deviation `g` of the OU process.
    grip_dev: f64,
    tel: Telemetry,
    /// Installed fault schedule and its runtime state (`None` keeps every
    /// fault branch of the closed loop unreachable — the zero-cost path).
    faults: Option<FaultBox>,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("time", &self.time)
            .field("state", &self.state)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl World {
    /// Builds a world on a track; the car starts at rest on the raceline.
    ///
    /// # Panics
    ///
    /// Panics when the configuration rates are not positive.
    pub fn new(track: Track, config: WorldConfig) -> Self {
        assert!(
            config.physics_dt > 0.0
                && config.odom_hz > 0.0
                && config.lidar_hz > 0.0
                && config.control_hz > 0.0,
            "world rates must be positive"
        );
        let caster = PooledCaster::new(
            RayMarching::new(&track.grid, config.lidar.max_range),
            config.threads.max(1),
        );
        let profile = SpeedProfile::new(
            &track.raceline,
            config.a_lat_max,
            config.a_accel,
            config.a_brake,
            config.v_max,
        );
        let pursuit = PurePursuit::new(
            track.raceline.clone(),
            profile,
            config.pursuit,
            &config.vehicle,
        );
        let lidar = Lidar::new(config.lidar, config.seed.wrapping_add(1));
        let odometer = WheelOdometer::new(config.vehicle, config.odom, config.seed.wrapping_add(2));
        let state = VehicleState::at_pose(track.start_pose());
        let vehicle = Vehicle::new(config.vehicle);
        let grip_rng = raceloc_core::Rng64::new(config.seed.wrapping_add(3));
        Self {
            track,
            config,
            vehicle,
            state,
            caster,
            lidar,
            odometer,
            pursuit,
            time: 0.0,
            grip_rng,
            grip_dev: 0.0,
            tel: Telemetry::disabled(),
            faults: None,
        }
    }

    /// Installs a deterministic fault schedule; subsequent runs execute it.
    ///
    /// Faults are applied between the ground-truth step and sensor
    /// emission: odometry faults perturb what the encoders *report* (the
    /// chassis is untouched), scan faults mutate the emitted ranges, a
    /// kidnap teleports the ground-truth pose along the raceline, and map
    /// corruption casts the scan against a map with the scheduled regions
    /// burned in as occupied. Every stochastic choice is a pure function of
    /// `(schedule seed, correction step)`, so runs stay bit-identical
    /// across thread counts (rule R3). Fault activity is booked into the
    /// world's telemetry as `faults.<kind>.activations` / `.steps`.
    pub fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        self.faults = Some(FaultBox::new(schedule, &self.track, &self.config));
    }

    /// Removes any installed fault schedule.
    pub fn clear_fault_schedule(&mut self) {
        self.faults = None;
    }

    /// The installed fault schedule, if any.
    pub fn fault_schedule(&self) -> Option<&FaultSchedule> {
        self.faults.as_ref().map(|fb| &fb.schedule)
    }

    /// Installs a telemetry handle; the closed loop records `sim.predict`,
    /// `sim.correct`, and `sim.physics` spans into it. Pass a clone of the
    /// handle the localizer uses so one snapshot covers the whole stack.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// The world's telemetry handle (disabled unless [`World::set_telemetry`]
    /// installed an enabled one).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// The track the world was built on.
    pub fn track(&self) -> &Track {
        &self.track
    }

    /// The ground-truth vehicle state.
    pub fn state(&self) -> &VehicleState {
        &self.state
    }

    /// Current simulation time \[s\].
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// The ray caster over the ground-truth map (sharable with localizers
    /// that want the identical geometry, e.g. in tests).
    pub fn caster(&self) -> &RayMarching {
        self.caster.inner()
    }

    /// Counters of the simulator's own casting pool, if one has been
    /// spawned (`None` with `threads <= 1`, which never leaves the caller
    /// thread).
    pub fn pool_stats(&self) -> Option<raceloc_par::PoolStats> {
        self.caster.pool_stats()
    }

    /// Produces one LiDAR scan from the current true pose (useful for
    /// initializing localizers or writing custom loops).
    pub fn scan_now(&mut self) -> LaserScan {
        self.lidar.scan_with_threads(
            self.state.pose,
            &self.caster,
            self.config.threads,
            self.time,
        )
    }

    /// Runs the closed loop for `duration` simulated seconds.
    ///
    /// The localizer is reset to the true pose at the start, then driven by
    /// odometry (`predict`) and LiDAR (`correct`); the pure-pursuit
    /// controller consumes the *localizer's* pose. The run aborts early if
    /// the ground-truth pose leaves free space ("crash").
    pub fn run<L: Localizer + ?Sized>(&mut self, localizer: &mut L, duration: f64) -> SimLog {
        // Without a recorder there is no I/O, so the error slot is always
        // `None` and can be dropped without losing information.
        self.run_inner(localizer, duration, false, None).0
    }

    /// Runs the closed loop with the controller fed the *ground-truth* pose
    /// (a perfect oracle localizer).
    ///
    /// This is the perfect-localization upper bound: it isolates what the
    /// vehicle + controller can physically do on the configured grip, which
    /// lets experiments distinguish localization failures from an
    /// undrivable speed profile. The supplied localizer still receives all
    /// sensor data and its estimates are logged — only the control input
    /// differs.
    pub fn run_with_oracle_control<L: Localizer + ?Sized>(
        &mut self,
        localizer: &mut L,
        duration: f64,
    ) -> SimLog {
        self.run_inner(localizer, duration, true, None).0
    }

    /// Runs the closed loop like [`World::run`] while streaming one JSONL
    /// `step` record per LiDAR correction into `recorder`.
    ///
    /// Each record carries the ground truth, the estimate, the correction
    /// wall-clock time, and whatever [`Localizer::diagnostics`] reports —
    /// the same schema for every localizer, with no downcasting. A `meta`
    /// line naming the localizer and the loop rates is written first.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error the recorder's writer reports.
    pub fn run_recorded<L: Localizer + ?Sized>(
        &mut self,
        localizer: &mut L,
        duration: f64,
        recorder: &mut RunRecorder,
    ) -> io::Result<SimLog> {
        recorder.record_meta(&[
            ("localizer", Json::Str(localizer.name().to_string())),
            ("duration_s", Json::num(duration)),
            ("odom_hz", Json::num(self.config.odom_hz)),
            ("lidar_hz", Json::num(self.config.lidar_hz)),
            ("seed", Json::num(self.config.seed as f64)),
        ])?;
        let (log, io_err) = self.run_inner(localizer, duration, false, Some(recorder));
        if let Some(e) = io_err {
            return Err(e);
        }
        recorder.flush()?;
        Ok(log)
    }

    /// The shared closed-loop body behind [`World::run`],
    /// [`World::run_with_oracle_control`], and [`World::run_recorded`].
    ///
    /// Infallible by construction: a recorder write error aborts the run
    /// and is handed back in the second tuple slot instead of unwinding, so
    /// the recorder-less entry points stay panic-free (analysis rule R1)
    /// without a structurally-impossible `expect`.
    fn run_inner<L: Localizer + ?Sized>(
        &mut self,
        localizer: &mut L,
        duration: f64,
        oracle_control: bool,
        mut recorder: Option<&mut RunRecorder>,
    ) -> (SimLog, Option<io::Error>) {
        localizer.reset(self.state.pose);
        if let Some(fb) = self.faults.as_mut() {
            fb.reset();
        }
        let dt = self.config.physics_dt;
        let steps = (duration / dt).ceil() as usize;
        let odom_period = 1.0 / self.config.odom_hz;
        let lidar_period = 1.0 / self.config.lidar_hz;
        let control_period = 1.0 / self.config.control_hz;
        let mut next_odom = 0.0;
        let mut next_lidar = 0.5 * lidar_period; // offset: odom before scan
        let mut next_control = 0.0;
        let mut cmd = DriveCommand::default();
        let mut log = SimLog {
            samples: Vec::new(),
            scans: Vec::new(),
            predict_seconds_total: 0.0,
            predict_calls: 0,
            crashed: false,
            duration: 0.0,
        };
        let mut scan_counter = 0usize;
        let mut wheel_speed_estimate = 0.0;
        let start_time = self.time;
        for _ in 0..steps {
            if self.time + 1e-12 >= next_odom {
                next_odom += odom_period;
                // Odometry faults perturb what the encoders *report*; the
                // chassis itself is untouched.
                let mut observed = self.state;
                if let Some(fb) = self.faults.as_mut() {
                    let fx = fb.schedule.odom_effects(fb.scan_step);
                    if fx.stuck {
                        let (wheel, steer) = *fb
                            .stuck_capture
                            .get_or_insert((observed.wheel_speed, observed.steer));
                        observed.wheel_speed = wheel;
                        observed.steer = steer;
                    } else {
                        fb.stuck_capture = None;
                        observed.wheel_speed *= fx.slip_factor;
                    }
                }
                let odom = self.odometer.sample(&observed, odom_period, self.time);
                wheel_speed_estimate = odom.twist.vx;
                let t0 = Stopwatch::start();
                localizer.predict(&odom);
                let predict_seconds = t0.elapsed_seconds();
                self.tel.record_span("sim.predict", predict_seconds);
                log.predict_seconds_total += predict_seconds;
                log.predict_calls += 1;
            }
            if self.time + 1e-12 >= next_lidar {
                next_lidar += lidar_period;
                if let Some(fb) = self.faults.as_ref() {
                    if let Some(advance) = fb.schedule.kidnap_advance_at(fb.scan_step) {
                        // Kidnap: teleport the ground truth along the
                        // raceline, keeping the body-frame velocities — a
                        // collision relocates the car, it does not stop
                        // the wheels.
                        let (s, _) = self.track.raceline.project(self.state.pose.translation());
                        let s = self.track.raceline.wrap_s(s + advance);
                        let p = self.track.raceline.point_at(s);
                        self.state.pose = Pose2::new(p.x, p.y, self.track.raceline.heading_at(s));
                    }
                }
                let fault_fx = self
                    .faults
                    .as_ref()
                    .map(|fb| fb.schedule.scan_effects(fb.scan_step));
                // Map corruption swaps the caster; everything else leaves
                // the sweep itself untouched (ray casting draws no
                // randomness, so the swap cannot perturb the noise stream).
                let sweep_caster = match (&fault_fx, self.faults.as_ref()) {
                    (Some(fx), Some(fb)) if fx.corrupt_map => {
                        fb.corrupt_caster.as_ref().unwrap_or(&self.caster)
                    }
                    _ => &self.caster,
                };
                let mut scan = self.lidar.scan_with_threads(
                    self.state.pose,
                    sweep_caster,
                    self.config.threads,
                    self.time,
                );
                if let (Some(fx), Some(fb)) = (fault_fx, self.faults.as_mut()) {
                    fx.apply(
                        &mut scan.ranges,
                        self.config.lidar.max_range,
                        fb.schedule.seed(),
                        fb.scan_step,
                    );
                    if fx.delay_steps > 0 {
                        // Latency: the fresh scan joins the backlog and the
                        // oldest one is emitted (re-emitting the head while
                        // the backlog is still filling), so the localizer
                        // sees a stale stamp `delay_steps` corrections old.
                        fb.delay_queue.push_back(scan.clone());
                        let emitted = if fb.delay_queue.len() as u64 > fx.delay_steps {
                            fb.delay_queue.pop_front()
                        } else {
                            fb.delay_queue.front().cloned()
                        };
                        if let Some(stale) = emitted {
                            scan = stale;
                        }
                    } else {
                        fb.delay_queue.clear();
                    }
                    // Compute pressure scales the localizer's per-step
                    // budget (DESIGN.md §14) before the correction it
                    // gates; sensors are untouched. Delivered every step so
                    // the factor relaxes back to 1 when the window closes.
                    localizer.set_compute_pressure(fb.schedule.budget_factor_at(fb.scan_step));
                    fb.tracker.record(&fb.schedule, fb.scan_step, &self.tel);
                    fb.scan_step += 1;
                }
                if self.tel.is_enabled() {
                    self.caster.publish_stats(&self.tel);
                }
                let t0 = Stopwatch::start();
                let est = localizer.correct(&scan);
                let correct_seconds = t0.elapsed_seconds();
                self.tel.record_span("sim.correct", correct_seconds);
                if let Some(rec) = recorder.as_deref_mut() {
                    let write = rec.record_step(&StepRecord {
                        step: log.samples.len() as u64,
                        stamp: self.time,
                        true_pose: self.state.pose,
                        est_pose: est,
                        correct_seconds,
                        diag: localizer.diagnostics(),
                    });
                    if let Err(e) = write {
                        log.duration = self.time - start_time;
                        return (log, Some(e));
                    }
                }
                log.samples.push(LogSample {
                    stamp: self.time,
                    true_pose: self.state.pose,
                    est_pose: est,
                    correct_seconds,
                    true_speed: self.state.speed(),
                    wheel_speed: self.state.wheel_speed,
                    health: localizer.health(),
                });
                if scan_counter.is_multiple_of(self.config.scan_log_stride) {
                    log.scans.push((self.time, est, scan));
                }
                scan_counter += 1;
            }
            if self.time + 1e-12 >= next_control {
                next_control += control_period;
                let control_pose = if oracle_control {
                    self.state.pose
                } else {
                    localizer.pose()
                };
                cmd = self.pursuit.control(control_pose, wheel_speed_estimate);
            }
            // Grip variation: OU step dg = −g/τ·dt + σ·√(2dt/τ)·N(0,1).
            if self.config.grip_noise > 0.0 {
                let tau = 0.5;
                let sigma = self.config.grip_noise;
                self.grip_dev += -self.grip_dev / tau * dt
                    + sigma * (2.0 * dt / tau).sqrt() * self.grip_rng.gaussian();
                self.grip_dev = self.grip_dev.clamp(-0.25, 0.25);
                self.vehicle.params_mut().mu = self.config.vehicle.mu * (1.0 + self.grip_dev);
            }
            if self.tel.is_enabled() {
                let t0 = Stopwatch::start();
                self.state = self.vehicle.step(&self.state, &cmd, dt);
                self.tel.record_span("sim.physics", t0.elapsed_seconds());
            } else {
                self.state = self.vehicle.step(&self.state, &cmd, dt);
            }
            self.time += dt;
            if self
                .track
                .grid
                .state_at_world(self.state.pose.translation())
                != CellState::Free
            {
                log.crashed = true;
                break;
            }
        }
        log.duration = self.time - start_time;
        (log, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raceloc_core::localizer::DeadReckoning;
    use raceloc_map::{TrackShape, TrackSpec};

    fn oval_track() -> Track {
        TrackSpec::new(TrackShape::Oval {
            width: 12.0,
            height: 7.0,
        })
        .resolution(0.1)
        .build()
    }

    /// A "cheating" localizer that always reports the truth — used to test
    /// that the control stack can actually race the track.
    struct Oracle {
        pose: Pose2,
    }

    impl Localizer for Oracle {
        fn predict(&mut self, _odom: &raceloc_core::Odometry) {}
        fn correct(&mut self, _scan: &LaserScan) -> Pose2 {
            self.pose
        }
        fn pose(&self) -> Pose2 {
            self.pose
        }
        fn reset(&mut self, pose: Pose2) {
            self.pose = pose;
        }
        fn name(&self) -> &str {
            "oracle"
        }
    }

    /// Wraps the world to feed the oracle the true pose each step.
    fn run_with_oracle(world: &mut World, duration: f64) -> SimLog {
        // The oracle needs the true pose continuously; emulate by running in
        // short segments and syncing.
        let mut oracle = Oracle {
            pose: world.state().pose,
        };
        let mut log = SimLog {
            samples: Vec::new(),
            scans: Vec::new(),
            predict_seconds_total: 0.0,
            predict_calls: 0,
            crashed: false,
            duration: 0.0,
        };
        let seg = 0.05;
        let mut t = 0.0;
        while t < duration {
            oracle.pose = world.state().pose;
            let part = world.run(&mut oracle, seg);
            log.samples.extend(part.samples);
            log.crashed |= part.crashed;
            log.duration += part.duration;
            if log.crashed {
                break;
            }
            t += seg;
        }
        log
    }

    #[test]
    fn oracle_car_stays_on_track() {
        let mut world = World::new(oval_track(), WorldConfig::default());
        let log = run_with_oracle(&mut world, 20.0);
        assert!(!log.crashed, "car crashed with perfect localization");
        // It should be moving at racing speed by now.
        assert!(
            world.state().speed() > 2.0,
            "speed {}",
            world.state().speed()
        );
    }

    #[test]
    fn oracle_car_completes_a_lap() {
        let mut world = World::new(oval_track(), WorldConfig::default());
        let start = world.track().start_pose().translation();
        let mut best_progress = 0.0f64;
        let total = world.track().raceline.total_length();
        let mut returned = false;
        let mut left_start = false;
        for _ in 0..600 {
            let log = run_with_oracle(&mut world, 0.1);
            if log.crashed {
                panic!("crashed mid-lap");
            }
            let p = world.state().pose.translation();
            let d = p.dist(start);
            let (s, _) = world.track().raceline.project(p);
            best_progress = best_progress.max(s);
            if d > 3.0 {
                left_start = true;
            }
            if left_start && d < 1.0 && best_progress > 0.7 * total {
                returned = true;
                break;
            }
        }
        assert!(
            returned,
            "did not complete a lap (progress {best_progress:.1}/{total:.1})"
        );
    }

    #[test]
    fn dead_reckoning_accumulates_error() {
        let mut world = World::new(oval_track(), WorldConfig::default());
        let mut dr = DeadReckoning::new();
        let log = world.run(&mut dr, 10.0);
        assert!(!log.samples.is_empty());
        // Dead reckoning drifts; final error must exceed the noise floor
        // unless it crashed first (which is also evidence of drift).
        if !log.crashed {
            let last = log.samples.last().expect("non-empty");
            let err = last.true_pose.dist(last.est_pose);
            assert!(err > 0.01, "suspiciously perfect dead reckoning: {err}");
        }
    }

    #[test]
    fn log_rates_match_config() {
        let mut world = World::new(oval_track(), WorldConfig::default());
        let mut dr = DeadReckoning::new();
        let log = world.run(&mut dr, 2.0);
        if !log.crashed {
            // 2 s at 40 Hz → ~80 scan corrections.
            assert!(
                (log.samples.len() as i64 - 80).abs() <= 2,
                "{}",
                log.samples.len()
            );
            // 2 s at 50 Hz → ~100 predicts.
            assert!((log.predict_calls as i64 - 100).abs() <= 2);
            // Stride-4 scan retention.
            assert!((log.scans.len() as i64 - 20).abs() <= 2);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut world = World::new(oval_track(), WorldConfig::default());
            let mut dr = DeadReckoning::new();
            let log = world.run(&mut dr, 3.0);
            log.samples
                .iter()
                .map(|s| (s.true_pose, s.est_pose))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn runs_are_bitwise_identical_across_thread_counts() {
        let run = |threads: usize| {
            let cfg = WorldConfig {
                threads,
                ..WorldConfig::default()
            };
            let mut world = World::new(oval_track(), cfg);
            let mut dr = DeadReckoning::new();
            let log = world.run(&mut dr, 2.0);
            let spawned = world.pool_stats().is_some();
            let scans: Vec<_> = log
                .scans
                .iter()
                .map(|(t, est, scan)| (*t, *est, scan.ranges.clone()))
                .collect();
            let poses: Vec<_> = log
                .samples
                .iter()
                .map(|s| (s.true_pose, s.est_pose))
                .collect();
            (poses, scans, spawned)
        };
        let (poses1, scans1, spawned1) = run(1);
        assert!(!spawned1, "threads=1 must never spawn a pool");
        for threads in [2usize, 4] {
            let (poses, scans, spawned) = run(threads);
            assert_eq!(poses, poses1, "trajectory diverged at threads={threads}");
            assert_eq!(scans, scans1, "scans diverged at threads={threads}");
            assert!(spawned, "threads={threads} should use the pool");
        }
    }

    #[test]
    fn lower_grip_produces_larger_odometry_drift() {
        let drift = |mu: f64| {
            let mut cfg = WorldConfig::default();
            cfg.vehicle.mu = mu;
            let mut world = World::new(oval_track(), cfg);
            let mut dr = DeadReckoning::new();
            let log = world.run(&mut dr, 12.0);
            let n = log.samples.len().min(400);
            // Mean estimate error over the common prefix.
            log.samples[..n]
                .iter()
                .map(|s| s.true_pose.dist(s.est_pose))
                .sum::<f64>()
                / n as f64
        };
        let hq = drift(1.0);
        let lq = drift(19.0 / 26.0);
        assert!(
            lq > hq,
            "low-grip odometry should drift more: lq={lq} hq={hq}"
        );
    }

    #[test]
    fn run_recorded_streams_steps_and_telemetry() {
        let mut world = World::new(oval_track(), WorldConfig::default());
        let tel = Telemetry::enabled();
        world.set_telemetry(tel.clone());
        let buf = raceloc_obs::SharedBuffer::new();
        let mut rec = RunRecorder::new(buf.clone());
        let mut dr = DeadReckoning::new();
        let log = world.run_recorded(&mut dr, 1.0, &mut rec).unwrap();

        // One JSONL step per logged correction, identical content.
        let text = buf.contents();
        let steps = raceloc_obs::parse_steps(&text).unwrap();
        assert_eq!(steps.len(), log.samples.len());
        assert_eq!(rec.steps_written() as usize, log.samples.len());
        for (rec, sample) in steps.iter().zip(&log.samples) {
            assert_eq!(rec.true_pose, sample.true_pose);
            assert_eq!(rec.est_pose, sample.est_pose);
            // Dead reckoning reports its fixed diagnostics.
            assert_eq!(rec.diag.particles, Some(1));
        }
        let meta = raceloc_obs::Json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(
            meta.get("localizer").and_then(raceloc_obs::Json::as_str),
            Some("dead-reckoning")
        );

        // The loop's own spans were recorded.
        let snap = tel.snapshot();
        let correct = snap.span("sim.correct").expect("sim.correct span");
        assert_eq!(correct.count as usize, log.samples.len());
        let predict = snap.span("sim.predict").expect("sim.predict span");
        assert_eq!(predict.count as usize, log.predict_calls);
        assert!(snap.span("sim.physics").is_some());
    }

    #[test]
    #[should_panic(expected = "rates must be positive")]
    fn zero_rate_panics() {
        let cfg = WorldConfig {
            lidar_hz: 0.0,
            ..WorldConfig::default()
        };
        World::new(oval_track(), cfg);
    }

    // ---- fault-injection wiring -------------------------------------------

    use raceloc_faults::MapRegion;

    /// Runs dead reckoning under oracle control with every scan logged.
    fn fault_log(schedule: Option<FaultSchedule>, threads: usize, duration: f64) -> SimLog {
        let cfg = WorldConfig {
            threads,
            scan_log_stride: 1,
            ..WorldConfig::default()
        };
        let mut world = World::new(oval_track(), cfg);
        if let Some(s) = schedule {
            world.set_fault_schedule(s);
        }
        let mut dr = DeadReckoning::new();
        world.run_with_oracle_control(&mut dr, duration)
    }

    /// The deterministic content of a log (drops the wall-clock timings).
    #[allow(clippy::type_complexity)]
    fn log_key(log: &SimLog) -> (Vec<(Pose2, Pose2, Health)>, Vec<(f64, Pose2, Vec<f64>)>) {
        (
            log.samples
                .iter()
                .map(|s| (s.true_pose, s.est_pose, s.health))
                .collect(),
            log.scans
                .iter()
                .map(|(t, e, sc)| (*t, *e, sc.ranges.clone()))
                .collect(),
        )
    }

    #[test]
    fn empty_schedule_matches_no_schedule_bitwise() {
        let a = fault_log(None, 1, 1.0);
        let empty = FaultSchedule::builder().build().unwrap();
        let b = fault_log(Some(empty), 1, 1.0);
        assert_eq!(log_key(&a), log_key(&b));
        // Localizers without health monitoring report Nominal throughout.
        assert!(a.samples.iter().all(|s| s.health == Health::Nominal));
    }

    #[test]
    fn blackout_window_invalidates_logged_scans() {
        let s = FaultSchedule::builder()
            .lidar_blackout(5, 15)
            .build()
            .unwrap();
        let log = fault_log(Some(s), 1, 1.0);
        assert!(!log.crashed);
        assert!(log.scans.len() > 20);
        for (i, (_, _, scan)) in log.scans.iter().enumerate() {
            let dark = scan.ranges.iter().all(|r| r.is_infinite());
            if (5..15).contains(&i) {
                assert!(dark, "step {i} should be blacked out");
            } else {
                assert!(!dark, "step {i} should see the track");
            }
        }
    }

    #[test]
    fn kidnap_teleports_ground_truth_along_raceline() {
        let s = FaultSchedule::builder()
            .pose_kidnap(20, 3.0)
            .build()
            .unwrap();
        let log = fault_log(Some(s), 1, 1.0);
        assert!(log.samples.len() > 21);
        let prev = log.samples[18].true_pose;
        let before = log.samples[19].true_pose;
        let after = log.samples[20].true_pose;
        // Nominal consecutive corrections move centimetres early in a run;
        // the kidnap jumps metres.
        assert!(before.dist(prev) < 0.5);
        assert!(after.dist(before) > 1.0, "jump {}", after.dist(before));
        // The teleport target is on the track (the run did not crash here).
        assert!(!log.crashed);
    }

    #[test]
    fn latency_emits_stale_scans_inside_the_window() {
        let s = FaultSchedule::builder().latency(10, 30, 4).build().unwrap();
        let log = fault_log(Some(s), 1, 1.0);
        // Backlog full at step 20: the emitted scan is 4 corrections old.
        let (stamp, _, scan) = &log.scans[20];
        assert!(
            stamp - scan.stamp > 3.0 * 0.025,
            "scan not stale: emitted {stamp} generated {}",
            scan.stamp
        );
        // Outside the window scans are live again.
        let (stamp, _, scan) = &log.scans[35];
        assert_eq!(*stamp, scan.stamp);
    }

    #[test]
    fn stuck_encoder_freezes_dead_reckoning() {
        // Encoder stuck at standstill from step 0: the car accelerates away
        // but dead reckoning integrates a frozen zero speed.
        let s = FaultSchedule::builder()
            .stuck_encoder(0, 10_000)
            .build()
            .unwrap();
        let log = fault_log(Some(s), 1, 2.0);
        let start = log.samples[0].true_pose;
        let last = log.samples.last().unwrap();
        assert!(last.true_pose.dist(start) > 2.0, "car did not move");
        assert!(
            last.est_pose.dist(start) < 0.5,
            "frozen encoder should pin the estimate, moved {}",
            last.est_pose.dist(start)
        );
    }

    #[test]
    fn odom_slip_inflates_dead_reckoning_error() {
        let s = FaultSchedule::builder()
            .odom_slip(0, 10_000, 1.6)
            .build()
            .unwrap();
        let err = |log: &SimLog| {
            let l = log.samples.last().unwrap();
            l.true_pose.dist(l.est_pose)
        };
        let slip = fault_log(Some(s), 1, 3.0);
        let nominal = fault_log(None, 1, 3.0);
        assert!(
            err(&slip) > 2.0 * err(&nominal),
            "slip {} vs nominal {}",
            err(&slip),
            err(&nominal)
        );
    }

    #[test]
    fn map_corruption_changes_scans_only_inside_the_window() {
        let track = oval_track();
        let start = track.start_pose();
        // A phantom obstacle 1.5 m ahead of the (initially resting) car.
        let ahead = start * Pose2::new(1.5, 0.0, 0.0);
        let region = MapRegion {
            x0: ahead.x - 0.3,
            y0: ahead.y - 0.3,
            x1: ahead.x + 0.3,
            y1: ahead.y + 0.3,
        };
        let s = FaultSchedule::builder()
            .map_corruption(2, 6, region)
            .build()
            .unwrap();
        let faulty = fault_log(Some(s), 1, 0.5);
        let nominal = fault_log(None, 1, 0.5);
        assert_ne!(
            faulty.scans[3].2.ranges, nominal.scans[3].2.ranges,
            "the corrupted map must change the scan"
        );
        assert_eq!(
            faulty.scans[8].2.ranges, nominal.scans[8].2.ranges,
            "outside the window the true map is used"
        );
    }

    #[test]
    fn fault_activity_is_booked_into_telemetry() {
        let mut world = World::new(oval_track(), WorldConfig::default());
        let tel = Telemetry::enabled();
        world.set_telemetry(tel.clone());
        world.set_fault_schedule(
            FaultSchedule::builder()
                .lidar_blackout(3, 7)
                .build()
                .unwrap(),
        );
        assert!(world.fault_schedule().is_some());
        let mut dr = DeadReckoning::new();
        world.run_with_oracle_control(&mut dr, 0.5);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("faults.lidar_blackout.activations"), Some(1));
        assert_eq!(snap.counter("faults.lidar_blackout.steps"), Some(4));
        world.clear_fault_schedule();
        assert!(world.fault_schedule().is_none());
    }

    /// Records the compute-pressure factor in force at every correction.
    struct PressureProbe {
        inner: DeadReckoning,
        factors: Vec<f64>,
        current: f64,
    }

    impl Localizer for PressureProbe {
        fn predict(&mut self, odom: &raceloc_core::Odometry) {
            self.inner.predict(odom);
        }
        fn correct(&mut self, scan: &LaserScan) -> Pose2 {
            self.factors.push(self.current);
            self.inner.correct(scan)
        }
        fn pose(&self) -> Pose2 {
            self.inner.pose()
        }
        fn reset(&mut self, pose: Pose2) {
            self.inner.reset(pose);
        }
        fn name(&self) -> &str {
            "pressure-probe"
        }
        fn set_compute_pressure(&mut self, factor: f64) {
            self.current = factor;
        }
    }

    #[test]
    fn compute_pressure_reaches_the_localizer_and_telemetry() {
        let mut world = World::new(oval_track(), WorldConfig::default());
        let tel = Telemetry::enabled();
        world.set_telemetry(tel.clone());
        world.set_fault_schedule(
            FaultSchedule::builder()
                .compute_pressure(5, 12, 0.5)
                .build()
                .unwrap(),
        );
        let mut probe = PressureProbe {
            inner: DeadReckoning::new(),
            factors: Vec::new(),
            current: 1.0,
        };
        let log = world.run_with_oracle_control(&mut probe, 0.6);
        assert!(!log.crashed);
        assert!(probe.factors.len() > 15);
        for (i, f) in probe.factors.iter().enumerate() {
            // The factor for step N is installed before step N's correct
            // call, so it gates exactly the corrections in the window.
            let expected = if (5..12).contains(&i) { 0.5 } else { 1.0 };
            assert_eq!(*f, expected, "factor at correction {i}");
        }
        let snap = tel.snapshot();
        assert_eq!(snap.counter("faults.compute_pressure.activations"), Some(1));
        assert_eq!(snap.counter("faults.compute_pressure.steps"), Some(7));
    }

    #[test]
    fn fault_runs_are_bitwise_identical_across_thread_counts() {
        let schedule = || {
            FaultSchedule::builder()
                .seed(7)
                .beam_dropout(2, 30, 0.4)
                .lidar_blackout(10, 13)
                .range_bias(15, 25, 0.2)
                .range_scale(15, 25, 1.04)
                .odom_slip(0, 20, 1.3)
                .latency(26, 34, 3)
                .pose_kidnap(30, 2.0)
                .build()
                .unwrap()
        };
        let run = |threads| log_key(&fault_log(Some(schedule()), threads, 1.0));
        let base = run(1);
        for threads in [2usize, 4] {
            assert_eq!(
                run(threads),
                base,
                "fault run diverged at threads={threads}"
            );
        }
    }
}
