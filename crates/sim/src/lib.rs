#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! An F1TENTH-style racing simulator: vehicle dynamics with grip-dependent
//! tire slip, slip-corrupted wheel odometry, a simulated 2-D LiDAR, a
//! pure-pursuit racing controller, and a closed-loop world scheduler.
//!
//! This crate is the substitute for the paper's physical testbed
//! (DESIGN.md §1): the phenomena under study — wheel odometry that lies when
//! tires slip — emerge from the dynamic single-track model in [`vehicle`]
//! rather than being injected as ad-hoc noise. Lowering
//! [`vehicle::VehicleParams::mu`] from ≈1.0 ("grippy", 26 N lateral pull in
//! the paper) to ≈0.73 ("slippery", 19 N taped tires) reproduces the paper's
//! high-quality → low-quality odometry knob.
//!
//! # Examples
//!
//! ```
//! use raceloc_map::{TrackShape, TrackSpec};
//! use raceloc_sim::{World, WorldConfig};
//! use raceloc_core::localizer::DeadReckoning;
//!
//! let track = TrackSpec::new(TrackShape::Oval { width: 12.0, height: 7.0 })
//!     .resolution(0.1)
//!     .build();
//! let mut world = World::new(track, WorldConfig::default());
//! let mut loc = DeadReckoning::new();
//! let log = world.run(&mut loc, 3.0); // three simulated seconds
//! assert!(!log.samples.is_empty());
//! ```

pub mod controller;
pub mod sensors;
pub mod vehicle;
pub mod world;

pub use controller::{PurePursuit, PurePursuitConfig, SpeedProfile};
pub use sensors::{Lidar, LidarSpec, WheelOdometer, WheelOdometerConfig};
pub use vehicle::{DriveCommand, Vehicle, VehicleParams, VehicleState};
pub use world::{LogSample, SimLog, World, WorldConfig};
