//! Simulated sensors: slip-blind wheel odometry and a 2-D LiDAR.

use crate::vehicle::{VehicleParams, VehicleState};
use raceloc_core::sensor_data::{ImuSample, LaserScan, Odometry};
use raceloc_core::{Pose2, Rng64, Twist2};
use raceloc_range::RangeMethod;

/// Noise configuration of the wheel odometer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WheelOdometerConfig {
    /// Multiplicative speed noise (σ as a fraction of speed).
    pub speed_noise_rel: f64,
    /// Additive speed noise σ \[m/s\].
    pub speed_noise_abs: f64,
    /// Steering angle measurement noise σ \[rad\].
    pub steer_noise: f64,
    /// Fuse the IMU gyro for the yaw rate instead of the Ackermann relation
    /// `ω = v·tanδ/L` (the F1TENTH convention: VESC speed + IMU yaw). The
    /// Ackermann yaw systematically over-rotates whenever the tires run at
    /// slip angles, so gyro fusion is the realistic default.
    pub use_imu_yaw: bool,
    /// IMU yaw-rate noise σ \[rad/s\] (used when `use_imu_yaw`).
    pub imu_yaw_noise: f64,
    /// IMU yaw-rate constant bias magnitude bound \[rad/s\].
    pub imu_yaw_bias: f64,
}

impl Default for WheelOdometerConfig {
    fn default() -> Self {
        Self {
            speed_noise_rel: 0.01,
            speed_noise_abs: 0.005,
            steer_noise: 0.004,
            use_imu_yaw: true,
            imu_yaw_noise: 0.012,
            imu_yaw_bias: 0.004,
        }
    }
}

/// Integrates encoder (+ gyro) readings into odometry, as the F1TENTH stack
/// does: speed comes from the *wheel*, yaw rate from the IMU gyro (default)
/// or from the Ackermann relation `ω = v·tan(δ)/L` when configured.
///
/// The wheel speed cannot see tire slip, so under wheelspin the integrated
/// pose over-counts distance, and side-slip (lateral `vy`) is invisible to
/// both inputs — this sensor is where "low-quality odometry" comes from.
///
/// # Examples
///
/// ```
/// use raceloc_sim::{WheelOdometer, WheelOdometerConfig, VehicleParams, VehicleState};
/// use raceloc_core::Rng64;
///
/// let mut odo = WheelOdometer::new(VehicleParams::f1tenth(), WheelOdometerConfig::default(), 7);
/// let mut state = VehicleState::default();
/// state.wheel_speed = 2.0;
/// state.vx = 2.0;
/// let sample = odo.sample(&state, 0.02, 0.02);
/// assert!(sample.pose.x > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct WheelOdometer {
    params: VehicleParams,
    config: WheelOdometerConfig,
    rng: Rng64,
    pose: Pose2,
    imu_bias: f64,
}

impl WheelOdometer {
    /// Creates an odometer at the odometry-frame origin.
    pub fn new(params: VehicleParams, config: WheelOdometerConfig, seed: u64) -> Self {
        let mut rng = Rng64::new(seed);
        let imu_bias = rng.uniform_range(-config.imu_yaw_bias, config.imu_yaw_bias.max(0.0));
        Self {
            params,
            config,
            rng,
            pose: Pose2::IDENTITY,
            imu_bias,
        }
    }

    /// Resets the integrated odometry pose to the origin.
    pub fn reset(&mut self) {
        self.pose = Pose2::IDENTITY;
    }

    /// Reads the encoders (and gyro, per the configuration), integrates for
    /// `dt`, and returns the sample.
    pub fn sample(&mut self, state: &VehicleState, dt: f64, stamp: f64) -> Odometry {
        let speed_sigma =
            self.config.speed_noise_abs + self.config.speed_noise_rel * state.wheel_speed.abs();
        let v = self.rng.gaussian_with(state.wheel_speed, speed_sigma);
        let omega = if self.config.use_imu_yaw {
            // Gyro yaw: sees the true rotation (plus bias/noise) even when
            // the tires slip.
            self.rng
                .gaussian_with(state.yaw_rate + self.imu_bias, self.config.imu_yaw_noise)
        } else {
            // Ackermann yaw from the steering servo: blind to slip angles.
            let steer = self.rng.gaussian_with(state.steer, self.config.steer_noise);
            v * steer.tan() / self.params.wheelbase()
        };
        let twist = Twist2::new(v, 0.0, omega);
        self.pose = self.pose * twist.integrate(dt);
        Odometry::new(self.pose, twist, stamp)
    }
}

/// IMU noise configuration and sampling.
#[derive(Debug, Clone)]
pub struct Imu {
    yaw_rate_noise: f64,
    yaw_rate_bias: f64,
    accel_noise: f64,
    rng: Rng64,
}

impl Imu {
    /// Creates an IMU with the given yaw-rate noise σ \[rad/s\] and a random
    /// constant bias drawn from ±`bias_range`.
    pub fn new(yaw_rate_noise: f64, bias_range: f64, seed: u64) -> Self {
        let mut rng = Rng64::new(seed);
        let yaw_rate_bias = rng.uniform_range(-bias_range, bias_range);
        Self {
            yaw_rate_noise,
            yaw_rate_bias,
            accel_noise: 0.05,
            rng,
        }
    }

    /// Samples the IMU for the given true state.
    pub fn sample(&mut self, state: &VehicleState, stamp: f64) -> ImuSample {
        ImuSample {
            yaw_rate: self
                .rng
                .gaussian_with(state.yaw_rate + self.yaw_rate_bias, self.yaw_rate_noise),
            accel_x: self.rng.gaussian_with(0.0, self.accel_noise),
            accel_y: self
                .rng
                .gaussian_with(state.vx * state.yaw_rate, self.accel_noise),
            stamp,
        }
    }
}

/// Geometry and noise of the simulated LiDAR (defaults follow the Hokuyo
/// UST-10LX used on F1TENTH cars: 270° field of view, 10 m range, 40 Hz).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LidarSpec {
    /// Number of beams per sweep.
    pub beams: usize,
    /// Total field of view \[rad\], centred on the sensor's +x axis.
    pub fov: f64,
    /// Maximum range \[m\].
    pub max_range: f64,
    /// Additive Gaussian range noise σ \[m\].
    pub range_noise: f64,
    /// Probability that a beam returns nothing. Dropped beams are tagged
    /// `f64::INFINITY` — an explicitly *invalid* return — so sensor models
    /// skip them instead of scoring a phantom obstacle at `max_range`.
    pub dropout: f64,
    /// Pose of the sensor in the vehicle body frame.
    pub mount: Pose2,
}

impl Default for LidarSpec {
    fn default() -> Self {
        Self {
            beams: 271,
            fov: 270.0f64.to_radians(),
            max_range: 10.0,
            range_noise: 0.01,
            dropout: 0.002,
            mount: Pose2::new(0.1, 0.0, 0.0),
        }
    }
}

/// The simulated LiDAR: casts one ray per beam against a [`RangeMethod`]
/// built over the ground-truth map.
#[derive(Debug, Clone)]
pub struct Lidar {
    spec: LidarSpec,
    rng: Rng64,
    /// Reusable query buffer for the batched sweep (DESIGN.md §11).
    queries: Vec<(f64, f64, f64)>,
    /// Reusable cast-result buffer for the batched sweep.
    cast: Vec<f64>,
}

impl Lidar {
    /// Creates a LiDAR with the given spec and noise seed.
    ///
    /// # Panics
    ///
    /// Panics when the spec has fewer than 2 beams or a non-positive FOV.
    pub fn new(spec: LidarSpec, seed: u64) -> Self {
        assert!(spec.beams >= 2, "lidar needs at least 2 beams");
        assert!(spec.fov > 0.0, "lidar fov must be positive");
        Self {
            spec,
            rng: Rng64::new(seed),
            queries: Vec::new(),
            cast: Vec::new(),
        }
    }

    /// The sensor spec.
    pub fn spec(&self) -> &LidarSpec {
        &self.spec
    }

    /// Produces one sweep from the vehicle's body pose.
    pub fn scan<M: RangeMethod + ?Sized>(
        &mut self,
        body_pose: Pose2,
        caster: &M,
        stamp: f64,
    ) -> LaserScan {
        self.scan_with_threads(body_pose, caster, 1, stamp)
    }

    /// Produces one sweep, batch-casting the beams on up to `threads`
    /// worker threads via [`RangeMethod::par_ranges_into`].
    ///
    /// Ray casting consumes no randomness and the noise draws replay the
    /// exact per-beam order of the serial sweep (dropout first, range noise
    /// only for in-envelope returns), so the scan is **bit-identical** to
    /// [`Lidar::scan`] for every `threads` value — the rule-R3 contract of
    /// DESIGN.md §11. With `threads <= 1` the sweep stays on the caller
    /// thread and skips casting dropped beams entirely.
    pub fn scan_with_threads<M: RangeMethod + ?Sized>(
        &mut self,
        body_pose: Pose2,
        caster: &M,
        threads: usize,
        stamp: f64,
    ) -> LaserScan {
        let sensor_pose = body_pose * self.spec.mount;
        let angle_min = -0.5 * self.spec.fov;
        let inc = self.spec.fov / (self.spec.beams - 1) as f64;
        let mut ranges = Vec::with_capacity(self.spec.beams);
        if threads > 1 {
            // Pre-cast every beam, dropped ones included: casting is a pure
            // function, so the extra casts cannot perturb the noise
            // sequence replayed below.
            self.queries.clear();
            self.queries.extend((0..self.spec.beams).map(|i| {
                (
                    sensor_pose.x,
                    sensor_pose.y,
                    sensor_pose.theta + angle_min + i as f64 * inc,
                )
            }));
            self.cast.clear();
            self.cast.resize(self.spec.beams, 0.0);
            caster.par_ranges_into(&self.queries, &mut self.cast, threads);
            for i in 0..self.spec.beams {
                let r = if self.rng.bernoulli(self.spec.dropout) {
                    f64::INFINITY
                } else {
                    self.in_range_return(self.cast[i])
                };
                ranges.push(r);
            }
        } else {
            for i in 0..self.spec.beams {
                let beam_angle = sensor_pose.theta + angle_min + i as f64 * inc;
                // Dropout is drawn before the (lazily skipped) cast.
                let r = if self.rng.bernoulli(self.spec.dropout) {
                    f64::INFINITY
                } else {
                    let true_r = caster.range(sensor_pose.x, sensor_pose.y, beam_angle);
                    self.in_range_return(true_r)
                };
                ranges.push(r);
            }
        }
        let mut scan = LaserScan::new(angle_min, inc, ranges, self.spec.max_range);
        scan.stamp = stamp;
        scan
    }

    /// Applies the in-envelope part of the beam noise model: saturating
    /// returns report `max_range` with no noise draw; everything else gets
    /// one Gaussian range-noise draw, clamped to the envelope.
    fn in_range_return(&mut self, true_r: f64) -> f64 {
        let true_r = true_r.min(self.spec.max_range);
        if true_r >= self.spec.max_range {
            self.spec.max_range
        } else {
            self.rng
                .gaussian_with(true_r, self.spec.range_noise)
                .clamp(0.0, self.spec.max_range)
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use raceloc_core::Point2;
    use raceloc_map::{CellState, OccupancyGrid};
    use raceloc_range::BresenhamCasting;

    fn room_caster() -> BresenhamCasting {
        let n = 100;
        let mut g = OccupancyGrid::new(n, n, 0.1, Point2::ORIGIN);
        g.fill(CellState::Free);
        for i in 0..n as i64 {
            g.set((i, 0).into(), CellState::Occupied);
            g.set((i, n as i64 - 1).into(), CellState::Occupied);
            g.set((0, i).into(), CellState::Occupied);
            g.set((n as i64 - 1, i).into(), CellState::Occupied);
        }
        BresenhamCasting::new(&g, 10.0)
    }

    #[test]
    fn odometer_tracks_straight_motion() {
        let mut odo = WheelOdometer::new(
            VehicleParams::f1tenth(),
            WheelOdometerConfig {
                speed_noise_rel: 0.0,
                speed_noise_abs: 0.0,
                steer_noise: 0.0,
                use_imu_yaw: false,
                imu_yaw_noise: 0.0,
                imu_yaw_bias: 0.0,
            },
            1,
        );
        let mut state = VehicleState::default();
        state.wheel_speed = 2.0;
        state.vx = 2.0;
        for i in 0..50 {
            odo.sample(&state, 0.02, i as f64 * 0.02);
        }
        let o = odo.sample(&state, 0.0, 1.0);
        assert!((o.pose.x - 2.0).abs() < 1e-9);
        assert!(o.pose.y.abs() < 1e-9);
    }

    #[test]
    fn odometer_is_blind_to_lateral_slip() {
        let mut odo = WheelOdometer::new(
            VehicleParams::f1tenth(),
            WheelOdometerConfig {
                speed_noise_rel: 0.0,
                speed_noise_abs: 0.0,
                steer_noise: 0.0,
                use_imu_yaw: false,
                imu_yaw_noise: 0.0,
                imu_yaw_bias: 0.0,
            },
            1,
        );
        // The car is drifting sideways: vy = 1 m/s, wheels straight.
        let mut state = VehicleState::default();
        state.wheel_speed = 2.0;
        state.vx = 2.0;
        state.vy = 1.0;
        for i in 0..50 {
            odo.sample(&state, 0.02, i as f64 * 0.02);
        }
        // Odometry saw only the longitudinal motion.
        let o = odo.sample(&state, 0.0, 1.0);
        assert!(o.pose.y.abs() < 1e-9, "odometry must not see side-slip");
    }

    #[test]
    fn odometer_overcounts_with_wheelspin() {
        let mut odo = WheelOdometer::new(
            VehicleParams::f1tenth(),
            WheelOdometerConfig {
                speed_noise_rel: 0.0,
                speed_noise_abs: 0.0,
                steer_noise: 0.0,
                use_imu_yaw: false,
                imu_yaw_noise: 0.0,
                imu_yaw_bias: 0.0,
            },
            1,
        );
        let mut state = VehicleState::default();
        state.wheel_speed = 3.0; // wheels spinning
        state.vx = 2.0; // chassis slower
        let mut o = Odometry::default();
        for i in 0..50 {
            o = odo.sample(&state, 0.02, i as f64 * 0.02);
        }
        assert!(
            o.pose.x > 2.5,
            "integrated {} should exceed true 2.0",
            o.pose.x
        );
    }

    #[test]
    fn odometer_yaw_follows_ackermann() {
        let params = VehicleParams::f1tenth();
        let mut odo = WheelOdometer::new(
            params,
            WheelOdometerConfig {
                speed_noise_rel: 0.0,
                speed_noise_abs: 0.0,
                steer_noise: 0.0,
                use_imu_yaw: false,
                imu_yaw_noise: 0.0,
                imu_yaw_bias: 0.0,
            },
            1,
        );
        let mut state = VehicleState::default();
        state.wheel_speed = 2.0;
        state.steer = 0.2;
        let o = odo.sample(&state, 0.02, 0.0);
        let expect = 2.0 * 0.2f64.tan() / params.wheelbase();
        assert!((o.twist.omega - expect).abs() < 1e-9);
    }

    #[test]
    fn odometer_noise_is_deterministic_in_seed() {
        let mk = || {
            let mut odo =
                WheelOdometer::new(VehicleParams::f1tenth(), WheelOdometerConfig::default(), 99);
            let mut state = VehicleState::default();
            state.wheel_speed = 3.0;
            (0..20)
                .map(|i| odo.sample(&state, 0.02, i as f64 * 0.02).pose.x)
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn lidar_scan_geometry() {
        let caster = room_caster();
        let mut lidar = Lidar::new(
            LidarSpec {
                beams: 5,
                fov: std::f64::consts::PI,
                max_range: 10.0,
                range_noise: 0.0,
                dropout: 0.0,
                mount: Pose2::IDENTITY,
            },
            3,
        );
        // Sensor at room center facing +x: middle beam hits the east wall.
        let scan = lidar.scan(Pose2::new(5.0, 5.0, 0.0), &caster, 0.0);
        assert_eq!(scan.len(), 5);
        assert!((scan.ranges[2] - 4.85).abs() < 0.15, "{}", scan.ranges[2]);
        // Extreme beams point ±90°: distances to the side walls.
        assert!((scan.ranges[0] - 4.95).abs() < 0.15);
        assert!((scan.ranges[4] - 4.85).abs() < 0.15);
    }

    #[test]
    fn lidar_mount_offset_is_applied() {
        let caster = room_caster();
        let spec = LidarSpec {
            beams: 3,
            fov: 0.2,
            max_range: 10.0,
            range_noise: 0.0,
            dropout: 0.0,
            mount: Pose2::new(1.0, 0.0, 0.0),
        };
        let mut lidar = Lidar::new(spec, 3);
        let scan = lidar.scan(Pose2::new(5.0, 5.0, 0.0), &caster, 0.0);
        // Sensor sits 1 m ahead of the body, so the wall is 1 m closer.
        assert!((scan.ranges[1] - 3.85).abs() < 0.15, "{}", scan.ranges[1]);
    }

    #[test]
    fn lidar_dropout_tags_beams_invalid() {
        let caster = room_caster();
        let mut lidar = Lidar::new(
            LidarSpec {
                beams: 200,
                fov: 2.0,
                max_range: 10.0,
                range_noise: 0.0,
                dropout: 1.0,
                mount: Pose2::IDENTITY,
            },
            3,
        );
        let scan = lidar.scan(Pose2::new(5.0, 5.0, 0.0), &caster, 0.0);
        // Dropped beams are invalid, not a phantom wall at max_range.
        assert!(scan.ranges.iter().all(|&r| r.is_infinite()));
        assert_eq!(scan.valid_returns().count(), 0);
    }

    #[test]
    fn lidar_noise_bounded_and_deterministic() {
        let caster = room_caster();
        let spec = LidarSpec {
            range_noise: 0.05,
            dropout: 0.0,
            ..LidarSpec::default()
        };
        let mut a = Lidar::new(spec, 11);
        let mut b = Lidar::new(spec, 11);
        let pa = Pose2::new(5.0, 5.0, 0.7);
        let sa = a.scan(pa, &caster, 0.0);
        let sb = b.scan(pa, &caster, 0.0);
        assert_eq!(sa, sb);
        for &r in &sa.ranges {
            assert!((0.0..=10.0).contains(&r));
        }
    }

    #[test]
    fn batched_sweep_matches_serial_bitwise() {
        let caster = room_caster();
        // High dropout so the replayed draw order (dropout before the
        // conditional noise draw) is actually exercised.
        let spec = LidarSpec {
            range_noise: 0.05,
            dropout: 0.2,
            ..LidarSpec::default()
        };
        let mut serial = Lidar::new(spec, 7);
        for threads in [2usize, 4, 8] {
            let mut batched = Lidar::new(spec, 7);
            let mut serial = Lidar::new(spec, 7);
            for step in 0..5 {
                let pose = Pose2::new(5.0 + 0.1 * step as f64, 5.0, 0.3 * step as f64);
                let sa = serial.scan(pose, &caster, step as f64);
                let sb = batched.scan_with_threads(pose, &caster, threads, step as f64);
                assert_eq!(sa, sb, "threads={threads} step={step}");
            }
        }
        // The serial entry point is itself the threads=1 batched path.
        let mut one = Lidar::new(spec, 7);
        let pose = Pose2::new(5.0, 5.0, 0.7);
        assert_eq!(
            serial.scan(pose, &caster, 0.0),
            one.scan_with_threads(pose, &caster, 1, 0.0)
        );
    }

    #[test]
    #[should_panic(expected = "at least 2 beams")]
    fn one_beam_lidar_panics() {
        Lidar::new(
            LidarSpec {
                beams: 1,
                ..LidarSpec::default()
            },
            0,
        );
    }

    #[test]
    fn imu_bias_is_constant_and_seeded() {
        let mut a = Imu::new(0.0, 0.05, 5);
        let mut b = Imu::new(0.0, 0.05, 5);
        let state = VehicleState::default();
        let s1 = a.sample(&state, 0.0);
        let s2 = a.sample(&state, 0.1);
        assert_eq!(s1.yaw_rate, s2.yaw_rate); // zero noise → bias only
        assert_eq!(s1.yaw_rate, b.sample(&state, 0.0).yaw_rate);
        assert!(s1.yaw_rate.abs() <= 0.05);
    }
}
