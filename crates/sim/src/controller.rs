//! The racing controller: curvature-limited speed profile + pure pursuit.
//!
//! The controller closes the loop through the *localizer's* pose estimate,
//! so localization error shows up directly as lateral deviation from the
//! raceline and as lost lap time — the causal chain behind Table I of the
//! paper.

use crate::vehicle::{DriveCommand, VehicleParams};
use raceloc_core::{Point2, Pose2};
use raceloc_map::ClosedPath;

/// A precomputed speed target along a closed path.
///
/// Built in three passes: (1) curvature limit `v ≤ √(a_lat/|κ|)`,
/// (2) backward sweep enforcing the braking limit, (3) forward sweep
/// enforcing the acceleration limit. Sweeps run twice around the loop so the
/// wrap point imposes no artificial discontinuity.
///
/// # Examples
///
/// ```
/// use raceloc_map::{TrackShape, TrackSpec};
/// use raceloc_sim::SpeedProfile;
///
/// let track = TrackSpec::new(TrackShape::Oval { width: 12.0, height: 7.0 })
///     .resolution(0.1)
///     .build();
/// let profile = SpeedProfile::new(&track.raceline, 6.5, 4.0, 6.0, 7.6);
/// assert!(profile.max_speed() <= 7.6);
/// assert!(profile.min_speed() > 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedProfile {
    ds: f64,
    total_length: f64,
    speeds: Vec<f64>,
}

impl SpeedProfile {
    /// Computes the profile for a path.
    ///
    /// * `a_lat_max` — lateral acceleration budget \[m/s²\]. The paper runs
    ///   the *same* speed scaling on both grip levels; pick this at or below
    ///   the slippery-tire limit (≈0.73·g ≈ 7.2) to mimic that protocol.
    /// * `a_accel` / `a_brake` — longitudinal limits \[m/s²\].
    /// * `v_max` — top speed \[m/s\] (the paper tests up to 7.6 m/s).
    ///
    /// # Panics
    ///
    /// Panics when any limit is not positive.
    pub fn new(path: &ClosedPath, a_lat_max: f64, a_accel: f64, a_brake: f64, v_max: f64) -> Self {
        assert!(
            a_lat_max > 0.0 && a_accel > 0.0 && a_brake > 0.0 && v_max > 0.0,
            "speed profile limits must be positive"
        );
        let ds = 0.1;
        let total = path.total_length();
        let n = ((total / ds).ceil() as usize).max(8);
        let ds = total / n as f64;
        // Pass 1: curvature limit.
        let mut v: Vec<f64> = (0..n)
            .map(|i| {
                let s = i as f64 * ds;
                let k = path.curvature_at(s, ds.max(0.3)).abs();
                if k < 1e-6 {
                    v_max
                } else {
                    (a_lat_max / k).sqrt().min(v_max)
                }
            })
            .collect();
        // Pass 2: backward braking sweep (twice around for the wrap).
        for idx in (0..2 * n).rev() {
            let i = idx % n;
            let j = (i + 1) % n;
            let limit = (v[j] * v[j] + 2.0 * a_brake * ds).sqrt();
            v[i] = v[i].min(limit);
        }
        // Pass 3: forward acceleration sweep (twice around).
        for idx in 0..2 * n {
            let i = idx % n;
            let p = (i + n - 1) % n;
            let limit = (v[p] * v[p] + 2.0 * a_accel * ds).sqrt();
            v[i] = v[i].min(limit);
        }
        Self {
            ds,
            total_length: total,
            speeds: v,
        }
    }

    /// Speed target at arc-length `s` (wrapped), linearly interpolated.
    pub fn speed_at(&self, s: f64) -> f64 {
        let n = self.speeds.len();
        let mut s = s % self.total_length;
        if s < 0.0 {
            s += self.total_length;
        }
        let f = s / self.ds;
        let i = (f.floor() as usize) % n;
        let t = f - f.floor();
        self.speeds[i] * (1.0 - t) + self.speeds[(i + 1) % n] * t
    }

    /// The fastest point of the profile.
    pub fn max_speed(&self) -> f64 {
        self.speeds.iter().copied().fold(0.0, f64::max)
    }

    /// The slowest point of the profile.
    pub fn min_speed(&self) -> f64 {
        self.speeds.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// Pure-pursuit configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PurePursuitConfig {
    /// Lookahead distance per m/s of speed \[s\].
    pub lookahead_gain: f64,
    /// Lower clamp on the lookahead \[m\].
    pub min_lookahead: f64,
    /// Upper clamp on the lookahead \[m\].
    pub max_lookahead: f64,
    /// Global multiplier on the speed profile (the paper's "speed scaling").
    pub speed_scale: f64,
}

impl Default for PurePursuitConfig {
    fn default() -> Self {
        Self {
            lookahead_gain: 0.27,
            min_lookahead: 0.65,
            max_lookahead: 1.7,
            speed_scale: 1.0,
        }
    }
}

/// A pure-pursuit path tracker over a raceline with a speed profile.
#[derive(Debug, Clone, PartialEq)]
pub struct PurePursuit {
    path: ClosedPath,
    profile: SpeedProfile,
    config: PurePursuitConfig,
    wheelbase: f64,
    max_steer: f64,
}

impl PurePursuit {
    /// Creates a tracker for the given raceline.
    pub fn new(
        path: ClosedPath,
        profile: SpeedProfile,
        config: PurePursuitConfig,
        params: &VehicleParams,
    ) -> Self {
        Self {
            path,
            profile,
            config,
            wheelbase: params.wheelbase(),
            max_steer: params.max_steer,
        }
    }

    /// The tracked path.
    pub fn path(&self) -> &ClosedPath {
        &self.path
    }

    /// The configuration.
    pub fn config(&self) -> &PurePursuitConfig {
        &self.config
    }

    /// Computes the drive command from the (estimated) pose and speed.
    pub fn control(&self, pose: Pose2, speed: f64) -> DriveCommand {
        let (s_proj, _) = self.path.project(pose.translation());
        let lookahead = (self.config.lookahead_gain * speed)
            .clamp(self.config.min_lookahead, self.config.max_lookahead);
        let target: Point2 = self.path.point_at(s_proj + lookahead);
        // Target in the vehicle frame.
        let local = pose.inverse_transform(target);
        let ld_sq = local.norm_sq().max(1e-6);
        // Pure-pursuit curvature and the Ackermann steering angle for it.
        let curvature = 2.0 * local.y / ld_sq;
        let steer = (self.wheelbase * curvature)
            .atan()
            .clamp(-self.max_steer, self.max_steer);
        // Speed target slightly previewed so braking starts before corners.
        let target_speed =
            self.config.speed_scale * self.profile.speed_at(s_proj + 0.5 * lookahead);
        DriveCommand::new(target_speed, steer)
    }

    /// Arc-length progress of a pose along the tracked path.
    pub fn progress(&self, pose: Pose2) -> f64 {
        self.path.project(pose.translation()).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raceloc_map::{TrackShape, TrackSpec};

    fn oval() -> raceloc_map::Track {
        TrackSpec::new(TrackShape::Oval {
            width: 12.0,
            height: 7.0,
        })
        .resolution(0.1)
        .build()
    }

    fn profile(path: &ClosedPath) -> SpeedProfile {
        SpeedProfile::new(path, 6.5, 4.0, 6.0, 7.6)
    }

    #[test]
    fn profile_respects_vmax() {
        let t = oval();
        let p = profile(&t.raceline);
        assert!(p.max_speed() <= 7.6 + 1e-9);
    }

    #[test]
    fn profile_slows_in_corners() {
        let t = oval();
        let p = profile(&t.raceline);
        // An oval has tight ends and flatter sides: min < max.
        assert!(p.min_speed() < p.max_speed());
        // Corner speed obeys v² κ ≤ a_lat (with sampling slack).
        let path = &t.raceline;
        for i in 0..100 {
            let s = i as f64 / 100.0 * path.total_length();
            let k = path.curvature_at(s, 0.4).abs();
            let v = p.speed_at(s);
            assert!(v * v * k <= 6.5 * 1.35, "s={s} v={v} k={k}");
        }
    }

    #[test]
    fn profile_braking_limit_holds() {
        let t = oval();
        let p = profile(&t.raceline);
        let n = p.speeds.len();
        for i in 0..n {
            let v0 = p.speeds[i];
            let v1 = p.speeds[(i + 1) % n];
            // Deceleration between samples bounded by a_brake.
            if v1 < v0 {
                let dec = (v0 * v0 - v1 * v1) / (2.0 * p.ds);
                assert!(dec <= 6.0 + 1e-6, "i={i} dec={dec}");
            }
        }
    }

    #[test]
    fn profile_wraps_continuously() {
        let t = oval();
        let p = profile(&t.raceline);
        let end = p.speed_at(t.raceline.total_length() - 0.01);
        let start = p.speed_at(0.01);
        assert!((end - start).abs() < 0.5, "{end} vs {start}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn profile_rejects_bad_limits() {
        let t = oval();
        SpeedProfile::new(&t.raceline, 0.0, 1.0, 1.0, 1.0);
    }

    #[test]
    fn control_steers_toward_path() {
        let t = oval();
        let params = VehicleParams::f1tenth();
        let pp = PurePursuit::new(
            t.raceline.clone(),
            profile(&t.raceline),
            PurePursuitConfig::default(),
            &params,
        );
        // Place the car left of the raceline on a flat section (top of the
        // oval), facing along it: pure pursuit must steer right (negative).
        let s = 0.25 * t.raceline.total_length();
        let on_path = t.raceline.point_at(s);
        let heading = t.raceline.heading_at(s);
        let left = Pose2::new(
            on_path.x - 0.5 * heading.sin(),
            on_path.y + 0.5 * heading.cos(),
            heading,
        );
        let cmd = pp.control(left, 3.0);
        let straight = pp.control(Pose2::from_point(on_path, heading), 3.0);
        assert!(
            cmd.steer < straight.steer - 0.02,
            "steer={} straight={}",
            cmd.steer,
            straight.steer
        );
        // Mirror: right of the line → steer left of the on-path command.
        let right = Pose2::new(
            on_path.x + 0.5 * heading.sin(),
            on_path.y - 0.5 * heading.cos(),
            heading,
        );
        assert!(pp.control(right, 3.0).steer > straight.steer + 0.02);
    }

    #[test]
    fn control_on_path_steers_gently() {
        let t = oval();
        let params = VehicleParams::f1tenth();
        let pp = PurePursuit::new(
            t.raceline.clone(),
            profile(&t.raceline),
            PurePursuitConfig::default(),
            &params,
        );
        let s = 1.0;
        let pose = Pose2::from_point(t.raceline.point_at(s), t.raceline.heading_at(s));
        let cmd = pp.control(pose, 3.0);
        assert!(cmd.steer.abs() < 0.25, "steer={}", cmd.steer);
        assert!(cmd.target_speed > 1.0);
    }

    #[test]
    fn speed_scale_scales_command() {
        let t = oval();
        let params = VehicleParams::f1tenth();
        let mk = |scale| {
            PurePursuit::new(
                t.raceline.clone(),
                profile(&t.raceline),
                PurePursuitConfig {
                    speed_scale: scale,
                    ..PurePursuitConfig::default()
                },
                &params,
            )
        };
        let pose = Pose2::from_point(t.raceline.point_at(0.0), t.raceline.heading_at(0.0));
        let full = mk(1.0).control(pose, 3.0).target_speed;
        let half = mk(0.5).control(pose, 3.0).target_speed;
        assert!((half - 0.5 * full).abs() < 1e-9);
    }

    #[test]
    fn steer_respects_actuator_limit() {
        let t = oval();
        let params = VehicleParams::f1tenth();
        let pp = PurePursuit::new(
            t.raceline.clone(),
            profile(&t.raceline),
            PurePursuitConfig::default(),
            &params,
        );
        // Face away from the path: command must still be within limits.
        let cmd = pp.control(Pose2::new(0.0, 0.0, 2.5), 1.0);
        assert!(cmd.steer.abs() <= params.max_steer);
    }
}
