//! Dynamic single-track ("bicycle") vehicle model with saturating tires.
//!
//! The model is deliberately rich enough to *produce* the effect the paper
//! studies instead of faking it:
//!
//! - **Lateral**: front/rear slip angles generate lateral tire forces with a
//!   smooth saturation at `μ·Fz`. Past the limit the car slides — body-frame
//!   lateral velocity `vy` grows — and wheel odometry (which assumes no
//!   side-slip) becomes wrong.
//! - **Longitudinal**: the drivetrain spins the *wheels* toward the
//!   commanded speed; the chassis is dragged along through a slip-dependent
//!   traction force capped by the friction circle. Under low grip and hard
//!   acceleration the wheels overrun the ground speed (wheelspin) and
//!   encoder-based odometry over-counts distance.
//!
//! Parameters default to the common F1TENTH identification (≈3.5 kg,
//! 0.325 m wheelbase).

use raceloc_core::{angle, Pose2, Twist2};

/// Physical parameters of the single-track model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VehicleParams {
    /// Vehicle mass \[kg\].
    pub mass: f64,
    /// Yaw moment of inertia \[kg·m²\].
    pub inertia_z: f64,
    /// Distance from center of gravity to front axle \[m\].
    pub lf: f64,
    /// Distance from center of gravity to rear axle \[m\].
    pub lr: f64,
    /// Normalized cornering stiffness, front \[1/rad\] (force = `cs·Fz·α`).
    pub cs_front: f64,
    /// Normalized cornering stiffness, rear \[1/rad\].
    pub cs_rear: f64,
    /// Tire–ground friction coefficient. ≈1.0 is the paper's grippy
    /// surface (26 N lateral pull); ≈0.73 the taped "slippery" tires (19 N).
    pub mu: f64,
    /// Longitudinal slip stiffness \[N per m/s of slip speed\].
    pub k_long: f64,
    /// Maximum steering angle \[rad\].
    pub max_steer: f64,
    /// Steering rate limit \[rad/s\].
    pub max_steer_rate: f64,
    /// Drivetrain wheel acceleration limit \[m/s²\] (how fast the motor can
    /// spin the wheels up — intentionally above the traction limit so that
    /// wheelspin is possible).
    pub max_wheel_accel: f64,
    /// Drivetrain slip ceiling \[m/s\]: the ESC's current limiting caps how
    /// far the wheel surface speed can run away from the chassis speed.
    /// Wheelspin up to this bound corrupts odometry; beyond it the motor
    /// cannot sustain the slip.
    pub max_drive_slip: f64,
    /// Top speed \[m/s\].
    pub max_speed: f64,
}

impl VehicleParams {
    /// F1TENTH-scale defaults on the paper's grippy surface.
    pub fn f1tenth() -> Self {
        Self {
            mass: 3.47,
            inertia_z: 0.048,
            lf: 0.158,
            lr: 0.172,
            cs_front: 6.2,
            cs_rear: 8.0,
            mu: 1.0,
            k_long: 90.0,
            max_steer: 0.41,
            max_steer_rate: 3.2,
            max_wheel_accel: 8.0,
            max_drive_slip: 0.7,
            max_speed: 8.0,
        }
    }

    /// The same car with "taped tires": friction scaled by the paper's
    /// measured 19 N / 26 N pull-force ratio.
    pub fn f1tenth_slippery() -> Self {
        Self {
            mu: 19.0 / 26.0,
            ..Self::f1tenth()
        }
    }

    /// Wheelbase `lf + lr` \[m\].
    #[inline]
    pub fn wheelbase(&self) -> f64 {
        self.lf + self.lr
    }
}

impl Default for VehicleParams {
    fn default() -> Self {
        Self::f1tenth()
    }
}

/// The full dynamic state of the vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VehicleState {
    /// Pose of the center of gravity in the world frame.
    pub pose: Pose2,
    /// Longitudinal body velocity \[m/s\].
    pub vx: f64,
    /// Lateral body velocity \[m/s\] (non-zero means the car is sliding).
    pub vy: f64,
    /// Yaw rate \[rad/s\].
    pub yaw_rate: f64,
    /// Actual steering angle after rate limiting \[rad\].
    pub steer: f64,
    /// Linear speed of the driven wheels \[m/s\] — what an encoder measures.
    pub wheel_speed: f64,
}

impl VehicleState {
    /// A state at rest at the given pose.
    pub fn at_pose(pose: Pose2) -> Self {
        Self {
            pose,
            ..Self::default()
        }
    }

    /// Ground speed of the center of gravity \[m/s\].
    #[inline]
    pub fn speed(&self) -> f64 {
        self.vx.hypot(self.vy)
    }

    /// The body-frame velocity as a twist.
    #[inline]
    pub fn twist(&self) -> Twist2 {
        Twist2::new(self.vx, self.vy, self.yaw_rate)
    }

    /// Side-slip angle β = atan2(vy, vx) \[rad\]; a proxy for "the car is
    /// drifting" used by tests and diagnostics.
    #[inline]
    pub fn side_slip(&self) -> f64 {
        if self.speed() < 1e-6 {
            0.0
        } else {
            self.vy.atan2(self.vx)
        }
    }

    /// Longitudinal wheel slip speed `wheel_speed − vx` \[m/s\]; positive
    /// under wheelspin, negative when the wheels lock under braking.
    #[inline]
    pub fn wheel_slip(&self) -> f64 {
        self.wheel_speed - self.vx
    }
}

/// A drive command: target speed plus steering angle (the F1TENTH
/// `AckermannDrive` convention).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DriveCommand {
    /// Target wheel speed \[m/s\].
    pub target_speed: f64,
    /// Desired steering angle \[rad\].
    pub steer: f64,
}

impl DriveCommand {
    /// Creates a command.
    pub fn new(target_speed: f64, steer: f64) -> Self {
        Self {
            target_speed,
            steer,
        }
    }
}

const GRAVITY: f64 = 9.81;
/// Below this speed the dynamic model is ill-conditioned (slip angles blow
/// up); a kinematic bicycle takes over and blends back in above it.
const KINEMATIC_BLEND_SPEED: f64 = 0.8;

/// The vehicle: parameters plus the integration routine.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vehicle {
    params: VehicleParams,
}

impl Vehicle {
    /// Creates a vehicle with the given parameters.
    pub fn new(params: VehicleParams) -> Self {
        Self { params }
    }

    /// The vehicle parameters.
    pub fn params(&self) -> &VehicleParams {
        &self.params
    }

    /// Mutable access to the parameters (e.g. to change `mu` mid-test).
    pub fn params_mut(&mut self) -> &mut VehicleParams {
        &mut self.params
    }

    /// Advances the state by `dt` seconds under the given command,
    /// integrating with semi-implicit Euler at the caller's step (intended
    /// ≤ 2 ms).
    // analyze:steady-state
    pub fn step(&self, state: &VehicleState, cmd: &DriveCommand, dt: f64) -> VehicleState {
        let p = &self.params;
        let mut s = *state;

        // Steering actuator: rate limited toward the commanded angle.
        let steer_target = cmd.steer.clamp(-p.max_steer, p.max_steer);
        let steer_err = steer_target - s.steer;
        let max_dsteer = p.max_steer_rate * dt;
        s.steer += steer_err.clamp(-max_dsteer, max_dsteer);

        // Drivetrain: wheel speed chases the target, limited by motor accel.
        let target = cmd.target_speed.clamp(0.0, p.max_speed);
        let wheel_err = target - s.wheel_speed;
        let max_dwheel = p.max_wheel_accel * dt;
        s.wheel_speed += wheel_err.clamp(-1.6 * max_dwheel, max_dwheel);
        // ESC slip ceiling: the motor cannot sustain a wheel surface speed
        // running away arbitrarily from the chassis.
        s.wheel_speed = s.wheel_speed.clamp(
            (s.vx - 1.5 * p.max_drive_slip).max(0.0),
            s.vx + p.max_drive_slip,
        );

        // Axle loads (static distribution).
        let fz_front = p.mass * GRAVITY * p.lr / p.wheelbase();
        let fz_rear = p.mass * GRAVITY * p.lf / p.wheelbase();

        // Longitudinal traction at the rear axle from wheel slip.
        let slip = s.wheel_speed - s.vx;
        let fx_raw = p.k_long * slip;

        // Lateral forces from slip angles, smoothly saturating at μ·Fz.
        let vx_safe = s.vx.max(KINEMATIC_BLEND_SPEED);
        let alpha_f = s.steer - (s.vy + p.lf * s.yaw_rate).atan2(vx_safe);
        let alpha_r = -(s.vy - p.lr * s.yaw_rate).atan2(vx_safe);
        let fy_cap_f = p.mu * fz_front;
        let fy_front = fy_cap_f * (p.cs_front * fz_front * alpha_f / fy_cap_f.max(1e-9)).tanh();
        // Friction ellipse at the rear: longitudinal force consumes lateral
        // capacity, but real tires retain substantial cornering grip at
        // partial longitudinal slip — weight the coupling accordingly.
        let fx_cap = p.mu * fz_rear;
        let fx = fx_raw.clamp(-fx_cap, fx_cap);
        let coupled = 0.6 * fx;
        let fy_cap_r = (fx_cap * fx_cap - coupled * coupled)
            .max(0.0)
            .sqrt()
            .max(0.25 * fx_cap);
        let fy_rear = fy_cap_r * (p.cs_rear * fz_rear * alpha_r / fy_cap_r).tanh();

        // Rigid-body dynamics in the body frame.
        let ax = (fx - fy_front * s.steer.sin()) / p.mass + s.vy * s.yaw_rate;
        let ay = (fy_rear + fy_front * s.steer.cos()) / p.mass - s.vx * s.yaw_rate;
        let yaw_acc = (p.lf * fy_front * s.steer.cos() - p.lr * fy_rear) / p.inertia_z;

        let dyn_weight = ((s.vx - KINEMATIC_BLEND_SPEED) / KINEMATIC_BLEND_SPEED).clamp(0.0, 1.0);

        // Dynamic update.
        let mut vx_dyn = s.vx + ax * dt;
        let mut vy_dyn = s.vy + ay * dt;
        let mut wz_dyn = s.yaw_rate + yaw_acc * dt;

        // Kinematic bicycle (no slip) for the low-speed regime.
        let vx_kin = s.vx + (fx / p.mass) * dt;
        let wz_kin = vx_kin * s.steer.tan() / p.wheelbase();
        let vy_kin = wz_kin * p.lr;

        vx_dyn = dyn_weight * vx_dyn + (1.0 - dyn_weight) * vx_kin;
        vy_dyn = dyn_weight * vy_dyn + (1.0 - dyn_weight) * vy_kin;
        wz_dyn = dyn_weight * wz_dyn + (1.0 - dyn_weight) * wz_kin;

        // No reversing in a race: clamp chassis speed at zero.
        if vx_dyn < 0.0 {
            vx_dyn = 0.0;
        }

        s.vx = vx_dyn;
        s.vy = vy_dyn;
        s.yaw_rate = wz_dyn;

        // Integrate the pose with the (new) body velocity — semi-implicit.
        let delta = Twist2::new(s.vx, s.vy, s.yaw_rate).integrate(dt);
        s.pose = s.pose * delta;
        s.pose = Pose2::new(s.pose.x, s.pose.y, angle::normalize(s.pose.theta));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(
        vehicle: &Vehicle,
        mut state: VehicleState,
        cmd: DriveCommand,
        seconds: f64,
    ) -> VehicleState {
        let dt = 0.002;
        let steps = (seconds / dt) as usize;
        for _ in 0..steps {
            state = vehicle.step(&state, &cmd, dt);
        }
        state
    }

    #[test]
    fn accelerates_to_target_speed_on_grip() {
        let v = Vehicle::new(VehicleParams::f1tenth());
        let s = drive(
            &v,
            VehicleState::default(),
            DriveCommand::new(3.0, 0.0),
            4.0,
        );
        assert!((s.vx - 3.0).abs() < 0.1, "vx={}", s.vx);
        assert!(s.vy.abs() < 0.05);
    }

    #[test]
    fn straight_line_goes_straight() {
        let v = Vehicle::new(VehicleParams::f1tenth());
        let s = drive(
            &v,
            VehicleState::default(),
            DriveCommand::new(4.0, 0.0),
            3.0,
        );
        assert!(s.pose.y.abs() < 0.01);
        assert!(s.pose.theta.abs() < 0.01);
        assert!(s.pose.x > 5.0);
    }

    #[test]
    fn steady_state_cornering_radius() {
        let v = Vehicle::new(VehicleParams::f1tenth());
        let mut s = VehicleState::default();
        let cmd = DriveCommand::new(2.0, 0.2);
        s = drive(&v, s, cmd, 6.0);
        // Kinematic radius R = L / tan(δ) ≈ 1.63 m; at 2 m/s the dynamic
        // radius is close. ω ≈ v / R.
        let r = s.vx / s.yaw_rate.abs().max(1e-9);
        let r_kin = v.params().wheelbase() / 0.2f64.tan();
        assert!((r - r_kin).abs() / r_kin < 0.25, "r={r} r_kin={r_kin}");
    }

    #[test]
    fn turning_left_increases_heading() {
        let v = Vehicle::new(VehicleParams::f1tenth());
        let s = drive(
            &v,
            VehicleState::default(),
            DriveCommand::new(2.0, 0.3),
            1.5,
        );
        assert!(s.yaw_rate > 0.0);
        assert!(s.pose.theta > 0.2);
    }

    #[test]
    fn low_grip_produces_wheelspin_on_launch() {
        let grippy = Vehicle::new(VehicleParams::f1tenth());
        let slippery = Vehicle::new(VehicleParams::f1tenth_slippery());
        let cmd = DriveCommand::new(6.0, 0.0);
        let dt = 0.002;
        let mut sg = VehicleState::default();
        let mut ss = VehicleState::default();
        // Integrated slip distance = how much the encoders over-count.
        let mut slip_dist_g = 0.0f64;
        let mut slip_dist_s = 0.0f64;
        for _ in 0..1000 {
            sg = grippy.step(&sg, &cmd, dt);
            ss = slippery.step(&ss, &cmd, dt);
            slip_dist_g += sg.wheel_slip().max(0.0) * dt;
            slip_dist_s += ss.wheel_slip().max(0.0) * dt;
        }
        // Slippery tires spin longer (both may touch the ESC slip ceiling,
        // but low grip keeps the wheels spinning for more of the launch).
        assert!(
            slip_dist_s > slip_dist_g * 1.2,
            "slippery {slip_dist_s} vs grippy {slip_dist_g}"
        );
        // And the chassis accelerates more slowly.
        assert!(ss.vx < sg.vx);
    }

    #[test]
    fn low_grip_slides_more_in_corners() {
        // A corner demanding ~8.5 m/s² lateral: between the slippery limit
        // (≈7.2) and the grippy limit (≈9.8), so only the slippery car
        // saturates and slides.
        let grippy = Vehicle::new(VehicleParams::f1tenth());
        let slippery = Vehicle::new(VehicleParams::f1tenth_slippery());
        let enter = |v: &Vehicle| {
            let mut s = drive(v, VehicleState::default(), DriveCommand::new(4.3, 0.0), 4.0);
            let cmd = DriveCommand::new(4.3, 0.15);
            let dt = 0.002;
            let mut max_vy = 0.0f64;
            for _ in 0..1500 {
                s = v.step(&s, &cmd, dt);
                max_vy = max_vy.max(s.vy.abs());
            }
            max_vy
        };
        let vy_g = enter(&grippy);
        let vy_s = enter(&slippery);
        assert!(vy_s > vy_g * 1.1, "slippery {vy_s} vs grippy {vy_g}");
    }

    #[test]
    fn lateral_acceleration_is_grip_limited() {
        let v = Vehicle::new(VehicleParams::f1tenth());
        // Full-lock fast corner: steady-state lateral accel ≤ μ·g (+ small
        // numerical margin).
        let mut s = drive(
            &v,
            VehicleState::default(),
            DriveCommand::new(6.0, 0.0),
            4.0,
        );
        let cmd = DriveCommand::new(6.0, 0.4);
        let dt = 0.002;
        // Let the transient settle, then average the centripetal
        // acceleration ω·|v| over one second of steady cornering.
        for _ in 0..3000 {
            s = v.step(&s, &cmd, dt);
        }
        let mut acc = 0.0;
        let n = 500;
        for _ in 0..n {
            s = v.step(&s, &cmd, dt);
            acc += (s.speed() * s.yaw_rate).abs();
        }
        let a_lat = acc / n as f64;
        assert!(
            a_lat <= v.params().mu * GRAVITY * 1.2,
            "a_lat={a_lat} exceeds grip limit"
        );
    }

    #[test]
    fn steering_is_rate_limited() {
        let v = Vehicle::new(VehicleParams::f1tenth());
        let s0 = VehicleState::default();
        let s1 = v.step(&s0, &DriveCommand::new(0.0, 0.4), 0.01);
        assert!(s1.steer <= v.params().max_steer_rate * 0.01 + 1e-12);
    }

    #[test]
    fn steering_is_angle_limited() {
        let v = Vehicle::new(VehicleParams::f1tenth());
        let s = drive(
            &v,
            VehicleState::default(),
            DriveCommand::new(1.0, 2.0),
            2.0,
        );
        assert!(s.steer <= v.params().max_steer + 1e-12);
    }

    #[test]
    fn braking_slows_the_car() {
        let v = Vehicle::new(VehicleParams::f1tenth());
        let s = drive(
            &v,
            VehicleState::default(),
            DriveCommand::new(5.0, 0.0),
            4.0,
        );
        let s2 = drive(&v, s, DriveCommand::new(0.0, 0.0), 3.0);
        assert!(s2.vx < 0.2, "vx={}", s2.vx);
        assert!(s2.vx >= 0.0);
    }

    #[test]
    fn no_reverse_from_rest() {
        let v = Vehicle::new(VehicleParams::f1tenth());
        let s = drive(
            &v,
            VehicleState::default(),
            DriveCommand::new(0.0, 0.0),
            1.0,
        );
        assert_eq!(s.vx, 0.0);
        assert!(s.pose.x.abs() < 1e-9);
    }

    #[test]
    fn heading_stays_normalized_during_long_run() {
        let v = Vehicle::new(VehicleParams::f1tenth());
        let mut s = VehicleState::default();
        let cmd = DriveCommand::new(3.0, 0.3);
        for _ in 0..20_000 {
            s = v.step(&s, &cmd, 0.002);
        }
        assert!(s.pose.theta.abs() <= std::f64::consts::PI + 1e-9);
        assert!(s.pose.is_finite());
    }

    #[test]
    fn wheel_odometry_overcounts_under_wheelspin() {
        // Integrated wheel distance exceeds true distance when grip is low.
        let v = Vehicle::new(VehicleParams::f1tenth_slippery());
        let mut s = VehicleState::default();
        let cmd = DriveCommand::new(7.0, 0.0);
        let dt = 0.002;
        let mut wheel_dist = 0.0;
        for _ in 0..1500 {
            s = v.step(&s, &cmd, dt);
            wheel_dist += s.wheel_speed * dt;
        }
        let true_dist = s.pose.x;
        assert!(
            wheel_dist > true_dist * 1.01,
            "wheel {wheel_dist} vs true {true_dist}"
        );
    }
}
