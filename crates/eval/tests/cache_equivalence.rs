//! Cache correctness (DESIGN.md §15): cached and fresh cell results are
//! byte-identical through the report, and editing a spec axis invalidates
//! exactly the affected cells — no more, no fewer.
//!
//! Engine-level tests drive real (micro) fleets through
//! [`run_fleet_with`]; the property tests work on the hash layer alone
//! (no simulation), so they can sweep hundreds of random specs/edits.

use std::path::{Path, PathBuf};

use proptest::prelude::*;
use raceloc_eval::{
    cell_hash, run_fleet, run_fleet_with, EvalMethod, FleetRunOptions, FleetSpec, GripSpec,
    MapSpec, ScenarioSpec,
};
use raceloc_faults::FaultSchedule;

fn micro_spec() -> FleetSpec {
    FleetSpec {
        name: "cache-micro".into(),
        master_seed: 77,
        replicates: 2,
        duration_s: 1.5,
        particles: 80,
        beams: 61,
        success_lat_cm: 150.0,
        maps: vec![MapSpec {
            name: "fourier-33".into(),
            fourier_seed: 33,
            half_width: 1.25,
            mean_radius: 6.0,
        }],
        grips: vec![
            GripSpec {
                name: "HQ".into(),
                mu: 1.0,
            },
            GripSpec {
                name: "LQ".into(),
                mu: 19.0 / 26.0,
            },
        ],
        scenarios: vec![
            ScenarioSpec {
                name: "nominal".into(),
                schedule: FaultSchedule::builder().seed(7).build().expect("valid"),
                measure_from: 0,
                recovery_budget: None,
            },
            ScenarioSpec {
                name: "odom_slip".into(),
                schedule: FaultSchedule::builder()
                    .seed(7)
                    .odom_slip(15, 30, 1.8)
                    .build()
                    .expect("valid"),
                measure_from: 30,
                recovery_budget: None,
            },
        ],
        budgets: vec![0],
        methods: vec![EvalMethod::DeadReckoning],
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "raceloc-cache-equivalence-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cached_opts(dir: &Path) -> FleetRunOptions {
    let mut opts = FleetRunOptions::new(2);
    opts.cache_dir = Some(dir.to_path_buf());
    opts
}

#[test]
fn cold_then_warm_runs_are_byte_identical_and_warm_is_all_hits() {
    let spec = micro_spec();
    let dir = temp_dir("cold-warm");
    let opts = cached_opts(&dir);
    let cells = spec.cells().len() as u64;

    let (cold_report, cold_stats) = run_fleet_with(&spec, &opts).expect("cold run");
    assert_eq!(cold_stats.cache_hits, 0);
    assert_eq!(cold_stats.executed_cells, cells);
    assert_eq!(cold_stats.cache_stores, cells);

    let (warm_report, warm_stats) = run_fleet_with(&spec, &opts).expect("warm run");
    assert_eq!(warm_stats.cache_hits, cells, "unchanged spec = 100% hits");
    assert_eq!(warm_stats.executed_cells, 0);
    assert_eq!(warm_stats.executed_runs, 0);

    let cold = format!("{}", cold_report.to_json());
    let warm = format!("{}", warm_report.to_json());
    assert_eq!(cold, warm, "cache must not change the report");

    // And both match the engine with no persistence at all.
    let plain = format!("{}", run_fleet(&spec, 2).expect("plain run").to_json());
    assert_eq!(cold, plain, "persistence layers must be invisible");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn editing_one_grip_re_runs_exactly_that_grips_cells() {
    let spec = micro_spec();
    let dir = temp_dir("grip-edit");
    let opts = cached_opts(&dir);
    run_fleet_with(&spec, &opts).expect("warm the cache");

    let mut edited = spec.clone();
    edited.grips[1].mu = 0.5;
    let (report, stats) = run_fleet_with(&edited, &opts).expect("edited run");

    // 1 map × 2 grips × 2 scenarios × 1 budget × 1 method = 4 cells, half
    // of them under the edited grip.
    let affected = (spec.cells().iter().filter(|k| k.grip == 1).count()) as u64;
    assert_eq!(stats.executed_cells, affected, "only grip-1 cells re-ran");
    assert_eq!(stats.cache_hits, stats.cells_total - affected);

    // The mixed cached/fresh report is byte-identical to a cold run of
    // the edited spec.
    let fresh = run_fleet(&edited, 2).expect("cold edited run");
    assert_eq!(
        format!("{}", report.to_json()),
        format!("{}", fresh.to_json()),
        "cache reuse must not leak stale results into edited cells"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn appending_a_scenario_keeps_every_existing_cell_cached() {
    let spec = micro_spec();
    let dir = temp_dir("scenario-append");
    let opts = cached_opts(&dir);
    run_fleet_with(&spec, &opts).expect("warm the cache");

    let mut extended = spec.clone();
    extended.scenarios.push(ScenarioSpec {
        name: "pose_kidnap".into(),
        schedule: FaultSchedule::builder()
            .seed(7)
            .pose_kidnap(20, 4.0)
            .build()
            .expect("valid"),
        measure_from: 20,
        recovery_budget: None,
    });
    let (report, stats) = run_fleet_with(&extended, &opts).expect("extended run");
    let old_cells = spec.cells().len() as u64;
    let new_cells = extended.cells().len() as u64 - old_cells;
    assert_eq!(stats.cache_hits, old_cells, "appends never invalidate");
    assert_eq!(stats.executed_cells, new_cells);

    let fresh = run_fleet(&extended, 2).expect("cold extended run");
    assert_eq!(
        format!("{}", report.to_json()),
        format!("{}", fresh.to_json())
    );

    let _ = std::fs::remove_dir_all(&dir);
}

// --- hash-layer properties (no simulation) ------------------------------

fn arb_base_spec() -> impl Strategy<Value = FleetSpec> {
    (
        1u64..(1 << 53),
        1u32..5,
        1u64..4,
        1usize..4,
        1usize..3,
        prop::collection::vec(1u64..100_000, 0..3),
    )
        .prop_map(
            |(master_seed, replicates, n_maps, n_grips, n_scen, extra_budgets)| {
                let mut budgets = vec![0u64];
                for b in extra_budgets {
                    if !budgets.contains(&b) {
                        budgets.push(b);
                    }
                }
                FleetSpec {
                    name: "prop".into(),
                    master_seed,
                    replicates,
                    duration_s: 2.0,
                    particles: 100,
                    beams: 61,
                    success_lat_cm: 50.0,
                    maps: (0..n_maps)
                        .map(|i| MapSpec {
                            name: format!("m{i}"),
                            fourier_seed: 100 + i,
                            half_width: 1.25,
                            mean_radius: 6.0,
                        })
                        .collect(),
                    grips: (0..n_grips)
                        .map(|i| GripSpec {
                            name: format!("g{i}"),
                            mu: 0.5 + 0.1 * i as f64,
                        })
                        .collect(),
                    scenarios: (0..n_scen)
                        .map(|i| ScenarioSpec {
                            name: format!("s{i}"),
                            schedule: FaultSchedule::builder()
                                .seed(i as u64)
                                .build()
                                .expect("valid"),
                            measure_from: i as u64,
                            recovery_budget: None,
                        })
                        .collect(),
                    budgets,
                    methods: vec![EvalMethod::SynPf, EvalMethod::DeadReckoning],
                }
            },
        )
}

/// Which axis a random edit touches.
#[derive(Debug, Clone, Copy)]
enum Axis {
    Map,
    Grip,
    Scenario,
    Budget,
}

fn arb_axis() -> impl Strategy<Value = Axis> {
    prop_oneof![
        Just(Axis::Map),
        Just(Axis::Grip),
        Just(Axis::Scenario),
        Just(Axis::Budget),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cell_hashes_are_pure_and_collision_free(spec in arb_base_spec()) {
        let cells = spec.cells();
        let hashes: Vec<u64> = cells.iter().map(|&k| cell_hash(&spec, k)).collect();
        prop_assert_eq!(
            &hashes,
            &cells.iter().map(|&k| cell_hash(&spec, k)).collect::<Vec<_>>()
        );
        let mut dedup = hashes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), hashes.len(), "distinct cells, distinct hashes");
    }

    #[test]
    fn an_axis_edit_invalidates_exactly_the_affected_cells(
        spec in arb_base_spec(),
        axis in arb_axis(),
        pick in 0usize..16,
    ) {
        let mut edited = spec.clone();
        let index;
        match axis {
            Axis::Map => {
                index = pick % edited.maps.len();
                edited.maps[index].fourier_seed ^= 0x5555;
            }
            Axis::Grip => {
                index = pick % edited.grips.len();
                edited.grips[index].mu += 0.017;
            }
            Axis::Scenario => {
                index = pick % edited.scenarios.len();
                edited.scenarios[index].measure_from += 1;
            }
            Axis::Budget => {
                index = pick % edited.budgets.len();
                edited.budgets[index] += 1_000_000;
            }
        }
        // Every edit above keeps the spec valid (budgets stay distinct:
        // generated extras are < 100_000, the bump adds 1_000_000).
        prop_assert!(edited.validate().is_ok());
        for (i, &key) in spec.cells().iter().enumerate() {
            let touched = match axis {
                Axis::Map => key.map == index,
                Axis::Grip => key.grip == index,
                Axis::Scenario => key.scenario == index,
                Axis::Budget => key.budget == index,
            };
            let before = cell_hash(&spec, key);
            let after = cell_hash(&edited, key);
            if touched {
                prop_assert!(before != after, "cell {} must invalidate", i);
            } else {
                prop_assert_eq!(before, after, "cell {} must stay cached", i);
            }
        }
    }

    #[test]
    fn global_knobs_invalidate_every_cell(spec in arb_base_spec(), bump in 1u64..1000) {
        let mut reseeded = spec.clone();
        reseeded.master_seed = spec.master_seed.wrapping_add(bump);
        let mut longer = spec.clone();
        longer.duration_s += 0.5;
        for key in spec.cells() {
            let h = cell_hash(&spec, key);
            prop_assert!(h != cell_hash(&reseeded, key), "master_seed is global");
            prop_assert!(h != cell_hash(&longer, key), "duration_s is global");
        }
    }
}
