//! Resume equivalence (DESIGN.md §15): a fleet run interrupted after K of
//! N cells and resumed from its journal produces a final report
//! byte-identical to an uninterrupted run — at every worker-pool width,
//! and even when the interrupt and the resume use different widths.

use std::path::{Path, PathBuf};

use raceloc_eval::{
    run_fleet, run_fleet_with, EvalMethod, FleetRunOptions, FleetSpec, GripSpec, MapSpec,
    RunJournal, ScenarioSpec,
};
use raceloc_faults::FaultSchedule;

fn micro_spec() -> FleetSpec {
    FleetSpec {
        name: "resume-micro".into(),
        master_seed: 909,
        replicates: 2,
        duration_s: 1.5,
        particles: 80,
        beams: 61,
        success_lat_cm: 150.0,
        maps: vec![MapSpec {
            name: "fourier-33".into(),
            fourier_seed: 33,
            half_width: 1.25,
            mean_radius: 6.0,
        }],
        grips: vec![
            GripSpec {
                name: "HQ".into(),
                mu: 1.0,
            },
            GripSpec {
                name: "LQ".into(),
                mu: 19.0 / 26.0,
            },
        ],
        scenarios: vec![
            ScenarioSpec {
                name: "nominal".into(),
                schedule: FaultSchedule::builder().seed(7).build().expect("valid"),
                measure_from: 0,
                recovery_budget: None,
            },
            ScenarioSpec {
                name: "odom_slip".into(),
                schedule: FaultSchedule::builder()
                    .seed(7)
                    .odom_slip(15, 30, 1.8)
                    .build()
                    .expect("valid"),
                measure_from: 30,
                recovery_budget: None,
            },
        ],
        budgets: vec![0],
        methods: vec![EvalMethod::DeadReckoning],
    }
}

fn temp_journal(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "raceloc-resume-equivalence-{tag}-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn journal_opts(path: &Path, threads: usize) -> FleetRunOptions {
    let mut opts = FleetRunOptions::new(threads);
    opts.journal_path = Some(path.to_path_buf());
    opts
}

#[test]
fn interrupt_then_resume_is_byte_identical_at_every_pool_width() {
    let spec = micro_spec();
    let cells = spec.cells().len();
    let uninterrupted = format!("{}", run_fleet(&spec, 1).expect("valid spec").to_json());

    for threads in [1usize, 2, 4] {
        for stop_after in [1usize, cells - 1] {
            let journal = temp_journal(&format!("t{threads}-k{stop_after}"));

            let mut partial_opts = journal_opts(&journal, threads);
            partial_opts.stop_after_cells = Some(stop_after);
            let (partial, partial_stats) =
                run_fleet_with(&spec, &partial_opts).expect("interrupted run");
            assert!(partial_stats.stopped_early);
            assert_eq!(partial_stats.executed_cells, stop_after as u64);
            // The skipped cells are reported as missing, not dropped.
            assert_eq!(partial.cells.len(), cells);

            let (resumed, resumed_stats) =
                run_fleet_with(&spec, &journal_opts(&journal, threads)).expect("resumed run");
            assert!(!resumed_stats.stopped_early);
            assert_eq!(resumed_stats.journal_hits, stop_after as u64);
            assert_eq!(
                resumed_stats.executed_cells,
                (cells - stop_after) as u64,
                "resume re-runs only the unfinished cells"
            );
            assert_eq!(
                uninterrupted,
                format!("{}", resumed.to_json()),
                "threads={threads} stop_after={stop_after}: resumed report drifted"
            );

            let _ = std::fs::remove_file(&journal);
        }
    }
}

#[test]
fn resume_at_a_different_pool_width_than_the_interrupt() {
    let spec = micro_spec();
    let uninterrupted = format!("{}", run_fleet(&spec, 2).expect("valid spec").to_json());
    let journal = temp_journal("cross-width");

    let mut partial_opts = journal_opts(&journal, 1);
    partial_opts.stop_after_cells = Some(2);
    run_fleet_with(&spec, &partial_opts).expect("interrupted at 1 thread");

    let (resumed, stats) =
        run_fleet_with(&spec, &journal_opts(&journal, 4)).expect("resumed at 4 threads");
    assert_eq!(stats.journal_hits, 2);
    assert_eq!(
        uninterrupted,
        format!("{}", resumed.to_json()),
        "journal entries must be width-agnostic"
    );

    let _ = std::fs::remove_file(&journal);
}

#[test]
fn second_resume_executes_nothing() {
    let spec = micro_spec();
    let journal = temp_journal("idempotent");
    let cells = spec.cells().len() as u64;

    let (first, _) = run_fleet_with(&spec, &journal_opts(&journal, 2)).expect("first full run");
    let (second, stats) = run_fleet_with(&spec, &journal_opts(&journal, 2)).expect("second run");
    assert_eq!(stats.journal_hits, cells, "everything replays from journal");
    assert_eq!(stats.executed_cells, 0);
    assert_eq!(
        format!("{}", first.to_json()),
        format!("{}", second.to_json())
    );

    let _ = std::fs::remove_file(&journal);
}

#[test]
fn journal_from_an_edited_spec_is_ignored() {
    let spec = micro_spec();
    let journal = temp_journal("stale");
    let mut partial_opts = journal_opts(&journal, 2);
    partial_opts.stop_after_cells = Some(2);
    run_fleet_with(&spec, &partial_opts).expect("interrupted run");

    // Reseeding changes every cell hash, so the stale journal contributes
    // nothing and the edited spec runs fresh end to end.
    let mut edited = spec.clone();
    edited.master_seed += 1;
    let (report, stats) = run_fleet_with(&edited, &journal_opts(&journal, 2)).expect("edited run");
    assert_eq!(
        stats.journal_hits, 0,
        "stale journal entries must not match"
    );
    assert_eq!(stats.executed_cells, edited.cells().len() as u64);
    let fresh = format!("{}", run_fleet(&edited, 2).expect("valid spec").to_json());
    assert_eq!(fresh, format!("{}", report.to_json()));

    // Sanity: the journal loader itself still parses the (mixed) file.
    let loaded = RunJournal::load(&journal, spec.replicates as usize);
    assert!(!loaded.is_empty());

    let _ = std::fs::remove_file(&journal);
}
