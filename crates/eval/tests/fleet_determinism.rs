//! End-to-end determinism of the fleet engine (rule R3): the serialized
//! report must be byte-identical for every worker-pool width and across
//! repeated executions, with all three localizers and an active fault
//! scenario in play.

use raceloc_eval::{run_fleet, EvalMethod, FleetSpec, GripSpec, MapSpec, ScenarioSpec};
use raceloc_faults::FaultSchedule;

fn small_spec() -> FleetSpec {
    FleetSpec {
        name: "determinism-smoke".into(),
        master_seed: 4242,
        replicates: 2,
        duration_s: 1.5,
        particles: 80,
        beams: 61,
        success_lat_cm: 150.0,
        maps: vec![MapSpec {
            name: "fourier-33".into(),
            fourier_seed: 33,
            half_width: 1.25,
            mean_radius: 6.0,
        }],
        grips: vec![GripSpec {
            name: "LQ".into(),
            mu: 19.0 / 26.0,
        }],
        scenarios: vec![
            ScenarioSpec {
                name: "nominal".into(),
                schedule: FaultSchedule::builder().seed(7).build().expect("valid"),
                measure_from: 0,
                recovery_budget: None,
            },
            ScenarioSpec {
                name: "odom_slip".into(),
                schedule: FaultSchedule::builder()
                    .seed(7)
                    .odom_slip(15, 30, 1.8)
                    .build()
                    .expect("valid"),
                measure_from: 30,
                recovery_budget: None,
            },
        ],
        budgets: vec![0],
        methods: vec![
            EvalMethod::SynPf,
            EvalMethod::Cartographer,
            EvalMethod::DeadReckoning,
        ],
    }
}

#[test]
fn report_is_byte_identical_across_pool_widths_and_reruns() {
    let spec = small_spec();
    let baseline = format!("{}", run_fleet(&spec, 1).expect("valid spec").to_json());
    for threads in [2usize, 4] {
        let other = format!(
            "{}",
            run_fleet(&spec, threads).expect("valid spec").to_json()
        );
        assert_eq!(baseline, other, "pool width {threads} changed the report");
    }
    let again = format!("{}", run_fleet(&spec, 1).expect("valid spec").to_json());
    assert_eq!(baseline, again, "re-running the fleet changed the report");
}

#[test]
fn report_covers_every_cell_with_every_replicate() {
    let spec = small_spec();
    let report = run_fleet(&spec, 2).expect("valid spec");
    assert_eq!(report.total_runs as usize, spec.total_runs());
    assert_eq!(report.cells.len(), spec.cells().len());
    for cell in &report.cells {
        assert_eq!(cell.runs, u64::from(spec.replicates), "{cell:?}");
        assert_eq!(cell.missing, 0, "{cell:?}");
        assert!(cell.steps > 0, "{cell:?}");
    }
    // The counter rollup saw every run.
    assert_eq!(
        report.counters.total("eval.runs"),
        Some(report.total_runs),
        "eval.runs rollup"
    );
    // Paired seeds: SynPF and DeadReckoning rows of the same cell came
    // from identical worlds, so their step counts agree.
    let synpf = report
        .cell("fourier-33", "LQ", "nominal", "SynPF")
        .expect("SynPF row");
    let dr = report
        .cell("fourier-33", "LQ", "nominal", "DeadReckoning")
        .expect("DR row");
    assert_eq!(synpf.steps, dr.steps, "oracle control pairs trajectories");
}
