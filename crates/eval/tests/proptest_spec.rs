//! FleetSpec JSON round-trip properties, extended to the compute-budgets
//! axis and tied to the cell cache: a spec that survives
//! serialize → parse must be *identical* — same struct, same canonical
//! JSON, same world seeds, and (crucially for DESIGN.md §15) the same
//! content-addressed cell hashes, so writing a spec to disk and reading
//! it back never invalidates a single cache entry.

use proptest::prelude::*;
use raceloc_eval::{cell_hash, spec_hash, EvalMethod, FleetSpec, GripSpec, MapSpec, ScenarioSpec};
use raceloc_faults::FaultSchedule;

/// Raw draw for one scenario: `(seed, kind, start, len, factor, budget)`.
/// `kind` picks nominal / odometry-slip / pose-kidnap; `budget == 0`
/// means no recovery gate (`None`).
type ScenarioDraw = (u64, u64, u64, u64, f64, u64);

fn build_scenario(i: usize, draw: ScenarioDraw) -> ScenarioSpec {
    let (seed, kind, start, len, factor, budget) = draw;
    let mut builder = FaultSchedule::builder().seed(seed);
    let mut measure_from = 0;
    match kind % 3 {
        1 => {
            builder = builder.odom_slip(start, start + len, factor);
            measure_from = start + len;
        }
        2 => {
            builder = builder.pose_kidnap(start, 2.0 * factor);
            measure_from = start;
        }
        _ => {}
    }
    ScenarioSpec {
        name: format!("scen{i}"),
        schedule: builder.build().expect("single ordered window"),
        measure_from,
        recovery_budget: (budget > 0).then_some(budget),
    }
}

fn arb_spec() -> impl Strategy<Value = FleetSpec> {
    (
        (
            1u64..(1 << 53),
            1u32..6,
            0.5f64..10.0,
            50usize..500,
            10.0f64..300.0,
        ),
        prop::collection::vec((1u64..10_000, 0.8f64..2.0, 4.0f64..9.0), 1..3),
        prop::collection::vec(0.3f64..1.2, 1..3),
        prop::collection::vec(
            (
                0u64..100,
                0u64..3,
                1u64..50,
                1u64..50,
                1.1f64..2.5,
                0u64..200,
            ),
            1..3,
        ),
        prop::collection::vec(1u64..5_000_000, 0..3),
        0usize..3,
    )
        .prop_map(
            |(globals, maps, grips, scenarios, extra_budgets, method_set)| {
                let (master_seed, replicates, duration_s, particles, success_lat_cm) = globals;
                let mut budgets = vec![0u64];
                for b in extra_budgets {
                    if !budgets.contains(&b) {
                        budgets.push(b);
                    }
                }
                FleetSpec {
                    name: "proptest-roundtrip".into(),
                    master_seed,
                    replicates,
                    duration_s,
                    particles,
                    beams: 61,
                    success_lat_cm,
                    maps: maps
                        .into_iter()
                        .enumerate()
                        .map(|(i, (seed, half_width, mean_radius))| MapSpec {
                            name: format!("map{i}"),
                            fourier_seed: seed,
                            half_width,
                            mean_radius,
                        })
                        .collect(),
                    grips: grips
                        .into_iter()
                        .enumerate()
                        .map(|(i, mu)| GripSpec {
                            name: format!("grip{i}"),
                            mu,
                        })
                        .collect(),
                    scenarios: scenarios
                        .into_iter()
                        .enumerate()
                        .map(|(i, draw)| build_scenario(i, draw))
                        .collect(),
                    budgets,
                    methods: match method_set {
                        0 => vec![EvalMethod::DeadReckoning],
                        1 => vec![EvalMethod::SynPf, EvalMethod::DeadReckoning],
                        _ => EvalMethod::all().to_vec(),
                    },
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn json_round_trip_is_lossless_including_budgets(spec in arb_spec()) {
        prop_assert!(spec.validate().is_ok());
        let text = format!("{}", spec.to_json());
        let parsed = FleetSpec::from_json_str(&text).expect("own JSON parses");
        prop_assert_eq!(&parsed, &spec);
        prop_assert_eq!(&parsed.budgets, &spec.budgets, "budgets axis survives");
        // Canonical form is a fixed point: re-serializing is byte-identical.
        prop_assert_eq!(format!("{}", parsed.to_json()), text);
    }

    #[test]
    fn round_trip_preserves_every_cell_hash(spec in arb_spec()) {
        let parsed = FleetSpec::from_json_str(&format!("{}", spec.to_json()))
            .expect("own JSON parses");
        prop_assert_eq!(spec_hash(&parsed), spec_hash(&spec));
        for key in spec.cells() {
            prop_assert_eq!(
                cell_hash(&parsed, key),
                cell_hash(&spec, key),
                "a disk round trip must not invalidate cache entries"
            );
        }
    }

    #[test]
    fn round_trip_preserves_world_seeds_and_run_layout(spec in arb_spec()) {
        let parsed = FleetSpec::from_json_str(&format!("{}", spec.to_json()))
            .expect("own JSON parses");
        prop_assert_eq!(parsed.total_runs(), spec.total_runs());
        prop_assert_eq!(&parsed.cells(), &spec.cells());
        for desc in spec.runs() {
            let seed = parsed.world_seed(
                desc.key.map,
                desc.key.grip,
                desc.key.scenario,
                desc.replicate,
            );
            prop_assert_eq!(seed, desc.world_seed);
        }
    }

    #[test]
    fn budget_axis_multiplies_cells_without_touching_world_seeds(
        spec in arb_spec(),
        extra in 1u64..10_000_000,
    ) {
        // Appending a budget adds cells but leaves all world seeds (which
        // deliberately exclude the budget axis — paired comparison) alone.
        let mut widened = spec.clone();
        let budget = widened.budgets.iter().max().copied().unwrap_or(0) + extra;
        widened.budgets.push(budget);
        prop_assert!(widened.validate().is_ok());
        let per_budget = spec.cells().len() / spec.budgets.len();
        prop_assert_eq!(
            widened.cells().len(),
            spec.cells().len() + per_budget
        );
        for desc in spec.runs() {
            prop_assert_eq!(
                widened.world_seed(
                    desc.key.map,
                    desc.key.grip,
                    desc.key.scenario,
                    desc.replicate,
                ),
                desc.world_seed,
                "budgets must not perturb the paired world seeds"
            );
        }
    }
}
