//! `fleet diff`: the cross-PR accuracy regression gate over two fleet
//! reports (DESIGN.md §15).
//!
//! Fleet numbers drift for legitimate reasons (spec growth, simulator
//! fixes), so the gate does not compare floats for equality. It fails on
//! exactly the two signals the paper's evidence rests on:
//!
//! 1. **Ordering flips** — within one `(map, grip, scenario, budget)`
//!    group, the localizer ranking by mean lateral error changed between
//!    baseline and fresh. The paper's central claims are ordinal
//!    (SynPF < Cartographer under slip, DeadReckoning worst nominally);
//!    a flip anywhere is a qualitative regression even when every gate in
//!    [`crate::ordering_violations`] still passes.
//! 2. **Wilson-interval success regressions** — a cell whose fresh
//!    success-rate 95% interval lies *entirely below* the baseline's.
//!    Disjoint intervals are the statistically honest "this got worse"
//!    test: replicate noise widens the intervals, so small fleets only
//!    fail on large true drops.
//!
//! Everything else — cells added/removed by spec growth, error
//! magnitude drift, success movement within the intervals — is reported
//! as a note, never a failure. Output is deterministic (stable ordering,
//! fixed float formatting), so the rendered diff itself is goldenable.

use std::collections::BTreeMap;

use crate::aggregate::{CellSummary, FleetReport};

/// Relative mean-lateral-error drift (either direction) worth a note.
const LAT_DRIFT_NOTE_FACTOR: f64 = 1.25;

/// The outcome of comparing two fleet reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportDiff {
    /// One line per gating regression (ordering flip or Wilson drop);
    /// empty means the fresh report passes.
    pub regressions: Vec<String>,
    /// Informational lines (spec drift, magnitude drift, improvements).
    pub notes: Vec<String>,
    /// Summary header lines.
    pub header: Vec<String>,
}

impl ReportDiff {
    /// Whether the fresh report regressed (the CI exit-1 condition).
    pub fn is_regression(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// Renders the full human-readable diff (deterministic).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.header {
            out.push_str(line);
            out.push('\n');
        }
        for line in &self.regressions {
            out.push_str("REGRESSION ");
            out.push_str(line);
            out.push('\n');
        }
        for line in &self.notes {
            out.push_str("note: ");
            out.push_str(line);
            out.push('\n');
        }
        if self.is_regression() {
            out.push_str(&format!(
                "verdict: REGRESSED ({} regression{})\n",
                self.regressions.len(),
                if self.regressions.len() == 1 { "" } else { "s" }
            ));
        } else {
            out.push_str("verdict: OK\n");
        }
        out
    }
}

type CellId = (String, String, String, u64, String);
type GroupId = (String, String, String, u64);

fn cell_id(c: &CellSummary) -> CellId {
    (
        c.map.clone(),
        c.grip.clone(),
        c.scenario.clone(),
        c.budget,
        c.method.clone(),
    )
}

fn group_label(g: &GroupId) -> String {
    format!("{} × {} × {} × b{}", g.0, g.1, g.2, g.3)
}

fn cell_label(id: &CellId) -> String {
    format!("{} × {} × {} × b{} × {}", id.0, id.1, id.2, id.3, id.4)
}

fn index(report: &FleetReport) -> BTreeMap<CellId, &CellSummary> {
    report.cells.iter().map(|c| (cell_id(c), c)).collect()
}

/// The group's localizer ranking by mean lateral error, best first, over
/// exactly `methods` (ties and NaNs ordered by `f64::total_cmp`, so the
/// ranking is deterministic).
fn ranking(
    cells: &BTreeMap<CellId, &CellSummary>,
    group: &GroupId,
    methods: &[String],
) -> Vec<String> {
    let mut ranked: Vec<(f64, String)> = methods
        .iter()
        .filter_map(|m| {
            let id = (
                group.0.clone(),
                group.1.clone(),
                group.2.clone(),
                group.3,
                m.clone(),
            );
            cells.get(&id).map(|c| (c.mean_lat_err_cm, m.clone()))
        })
        .collect();
    ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    ranked.into_iter().map(|(_, m)| m).collect()
}

/// Compares a fresh fleet report against a baseline. See the module docs
/// for exactly what gates and what merely annotates.
pub fn diff_reports(baseline: &FleetReport, fresh: &FleetReport) -> ReportDiff {
    let base_cells = index(baseline);
    let fresh_cells = index(fresh);

    let shared: Vec<&CellId> = base_cells
        .keys()
        .filter(|id| fresh_cells.contains_key(*id))
        .collect();
    let added: Vec<&CellId> = fresh_cells
        .keys()
        .filter(|id| !base_cells.contains_key(*id))
        .collect();
    let removed: Vec<&CellId> = base_cells
        .keys()
        .filter(|id| !fresh_cells.contains_key(*id))
        .collect();

    let header = vec![
        format!(
            "fleet diff: baseline {:?} ({} cells, {} runs) vs fresh {:?} ({} cells, {} runs)",
            baseline.name,
            baseline.cells.len(),
            baseline.total_runs,
            fresh.name,
            fresh.cells.len(),
            fresh.total_runs,
        ),
        format!(
            "cells: {} shared, {} added, {} removed",
            shared.len(),
            added.len(),
            removed.len()
        ),
    ];

    let mut regressions = Vec::new();
    let mut notes = Vec::new();

    // Ordering flips, judged per group over the methods both reports
    // have. BTreeMap iteration keeps group order deterministic.
    let mut groups: BTreeMap<GroupId, Vec<String>> = BTreeMap::new();
    for id in &shared {
        groups
            .entry((id.0.clone(), id.1.clone(), id.2.clone(), id.3))
            .or_default()
            .push(id.4.clone());
    }
    for (group, mut methods) in groups {
        methods.sort();
        if methods.len() < 2 {
            continue;
        }
        let before = ranking(&base_cells, &group, &methods);
        let after = ranking(&fresh_cells, &group, &methods);
        if before != after {
            regressions.push(format!(
                "ordering {}: {} (baseline) -> {} (fresh)",
                group_label(&group),
                before.join(" < "),
                after.join(" < "),
            ));
        }
    }

    // Wilson-interval success regressions and per-cell drift notes.
    for id in &shared {
        let (Some(base), Some(new)) = (base_cells.get(*id), fresh_cells.get(*id)) else {
            continue;
        };
        if new.success_hi < base.success_lo {
            regressions.push(format!(
                "success {}: {}/{} [{:.3}, {:.3}] -> {}/{} [{:.3}, {:.3}] (Wilson intervals disjoint)",
                cell_label(id),
                base.successes,
                base.runs,
                base.success_lo,
                base.success_hi,
                new.successes,
                new.runs,
                new.success_lo,
                new.success_hi,
            ));
        } else if new.success_lo > base.success_hi {
            notes.push(format!(
                "success improved {}: {}/{} -> {}/{}",
                cell_label(id),
                base.successes,
                base.runs,
                new.successes,
                new.runs,
            ));
        }
        let (b, f) = (base.mean_lat_err_cm, new.mean_lat_err_cm);
        if b.is_finite() && f.is_finite() && b > 0.0 && f > 0.0 {
            let ratio = f / b;
            if !(1.0 / LAT_DRIFT_NOTE_FACTOR..=LAT_DRIFT_NOTE_FACTOR).contains(&ratio) {
                notes.push(format!(
                    "lat err drift {}: {b:.2} -> {f:.2} cm ({ratio:.2}x)",
                    cell_label(id),
                ));
            }
        }
    }

    for id in added {
        notes.push(format!("cell added: {}", cell_label(id)));
    }
    for id in removed {
        notes.push(format!("cell removed: {}", cell_label(id)));
    }

    ReportDiff {
        regressions,
        notes,
        header,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raceloc_metrics::wilson95;
    use raceloc_obs::CounterRollup;

    fn cell(scenario: &str, method: &str, lat: f64, successes: u64) -> CellSummary {
        let iv = wilson95(successes, 20);
        CellSummary {
            map: "m0".into(),
            grip: "LQ".into(),
            scenario: scenario.into(),
            budget: 0,
            method: method.into(),
            runs: 20,
            steps: 2000,
            successes,
            success_rate: iv.rate,
            success_lo: iv.lo,
            success_hi: iv.hi,
            mean_rmse_cm: lat * 2.0,
            p95_rmse_cm: lat * 3.0,
            max_rmse_cm: lat * 4.0,
            mean_lat_err_cm: lat,
            p95_lat_err_cm: lat * 1.6,
            recovered: 20,
            unrecovered: 0,
            mean_recovery_steps: 3.0,
            max_recovery_steps: 9,
            crashes: 0,
            nonfinite: 0,
            missing: 0,
        }
    }

    fn report(cells: Vec<CellSummary>) -> FleetReport {
        FleetReport {
            name: "t".into(),
            master_seed: 1,
            replicates: 20,
            total_runs: cells.iter().map(|c| c.runs).sum(),
            cells,
            counters: CounterRollup::new(),
        }
    }

    #[test]
    fn identical_reports_diff_clean() {
        let r = report(vec![
            cell("odom_slip", "SynPF", 40.0, 18),
            cell("odom_slip", "Cartographer", 900.0, 2),
        ]);
        let d = diff_reports(&r, &r);
        assert!(!d.is_regression(), "{}", d.render());
        assert!(d.notes.is_empty());
        assert!(d.render().ends_with("verdict: OK\n"));
        // Deterministic output.
        assert_eq!(d.render(), diff_reports(&r, &r).render());
    }

    #[test]
    fn ordering_flip_is_a_regression() {
        let base = report(vec![
            cell("odom_slip", "SynPF", 40.0, 18),
            cell("odom_slip", "Cartographer", 900.0, 18),
        ]);
        let fresh = report(vec![
            cell("odom_slip", "SynPF", 900.0, 18),
            cell("odom_slip", "Cartographer", 40.0, 18),
        ]);
        let d = diff_reports(&base, &fresh);
        assert!(d.is_regression());
        assert!(
            d.regressions.iter().any(|r| r.starts_with("ordering")),
            "{:?}",
            d.regressions
        );
        assert!(d.render().contains("SynPF < Cartographer (baseline)"));
    }

    #[test]
    fn disjoint_wilson_drop_is_a_regression() {
        let base = report(vec![cell("nominal", "SynPF", 5.0, 19)]);
        let fresh = report(vec![cell("nominal", "SynPF", 5.0, 3)]);
        let d = diff_reports(&base, &fresh);
        assert!(d.is_regression());
        assert!(
            d.regressions
                .iter()
                .any(|r| r.starts_with("success") && r.contains("disjoint")),
            "{:?}",
            d.regressions
        );
        // The reverse direction is an improvement note, not a regression.
        let d = diff_reports(&fresh, &base);
        assert!(!d.is_regression());
        assert!(
            d.notes.iter().any(|n| n.contains("improved")),
            "{:?}",
            d.notes
        );
    }

    #[test]
    fn small_success_movement_stays_inside_the_interval() {
        let base = report(vec![cell("nominal", "SynPF", 5.0, 19)]);
        let fresh = report(vec![cell("nominal", "SynPF", 5.0, 17)]);
        assert!(!diff_reports(&base, &fresh).is_regression());
    }

    #[test]
    fn spec_growth_is_a_note_not_a_regression() {
        let base = report(vec![cell("nominal", "SynPF", 5.0, 19)]);
        let fresh = report(vec![
            cell("nominal", "SynPF", 5.0, 19),
            cell("odom_slip", "SynPF", 40.0, 15),
        ]);
        let d = diff_reports(&base, &fresh);
        assert!(!d.is_regression());
        assert!(
            d.notes.iter().any(|n| n.contains("cell added")),
            "{:?}",
            d.notes
        );
        let d = diff_reports(&fresh, &base);
        assert!(!d.is_regression());
        assert!(d.notes.iter().any(|n| n.contains("cell removed")));
    }

    #[test]
    fn magnitude_drift_is_noted() {
        let base = report(vec![
            cell("nominal", "SynPF", 5.0, 19),
            cell("nominal", "Cartographer", 7.0, 19),
        ]);
        let fresh = report(vec![
            cell("nominal", "SynPF", 6.9, 19),
            cell("nominal", "Cartographer", 7.0, 19),
        ]);
        // Drift without an ordering change: noted, not gated.
        let d = diff_reports(&base, &fresh);
        assert!(!d.is_regression(), "{}", d.render());
        assert!(
            d.notes.iter().any(|n| n.contains("lat err drift")),
            "{:?}",
            d.notes
        );
    }
}
