//! Fleet execution: one closed-loop simulation per run, fanned over the
//! persistent worker pool, reduced to deterministic per-run outcomes.
//!
//! Runs execute under **oracle control** (the car drives ground truth) so
//! every localizer of a cell sees the identical trajectory and fault
//! exposure. Each job pins its inner simulator and particle pipeline to
//! one thread; the pool's thread count only fans *runs* out, and because
//! every outcome is a pure function of its [`RunDesc`], the assembled
//! outcome vector is bit-identical for any thread count and any
//! job-completion order (rule R3 — `tests/fleet_determinism.rs` enforces
//! this end to end).

use std::path::PathBuf;
use std::sync::Arc;

use raceloc_core::localizer::DeadReckoning;
use raceloc_core::{stats, stream_keys, DeadlineConfig, Health, Rng64};
use raceloc_map::Track;
use raceloc_obs::{Json, Telemetry};
use raceloc_par::{FnJob, WorkerPool};
use raceloc_pf::{HealthPolicy, KldConfig, RecoveryConfig, SynPf, SynPfConfig};
use raceloc_range::{ArtifactParams, ArtifactStore, MapArtifacts};
use raceloc_sim::{SimLog, World, WorldConfig};
use raceloc_slam::{CartoLocalizer, CartoLocalizerConfig, SlamHealthPolicy};

use crate::aggregate::{FleetReport, ReportBuilder};
use crate::cache::{cell_hash, intern_counter, spec_hash, CellCache};
use crate::journal::RunJournal;
use crate::spec::{EvalMethod, FleetSpec, RunDesc, SpecError};

/// Shared immutable resources of one evaluation map: built once per
/// fleet, shared by every job on the map through `Arc` (the range LUT in
/// particular is far too expensive to rebuild per run).
#[derive(Debug, Clone)]
pub struct MapResources {
    /// The generated track (grid + reference lines).
    pub track: Arc<Track>,
    /// The shared artifact bundle (grid + EDT + lazy range LUT) over the
    /// track's grid, deduplicated by content key across identical maps.
    pub artifacts: Arc<MapArtifacts>,
}

/// The read-only pool context every fleet job executes against, indexed
/// by [`crate::spec::CellKey::map`].
#[derive(Debug, Clone)]
pub struct FleetCtx {
    /// Per-map shared resources, in [`FleetSpec::maps`] order.
    pub maps: Vec<MapResources>,
}

impl FleetCtx {
    /// Builds every map of the spec and its artifact bundle (the
    /// expensive, run-once part of a fleet). Bundles come out of one
    /// [`ArtifactStore`], so specs listing the same map twice share a
    /// single EDT + LUT build.
    pub fn build(spec: &FleetSpec) -> Self {
        let store = ArtifactStore::new();
        Self {
            maps: spec
                .maps
                .iter()
                .map(|m| {
                    let track = m.build_track();
                    let artifacts = store.get_or_build(&track.grid, ArtifactParams::default());
                    MapResources {
                        track: Arc::new(track),
                        artifacts,
                    }
                })
                .collect(),
        }
    }
}

/// The deterministic outcome of one simulation run. Carries no wall-clock
/// fields; every field is a pure function of the run's [`RunDesc`] and
/// the spec.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The run's linear index (its scatter-back slot).
    pub index: usize,
    /// Scan corrections actually executed.
    pub steps: usize,
    /// Translation RMSE of the estimate vs ground truth \[cm\].
    pub rmse_cm: f64,
    /// 95th percentile of the per-step translation error \[cm\].
    pub p95_err_cm: f64,
    /// Worst translation error \[cm\].
    pub max_err_cm: f64,
    /// Mean |signed-lateral(est) − signed-lateral(truth)| w.r.t. the
    /// raceline \[cm\] — the localization-induced lateral error, the
    /// quantity that steers the car off line when the estimate is wrong.
    pub mean_lat_err_cm: f64,
    /// Corrections from the scenario's `measure_from` until health settles
    /// at Nominal for the rest of the run (see `bench::faults` for the
    /// exact convention); `None` when the run ends still non-Nominal.
    pub recovery_steps: Option<u64>,
    /// Fraction of corrections spent in [`Health::Nominal`].
    pub pct_nominal: f64,
    /// Whether the ground-truth run aborted in a crash.
    pub crashed: bool,
    /// Whether every pose estimate was finite.
    pub finite: bool,
    /// Finite, crash-free, and mean lateral error within
    /// [`FleetSpec::success_lat_cm`].
    pub success: bool,
    /// Telemetry counters recorded during the run (event counts only —
    /// never spans or wall-clock), sorted by name.
    pub counters: Vec<(&'static str, u64)>,
}

/// Serializes a float for the cache/journal layer, where non-finite
/// values must survive the trip (the report layer's `Json::num` maps them
/// to `null`, which is fine for rendering but lossy for replay).
fn float_json(v: f64) -> Json {
    if v.is_finite() {
        Json::num(v)
    } else if v.is_nan() {
        Json::Str("NaN".into())
    } else if v > 0.0 {
        Json::Str("Infinity".into())
    } else {
        Json::Str("-Infinity".into())
    }
}

/// Parses a float written by [`float_json`].
fn float_from(doc: &Json, key: &str) -> Option<f64> {
    match doc.get(key)? {
        Json::Str(s) => match s.as_str() {
            "NaN" => Some(f64::NAN),
            "Infinity" => Some(f64::INFINITY),
            "-Infinity" => Some(f64::NEG_INFINITY),
            _ => None,
        },
        v => v.as_f64(),
    }
}

impl RunOutcome {
    /// Serializes the outcome for the cell cache / journal (stable key
    /// order). The run `index` is deliberately omitted: it names a slot in
    /// *this* spec's run numbering, which shifts when axes are edited —
    /// cached outcomes are positional (replicate order) and get re-indexed
    /// on load. Finite floats round-trip bit-exactly (shortest-round-trip
    /// serialization); non-finite ones ride as strings.
    pub(crate) fn to_cache_json(&self) -> Json {
        Json::Obj(vec![
            ("steps".into(), Json::num(self.steps as f64)),
            ("rmse_cm".into(), float_json(self.rmse_cm)),
            ("p95_err_cm".into(), float_json(self.p95_err_cm)),
            ("max_err_cm".into(), float_json(self.max_err_cm)),
            ("mean_lat_err_cm".into(), float_json(self.mean_lat_err_cm)),
            (
                "recovery_steps".into(),
                self.recovery_steps
                    .map_or(Json::Null, |s| Json::num(s as f64)),
            ),
            ("pct_nominal".into(), float_json(self.pct_nominal)),
            ("crashed".into(), Json::Bool(self.crashed)),
            ("finite".into(), Json::Bool(self.finite)),
            ("success".into(), Json::Bool(self.success)),
            (
                "counters".into(),
                Json::Arr(
                    self.counters
                        .iter()
                        .map(|&(name, v)| {
                            Json::Arr(vec![Json::Str(name.to_string()), Json::num(v as f64)])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses an outcome written by [`RunOutcome::to_cache_json`],
    /// rebasing it onto run slot `index`. Returns `None` on any malformed
    /// field (the caller treats the whole entry as a cache miss).
    pub(crate) fn from_cache_json(doc: &Json, index: usize) -> Option<Self> {
        let bool_field = |key: &str| match doc.get(key)? {
            Json::Bool(b) => Some(*b),
            _ => None,
        };
        let recovery_steps = match doc.get("recovery_steps") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64()?),
        };
        let mut counters = Vec::new();
        for pair in doc.get("counters").and_then(Json::as_array)? {
            let pair = pair.as_array()?;
            let [name, value] = pair else {
                return None;
            };
            counters.push((intern_counter(name.as_str()?), value.as_u64()?));
        }
        Some(Self {
            index,
            steps: doc.get("steps").and_then(Json::as_u64)? as usize,
            rmse_cm: float_from(doc, "rmse_cm")?,
            p95_err_cm: float_from(doc, "p95_err_cm")?,
            max_err_cm: float_from(doc, "max_err_cm")?,
            mean_lat_err_cm: float_from(doc, "mean_lat_err_cm")?,
            recovery_steps,
            pct_nominal: float_from(doc, "pct_nominal")?,
            crashed: bool_field("crashed")?,
            finite: bool_field("finite")?,
            success: bool_field("success")?,
            counters,
        })
    }

    /// The outcome of a run whose axes could not be resolved against the
    /// context — unreachable after [`FleetSpec::validate`], but kept as a
    /// non-panicking fallback (rule R1).
    fn unresolved(index: usize) -> Self {
        Self {
            index,
            steps: 0,
            rmse_cm: f64::INFINITY,
            p95_err_cm: f64::INFINITY,
            max_err_cm: f64::INFINITY,
            mean_lat_err_cm: f64::INFINITY,
            recovery_steps: None,
            pct_nominal: 0.0,
            crashed: false,
            finite: false,
            success: false,
            counters: Vec::new(),
        }
    }
}

/// Executes one run of the fleet: builds the world for the run's map,
/// grip, scenario, and derived seed, runs the localizer closed-loop under
/// oracle control, and reduces the log. Pure in `(spec, desc)`; the
/// context only caches what the spec already determines.
pub fn execute_run(spec: &FleetSpec, desc: RunDesc, ctx: &FleetCtx) -> RunOutcome {
    let (Some(res), Some(grip), Some(scenario), Some(&budget), Some(method)) = (
        ctx.maps.get(desc.key.map),
        spec.grips.get(desc.key.grip),
        spec.scenarios.get(desc.key.scenario),
        spec.budgets.get(desc.key.budget),
        spec.methods.get(desc.key.method).copied(),
    ) else {
        return RunOutcome::unresolved(desc.index);
    };

    let mut wcfg = WorldConfig::default();
    wcfg.vehicle.mu = grip.mu;
    wcfg.seed = desc.world_seed;
    wcfg.lidar.beams = spec.beams;
    // Inner parallelism stays off: the fleet's unit of fan-out is the run.
    wcfg.threads = 1;

    let tel = Telemetry::enabled();
    let mut world = World::new((*res.track).clone(), wcfg);
    world.set_telemetry(tel.clone());
    if !scenario.schedule.is_empty() {
        world.set_fault_schedule(scenario.schedule.clone());
    }

    // The filter seed is derived from the world seed (not equal to it) so
    // filter noise and world noise are independent streams.
    let filter_seed = Rng64::stream(desc.world_seed, stream_keys::eval_filter()).next_u64();

    let log = match method {
        EvalMethod::SynPf => {
            let mut builder = SynPfConfig::builder()
                .particles(spec.particles)
                .threads(1)
                .seed(filter_seed)
                .recovery(RecoveryConfig::default())
                .health(HealthPolicy::default());
            // A positive budget arms the deadline controller; KLD gives it
            // the particle-count knob the ladder's rungs scale (DESIGN.md
            // §14). Budget 0 keeps the historical uncapped pipeline.
            if budget > 0 {
                builder = builder
                    .kld(KldConfig {
                        min_particles: (spec.particles / 4).max(50),
                        max_particles: spec.particles,
                        ..KldConfig::default()
                    })
                    .deadline(DeadlineConfig {
                        budget_units: budget,
                        ..DeadlineConfig::default()
                    });
            }
            let Ok(config) = builder.build() else {
                return RunOutcome::unresolved(desc.index);
            };
            let mut pf = SynPf::from_artifacts(Arc::clone(&res.artifacts), config);
            pf.enable_recovery(&res.track.grid);
            pf.set_telemetry(tel.clone());
            let log = world.run_with_oracle_control(&mut pf, spec.duration_s);
            if let Some(ctl) = pf.deadline() {
                // Where the ladder settled when the run ended — lets the
                // report distinguish "degraded and recovered" from "pinned
                // at the bottom rung".
                tel.add("deadline.final_rung", ctl.rung() as u64);
            }
            log
        }
        EvalMethod::Cartographer => {
            let config = CartoLocalizerConfig {
                health: Some(SlamHealthPolicy::default()),
                ..CartoLocalizerConfig::default()
            };
            let mut carto = CartoLocalizer::from_artifacts(&res.artifacts, config);
            carto.set_telemetry(tel.clone());
            world.run_with_oracle_control(&mut carto, spec.duration_s)
        }
        EvalMethod::DeadReckoning => {
            let mut dr = DeadReckoning::new();
            world.run_with_oracle_control(&mut dr, spec.duration_s)
        }
    };

    reduce(spec, desc, res, scenario.measure_from, &tel, &log)
}

/// Reduces one run log to its deterministic outcome.
fn reduce(
    spec: &FleetSpec,
    desc: RunDesc,
    res: &MapResources,
    measure_from: u64,
    tel: &Telemetry,
    log: &SimLog,
) -> RunOutcome {
    let n = log.samples.len();
    let denom = n.max(1) as f64;
    let mut sq = 0.0;
    let mut max_err = 0.0f64;
    let mut lat_sum = 0.0;
    let mut finite = true;
    let mut nominal = 0usize;
    let mut errors_cm = Vec::with_capacity(n);
    let raceline = &res.track.raceline;
    for s in &log.samples {
        if !(s.est_pose.x.is_finite() && s.est_pose.y.is_finite() && s.est_pose.theta.is_finite()) {
            finite = false;
        }
        let e = s.true_pose.dist(s.est_pose);
        sq += e * e;
        max_err = max_err.max(e);
        errors_cm.push(100.0 * e);
        let lat_true = raceline.project(s.true_pose.translation()).1;
        let lat_est = raceline.project(s.est_pose.translation()).1;
        if lat_est.is_finite() {
            lat_sum += (lat_est - lat_true).abs();
        }
        if s.health == Health::Nominal {
            nominal += 1;
        }
    }
    let last_bad = log
        .samples
        .iter()
        .enumerate()
        .skip(measure_from as usize)
        .filter(|(_, s)| s.health != Health::Nominal)
        .map(|(i, _)| i)
        .next_back();
    let recovery_steps = match last_bad {
        None => Some(0),
        Some(i) if i + 1 < n => Some((i + 1) as u64 - measure_from),
        Some(_) => None,
    };
    let rmse_cm = 100.0 * (sq / denom).sqrt();
    let mean_lat_err_cm = 100.0 * lat_sum / denom;
    // Success is judged on the paper's primary error axis: did the
    // estimate keep the car laterally on line, on average, for the whole
    // run? (Whole-run translation RMSE punishes the corridor's
    // longitudinal ambiguity after a global re-init, which the paper
    // treats separately via recovery latency.)
    let success = finite && !log.crashed && mean_lat_err_cm <= spec.success_lat_cm;
    // Fleet-level event counters (deterministic — no wall clock): these
    // roll up next to whatever the localizer and fault tracker recorded.
    tel.add("eval.runs", 1);
    tel.add("eval.steps", n as u64);
    if log.crashed {
        tel.add("eval.crashes", 1);
    }
    if !finite {
        tel.add("eval.nonfinite", 1);
    }
    if success {
        tel.add("eval.successes", 1);
    }
    let snap = tel.snapshot();
    let mut counters: Vec<(&'static str, u64)> = snap.counters().collect();
    counters.sort_unstable_by_key(|&(name, _)| name);
    RunOutcome {
        index: desc.index,
        steps: n,
        rmse_cm,
        p95_err_cm: stats::quantile(&errors_cm, 0.95).unwrap_or(0.0),
        max_err_cm: 100.0 * max_err,
        mean_lat_err_cm,
        recovery_steps,
        pct_nominal: nominal as f64 / denom,
        crashed: log.crashed,
        finite,
        success,
        counters,
    }
}

/// How one fleet invocation executes: pool width plus the optional
/// persistence layers of the scale-out engine (DESIGN.md §15).
#[derive(Debug, Clone, Default)]
pub struct FleetRunOptions {
    /// Worker-pool width (clamped to at least 1).
    pub threads: usize,
    /// Content-addressed cell cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Append-only journal of completed cells; `None` disables
    /// checkpointing/resume.
    pub journal_path: Option<PathBuf>,
    /// Stop after this many cells are complete (cached, journaled, or
    /// executed — any provenance counts); the rest of the report is
    /// `missing` rows. `None` runs to completion. This is the
    /// interruption primitive the resume tests drive.
    pub stop_after_cells: Option<usize>,
}

impl FleetRunOptions {
    /// Plain in-memory execution on `threads` workers.
    pub fn new(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }
}

/// How a fleet invocation's cells were satisfied. Kept **outside** the
/// [`FleetReport`] on purpose: the report is a pure function of the spec,
/// while these numbers describe one invocation's provenance (a fully
/// cached re-run and a cold run must still produce byte-identical
/// reports).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetRunStats {
    /// Cells in the spec.
    pub cells_total: u64,
    /// Cells satisfied from the content-addressed cache.
    pub cache_hits: u64,
    /// Cells written to the cache this invocation.
    pub cache_stores: u64,
    /// Cells satisfied from the resume journal.
    pub journal_hits: u64,
    /// Cells actually executed.
    pub executed_cells: u64,
    /// Runs actually executed.
    pub executed_runs: u64,
    /// Whether `stop_after_cells` cut the invocation short.
    pub stopped_early: bool,
}

impl FleetRunStats {
    /// Books the invocation's provenance counters into a telemetry handle
    /// under the cataloged `eval.cache.*` / `eval.resume.*` names.
    pub fn publish(&self, tel: &Telemetry) {
        tel.add("eval.cache.hits", self.cache_hits);
        tel.add("eval.cache.misses", self.executed_cells);
        tel.add("eval.cache.stores", self.cache_stores);
        tel.add("eval.resume.cells", self.journal_hits);
    }

    /// Serializes the stats (stable key order).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("cells_total".into(), Json::num(self.cells_total as f64)),
            ("cache_hits".into(), Json::num(self.cache_hits as f64)),
            ("cache_stores".into(), Json::num(self.cache_stores as f64)),
            ("journal_hits".into(), Json::num(self.journal_hits as f64)),
            (
                "executed_cells".into(),
                Json::num(self.executed_cells as f64),
            ),
            ("executed_runs".into(), Json::num(self.executed_runs as f64)),
            ("stopped_early".into(), Json::Bool(self.stopped_early)),
        ])
    }
}

/// A fleet invocation failure: either the spec is invalid, or a
/// persistence layer could not be opened/written. Execution itself never
/// errors (failed runs become `missing` rows).
#[derive(Debug)]
pub enum FleetError {
    /// The spec failed validation.
    Spec(SpecError),
    /// A cache or journal I/O failure.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error message.
        message: String,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Spec(e) => write!(f, "{e}"),
            FleetError::Io { path, message } => {
                write!(f, "fleet i/o error at {}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for FleetError {}

impl From<SpecError> for FleetError {
    fn from(e: SpecError) -> Self {
        FleetError::Spec(e)
    }
}

fn io_err(path: &std::path::Path, e: std::io::Error) -> FleetError {
    FleetError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

/// Runs a fleet through the scale-out engine: resolves every cell from
/// the journal, then the cache, and executes only what is left, in
/// canonical-order waves over a [`WorkerPool`]. Completed cells are
/// checkpointed (cache + journal) as each wave lands, so an interrupt
/// loses at most one wave. Returns the report plus this invocation's
/// provenance stats.
///
/// The report is byte-identical for any pool width, any wave boundary,
/// and any mix of cached/journaled/executed cells — the engine only
/// changes *where* outcomes come from, never what they are.
pub fn run_fleet_with(
    spec: &FleetSpec,
    opts: &FleetRunOptions,
) -> Result<(FleetReport, FleetRunStats), FleetError> {
    spec.validate()?;
    let cells = spec.cells();
    let replicates = spec.replicates as usize;
    let mut stats = FleetRunStats {
        cells_total: cells.len() as u64,
        ..FleetRunStats::default()
    };

    let hashes: Vec<u64> = cells.iter().map(|&key| cell_hash(spec, key)).collect();
    let mut journaled = match &opts.journal_path {
        Some(path) => RunJournal::load(path, replicates),
        None => std::collections::BTreeMap::new(),
    };
    let cache = match &opts.cache_dir {
        Some(dir) => Some(CellCache::open(dir).map_err(|e| io_err(dir, e))?),
        None => None,
    };
    let mut journal = match &opts.journal_path {
        Some(path) => {
            Some(RunJournal::open(path, &spec.name, spec_hash(spec)).map_err(|e| io_err(path, e))?)
        }
        None => None,
    };

    // Resolve what persistence already has. Journal first: it is the
    // record of *this* run id's completed work, and a hit there must not
    // also count as a cache hit.
    let mut builder = ReportBuilder::new(spec);
    let mut resolved = 0usize;
    let mut pending: Vec<usize> = Vec::new();
    for (cell, &hash) in hashes.iter().enumerate() {
        let outcomes = match journaled.remove(&hash) {
            Some(outcomes) => {
                stats.journal_hits += 1;
                Some(outcomes)
            }
            None => match cache.as_ref().and_then(|c| c.load(hash, replicates)) {
                Some(outcomes) => {
                    stats.cache_hits += 1;
                    Some(outcomes)
                }
                None => None,
            },
        };
        match outcomes {
            Some(outcomes) => {
                let slots: Vec<Option<RunOutcome>> = outcomes.into_iter().map(Some).collect();
                builder.fold_cell(cell, &slots);
                resolved += 1;
            }
            None => pending.push(cell),
        }
    }

    // Apply the interruption budget: cells beyond it stay missing.
    let budget = opts
        .stop_after_cells
        .map(|limit| limit.saturating_sub(resolved))
        .unwrap_or(pending.len());
    if budget < pending.len() {
        stats.stopped_early = true;
    }
    let skipped: Vec<usize> = pending.split_off(budget.min(pending.len()));
    for cell in skipped {
        builder.fold_missing_cell(cell);
    }

    // Execute the remainder in canonical-order waves, checkpointing each
    // completed wave before starting the next. The pool (and the
    // expensive per-map artifact builds) only exist when something
    // actually runs — a fully cached invocation never touches them.
    if !pending.is_empty() {
        let threads = opts.threads.max(1);
        let shared = Arc::new(spec.clone());
        let pool: WorkerPool<FleetCtx, FnJob<FleetCtx, RunOutcome>> =
            WorkerPool::new(FleetCtx::build(spec), threads);
        // Enough cells per wave to keep every worker busy (~2 jobs per
        // worker) without deferring checkpoints longer than needed.
        let cells_per_wave = (threads * 2).div_ceil(replicates).max(1);
        for wave in pending.chunks(cells_per_wave) {
            let mut jobs: Vec<FnJob<FleetCtx, RunOutcome>> = Vec::new();
            for (slot, &cell) in wave.iter().enumerate() {
                let Some(&key) = cells.get(cell) else {
                    continue;
                };
                for replicate in 0..spec.replicates {
                    let spec = Arc::clone(&shared);
                    let desc = RunDesc {
                        index: cell * replicates + replicate as usize,
                        cell,
                        key,
                        replicate,
                        world_seed: spec.world_seed(key.map, key.grip, key.scenario, replicate),
                    };
                    jobs.push(FnJob::new(
                        slot * replicates + replicate as usize,
                        move |ctx: &FleetCtx| execute_run(&spec, desc, ctx),
                    ));
                }
            }
            pool.run_batch(&mut jobs);
            // Scatter by tag: run_batch hands jobs back in pool order.
            let mut slots: Vec<Option<RunOutcome>> =
                (0..wave.len() * replicates).map(|_| None).collect();
            for job in &mut jobs {
                let tag = job.tag();
                let out = job.take();
                if let Some(slot) = slots.get_mut(tag) {
                    *slot = out;
                }
            }
            for (slot, &cell) in wave.iter().enumerate() {
                let outcomes = &slots[slot * replicates..(slot + 1) * replicates];
                stats.executed_cells += 1;
                stats.executed_runs += outcomes.iter().flatten().count() as u64;
                // Only complete cells are durable: a cell with a missing
                // outcome must re-run next time, not replay a hole.
                if outcomes.iter().all(Option::is_some) {
                    let complete: Vec<RunOutcome> = outcomes.iter().flatten().cloned().collect();
                    if let Some(cache) = &cache {
                        let hash = hashes.get(cell).copied().unwrap_or(0);
                        cache
                            .store(hash, &complete)
                            .map_err(|e| io_err(cache.dir(), e))?;
                        stats.cache_stores += 1;
                    }
                    if let Some(journal) = journal.as_mut() {
                        let hash = hashes.get(cell).copied().unwrap_or(0);
                        journal
                            .append_cell(hash, &complete)
                            .map_err(|e| io_err(journal.path(), e))?;
                    }
                }
                builder.fold_cell(cell, outcomes);
            }
        }
    }

    Ok((builder.finish(), stats))
}

/// Runs the whole fleet in memory: validates the spec, builds the shared
/// context, fans every run over a [`WorkerPool`] of `threads` workers,
/// and folds outcomes in canonical order into a [`FleetReport`]. The
/// report is bit-identical for every `threads` value. (The persistence
/// layers live behind [`run_fleet_with`].)
pub fn run_fleet(spec: &FleetSpec, threads: usize) -> Result<FleetReport, SpecError> {
    match run_fleet_with(spec, &FleetRunOptions::new(threads)) {
        Ok((report, _)) => Ok(report),
        Err(FleetError::Spec(e)) => Err(e),
        // Unreachable without cache/journal options, but mapped anyway.
        Err(e @ FleetError::Io { .. }) => Err(SpecError::new(e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CellKey, GripSpec, MapSpec, ScenarioSpec};
    use raceloc_faults::FaultSchedule;

    fn micro_spec() -> FleetSpec {
        FleetSpec {
            name: "micro".into(),
            master_seed: 9,
            replicates: 1,
            duration_s: 1.5,
            particles: 80,
            beams: 61,
            success_lat_cm: 100.0,
            maps: vec![MapSpec {
                name: "m0".into(),
                fourier_seed: 33,
                half_width: 1.25,
                mean_radius: 6.0,
            }],
            grips: vec![GripSpec {
                name: "HQ".into(),
                mu: 1.0,
            }],
            scenarios: vec![ScenarioSpec {
                name: "nominal".into(),
                schedule: FaultSchedule::builder().seed(1).build().expect("valid"),
                measure_from: 0,
                recovery_budget: None,
            }],
            budgets: vec![0],
            methods: vec![EvalMethod::DeadReckoning],
        }
    }

    #[test]
    fn execute_run_is_pure_in_the_descriptor() {
        let spec = micro_spec();
        let ctx = FleetCtx::build(&spec);
        let desc = spec.runs()[0];
        let a = execute_run(&spec, desc, &ctx);
        let b = execute_run(&spec, desc, &ctx);
        assert_eq!(a, b, "same descriptor must give a bit-identical outcome");
        assert!(a.steps > 30, "1.5 s at 40 Hz");
        assert!(a.finite);
        assert_eq!(a.pct_nominal, 1.0, "dead reckoning has no detectors");
        assert!(a.p95_err_cm <= a.max_err_cm + 1e-12);
        assert!(!a.counters.is_empty(), "world counters recorded");
    }

    #[test]
    fn unresolved_axes_do_not_panic() {
        let spec = micro_spec();
        let ctx = FleetCtx::build(&spec);
        let mut desc = spec.runs()[0];
        desc.key = CellKey {
            map: 7,
            grip: 0,
            scenario: 0,
            budget: 0,
            method: 0,
        };
        let out = execute_run(&spec, desc, &ctx);
        assert!(!out.success);
        assert!(!out.finite);
    }

    #[test]
    fn fleet_outcomes_are_identical_across_thread_counts() {
        let spec = micro_spec();
        let one = run_fleet(&spec, 1).expect("valid spec");
        let two = run_fleet(&spec, 2).expect("valid spec");
        assert_eq!(
            format!("{}", one.to_json()),
            format!("{}", two.to_json()),
            "report must not depend on pool width"
        );
    }
}
