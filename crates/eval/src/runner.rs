//! Fleet execution: one closed-loop simulation per run, fanned over the
//! persistent worker pool, reduced to deterministic per-run outcomes.
//!
//! Runs execute under **oracle control** (the car drives ground truth) so
//! every localizer of a cell sees the identical trajectory and fault
//! exposure. Each job pins its inner simulator and particle pipeline to
//! one thread; the pool's thread count only fans *runs* out, and because
//! every outcome is a pure function of its [`RunDesc`], the assembled
//! outcome vector is bit-identical for any thread count and any
//! job-completion order (rule R3 — `tests/fleet_determinism.rs` enforces
//! this end to end).

use std::sync::Arc;

use raceloc_core::localizer::DeadReckoning;
use raceloc_core::{stats, stream_keys, DeadlineConfig, Health, Rng64};
use raceloc_map::Track;
use raceloc_obs::Telemetry;
use raceloc_par::{FnJob, WorkerPool};
use raceloc_pf::{HealthPolicy, KldConfig, RecoveryConfig, SynPf, SynPfConfig};
use raceloc_range::{ArtifactParams, ArtifactStore, MapArtifacts};
use raceloc_sim::{SimLog, World, WorldConfig};
use raceloc_slam::{CartoLocalizer, CartoLocalizerConfig, SlamHealthPolicy};

use crate::aggregate::FleetReport;
use crate::spec::{EvalMethod, FleetSpec, RunDesc, SpecError};

/// Shared immutable resources of one evaluation map: built once per
/// fleet, shared by every job on the map through `Arc` (the range LUT in
/// particular is far too expensive to rebuild per run).
#[derive(Debug, Clone)]
pub struct MapResources {
    /// The generated track (grid + reference lines).
    pub track: Arc<Track>,
    /// The shared artifact bundle (grid + EDT + lazy range LUT) over the
    /// track's grid, deduplicated by content key across identical maps.
    pub artifacts: Arc<MapArtifacts>,
}

/// The read-only pool context every fleet job executes against, indexed
/// by [`crate::spec::CellKey::map`].
#[derive(Debug, Clone)]
pub struct FleetCtx {
    /// Per-map shared resources, in [`FleetSpec::maps`] order.
    pub maps: Vec<MapResources>,
}

impl FleetCtx {
    /// Builds every map of the spec and its artifact bundle (the
    /// expensive, run-once part of a fleet). Bundles come out of one
    /// [`ArtifactStore`], so specs listing the same map twice share a
    /// single EDT + LUT build.
    pub fn build(spec: &FleetSpec) -> Self {
        let store = ArtifactStore::new();
        Self {
            maps: spec
                .maps
                .iter()
                .map(|m| {
                    let track = m.build_track();
                    let artifacts = store.get_or_build(&track.grid, ArtifactParams::default());
                    MapResources {
                        track: Arc::new(track),
                        artifacts,
                    }
                })
                .collect(),
        }
    }
}

/// The deterministic outcome of one simulation run. Carries no wall-clock
/// fields; every field is a pure function of the run's [`RunDesc`] and
/// the spec.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The run's linear index (its scatter-back slot).
    pub index: usize,
    /// Scan corrections actually executed.
    pub steps: usize,
    /// Translation RMSE of the estimate vs ground truth \[cm\].
    pub rmse_cm: f64,
    /// 95th percentile of the per-step translation error \[cm\].
    pub p95_err_cm: f64,
    /// Worst translation error \[cm\].
    pub max_err_cm: f64,
    /// Mean |signed-lateral(est) − signed-lateral(truth)| w.r.t. the
    /// raceline \[cm\] — the localization-induced lateral error, the
    /// quantity that steers the car off line when the estimate is wrong.
    pub mean_lat_err_cm: f64,
    /// Corrections from the scenario's `measure_from` until health settles
    /// at Nominal for the rest of the run (see `bench::faults` for the
    /// exact convention); `None` when the run ends still non-Nominal.
    pub recovery_steps: Option<u64>,
    /// Fraction of corrections spent in [`Health::Nominal`].
    pub pct_nominal: f64,
    /// Whether the ground-truth run aborted in a crash.
    pub crashed: bool,
    /// Whether every pose estimate was finite.
    pub finite: bool,
    /// Finite, crash-free, and mean lateral error within
    /// [`FleetSpec::success_lat_cm`].
    pub success: bool,
    /// Telemetry counters recorded during the run (event counts only —
    /// never spans or wall-clock), sorted by name.
    pub counters: Vec<(&'static str, u64)>,
}

impl RunOutcome {
    /// The outcome of a run whose axes could not be resolved against the
    /// context — unreachable after [`FleetSpec::validate`], but kept as a
    /// non-panicking fallback (rule R1).
    fn unresolved(index: usize) -> Self {
        Self {
            index,
            steps: 0,
            rmse_cm: f64::INFINITY,
            p95_err_cm: f64::INFINITY,
            max_err_cm: f64::INFINITY,
            mean_lat_err_cm: f64::INFINITY,
            recovery_steps: None,
            pct_nominal: 0.0,
            crashed: false,
            finite: false,
            success: false,
            counters: Vec::new(),
        }
    }
}

/// Executes one run of the fleet: builds the world for the run's map,
/// grip, scenario, and derived seed, runs the localizer closed-loop under
/// oracle control, and reduces the log. Pure in `(spec, desc)`; the
/// context only caches what the spec already determines.
pub fn execute_run(spec: &FleetSpec, desc: RunDesc, ctx: &FleetCtx) -> RunOutcome {
    let (Some(res), Some(grip), Some(scenario), Some(&budget), Some(method)) = (
        ctx.maps.get(desc.key.map),
        spec.grips.get(desc.key.grip),
        spec.scenarios.get(desc.key.scenario),
        spec.budgets.get(desc.key.budget),
        spec.methods.get(desc.key.method).copied(),
    ) else {
        return RunOutcome::unresolved(desc.index);
    };

    let mut wcfg = WorldConfig::default();
    wcfg.vehicle.mu = grip.mu;
    wcfg.seed = desc.world_seed;
    wcfg.lidar.beams = spec.beams;
    // Inner parallelism stays off: the fleet's unit of fan-out is the run.
    wcfg.threads = 1;

    let tel = Telemetry::enabled();
    let mut world = World::new((*res.track).clone(), wcfg);
    world.set_telemetry(tel.clone());
    if !scenario.schedule.is_empty() {
        world.set_fault_schedule(scenario.schedule.clone());
    }

    // The filter seed is derived from the world seed (not equal to it) so
    // filter noise and world noise are independent streams.
    let filter_seed = Rng64::stream(desc.world_seed, stream_keys::eval_filter()).next_u64();

    let log = match method {
        EvalMethod::SynPf => {
            let mut builder = SynPfConfig::builder()
                .particles(spec.particles)
                .threads(1)
                .seed(filter_seed)
                .recovery(RecoveryConfig::default())
                .health(HealthPolicy::default());
            // A positive budget arms the deadline controller; KLD gives it
            // the particle-count knob the ladder's rungs scale (DESIGN.md
            // §14). Budget 0 keeps the historical uncapped pipeline.
            if budget > 0 {
                builder = builder
                    .kld(KldConfig {
                        min_particles: (spec.particles / 4).max(50),
                        max_particles: spec.particles,
                        ..KldConfig::default()
                    })
                    .deadline(DeadlineConfig {
                        budget_units: budget,
                        ..DeadlineConfig::default()
                    });
            }
            let Ok(config) = builder.build() else {
                return RunOutcome::unresolved(desc.index);
            };
            let mut pf = SynPf::from_artifacts(Arc::clone(&res.artifacts), config);
            pf.enable_recovery(&res.track.grid);
            pf.set_telemetry(tel.clone());
            let log = world.run_with_oracle_control(&mut pf, spec.duration_s);
            if let Some(ctl) = pf.deadline() {
                // Where the ladder settled when the run ended — lets the
                // report distinguish "degraded and recovered" from "pinned
                // at the bottom rung".
                tel.add("deadline.final_rung", ctl.rung() as u64);
            }
            log
        }
        EvalMethod::Cartographer => {
            let config = CartoLocalizerConfig {
                health: Some(SlamHealthPolicy::default()),
                ..CartoLocalizerConfig::default()
            };
            let mut carto = CartoLocalizer::from_artifacts(&res.artifacts, config);
            carto.set_telemetry(tel.clone());
            world.run_with_oracle_control(&mut carto, spec.duration_s)
        }
        EvalMethod::DeadReckoning => {
            let mut dr = DeadReckoning::new();
            world.run_with_oracle_control(&mut dr, spec.duration_s)
        }
    };

    reduce(spec, desc, res, scenario.measure_from, &tel, &log)
}

/// Reduces one run log to its deterministic outcome.
fn reduce(
    spec: &FleetSpec,
    desc: RunDesc,
    res: &MapResources,
    measure_from: u64,
    tel: &Telemetry,
    log: &SimLog,
) -> RunOutcome {
    let n = log.samples.len();
    let denom = n.max(1) as f64;
    let mut sq = 0.0;
    let mut max_err = 0.0f64;
    let mut lat_sum = 0.0;
    let mut finite = true;
    let mut nominal = 0usize;
    let mut errors_cm = Vec::with_capacity(n);
    let raceline = &res.track.raceline;
    for s in &log.samples {
        if !(s.est_pose.x.is_finite() && s.est_pose.y.is_finite() && s.est_pose.theta.is_finite()) {
            finite = false;
        }
        let e = s.true_pose.dist(s.est_pose);
        sq += e * e;
        max_err = max_err.max(e);
        errors_cm.push(100.0 * e);
        let lat_true = raceline.project(s.true_pose.translation()).1;
        let lat_est = raceline.project(s.est_pose.translation()).1;
        if lat_est.is_finite() {
            lat_sum += (lat_est - lat_true).abs();
        }
        if s.health == Health::Nominal {
            nominal += 1;
        }
    }
    let last_bad = log
        .samples
        .iter()
        .enumerate()
        .skip(measure_from as usize)
        .filter(|(_, s)| s.health != Health::Nominal)
        .map(|(i, _)| i)
        .next_back();
    let recovery_steps = match last_bad {
        None => Some(0),
        Some(i) if i + 1 < n => Some((i + 1) as u64 - measure_from),
        Some(_) => None,
    };
    let rmse_cm = 100.0 * (sq / denom).sqrt();
    let mean_lat_err_cm = 100.0 * lat_sum / denom;
    // Success is judged on the paper's primary error axis: did the
    // estimate keep the car laterally on line, on average, for the whole
    // run? (Whole-run translation RMSE punishes the corridor's
    // longitudinal ambiguity after a global re-init, which the paper
    // treats separately via recovery latency.)
    let success = finite && !log.crashed && mean_lat_err_cm <= spec.success_lat_cm;
    // Fleet-level event counters (deterministic — no wall clock): these
    // roll up next to whatever the localizer and fault tracker recorded.
    tel.add("eval.runs", 1);
    tel.add("eval.steps", n as u64);
    if log.crashed {
        tel.add("eval.crashes", 1);
    }
    if !finite {
        tel.add("eval.nonfinite", 1);
    }
    if success {
        tel.add("eval.successes", 1);
    }
    let snap = tel.snapshot();
    let mut counters: Vec<(&'static str, u64)> = snap.counters().collect();
    counters.sort_unstable_by_key(|&(name, _)| name);
    RunOutcome {
        index: desc.index,
        steps: n,
        rmse_cm,
        p95_err_cm: stats::quantile(&errors_cm, 0.95).unwrap_or(0.0),
        max_err_cm: 100.0 * max_err,
        mean_lat_err_cm,
        recovery_steps,
        pct_nominal: nominal as f64 / denom,
        crashed: log.crashed,
        finite,
        success,
        counters,
    }
}

/// Runs the whole fleet: validates the spec, builds the shared context,
/// fans every run over a [`WorkerPool`] of `threads` workers, scatters
/// outcomes back by job tag, and folds them in canonical run order into a
/// [`FleetReport`]. The report is bit-identical for every `threads` value.
pub fn run_fleet(spec: &FleetSpec, threads: usize) -> Result<FleetReport, SpecError> {
    spec.validate()?;
    let runs = spec.runs();
    let shared = Arc::new(spec.clone());
    let mut jobs: Vec<FnJob<FleetCtx, RunOutcome>> = runs
        .iter()
        .map(|r| {
            let spec = Arc::clone(&shared);
            let desc = *r;
            FnJob::new(desc.index, move |ctx: &FleetCtx| {
                execute_run(&spec, desc, ctx)
            })
        })
        .collect();

    let pool: WorkerPool<FleetCtx, FnJob<FleetCtx, RunOutcome>> =
        WorkerPool::new(FleetCtx::build(spec), threads.max(1));
    pool.run_batch(&mut jobs);

    // run_batch hands jobs back in unspecified order; scatter by tag, then
    // fold in canonical run order so aggregation never sees pool order.
    let mut outcomes: Vec<Option<RunOutcome>> = runs.iter().map(|_| None).collect();
    for job in &mut jobs {
        let tag = job.tag();
        let out = job.take();
        if let Some(slot) = outcomes.get_mut(tag) {
            *slot = out;
        }
    }
    Ok(FleetReport::from_outcomes(spec, &runs, outcomes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CellKey, GripSpec, MapSpec, ScenarioSpec};
    use raceloc_faults::FaultSchedule;

    fn micro_spec() -> FleetSpec {
        FleetSpec {
            name: "micro".into(),
            master_seed: 9,
            replicates: 1,
            duration_s: 1.5,
            particles: 80,
            beams: 61,
            success_lat_cm: 100.0,
            maps: vec![MapSpec {
                name: "m0".into(),
                fourier_seed: 33,
                half_width: 1.25,
                mean_radius: 6.0,
            }],
            grips: vec![GripSpec {
                name: "HQ".into(),
                mu: 1.0,
            }],
            scenarios: vec![ScenarioSpec {
                name: "nominal".into(),
                schedule: FaultSchedule::builder().seed(1).build().expect("valid"),
                measure_from: 0,
                recovery_budget: None,
            }],
            budgets: vec![0],
            methods: vec![EvalMethod::DeadReckoning],
        }
    }

    #[test]
    fn execute_run_is_pure_in_the_descriptor() {
        let spec = micro_spec();
        let ctx = FleetCtx::build(&spec);
        let desc = spec.runs()[0];
        let a = execute_run(&spec, desc, &ctx);
        let b = execute_run(&spec, desc, &ctx);
        assert_eq!(a, b, "same descriptor must give a bit-identical outcome");
        assert!(a.steps > 30, "1.5 s at 40 Hz");
        assert!(a.finite);
        assert_eq!(a.pct_nominal, 1.0, "dead reckoning has no detectors");
        assert!(a.p95_err_cm <= a.max_err_cm + 1e-12);
        assert!(!a.counters.is_empty(), "world counters recorded");
    }

    #[test]
    fn unresolved_axes_do_not_panic() {
        let spec = micro_spec();
        let ctx = FleetCtx::build(&spec);
        let mut desc = spec.runs()[0];
        desc.key = CellKey {
            map: 7,
            grip: 0,
            scenario: 0,
            budget: 0,
            method: 0,
        };
        let out = execute_run(&spec, desc, &ctx);
        assert!(!out.success);
        assert!(!out.finite);
    }

    #[test]
    fn fleet_outcomes_are_identical_across_thread_counts() {
        let spec = micro_spec();
        let one = run_fleet(&spec, 1).expect("valid spec");
        let two = run_fleet(&spec, 2).expect("valid spec");
        assert_eq!(
            format!("{}", one.to_json()),
            format!("{}", two.to_json()),
            "report must not depend on pool width"
        );
    }
}
