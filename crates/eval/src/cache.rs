//! Content-addressed per-cell result cache (DESIGN.md §15).
//!
//! The fleet engine's unit of reuse is the **cell**: all replicates of one
//! `(map, grip, scenario, budget, method)` combination. A cell's outcomes
//! are a pure function of (a) the code that executes them and (b) exactly
//! the spec content the cell can observe — the global run parameters, the
//! cell's own axis entries, and the derived per-replicate world seeds
//! (which are where axis *indices* enter, so re-ordering an axis
//! invalidates precisely the cells whose seeds moved). [`cell_hash`] folds
//! all of that through the same FNV-1a construction the
//! [`raceloc_range::ArtifactStore`] content keys use, and [`CellCache`]
//! stores one JSON file per hash under a cache directory.
//!
//! Editing a spec therefore re-runs exactly the cells whose inputs
//! changed: touch one grip's `mu` and only that grip's cells miss; append
//! a new scenario and every existing cell still hits
//! (`tests/cache_equivalence.rs` pins both properties).
//!
//! **Staleness contract:** the hash covers the *spec*, not the compiled
//! behavior of the simulator or localizers. [`RESULT_REVISION`] (folded
//! into every hash together with the crate version) must be bumped in the
//! same change as any behavioral edit to the sim/localizer/fault stack.
//! CI never persists the cache across workflow runs, so a forgotten bump
//! can only go stale on a developer machine — `rm -r` the cache directory
//! when in doubt.

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use raceloc_obs::Json;
use raceloc_par::lock_unpoisoned;

use crate::runner::RunOutcome;
use crate::spec::{CellKey, FleetSpec};

/// Schema/behavior revision folded into every cell hash. Bump this (it is
/// deliberately a reviewable literal) whenever a change alters what
/// [`crate::execute_run`] computes for an unchanged spec — new outcome
/// fields, sim/localizer behavior changes, seed-derivation changes.
pub const RESULT_REVISION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit accumulator over little-endian byte
/// streams — the same construction (and constants) as the
/// `ArtifactStore` content keys, shared here for spec-cell hashing.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// A fresh accumulator at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Folds raw bytes in.
    pub fn bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds a `u64` in (little-endian).
    pub fn u64(self, v: u64) -> Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Folds an `f64` in by its little-endian bit pattern (platform
    /// stable; distinguishes `-0.0` from `0.0` and every NaN payload).
    pub fn f64(self, v: f64) -> Self {
        self.u64(v.to_bits())
    }

    /// Folds a length-prefixed string in (prefixing prevents ambiguous
    /// concatenations such as `"ab" + "c"` vs `"a" + "bc"`).
    pub fn str(self, s: &str) -> Self {
        self.u64(s.len() as u64).bytes(s.as_bytes())
    }

    /// The accumulated digest.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// The digest of the *code* side of the cache key: the result-schema
/// revision plus the crate version, so a rebuilt workspace never serves
/// results recorded by a different implementation.
pub fn code_fingerprint() -> u64 {
    Fnv64::new()
        .str("raceloc-eval.cell")
        .u64(RESULT_REVISION as u64)
        .str(env!("CARGO_PKG_VERSION"))
        .finish()
}

/// The content hash of one cell: code fingerprint + the global run
/// parameters + the cell's own axis entries (serialized through their
/// canonical JSON) + the derived world seed of every replicate.
///
/// The world seeds are the load-bearing part: they are a pure function of
/// `(master_seed, map index, grip index, scenario index, replicate)`, so
/// any edit that moves a cell's position along a seed-relevant axis
/// changes its hash, while edits to *other* axis entries leave it alone.
pub fn cell_hash(spec: &FleetSpec, key: CellKey) -> u64 {
    let mut h = Fnv64::new()
        .u64(code_fingerprint())
        .u64(spec.master_seed)
        .u64(spec.replicates as u64)
        .f64(spec.duration_s)
        .u64(spec.particles as u64)
        .u64(spec.beams as u64)
        .f64(spec.success_lat_cm);
    h = match spec.maps.get(key.map) {
        Some(m) => h.str(&format!("{}", m.to_json())),
        None => h.str("<map out of range>"),
    };
    h = match spec.grips.get(key.grip) {
        Some(g) => h.str(&format!("{}", g.to_json())),
        None => h.str("<grip out of range>"),
    };
    h = match spec.scenarios.get(key.scenario) {
        Some(s) => h.str(&format!("{}", s.to_json())),
        None => h.str("<scenario out of range>"),
    };
    h = h.u64(spec.budgets.get(key.budget).copied().unwrap_or(u64::MAX));
    h = h.str(
        spec.methods
            .get(key.method)
            .map_or("<method out of range>", |m| m.name()),
    );
    for replicate in 0..spec.replicates {
        h = h.u64(spec.world_seed(key.map, key.grip, key.scenario, replicate));
    }
    h.finish()
}

/// A whole-spec digest (the journal header's provenance field): the code
/// fingerprint folded with every cell hash in canonical order.
pub fn spec_hash(spec: &FleetSpec) -> u64 {
    let mut h = Fnv64::new().u64(code_fingerprint());
    for key in spec.cells() {
        h = h.u64(cell_hash(spec, key));
    }
    h.finish()
}

/// Interns a counter name so deserialized outcomes can re-enter the
/// `&'static str`-keyed telemetry machinery. The leak is bounded by the
/// number of *distinct* counter names ever loaded (in practice the
/// telemetry catalog's size), and repeated loads of the same name return
/// the same allocation.
pub(crate) fn intern_counter(name: &str) -> &'static str {
    static POOL: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut pool = lock_unpoisoned(&POOL);
    if let Some(found) = pool.get(name) {
        return found;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    pool.insert(leaked);
    leaked
}

/// On-disk cache-entry schema version (independent of [`RESULT_REVISION`]:
/// this one only covers the JSON layout of a stored entry).
const ENTRY_VERSION: u64 = 1;

/// A content-addressed directory of cached cell results: one
/// `cell-<hash>.json` file per cell hash, written atomically
/// (temp-file + rename) so an interrupted store can never be half-read.
#[derive(Debug, Clone)]
pub struct CellCache {
    dir: PathBuf,
}

impl CellCache {
    /// Opens (creating if needed) a cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("cell-{hash:016x}.json"))
    }

    /// Loads the cached outcomes for `hash`, or `None` when the entry is
    /// absent, unreadable, corrupt, or does not carry exactly
    /// `expected_runs` outcomes (a corrupt entry is a miss, never an
    /// error: the cell simply re-runs and overwrites it). Returned
    /// outcomes carry their *replicate position* as `index`; the caller
    /// rebases them into the current spec's run numbering.
    pub fn load(&self, hash: u64, expected_runs: usize) -> Option<Vec<RunOutcome>> {
        let text = std::fs::read_to_string(self.entry_path(hash)).ok()?;
        parse_entry(&text, hash, expected_runs)
    }

    /// Whether an entry for `hash` exists on disk (without parsing it).
    pub fn contains(&self, hash: u64) -> bool {
        self.entry_path(hash).exists()
    }

    /// Stores one cell's outcomes under `hash`, atomically.
    pub fn store(&self, hash: u64, outcomes: &[RunOutcome]) -> io::Result<()> {
        let doc = entry_json(hash, outcomes);
        let tmp = self.dir.join(format!("cell-{hash:016x}.json.tmp"));
        std::fs::write(&tmp, format!("{doc}\n"))?;
        std::fs::rename(&tmp, self.entry_path(hash))
    }

    /// Number of entries currently on disk.
    pub fn len(&self) -> usize {
        let Ok(read) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        read.filter_map(Result::ok)
            .filter(|e| {
                e.file_name()
                    .to_str()
                    .is_some_and(|n| n.starts_with("cell-") && n.ends_with(".json"))
            })
            .count()
    }

    /// Whether the cache directory holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Serializes one cache entry (also the journal's per-cell payload).
pub(crate) fn entry_json(hash: u64, outcomes: &[RunOutcome]) -> Json {
    Json::Obj(vec![
        ("version".into(), Json::num(ENTRY_VERSION as f64)),
        ("cell_hash".into(), Json::Str(format!("{hash:016x}"))),
        (
            "outcomes".into(),
            Json::Arr(outcomes.iter().map(RunOutcome::to_cache_json).collect()),
        ),
    ])
}

/// Parses one cache entry, validating version, hash echo, and run count.
pub(crate) fn parse_entry(text: &str, hash: u64, expected_runs: usize) -> Option<Vec<RunOutcome>> {
    let doc = Json::parse(text.trim_end()).ok()?;
    parse_entry_doc(&doc, Some(hash), expected_runs)
}

/// Parses an already-parsed entry document. `hash` of `None` skips the
/// hash-echo check and returns outcomes for whatever hash the entry
/// declares (the journal loader's mode; it indexes by the declared hash).
pub(crate) fn parse_entry_doc(
    doc: &Json,
    hash: Option<u64>,
    expected_runs: usize,
) -> Option<Vec<RunOutcome>> {
    if doc.get("version").and_then(Json::as_u64) != Some(ENTRY_VERSION) {
        return None;
    }
    let declared = entry_doc_hash(doc)?;
    if hash.is_some_and(|h| h != declared) {
        return None;
    }
    let rows = doc.get("outcomes").and_then(Json::as_array)?;
    if rows.len() != expected_runs {
        return None;
    }
    rows.iter()
        .enumerate()
        .map(|(pos, row)| RunOutcome::from_cache_json(row, pos))
        .collect()
}

/// The hash a parsed entry document declares.
pub(crate) fn entry_doc_hash(doc: &Json) -> Option<u64> {
    let hex = doc.get("cell_hash").and_then(Json::as_str)?;
    u64::from_str_radix(hex, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::tests::tiny_spec;

    fn temp_cache(tag: &str) -> CellCache {
        let dir =
            std::env::temp_dir().join(format!("raceloc-eval-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CellCache::open(dir).expect("temp cache dir")
    }

    fn outcome(pos: usize) -> RunOutcome {
        RunOutcome {
            index: pos,
            steps: 60 + pos,
            rmse_cm: 12.5 + pos as f64,
            p95_err_cm: 20.0,
            max_err_cm: 31.25,
            mean_lat_err_cm: 4.5,
            recovery_steps: if pos.is_multiple_of(2) { Some(3) } else { None },
            pct_nominal: 0.975,
            crashed: false,
            finite: true,
            success: true,
            counters: vec![("eval.runs", 1), ("sim.scans", 60)],
        }
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // FNV-1a 64 of "a" and "foobar" (public reference values).
        assert_eq!(Fnv64::new().bytes(b"a").finish(), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(
            Fnv64::new().bytes(b"foobar").finish(),
            0x8594_4171_f739_67e8
        );
        // Length prefixing separates ambiguous concatenations.
        assert_ne!(
            Fnv64::new().str("ab").str("c").finish(),
            Fnv64::new().str("a").str("bc").finish()
        );
    }

    #[test]
    fn cell_hashes_are_stable_and_distinct() {
        let spec = tiny_spec();
        let cells = spec.cells();
        let hashes: Vec<u64> = cells.iter().map(|&k| cell_hash(&spec, k)).collect();
        let again: Vec<u64> = cells.iter().map(|&k| cell_hash(&spec, k)).collect();
        assert_eq!(hashes, again, "hashing must be pure in the spec");
        let mut dedup = hashes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), hashes.len(), "distinct cells, distinct hashes");
        assert_eq!(spec_hash(&spec), spec_hash(&spec));
    }

    #[test]
    fn editing_one_axis_entry_misses_only_its_cells() {
        let spec = tiny_spec();
        let mut edited = spec.clone();
        edited.grips[1].mu = 0.5;
        let cells = spec.cells();
        for (i, &key) in cells.iter().enumerate() {
            let before = cell_hash(&spec, key);
            let after = cell_hash(&edited, key);
            if key.grip == 1 {
                assert_ne!(before, after, "cell {i} must invalidate");
            } else {
                assert_eq!(before, after, "cell {i} must stay cached");
            }
        }
    }

    #[test]
    fn appending_an_axis_entry_keeps_existing_cells() {
        let spec = tiny_spec();
        let mut extended = spec.clone();
        extended.scenarios.push(crate::spec::ScenarioSpec {
            name: "extra".into(),
            schedule: raceloc_faults::FaultSchedule::builder()
                .seed(9)
                .build()
                .expect("valid"),
            measure_from: 0,
            recovery_budget: None,
        });
        for key in spec.cells() {
            assert_eq!(cell_hash(&spec, key), cell_hash(&extended, key));
        }
        assert_ne!(spec_hash(&spec), spec_hash(&extended));
    }

    #[test]
    fn master_seed_and_replicates_invalidate_everything() {
        let spec = tiny_spec();
        let mut reseeded = spec.clone();
        reseeded.master_seed ^= 1;
        let mut more_reps = spec.clone();
        more_reps.replicates += 1;
        for key in spec.cells() {
            let h = cell_hash(&spec, key);
            assert_ne!(h, cell_hash(&reseeded, key));
            assert_ne!(h, cell_hash(&more_reps, key));
        }
    }

    #[test]
    fn store_then_load_round_trips_outcomes() {
        let cache = temp_cache("roundtrip");
        let outcomes = vec![outcome(0), outcome(1), outcome(2)];
        cache.store(0xDEAD_BEEF, &outcomes).expect("store");
        assert!(cache.contains(0xDEAD_BEEF));
        assert_eq!(cache.len(), 1);
        let back = cache.load(0xDEAD_BEEF, 3).expect("hit");
        assert_eq!(back, outcomes);
        assert!(
            cache.load(0xDEAD_BEEF, 2).is_none(),
            "run-count mismatch is a miss"
        );
        assert!(cache.load(0xBAD, 3).is_none(), "absent entry is a miss");
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let cache = temp_cache("corrupt");
        let path = cache.dir().join(format!("cell-{:016x}.json", 7u64));
        std::fs::write(&path, "{ not json").expect("write corrupt entry");
        assert!(cache.load(7, 1).is_none());
        // Wrong declared hash is also a miss.
        let doc = entry_json(8, &[outcome(0)]);
        std::fs::write(&path, format!("{doc}")).expect("write mismatched entry");
        assert!(cache.load(7, 1).is_none());
    }

    #[test]
    fn interning_is_idempotent() {
        let a = intern_counter("eval.test.counter");
        let b = intern_counter("eval.test.counter");
        assert!(std::ptr::eq(a, b), "same name, same allocation");
        assert_eq!(a, "eval.test.counter");
    }
}
