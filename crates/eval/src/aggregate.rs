//! Streaming aggregation of run outcomes into per-cell statistics and the
//! fleet report.
//!
//! Outcomes are folded strictly in canonical run order (the runner
//! scatters pool results back by job tag first), so the report — and its
//! serialized JSON — is bit-identical for any pool width and any
//! job-completion order.

use raceloc_core::stats;
use raceloc_metrics::wilson95;
use raceloc_obs::{CounterRollup, Json};

use crate::runner::RunOutcome;
use crate::spec::{FleetSpec, RunDesc};

/// Accumulates the outcomes of one cell's replicates.
#[derive(Debug, Clone, Default)]
pub struct CellAggregator {
    rmse_cm: Vec<f64>,
    lat_err_cm: Vec<f64>,
    recovery_steps: Vec<u64>,
    steps: u64,
    runs: u64,
    successes: u64,
    crashes: u64,
    nonfinite: u64,
    unrecovered: u64,
    missing: u64,
}

impl CellAggregator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one replicate's outcome in.
    pub fn push(&mut self, out: &RunOutcome) {
        self.runs += 1;
        self.steps += out.steps as u64;
        self.rmse_cm.push(out.rmse_cm);
        self.lat_err_cm.push(out.mean_lat_err_cm);
        if out.success {
            self.successes += 1;
        }
        if out.crashed {
            self.crashes += 1;
        }
        if !out.finite {
            self.nonfinite += 1;
        }
        match out.recovery_steps {
            Some(steps) => self.recovery_steps.push(steps),
            None => self.unrecovered += 1,
        }
    }

    /// Records a replicate whose outcome never arrived (a skipped or
    /// failed job); counts as a non-finite failure so it can never
    /// silently inflate a success rate.
    pub fn push_missing(&mut self) {
        self.runs += 1;
        self.missing += 1;
        self.nonfinite += 1;
    }

    /// Reduces the accumulated replicates to the cell's summary row.
    pub fn summarize(
        &self,
        map: &str,
        grip: &str,
        scenario: &str,
        budget: u64,
        method: &str,
    ) -> CellSummary {
        let iv = wilson95(self.successes, self.runs);
        let mean = |xs: &[f64]| {
            if xs.is_empty() {
                0.0
            } else {
                xs.iter().sum::<f64>() / xs.len() as f64
            }
        };
        let rec: Vec<f64> = self.recovery_steps.iter().map(|&s| s as f64).collect();
        CellSummary {
            map: map.to_string(),
            grip: grip.to_string(),
            scenario: scenario.to_string(),
            budget,
            method: method.to_string(),
            runs: self.runs,
            steps: self.steps,
            successes: self.successes,
            success_rate: iv.rate,
            success_lo: iv.lo,
            success_hi: iv.hi,
            mean_rmse_cm: mean(&self.rmse_cm),
            p95_rmse_cm: stats::quantile(&self.rmse_cm, 0.95).unwrap_or(0.0),
            max_rmse_cm: self.rmse_cm.iter().copied().fold(0.0, f64::max),
            mean_lat_err_cm: mean(&self.lat_err_cm),
            p95_lat_err_cm: stats::quantile(&self.lat_err_cm, 0.95).unwrap_or(0.0),
            recovered: self.recovery_steps.len() as u64,
            unrecovered: self.unrecovered,
            mean_recovery_steps: mean(&rec),
            max_recovery_steps: self.recovery_steps.iter().copied().max().unwrap_or(0),
            crashes: self.crashes,
            nonfinite: self.nonfinite,
            missing: self.missing,
        }
    }
}

/// One aggregated row of the fleet report: the statistics of every
/// replicate of one `(map, grip, scenario, budget, method)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// Map label.
    pub map: String,
    /// Grip label.
    pub grip: String,
    /// Scenario label.
    pub scenario: String,
    /// Per-step compute budget \[work units\]; `0` = uncapped.
    pub budget: u64,
    /// Localizer label.
    pub method: String,
    /// Replicates folded into the row.
    pub runs: u64,
    /// Total scan corrections across the replicates.
    pub steps: u64,
    /// Replicates that stayed finite, crash-free, and within the RMSE
    /// success threshold.
    pub successes: u64,
    /// `successes / runs`.
    pub success_rate: f64,
    /// Wilson 95% lower bound on the true success rate.
    pub success_lo: f64,
    /// Wilson 95% upper bound on the true success rate.
    pub success_hi: f64,
    /// Mean of the per-replicate translation RMSE \[cm\].
    pub mean_rmse_cm: f64,
    /// 95th percentile of the per-replicate RMSE \[cm\].
    pub p95_rmse_cm: f64,
    /// Worst per-replicate RMSE \[cm\].
    pub max_rmse_cm: f64,
    /// Mean of the per-replicate lateral estimation error \[cm\].
    pub mean_lat_err_cm: f64,
    /// 95th percentile of the per-replicate lateral error \[cm\].
    pub p95_lat_err_cm: f64,
    /// Replicates whose health settled back at Nominal.
    pub recovered: u64,
    /// Replicates that ended still non-Nominal.
    pub unrecovered: u64,
    /// Mean recovery latency over the recovered replicates \[corrections\].
    pub mean_recovery_steps: f64,
    /// Worst recovery latency \[corrections\].
    pub max_recovery_steps: u64,
    /// Replicates whose ground-truth run crashed.
    pub crashes: u64,
    /// Replicates with a non-finite pose estimate (includes `missing`).
    pub nonfinite: u64,
    /// Replicates whose outcome never arrived from the pool.
    pub missing: u64,
}

impl CellSummary {
    /// Serializes the row (stable key order).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("map".into(), Json::Str(self.map.clone())),
            ("grip".into(), Json::Str(self.grip.clone())),
            ("scenario".into(), Json::Str(self.scenario.clone())),
            ("budget".into(), Json::num(self.budget as f64)),
            ("method".into(), Json::Str(self.method.clone())),
            ("runs".into(), Json::num(self.runs as f64)),
            ("steps".into(), Json::num(self.steps as f64)),
            ("successes".into(), Json::num(self.successes as f64)),
            ("success_rate".into(), Json::num(self.success_rate)),
            ("success_lo".into(), Json::num(self.success_lo)),
            ("success_hi".into(), Json::num(self.success_hi)),
            ("mean_rmse_cm".into(), Json::num(self.mean_rmse_cm)),
            ("p95_rmse_cm".into(), Json::num(self.p95_rmse_cm)),
            ("max_rmse_cm".into(), Json::num(self.max_rmse_cm)),
            ("mean_lat_err_cm".into(), Json::num(self.mean_lat_err_cm)),
            ("p95_lat_err_cm".into(), Json::num(self.p95_lat_err_cm)),
            ("recovered".into(), Json::num(self.recovered as f64)),
            ("unrecovered".into(), Json::num(self.unrecovered as f64)),
            (
                "mean_recovery_steps".into(),
                Json::num(self.mean_recovery_steps),
            ),
            (
                "max_recovery_steps".into(),
                Json::num(self.max_recovery_steps as f64),
            ),
            ("crashes".into(), Json::num(self.crashes as f64)),
            ("nonfinite".into(), Json::num(self.nonfinite as f64)),
            ("missing".into(), Json::num(self.missing as f64)),
        ])
    }
}

/// The aggregated result of one fleet: spec echo, per-cell rows in
/// canonical cell order, and the fleet-wide telemetry counter rollup.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Fleet label (from the spec).
    pub name: String,
    /// Master seed the fleet derived every world seed from.
    pub master_seed: u64,
    /// Replicates per cell.
    pub replicates: u32,
    /// Total runs folded into the report.
    pub total_runs: u64,
    /// Per-cell rows, in [`FleetSpec::cells`] order.
    pub cells: Vec<CellSummary>,
    /// Telemetry counters summed over every run (event counts only).
    pub counters: CounterRollup,
}

impl FleetReport {
    /// Folds scattered-back outcomes into the report. `outcomes` must be
    /// indexed by run index ([`RunDesc::index`]); a `None` entry counts as
    /// a missing, failed replicate.
    pub fn from_outcomes(
        spec: &FleetSpec,
        runs: &[RunDesc],
        outcomes: Vec<Option<RunOutcome>>,
    ) -> FleetReport {
        let cells = spec.cells();
        let mut aggs: Vec<CellAggregator> = cells.iter().map(|_| CellAggregator::new()).collect();
        let mut counters = CounterRollup::new();
        let mut total_runs = 0u64;
        for desc in runs {
            total_runs += 1;
            let Some(agg) = aggs.get_mut(desc.cell) else {
                continue;
            };
            match outcomes.get(desc.index).and_then(|o| o.as_ref()) {
                Some(out) => {
                    agg.push(out);
                    counters.absorb_counts(&out.counters);
                }
                None => agg.push_missing(),
            }
        }
        let label =
            |names: &[String], i: usize| -> String { names.get(i).cloned().unwrap_or_default() };
        let map_names: Vec<String> = spec.maps.iter().map(|m| m.name.clone()).collect();
        let grip_names: Vec<String> = spec.grips.iter().map(|g| g.name.clone()).collect();
        let scen_names: Vec<String> = spec.scenarios.iter().map(|s| s.name.clone()).collect();
        let rows = cells
            .iter()
            .zip(aggs.iter())
            .map(|(key, agg)| {
                agg.summarize(
                    &label(&map_names, key.map),
                    &label(&grip_names, key.grip),
                    &label(&scen_names, key.scenario),
                    spec.budgets.get(key.budget).copied().unwrap_or(0),
                    spec.methods.get(key.method).map(|m| m.name()).unwrap_or(""),
                )
            })
            .collect();
        FleetReport {
            name: spec.name.clone(),
            master_seed: spec.master_seed,
            replicates: spec.replicates,
            total_runs,
            cells: rows,
            counters,
        }
    }

    /// Looks a cell row up by its four labels; with more than one budget
    /// in the spec this returns the first-listed budget's row (use
    /// [`FleetReport::cells`] directly to sweep the budget axis).
    pub fn cell(
        &self,
        map: &str,
        grip: &str,
        scenario: &str,
        method: &str,
    ) -> Option<&CellSummary> {
        self.cells.iter().find(|c| {
            c.map == map && c.grip == grip && c.scenario == scenario && c.method == method
        })
    }

    /// The rows of one `(map, grip, scenario)` group, in method order.
    pub fn group<'a>(
        &'a self,
        map: &'a str,
        grip: &'a str,
        scenario: &'a str,
    ) -> impl Iterator<Item = &'a CellSummary> + 'a {
        self.cells
            .iter()
            .filter(move |c| c.map == map && c.grip == grip && c.scenario == scenario)
    }

    /// Serializes the report (stable key order; no wall-clock fields).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("master_seed".into(), Json::num(self.master_seed as f64)),
            ("replicates".into(), Json::num(self.replicates as f64)),
            ("total_runs".into(), Json::num(self.total_runs as f64)),
            (
                "cells".into(),
                Json::Arr(self.cells.iter().map(CellSummary::to_json).collect()),
            ),
            ("counters".into(), self.counters.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(index: usize, rmse: f64, success: bool) -> RunOutcome {
        RunOutcome {
            index,
            steps: 100,
            rmse_cm: rmse,
            p95_err_cm: rmse * 1.5,
            max_err_cm: rmse * 2.0,
            mean_lat_err_cm: rmse * 0.6,
            recovery_steps: Some(4),
            pct_nominal: 0.95,
            crashed: false,
            finite: true,
            success,
            counters: vec![("sim.scans", 100)],
        }
    }

    #[test]
    fn aggregator_reduces_replicates() {
        let mut agg = CellAggregator::new();
        agg.push(&outcome(0, 10.0, true));
        agg.push(&outcome(1, 20.0, true));
        agg.push(&outcome(2, 60.0, false));
        let row = agg.summarize("m", "HQ", "nominal", 0, "SynPF");
        assert_eq!(row.runs, 3);
        assert_eq!(row.successes, 2);
        assert!((row.mean_rmse_cm - 30.0).abs() < 1e-12);
        assert!((row.max_rmse_cm - 60.0).abs() < 1e-12);
        assert_eq!(row.recovered, 3);
        assert_eq!(row.max_recovery_steps, 4);
        assert!(row.success_lo < row.success_rate && row.success_rate < row.success_hi);
    }

    #[test]
    fn missing_outcomes_count_as_failures() {
        let mut agg = CellAggregator::new();
        agg.push(&outcome(0, 10.0, true));
        agg.push_missing();
        let row = agg.summarize("m", "HQ", "nominal", 0, "SynPF");
        assert_eq!(row.runs, 2);
        assert_eq!(row.successes, 1);
        assert_eq!(row.missing, 1);
        assert_eq!(row.nonfinite, 1);
        assert!((row.success_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn report_json_is_stable_and_parseable() {
        let mut agg = CellAggregator::new();
        agg.push(&outcome(0, 10.0, true));
        let row = agg.summarize("m", "HQ", "nominal", 0, "SynPF");
        let report = FleetReport {
            name: "t".into(),
            master_seed: 1,
            replicates: 1,
            total_runs: 1,
            cells: vec![row],
            counters: CounterRollup::new(),
        };
        let a = format!("{}", report.to_json());
        let b = format!("{}", report.clone().to_json());
        assert_eq!(a, b);
        let doc = Json::parse(&a).expect("valid JSON");
        assert_eq!(doc.get("total_runs").and_then(Json::as_u64), Some(1));
        let cells = doc.get("cells").and_then(Json::as_array).expect("cells");
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].get("method").and_then(Json::as_str), Some("SynPF"));
        assert!(report.cell("m", "HQ", "nominal", "SynPF").is_some());
        assert!(report.cell("m", "HQ", "nominal", "Cartographer").is_none());
        assert_eq!(report.group("m", "HQ", "nominal").count(), 1);
    }
}
