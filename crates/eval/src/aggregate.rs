//! Streaming aggregation of run outcomes into per-cell statistics and the
//! fleet report.
//!
//! Aggregation is **constant-memory in the replicate count**: a cell's
//! accumulator holds sums, maxima, counts, and fixed-ladder histograms
//! ([`ERROR_BOUNDS_CM`]) — never the outcome rows themselves — so the
//! replicate axis can grow to the roadmap's 100k-run fleets without the
//! aggregator growing with it. The p95 columns are therefore histogram
//! *upper bounds* (within one preferred-number rung, ~25%, of the exact
//! quantile), which buys a second property the resumable engine needs:
//! every statistic is **fold-order-independent across cells** (per-cell
//! state is independent; the fleet-wide counter rollup is a commutative
//! `u64` sum), and within a cell outcomes fold in replicate order. A
//! report assembled from any mix of cached, journaled, and freshly
//! executed cells is byte-identical to a from-scratch run — rule R3
//! extended to provenance (`tests/resume_equivalence.rs`).

use raceloc_metrics::wilson95;
use raceloc_obs::{CounterRollup, Histogram, Json};

use crate::cache::intern_counter;
use crate::runner::RunOutcome;
use crate::spec::{FleetSpec, RunDesc};

/// The fixed error ladder \[cm\] behind the report's p95 columns: the R10
/// preferred-number series (1, 1.25, 1.6, 2, 2.5, 3.15, 4, 5, 6.3, 8 per
/// decade) from 0.01 cm to 1 km, mirroring the latency ladder's shape
/// (`raceloc_obs::LATENCY_BOUNDS_S`). Ten buckets per decade keep the
/// histogram quantile upper bound within ~25% of the exact value
/// anywhere on the ladder; errors past 10⁵ cm land in overflow and the
/// aggregator falls back to the cell's exact maximum.
pub const ERROR_BOUNDS_CM: [f64; 71] = [
    1e-2, 1.25e-2, 1.6e-2, 2e-2, 2.5e-2, 3.15e-2, 4e-2, 5e-2, 6.3e-2, 8e-2, //
    1e-1, 1.25e-1, 1.6e-1, 2e-1, 2.5e-1, 3.15e-1, 4e-1, 5e-1, 6.3e-1, 8e-1, //
    1.0, 1.25, 1.6, 2.0, 2.5, 3.15, 4.0, 5.0, 6.3, 8.0, //
    1e1, 1.25e1, 1.6e1, 2e1, 2.5e1, 3.15e1, 4e1, 5e1, 6.3e1, 8e1, //
    1e2, 1.25e2, 1.6e2, 2e2, 2.5e2, 3.15e2, 4e2, 5e2, 6.3e2, 8e2, //
    1e3, 1.25e3, 1.6e3, 2e3, 2.5e3, 3.15e3, 4e3, 5e3, 6.3e3, 8e3, //
    1e4, 1.25e4, 1.6e4, 2e4, 2.5e4, 3.15e4, 4e4, 5e4, 6.3e4, 8e4, //
    1e5,
];

/// Accumulates the outcomes of one cell's replicates in constant memory.
#[derive(Debug, Clone)]
pub struct CellAggregator {
    folded: u64,
    rmse_sum: f64,
    rmse_max: f64,
    rmse_hist: Histogram,
    lat_sum: f64,
    lat_max: f64,
    lat_hist: Histogram,
    rec_sum: u64,
    rec_count: u64,
    rec_max: u64,
    steps: u64,
    runs: u64,
    successes: u64,
    crashes: u64,
    nonfinite: u64,
    unrecovered: u64,
    missing: u64,
}

impl Default for CellAggregator {
    fn default() -> Self {
        Self::new()
    }
}

impl CellAggregator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            folded: 0,
            rmse_sum: 0.0,
            rmse_max: 0.0,
            rmse_hist: Histogram::with_bounds(ERROR_BOUNDS_CM.to_vec()),
            lat_sum: 0.0,
            lat_max: 0.0,
            lat_hist: Histogram::with_bounds(ERROR_BOUNDS_CM.to_vec()),
            rec_sum: 0,
            rec_count: 0,
            rec_max: 0,
            steps: 0,
            runs: 0,
            successes: 0,
            crashes: 0,
            nonfinite: 0,
            unrecovered: 0,
            missing: 0,
        }
    }

    /// Folds one replicate's outcome in. Within a cell, outcomes must be
    /// folded in replicate order (floating-point sums are order-
    /// sensitive); across cells, fold order is free.
    pub fn push(&mut self, out: &RunOutcome) {
        self.runs += 1;
        self.folded += 1;
        self.steps += out.steps as u64;
        self.rmse_sum += out.rmse_cm;
        self.rmse_max = self.rmse_max.max(out.rmse_cm);
        self.rmse_hist.record(out.rmse_cm);
        self.lat_sum += out.mean_lat_err_cm;
        self.lat_max = self.lat_max.max(out.mean_lat_err_cm);
        self.lat_hist.record(out.mean_lat_err_cm);
        if out.success {
            self.successes += 1;
        }
        if out.crashed {
            self.crashes += 1;
        }
        if !out.finite {
            self.nonfinite += 1;
        }
        match out.recovery_steps {
            Some(steps) => {
                self.rec_sum += steps;
                self.rec_count += 1;
                self.rec_max = self.rec_max.max(steps);
            }
            None => self.unrecovered += 1,
        }
    }

    /// Records a replicate whose outcome never arrived (a skipped or
    /// failed job); counts as a non-finite failure so it can never
    /// silently inflate a success rate.
    pub fn push_missing(&mut self) {
        self.runs += 1;
        self.missing += 1;
        self.nonfinite += 1;
    }

    /// The p95 column of one histogram: the ladder upper bound, the exact
    /// maximum when the quantile lands in overflow (> 1 km), 0 when the
    /// cell folded no outcomes at all.
    fn p95(hist: &Histogram, max: f64) -> f64 {
        if hist.total() == 0 {
            return 0.0;
        }
        hist.quantile_upper_bound(0.95).unwrap_or(max)
    }

    /// Reduces the accumulated replicates to the cell's summary row.
    pub fn summarize(
        &self,
        map: &str,
        grip: &str,
        scenario: &str,
        budget: u64,
        method: &str,
    ) -> CellSummary {
        let iv = wilson95(self.successes, self.runs);
        let mean = |sum: f64, n: u64| if n == 0 { 0.0 } else { sum / n as f64 };
        CellSummary {
            map: map.to_string(),
            grip: grip.to_string(),
            scenario: scenario.to_string(),
            budget,
            method: method.to_string(),
            runs: self.runs,
            steps: self.steps,
            successes: self.successes,
            success_rate: iv.rate,
            success_lo: iv.lo,
            success_hi: iv.hi,
            mean_rmse_cm: mean(self.rmse_sum, self.folded),
            p95_rmse_cm: Self::p95(&self.rmse_hist, self.rmse_max),
            max_rmse_cm: self.rmse_max,
            mean_lat_err_cm: mean(self.lat_sum, self.folded),
            p95_lat_err_cm: Self::p95(&self.lat_hist, self.lat_max),
            recovered: self.rec_count,
            unrecovered: self.unrecovered,
            mean_recovery_steps: mean(self.rec_sum as f64, self.rec_count),
            max_recovery_steps: self.rec_max,
            crashes: self.crashes,
            nonfinite: self.nonfinite,
            missing: self.missing,
        }
    }
}

/// A report parse failure ([`FleetReport::from_json`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportError {
    message: String,
}

impl ReportError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fleet report error: {}", self.message)
    }
}

impl std::error::Error for ReportError {}

/// One aggregated row of the fleet report: the statistics of every
/// replicate of one `(map, grip, scenario, budget, method)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// Map label.
    pub map: String,
    /// Grip label.
    pub grip: String,
    /// Scenario label.
    pub scenario: String,
    /// Per-step compute budget \[work units\]; `0` = uncapped.
    pub budget: u64,
    /// Localizer label.
    pub method: String,
    /// Replicates folded into the row.
    pub runs: u64,
    /// Total scan corrections across the replicates.
    pub steps: u64,
    /// Replicates that stayed finite, crash-free, and within the RMSE
    /// success threshold.
    pub successes: u64,
    /// `successes / runs`.
    pub success_rate: f64,
    /// Wilson 95% lower bound on the true success rate.
    pub success_lo: f64,
    /// Wilson 95% upper bound on the true success rate.
    pub success_hi: f64,
    /// Mean of the per-replicate translation RMSE \[cm\].
    pub mean_rmse_cm: f64,
    /// 95th percentile of the per-replicate RMSE \[cm\] — a ladder upper
    /// bound on the [`ERROR_BOUNDS_CM`] histogram (within one rung of the
    /// exact quantile).
    pub p95_rmse_cm: f64,
    /// Worst per-replicate RMSE \[cm\] (exact).
    pub max_rmse_cm: f64,
    /// Mean of the per-replicate lateral estimation error \[cm\].
    pub mean_lat_err_cm: f64,
    /// 95th percentile of the per-replicate lateral error \[cm\] (ladder
    /// upper bound, like `p95_rmse_cm`).
    pub p95_lat_err_cm: f64,
    /// Replicates whose health settled back at Nominal.
    pub recovered: u64,
    /// Replicates that ended still non-Nominal.
    pub unrecovered: u64,
    /// Mean recovery latency over the recovered replicates \[corrections\].
    pub mean_recovery_steps: f64,
    /// Worst recovery latency \[corrections\].
    pub max_recovery_steps: u64,
    /// Replicates whose ground-truth run crashed.
    pub crashes: u64,
    /// Replicates with a non-finite pose estimate (includes `missing`).
    pub nonfinite: u64,
    /// Replicates whose outcome never arrived from the pool.
    pub missing: u64,
}

impl CellSummary {
    /// Serializes the row (stable key order).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("map".into(), Json::Str(self.map.clone())),
            ("grip".into(), Json::Str(self.grip.clone())),
            ("scenario".into(), Json::Str(self.scenario.clone())),
            ("budget".into(), Json::num(self.budget as f64)),
            ("method".into(), Json::Str(self.method.clone())),
            ("runs".into(), Json::num(self.runs as f64)),
            ("steps".into(), Json::num(self.steps as f64)),
            ("successes".into(), Json::num(self.successes as f64)),
            ("success_rate".into(), Json::num(self.success_rate)),
            ("success_lo".into(), Json::num(self.success_lo)),
            ("success_hi".into(), Json::num(self.success_hi)),
            ("mean_rmse_cm".into(), Json::num(self.mean_rmse_cm)),
            ("p95_rmse_cm".into(), Json::num(self.p95_rmse_cm)),
            ("max_rmse_cm".into(), Json::num(self.max_rmse_cm)),
            ("mean_lat_err_cm".into(), Json::num(self.mean_lat_err_cm)),
            ("p95_lat_err_cm".into(), Json::num(self.p95_lat_err_cm)),
            ("recovered".into(), Json::num(self.recovered as f64)),
            ("unrecovered".into(), Json::num(self.unrecovered as f64)),
            (
                "mean_recovery_steps".into(),
                Json::num(self.mean_recovery_steps),
            ),
            (
                "max_recovery_steps".into(),
                Json::num(self.max_recovery_steps as f64),
            ),
            ("crashes".into(), Json::num(self.crashes as f64)),
            ("nonfinite".into(), Json::num(self.nonfinite as f64)),
            ("missing".into(), Json::num(self.missing as f64)),
        ])
    }

    /// Parses a row serialized by [`CellSummary::to_json`]. Float fields
    /// that serialized as `null` (non-finite aggregates) come back as
    /// NaN.
    pub fn from_json(doc: &Json) -> Result<Self, ReportError> {
        Ok(Self {
            map: row_str(doc, "map")?,
            grip: row_str(doc, "grip")?,
            scenario: row_str(doc, "scenario")?,
            budget: row_u64(doc, "budget")?,
            method: row_str(doc, "method")?,
            runs: row_u64(doc, "runs")?,
            steps: row_u64(doc, "steps")?,
            successes: row_u64(doc, "successes")?,
            success_rate: row_f64(doc, "success_rate"),
            success_lo: row_f64(doc, "success_lo"),
            success_hi: row_f64(doc, "success_hi"),
            mean_rmse_cm: row_f64(doc, "mean_rmse_cm"),
            p95_rmse_cm: row_f64(doc, "p95_rmse_cm"),
            max_rmse_cm: row_f64(doc, "max_rmse_cm"),
            mean_lat_err_cm: row_f64(doc, "mean_lat_err_cm"),
            p95_lat_err_cm: row_f64(doc, "p95_lat_err_cm"),
            recovered: row_u64(doc, "recovered")?,
            unrecovered: row_u64(doc, "unrecovered")?,
            mean_recovery_steps: row_f64(doc, "mean_recovery_steps"),
            max_recovery_steps: row_u64(doc, "max_recovery_steps")?,
            crashes: row_u64(doc, "crashes")?,
            nonfinite: row_u64(doc, "nonfinite")?,
            missing: row_u64(doc, "missing")?,
        })
    }
}

fn row_str(doc: &Json, key: &str) -> Result<String, ReportError> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ReportError::new(format!("cell row is missing string field {key:?}")))
}

fn row_u64(doc: &Json, key: &str) -> Result<u64, ReportError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ReportError::new(format!("cell row is missing integer field {key:?}")))
}

fn row_f64(doc: &Json, key: &str) -> f64 {
    doc.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN)
}

/// Folds cell outcomes — in any cell order, from any provenance — into a
/// [`FleetReport`]. One builder per report: seed it with the spec, call
/// [`ReportBuilder::fold_cell`] once per cell, and [`ReportBuilder::finish`]
/// to summarize in canonical cell order.
#[derive(Debug)]
pub struct ReportBuilder {
    spec: FleetSpec,
    aggs: Vec<CellAggregator>,
    counters: CounterRollup,
    total_runs: u64,
}

impl ReportBuilder {
    /// A builder with one empty accumulator per spec cell.
    pub fn new(spec: &FleetSpec) -> Self {
        let cells = spec.cells().len();
        Self {
            spec: spec.clone(),
            aggs: (0..cells).map(|_| CellAggregator::new()).collect(),
            counters: CounterRollup::new(),
            total_runs: 0,
        }
    }

    /// Folds one cell's replicate outcomes (in replicate order; `None` is
    /// a missing replicate). Out-of-range cell indices and surplus
    /// outcomes are ignored; short slices leave the remaining replicates
    /// missing. Calling this twice for one cell double-counts — the
    /// engine guarantees exactly one fold per cell.
    pub fn fold_cell(&mut self, cell: usize, outcomes: &[Option<RunOutcome>]) {
        let replicates = self.spec.replicates as usize;
        let Some(agg) = self.aggs.get_mut(cell) else {
            return;
        };
        for slot in 0..replicates {
            self.total_runs += 1;
            match outcomes.get(slot).and_then(|o| o.as_ref()) {
                Some(out) => {
                    agg.push(out);
                    self.counters.absorb_counts(&out.counters);
                }
                None => agg.push_missing(),
            }
        }
    }

    /// Folds one cell whose outcomes never arrived at all.
    pub fn fold_missing_cell(&mut self, cell: usize) {
        self.fold_cell(cell, &[]);
    }

    /// Summarizes every accumulator in canonical cell order.
    pub fn finish(self) -> FleetReport {
        let spec = &self.spec;
        let label =
            |names: &[String], i: usize| -> String { names.get(i).cloned().unwrap_or_default() };
        let map_names: Vec<String> = spec.maps.iter().map(|m| m.name.clone()).collect();
        let grip_names: Vec<String> = spec.grips.iter().map(|g| g.name.clone()).collect();
        let scen_names: Vec<String> = spec.scenarios.iter().map(|s| s.name.clone()).collect();
        let rows = spec
            .cells()
            .iter()
            .zip(self.aggs.iter())
            .map(|(key, agg)| {
                agg.summarize(
                    &label(&map_names, key.map),
                    &label(&grip_names, key.grip),
                    &label(&scen_names, key.scenario),
                    spec.budgets.get(key.budget).copied().unwrap_or(0),
                    spec.methods.get(key.method).map(|m| m.name()).unwrap_or(""),
                )
            })
            .collect();
        FleetReport {
            name: spec.name.clone(),
            master_seed: spec.master_seed,
            replicates: spec.replicates,
            total_runs: self.total_runs,
            cells: rows,
            counters: self.counters,
        }
    }
}

/// The aggregated result of one fleet: spec echo, per-cell rows in
/// canonical cell order, and the fleet-wide telemetry counter rollup.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Fleet label (from the spec).
    pub name: String,
    /// Master seed the fleet derived every world seed from.
    pub master_seed: u64,
    /// Replicates per cell.
    pub replicates: u32,
    /// Total runs folded into the report.
    pub total_runs: u64,
    /// Per-cell rows, in [`FleetSpec::cells`] order.
    pub cells: Vec<CellSummary>,
    /// Telemetry counters summed over every run (event counts only).
    pub counters: CounterRollup,
}

impl FleetReport {
    /// Folds scattered-back outcomes into the report. `outcomes` must be
    /// indexed by run index ([`RunDesc::index`]); a `None` entry counts as
    /// a missing, failed replicate.
    pub fn from_outcomes(
        spec: &FleetSpec,
        runs: &[RunDesc],
        outcomes: Vec<Option<RunOutcome>>,
    ) -> FleetReport {
        let mut builder = ReportBuilder::new(spec);
        let replicates = spec.replicates as usize;
        let cells = spec.cells().len();
        let mut slots: Vec<Vec<Option<RunOutcome>>> = (0..cells)
            .map(|_| (0..replicates).map(|_| None).collect())
            .collect();
        let mut outcomes = outcomes;
        for desc in runs {
            if let Some(slot) = slots
                .get_mut(desc.cell)
                .and_then(|c| c.get_mut(desc.replicate as usize))
            {
                *slot = outcomes.get_mut(desc.index).and_then(|o| o.take());
            }
        }
        for (cell, cell_slots) in slots.iter().enumerate() {
            builder.fold_cell(cell, cell_slots);
        }
        builder.finish()
    }

    /// Looks a cell row up by its four labels; with more than one budget
    /// in the spec this returns the first-listed budget's row (use
    /// [`FleetReport::cells`] directly to sweep the budget axis).
    pub fn cell(
        &self,
        map: &str,
        grip: &str,
        scenario: &str,
        method: &str,
    ) -> Option<&CellSummary> {
        self.cells.iter().find(|c| {
            c.map == map && c.grip == grip && c.scenario == scenario && c.method == method
        })
    }

    /// The rows of one `(map, grip, scenario)` group, in method order.
    pub fn group<'a>(
        &'a self,
        map: &'a str,
        grip: &'a str,
        scenario: &'a str,
    ) -> impl Iterator<Item = &'a CellSummary> + 'a {
        self.cells
            .iter()
            .filter(move |c| c.map == map && c.grip == grip && c.scenario == scenario)
    }

    /// Serializes the report (stable key order; no wall-clock fields).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("master_seed".into(), Json::num(self.master_seed as f64)),
            ("replicates".into(), Json::num(self.replicates as f64)),
            ("total_runs".into(), Json::num(self.total_runs as f64)),
            (
                "cells".into(),
                Json::Arr(self.cells.iter().map(CellSummary::to_json).collect()),
            ),
            ("counters".into(), self.counters.to_json()),
        ])
    }

    /// Parses a report serialized by [`FleetReport::to_json`], or the
    /// bench artifact wrapper `{"experiment":"fleet",...,"report":{...}}`
    /// (the `report` field wins when present). Counter totals round-trip;
    /// the rollup's internal snapshot count does not (it is not
    /// serialized), so parsed reports compare to built ones through their
    /// JSON, not through `PartialEq`.
    pub fn from_json(doc: &Json) -> Result<Self, ReportError> {
        let doc = doc.get("report").unwrap_or(doc);
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| ReportError::new("missing string field \"name\""))?
            .to_string();
        let master_seed = doc
            .get("master_seed")
            .and_then(Json::as_u64)
            .ok_or_else(|| ReportError::new("missing integer field \"master_seed\""))?;
        let replicates = doc
            .get("replicates")
            .and_then(Json::as_u64)
            .ok_or_else(|| ReportError::new("missing integer field \"replicates\""))?
            as u32;
        let total_runs = doc
            .get("total_runs")
            .and_then(Json::as_u64)
            .ok_or_else(|| ReportError::new("missing integer field \"total_runs\""))?;
        let cells = doc
            .get("cells")
            .and_then(Json::as_array)
            .ok_or_else(|| ReportError::new("missing array field \"cells\""))?
            .iter()
            .map(CellSummary::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let mut counters = CounterRollup::new();
        if let Some(totals) = doc.get("counters").and_then(Json::as_object) {
            let pairs: Vec<(&'static str, u64)> = totals
                .iter()
                .filter_map(|(name, v)| v.as_u64().map(|n| (intern_counter(name), n)))
                .collect();
            if !pairs.is_empty() {
                counters.absorb_counts(&pairs);
            }
        }
        Ok(Self {
            name,
            master_seed,
            replicates,
            total_runs,
            cells,
            counters,
        })
    }

    /// Parses a report from JSON text (see [`FleetReport::from_json`]).
    pub fn from_json_str(text: &str) -> Result<Self, ReportError> {
        let doc = Json::parse(text)
            .map_err(|e| ReportError::new(format!("report is not valid JSON: {e}")))?;
        Self::from_json(&doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(index: usize, rmse: f64, success: bool) -> RunOutcome {
        RunOutcome {
            index,
            steps: 100,
            rmse_cm: rmse,
            p95_err_cm: rmse * 1.5,
            max_err_cm: rmse * 2.0,
            mean_lat_err_cm: rmse * 0.6,
            recovery_steps: Some(4),
            pct_nominal: 0.95,
            crashed: false,
            finite: true,
            success,
            counters: vec![("sim.scans", 100)],
        }
    }

    #[test]
    fn aggregator_reduces_replicates() {
        let mut agg = CellAggregator::new();
        agg.push(&outcome(0, 10.0, true));
        agg.push(&outcome(1, 20.0, true));
        agg.push(&outcome(2, 60.0, false));
        let row = agg.summarize("m", "HQ", "nominal", 0, "SynPF");
        assert_eq!(row.runs, 3);
        assert_eq!(row.successes, 2);
        assert!((row.mean_rmse_cm - 30.0).abs() < 1e-12);
        assert!((row.max_rmse_cm - 60.0).abs() < 1e-12);
        // p95 is a ladder upper bound: 60 lands in (50, 63].
        assert!(
            (row.p95_rmse_cm - 63.0).abs() < 1e-12,
            "{}",
            row.p95_rmse_cm
        );
        assert_eq!(row.recovered, 3);
        assert_eq!(row.max_recovery_steps, 4);
        assert!(row.success_lo < row.success_rate && row.success_rate < row.success_hi);
    }

    #[test]
    fn aggregation_memory_does_not_grow_with_replicates() {
        // The accumulator is a fixed-size value: folding 10 or 10 000
        // replicates leaves its footprint unchanged (no per-outcome rows).
        let mut agg = CellAggregator::new();
        let before_counts = agg.rmse_hist.counts().len();
        for i in 0..10_000 {
            agg.push(&outcome(i, (i % 97) as f64, true));
        }
        assert_eq!(agg.rmse_hist.counts().len(), before_counts);
        assert_eq!(agg.runs, 10_000);
        let row = agg.summarize("m", "HQ", "nominal", 0, "SynPF");
        assert!(row.p95_rmse_cm >= 90.0 && row.p95_rmse_cm <= 125.0);
    }

    #[test]
    fn p95_overflow_falls_back_to_exact_max() {
        let mut agg = CellAggregator::new();
        for _ in 0..20 {
            agg.push(&outcome(0, 5e6, false));
        }
        let row = agg.summarize("m", "HQ", "nominal", 0, "SynPF");
        assert_eq!(row.p95_rmse_cm, 5e6, "overflow quantile = exact max");
        assert_eq!(row.max_rmse_cm, 5e6);
    }

    #[test]
    fn missing_outcomes_count_as_failures() {
        let mut agg = CellAggregator::new();
        agg.push(&outcome(0, 10.0, true));
        agg.push_missing();
        let row = agg.summarize("m", "HQ", "nominal", 0, "SynPF");
        assert_eq!(row.runs, 2);
        assert_eq!(row.successes, 1);
        assert_eq!(row.missing, 1);
        assert_eq!(row.nonfinite, 1);
        assert!((row.success_rate - 0.5).abs() < 1e-12);
        // Missing replicates don't drag the means toward zero: the mean
        // is over folded outcomes only.
        assert!((row.mean_rmse_cm - 10.0).abs() < 1e-12);
    }

    #[test]
    fn report_json_is_stable_and_parseable() {
        let mut agg = CellAggregator::new();
        agg.push(&outcome(0, 10.0, true));
        let row = agg.summarize("m", "HQ", "nominal", 0, "SynPF");
        let report = FleetReport {
            name: "t".into(),
            master_seed: 1,
            replicates: 1,
            total_runs: 1,
            cells: vec![row],
            counters: CounterRollup::new(),
        };
        let a = format!("{}", report.to_json());
        let b = format!("{}", report.clone().to_json());
        assert_eq!(a, b);
        let doc = Json::parse(&a).expect("valid JSON");
        assert_eq!(doc.get("total_runs").and_then(Json::as_u64), Some(1));
        let cells = doc.get("cells").and_then(Json::as_array).expect("cells");
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].get("method").and_then(Json::as_str), Some("SynPF"));
        assert!(report.cell("m", "HQ", "nominal", "SynPF").is_some());
        assert!(report.cell("m", "HQ", "nominal", "Cartographer").is_none());
        assert_eq!(report.group("m", "HQ", "nominal").count(), 1);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut agg = CellAggregator::new();
        agg.push(&outcome(0, 10.0, true));
        agg.push(&outcome(1, 25.0, false));
        let row = agg.summarize("m", "HQ", "nominal", 0, "SynPF");
        let mut counters = CounterRollup::new();
        counters.absorb_counts(&[("sim.scans", 200), ("eval.runs", 2)]);
        let report = FleetReport {
            name: "t".into(),
            master_seed: 1,
            replicates: 2,
            total_runs: 2,
            cells: vec![row],
            counters,
        };
        let text = format!("{}", report.to_json());
        let back = FleetReport::from_json_str(&text).expect("parse back");
        // Value-level identity is checked through the serialization (the
        // rollup's snapshot count intentionally doesn't round-trip).
        assert_eq!(format!("{}", back.to_json()), text);
        // The bench artifact wrapper parses to the same report.
        let wrapped = format!("{{\"experiment\":\"fleet\",\"quick\":true,\"report\":{text}}}");
        let back = FleetReport::from_json_str(&wrapped).expect("parse wrapper");
        assert_eq!(format!("{}", back.to_json()), text);
        assert!(FleetReport::from_json_str("{}").is_err());
        assert!(FleetReport::from_json_str("no").is_err());
    }

    #[test]
    fn error_ladder_is_strictly_increasing() {
        for w in ERROR_BOUNDS_CM.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
