//! The declarative fleet specification and its cell expansion.
//!
//! A [`FleetSpec`] names every axis of a Monte-Carlo robustness study —
//! maps × grip levels × fault scenarios × localizers × seed replicates —
//! as plain data that round-trips through JSON. Expansion into concrete
//! run descriptors is a pure function of the spec: the runs come out in
//! one canonical order, and every run's world seed is derived with
//! [`Rng64::stream`] from `(master_seed, map, grip, scenario, replicate)`
//! — deliberately *excluding* the localizer, so all localizers of a cell
//! face bit-identical world noise (paired comparison, exactly like the
//! paper evaluating both algorithms on the same recorded drives).

use raceloc_core::{stream_keys, Rng64};
use raceloc_faults::FaultSchedule;
use raceloc_map::{Track, TrackShape, TrackSpec};
use raceloc_obs::Json;

/// A fleet-spec validation or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    message: String,
}

impl SpecError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fleet spec error: {}", self.message)
    }
}

impl std::error::Error for SpecError {}

/// One evaluation map: a deterministic procedurally generated track.
#[derive(Debug, Clone, PartialEq)]
pub struct MapSpec {
    /// Stable map label (used in report rows).
    pub name: String,
    /// Seed of the random-Fourier centerline (deterministic geometry).
    pub fourier_seed: u64,
    /// Corridor half-width \[m\].
    pub half_width: f64,
    /// Mean centerline radius \[m\].
    pub mean_radius: f64,
}

impl MapSpec {
    /// Builds the track this spec describes (pure in the spec fields).
    pub fn build_track(&self) -> Track {
        TrackSpec::new(TrackShape::RandomFourier {
            seed: self.fourier_seed,
            mean_radius: self.mean_radius,
            amplitude: 0.26,
            harmonics: 4,
        })
        .half_width(self.half_width)
        .resolution(0.05)
        .build()
    }

    pub(crate) fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("fourier_seed".into(), Json::num(self.fourier_seed as f64)),
            ("half_width".into(), Json::num(self.half_width)),
            ("mean_radius".into(), Json::num(self.mean_radius)),
        ])
    }

    fn from_json(doc: &Json) -> Result<Self, SpecError> {
        Ok(Self {
            name: req_str(doc, "name")?,
            fourier_seed: req_u64(doc, "fourier_seed")?,
            half_width: req_f64(doc, "half_width")?,
            mean_radius: req_f64(doc, "mean_radius")?,
        })
    }
}

/// One grip level (the paper's odometry-quality axis).
#[derive(Debug, Clone, PartialEq)]
pub struct GripSpec {
    /// Stable grip label (`"HQ"` / `"LQ"` in the paper's terms).
    pub name: String,
    /// Tire–road friction coefficient.
    pub mu: f64,
}

impl GripSpec {
    pub(crate) fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("mu".into(), Json::num(self.mu)),
        ])
    }

    fn from_json(doc: &Json) -> Result<Self, SpecError> {
        Ok(Self {
            name: req_str(doc, "name")?,
            mu: req_f64(doc, "mu")?,
        })
    }
}

/// One fault scenario: a schedule plus how recovery is scored.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Stable scenario label.
    pub name: String,
    /// The deterministic fault script (empty for the nominal control).
    pub schedule: FaultSchedule,
    /// Correction step from which recovery latency is measured.
    pub measure_from: u64,
    /// Budget (in corrections) a health-monitored localizer has to return
    /// to Nominal; `None` reports recovery without gating it.
    pub recovery_budget: Option<u64>,
}

impl ScenarioSpec {
    pub(crate) fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("measure_from".into(), Json::num(self.measure_from as f64)),
            (
                "recovery_budget".into(),
                self.recovery_budget
                    .map_or(Json::Null, |b| Json::num(b as f64)),
            ),
            ("schedule".into(), self.schedule.to_json()),
        ])
    }

    fn from_json(doc: &Json) -> Result<Self, SpecError> {
        let schedule = doc
            .get("schedule")
            .ok_or_else(|| SpecError::new("scenario is missing \"schedule\""))?;
        let schedule = FaultSchedule::from_json(schedule)
            .map_err(|e| SpecError::new(format!("scenario schedule: {e}")))?;
        let recovery_budget = match doc.get("recovery_budget") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                SpecError::new("scenario \"recovery_budget\" must be a non-negative integer")
            })?),
        };
        Ok(Self {
            name: req_str(doc, "name")?,
            schedule,
            measure_from: req_u64(doc, "measure_from")?,
            recovery_budget,
        })
    }
}

/// The localizers a fleet can evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalMethod {
    /// Health-monitored SynPF with augmented-MCL recovery + auto re-init.
    SynPf,
    /// Cartographer pure localization with match-score health monitoring.
    Cartographer,
    /// Dead reckoning — the no-correction baseline.
    DeadReckoning,
}

impl EvalMethod {
    /// All methods, in canonical report order.
    pub fn all() -> [EvalMethod; 3] {
        [
            EvalMethod::SynPf,
            EvalMethod::Cartographer,
            EvalMethod::DeadReckoning,
        ]
    }

    /// The stable row label (matches `BENCH_faults.json` conventions).
    pub fn name(&self) -> &'static str {
        match self {
            EvalMethod::SynPf => "SynPF",
            EvalMethod::Cartographer => "Cartographer",
            EvalMethod::DeadReckoning => "DeadReckoning",
        }
    }

    /// Parses a label produced by [`EvalMethod::name`].
    pub fn parse(name: &str) -> Option<EvalMethod> {
        EvalMethod::all().into_iter().find(|m| m.name() == name)
    }
}

/// Indices of one aggregated report cell along the five non-replicate axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellKey {
    /// Index into [`FleetSpec::maps`].
    pub map: usize,
    /// Index into [`FleetSpec::grips`].
    pub grip: usize,
    /// Index into [`FleetSpec::scenarios`].
    pub scenario: usize,
    /// Index into [`FleetSpec::budgets`].
    pub budget: usize,
    /// Index into [`FleetSpec::methods`].
    pub method: usize,
}

/// One concrete simulation run: a cell plus a seed replicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunDesc {
    /// Linear index into [`FleetSpec::runs`] order (the scatter-back slot).
    pub index: usize,
    /// Linear index into [`FleetSpec::cells`] order.
    pub cell: usize,
    /// The cell's axis indices.
    pub key: CellKey,
    /// Replicate number within the cell, `0..replicates`.
    pub replicate: u32,
    /// The derived world seed (identical for every method of the cell).
    pub world_seed: u64,
}

/// The declarative description of a full Monte-Carlo evaluation fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Fleet label (lands in the report header).
    pub name: String,
    /// Master seed every world seed is derived from.
    pub master_seed: u64,
    /// Seed replicates per cell.
    pub replicates: u32,
    /// Simulated duration of each run \[s\].
    pub duration_s: f64,
    /// SynPF particle count.
    pub particles: usize,
    /// LiDAR beams per sweep (271 is the paper's sensor).
    pub beams: usize,
    /// A run succeeds when it stays finite, crash-free, and its mean
    /// lateral estimation error (w.r.t. the raceline — the paper's primary
    /// error axis) stays below this threshold \[cm\].
    pub success_lat_cm: f64,
    /// The evaluation maps.
    pub maps: Vec<MapSpec>,
    /// The grip levels.
    pub grips: Vec<GripSpec>,
    /// The fault scenarios.
    pub scenarios: Vec<ScenarioSpec>,
    /// The per-step compute budgets \[work units\] of the deadline
    /// scheduler (DESIGN.md §14). `0` means uncapped (no deadline
    /// controller — the historical behavior); positive values cap SynPF's
    /// per-correction cost so the fleet can sweep budget × scenario. The
    /// budget is excluded from world-seed derivation, so every budget of a
    /// cell faces bit-identical world noise (paired, like methods).
    pub budgets: Vec<u64>,
    /// The localizers.
    pub methods: Vec<EvalMethod>,
}

impl FleetSpec {
    /// Checks every axis for emptiness, duplicate labels, and physically
    /// meaningless parameters. Expansion and execution require a valid
    /// spec.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.maps.is_empty()
            || self.grips.is_empty()
            || self.scenarios.is_empty()
            || self.methods.is_empty()
        {
            return Err(SpecError::new("every axis needs at least one entry"));
        }
        if self.replicates == 0 {
            return Err(SpecError::new("replicates must be at least 1"));
        }
        if self.maps.len() > 0xFFFF || self.grips.len() > 0xFF || self.scenarios.len() > 0xFF {
            return Err(SpecError::new("axis too large for seed derivation"));
        }
        if self.budgets.is_empty() {
            return Err(SpecError::new(
                "budgets must list at least one entry (0 = uncapped)",
            ));
        }
        if self.budgets.len() > 0xFF {
            return Err(SpecError::new("budgets axis too large"));
        }
        for (i, b) in self.budgets.iter().enumerate() {
            if self.budgets[..i].contains(b) {
                return Err(SpecError::new(format!("duplicate budget {b}")));
            }
        }
        if !(self.duration_s.is_finite() && self.duration_s > 0.0) {
            return Err(SpecError::new("duration_s must be positive"));
        }
        if self.particles < 10 {
            return Err(SpecError::new("particles must be at least 10"));
        }
        if self.beams < 3 {
            return Err(SpecError::new("beams must be at least 3"));
        }
        if !(self.success_lat_cm.is_finite() && self.success_lat_cm > 0.0) {
            return Err(SpecError::new("success_lat_cm must be positive"));
        }
        for m in &self.maps {
            if !(m.half_width.is_finite() && m.half_width > 0.5) {
                return Err(SpecError::new(format!(
                    "map {:?}: half_width must exceed 0.5 m",
                    m.name
                )));
            }
            if !(m.mean_radius.is_finite() && (2.0..=20.0).contains(&m.mean_radius)) {
                return Err(SpecError::new(format!(
                    "map {:?}: mean_radius must lie in [2, 20] m",
                    m.name
                )));
            }
        }
        for g in &self.grips {
            if !(g.mu.is_finite() && g.mu > 0.0) {
                return Err(SpecError::new(format!(
                    "grip {:?}: mu must be positive",
                    g.name
                )));
            }
        }
        check_unique("map", self.maps.iter().map(|m| m.name.as_str()))?;
        check_unique("grip", self.grips.iter().map(|g| g.name.as_str()))?;
        check_unique("scenario", self.scenarios.iter().map(|s| s.name.as_str()))?;
        check_unique("method", self.methods.iter().map(EvalMethod::name))?;
        Ok(())
    }

    /// Every aggregated cell in canonical order: maps (outer) × grips ×
    /// scenarios × budgets × methods (inner).
    pub fn cells(&self) -> Vec<CellKey> {
        let mut out = Vec::with_capacity(
            self.maps.len() * self.grips.len() * self.scenarios.len() * self.budgets.len(),
        );
        for map in 0..self.maps.len() {
            for grip in 0..self.grips.len() {
                for scenario in 0..self.scenarios.len() {
                    for budget in 0..self.budgets.len() {
                        for method in 0..self.methods.len() {
                            out.push(CellKey {
                                map,
                                grip,
                                scenario,
                                budget,
                                method,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Every concrete run in canonical order (cells × replicates). The
    /// expansion is pure: the same spec always yields the same run list,
    /// seeds included.
    pub fn runs(&self) -> Vec<RunDesc> {
        let cells = self.cells();
        let mut out = Vec::with_capacity(cells.len() * self.replicates as usize);
        for (cell, key) in cells.iter().enumerate() {
            for replicate in 0..self.replicates {
                out.push(RunDesc {
                    index: out.len(),
                    cell,
                    key: *key,
                    replicate,
                    world_seed: self.world_seed(key.map, key.grip, key.scenario, replicate),
                });
            }
        }
        out
    }

    /// Total number of simulation runs the spec expands to.
    pub fn total_runs(&self) -> usize {
        self.cells().len() * self.replicates as usize
    }

    /// The world seed of one `(map, grip, scenario, replicate)` cell —
    /// a pure function of the spec's master seed and the axis indices,
    /// independent of the localizer *and the compute budget* (paired
    /// comparison) and of everything about execution (thread count, run
    /// order).
    pub fn world_seed(&self, map: usize, grip: usize, scenario: usize, replicate: u32) -> u64 {
        Rng64::stream(
            self.master_seed,
            stream_keys::eval_world_cell(map as u64, grip as u64, scenario as u64, replicate),
        )
        .next_u64()
    }

    /// Serializes the spec (stable key order).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("master_seed".into(), Json::num(self.master_seed as f64)),
            ("replicates".into(), Json::num(self.replicates as f64)),
            ("duration_s".into(), Json::num(self.duration_s)),
            ("particles".into(), Json::num(self.particles as f64)),
            ("beams".into(), Json::num(self.beams as f64)),
            ("success_lat_cm".into(), Json::num(self.success_lat_cm)),
            (
                "maps".into(),
                Json::Arr(self.maps.iter().map(MapSpec::to_json).collect()),
            ),
            (
                "grips".into(),
                Json::Arr(self.grips.iter().map(GripSpec::to_json).collect()),
            ),
            (
                "scenarios".into(),
                Json::Arr(self.scenarios.iter().map(ScenarioSpec::to_json).collect()),
            ),
            (
                "budgets".into(),
                Json::Arr(self.budgets.iter().map(|&b| Json::num(b as f64)).collect()),
            ),
            (
                "methods".into(),
                Json::Arr(
                    self.methods
                        .iter()
                        .map(|m| Json::Str(m.name().to_string()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a spec from a [`Json`] value produced by
    /// [`FleetSpec::to_json`] (or written by hand), then validates it.
    pub fn from_json(doc: &Json) -> Result<Self, SpecError> {
        let maps = req_arr(doc, "maps")?
            .iter()
            .map(MapSpec::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let grips = req_arr(doc, "grips")?
            .iter()
            .map(GripSpec::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let scenarios = req_arr(doc, "scenarios")?
            .iter()
            .map(ScenarioSpec::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let methods = req_arr(doc, "methods")?
            .iter()
            .map(|v| {
                v.as_str()
                    .and_then(EvalMethod::parse)
                    .ok_or_else(|| SpecError::new("unknown method label"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        // Budgets are optional for spec-file compatibility: absent means
        // the single uncapped budget (the pre-deadline behavior).
        let budgets = match doc.get("budgets") {
            None => vec![0],
            Some(v) => v
                .as_array()
                .ok_or_else(|| SpecError::new("\"budgets\" must be an array"))?
                .iter()
                .map(|b| {
                    b.as_u64().ok_or_else(|| {
                        SpecError::new("budgets must be non-negative integers (work units)")
                    })
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        let spec = Self {
            name: req_str(doc, "name")?,
            master_seed: req_u64(doc, "master_seed")?,
            replicates: req_u64(doc, "replicates")? as u32,
            duration_s: req_f64(doc, "duration_s")?,
            particles: req_u64(doc, "particles")? as usize,
            beams: req_u64(doc, "beams")? as usize,
            success_lat_cm: req_f64(doc, "success_lat_cm")?,
            maps,
            grips,
            scenarios,
            budgets,
            methods,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Parses a spec from JSON text.
    pub fn from_json_str(text: &str) -> Result<Self, SpecError> {
        let doc = Json::parse(text)
            .map_err(|e| SpecError::new(format!("spec is not valid JSON: {e}")))?;
        Self::from_json(&doc)
    }
}

fn check_unique<'a>(axis: &str, names: impl Iterator<Item = &'a str>) -> Result<(), SpecError> {
    let mut seen: Vec<&str> = Vec::new();
    for name in names {
        if seen.contains(&name) {
            return Err(SpecError::new(format!("duplicate {axis} name {name:?}")));
        }
        seen.push(name);
    }
    Ok(())
}

fn req_str(doc: &Json, key: &str) -> Result<String, SpecError> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| SpecError::new(format!("missing string field {key:?}")))
}

fn req_u64(doc: &Json, key: &str) -> Result<u64, SpecError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| SpecError::new(format!("missing integer field {key:?}")))
}

fn req_f64(doc: &Json, key: &str) -> Result<f64, SpecError> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| SpecError::new(format!("missing numeric field {key:?}")))
}

fn req_arr<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], SpecError> {
    doc.get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| SpecError::new(format!("missing array field {key:?}")))
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn tiny_spec() -> FleetSpec {
        FleetSpec {
            name: "tiny".into(),
            master_seed: 11,
            replicates: 3,
            duration_s: 2.0,
            particles: 100,
            beams: 91,
            success_lat_cm: 50.0,
            maps: vec![MapSpec {
                name: "fourier-33".into(),
                fourier_seed: 33,
                half_width: 1.25,
                mean_radius: 6.0,
            }],
            grips: vec![
                GripSpec {
                    name: "HQ".into(),
                    mu: 1.0,
                },
                GripSpec {
                    name: "LQ".into(),
                    mu: 19.0 / 26.0,
                },
            ],
            scenarios: vec![
                ScenarioSpec {
                    name: "nominal".into(),
                    schedule: FaultSchedule::builder().seed(1).build().expect("valid"),
                    measure_from: 0,
                    recovery_budget: None,
                },
                ScenarioSpec {
                    name: "odom_slip".into(),
                    schedule: FaultSchedule::builder()
                        .seed(1)
                        .odom_slip(20, 40, 1.8)
                        .build()
                        .expect("valid"),
                    measure_from: 40,
                    recovery_budget: None,
                },
            ],
            budgets: vec![0],
            methods: vec![EvalMethod::SynPf, EvalMethod::DeadReckoning],
        }
    }

    #[test]
    fn expansion_is_canonical_and_sized() {
        let spec = tiny_spec();
        spec.validate().expect("valid spec");
        let cells = spec.cells();
        // 1 map × 2 grips × 2 scenarios × 2 methods.
        assert_eq!(cells.len(), 8);
        let runs = spec.runs();
        assert_eq!(runs.len(), cells.len() * 3);
        assert_eq!(spec.total_runs(), runs.len());
        // Linear indices are the identity over the canonical order.
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.cell, i / 3);
            assert_eq!(r.replicate as usize, i % 3);
        }
    }

    #[test]
    fn world_seeds_pair_methods_and_separate_replicates() {
        let spec = tiny_spec();
        let runs = spec.runs();
        // Same (map, grip, scenario, replicate), different method → same
        // world seed (the paired-comparison property).
        let synpf: Vec<u64> = runs
            .iter()
            .filter(|r| r.key.method == 0)
            .map(|r| r.world_seed)
            .collect();
        let dr: Vec<u64> = runs
            .iter()
            .filter(|r| r.key.method == 1)
            .map(|r| r.world_seed)
            .collect();
        assert_eq!(synpf, dr);
        // Replicates differ, and all seeds across cells are distinct.
        let mut all: Vec<u64> = synpf.clone();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), synpf.len(), "world seeds must not collide");
    }

    #[test]
    fn seeds_are_pure_in_the_spec() {
        let spec = tiny_spec();
        assert_eq!(spec.world_seed(0, 1, 1, 2), spec.world_seed(0, 1, 1, 2));
        assert_ne!(spec.world_seed(0, 0, 0, 0), spec.world_seed(0, 0, 0, 1));
        let mut other = spec.clone();
        other.master_seed = 12;
        assert_ne!(spec.world_seed(0, 0, 0, 0), other.world_seed(0, 0, 0, 0));
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let spec = tiny_spec();
        let text = format!("{}", spec.to_json());
        let back = FleetSpec::from_json_str(&text).expect("parse back");
        assert_eq!(back, spec);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut s = tiny_spec();
        s.replicates = 0;
        assert!(s.validate().is_err(), "zero replicates");
        let mut s = tiny_spec();
        s.methods.clear();
        assert!(s.validate().is_err(), "empty axis");
        let mut s = tiny_spec();
        s.grips.push(GripSpec {
            name: "HQ".into(),
            mu: 0.5,
        });
        assert!(s.validate().is_err(), "duplicate grip name");
        let mut s = tiny_spec();
        s.duration_s = f64::NAN;
        assert!(s.validate().is_err(), "NaN duration");
        let mut s = tiny_spec();
        s.maps.push(MapSpec {
            name: "bad".into(),
            fourier_seed: 1,
            half_width: 0.1,
            mean_radius: 6.0,
        });
        assert!(s.validate().is_err(), "implausible half width");
        let mut s = tiny_spec();
        s.budgets.clear();
        assert!(s.validate().is_err(), "empty budget axis");
        let mut s = tiny_spec();
        s.budgets = vec![50_000, 50_000];
        assert!(s.validate().is_err(), "duplicate budget");
        assert!(FleetSpec::from_json_str("{}").is_err());
        assert!(FleetSpec::from_json_str("not json").is_err());
    }

    #[test]
    fn budget_axis_expands_between_scenario_and_method() {
        let mut spec = tiny_spec();
        spec.budgets = vec![0, 50_000];
        spec.validate().expect("valid spec");
        let cells = spec.cells();
        // 1 map × 2 grips × 2 scenarios × 2 budgets × 2 methods.
        assert_eq!(cells.len(), 16);
        // Budget varies faster than scenario, slower than method.
        assert_eq!((cells[0].budget, cells[0].method), (0, 0));
        assert_eq!((cells[1].budget, cells[1].method), (0, 1));
        assert_eq!((cells[2].budget, cells[2].method), (1, 0));
        assert_eq!(cells[3].scenario, cells[0].scenario);
        // World seeds ignore the budget axis: paired worlds per budget.
        let runs = spec.runs();
        let at = |budget: usize| -> Vec<u64> {
            runs.iter()
                .filter(|r| r.key.budget == budget && r.key.method == 0)
                .map(|r| r.world_seed)
                .collect()
        };
        assert_eq!(at(0), at(1));
    }

    #[test]
    fn budgets_default_to_uncapped_in_json() {
        let spec = tiny_spec();
        let mut text = format!("{}", spec.to_json());
        // Strip the budgets key to simulate a pre-deadline spec file.
        text = text.replace("\"budgets\":[0],", "");
        let back = FleetSpec::from_json_str(&text).expect("parse back");
        assert_eq!(back.budgets, vec![0]);
        assert_eq!(back, spec);
    }

    #[test]
    fn method_labels_round_trip() {
        for m in EvalMethod::all() {
            assert_eq!(EvalMethod::parse(m.name()), Some(m));
        }
        assert_eq!(EvalMethod::parse("AMCL"), None);
    }

    #[test]
    fn map_spec_builds_a_paper_scale_track() {
        let spec = tiny_spec();
        let track = spec.maps[0].build_track();
        let len = track.raceline.total_length();
        assert!((25.0..60.0).contains(&len), "raceline {len} m");
        assert!(track.is_free(track.start_pose().translation()));
    }
}
