//! Robustness gates: the paper's qualitative localizer ordering, encoded
//! as hard checks over a [`FleetReport`].
//!
//! The source paper's central robustness findings are *ordinal*, not
//! numeric: the synthetic-likelihood particle filter (SynPF) degrades
//! gracefully under degraded-odometry slip where Cartographer's
//! scan-to-map matcher diverges, and uncorrected dead reckoning is the
//! worst localizer whenever nothing forces the others off the map. The
//! gates below fail a fleet whose aggregated tables contradict that
//! ordering, so a regression in any localizer (or in the simulator's
//! noise model) turns CI red instead of silently rewriting the tables.
//!
//! Orderings are judged on the **mean lateral estimation error** — the
//! paper's primary error axis (lateral deviation is what steers the car
//! off line and into a wall). Whole-run translation RMSE is reported but
//! not gated: after a global re-init, a particle filter on a corridor
//! circuit can re-localize onto the wrong *longitudinal* section while
//! staying laterally exact, and that ambiguity is a property of the
//! track's symmetry, not of the localizer under test.

use crate::aggregate::{CellSummary, FleetReport};

/// Scenario label the slip-ordering gate keys on (the fault catalog's
/// wheelspin burst).
pub const SLIP_SCENARIO: &str = "odom_slip";
/// Scenario label of the fault-free control the baseline gate keys on.
pub const NOMINAL_SCENARIO: &str = "nominal";

/// Checks one report against the paper's qualitative ordering and basic
/// sanity. Returns one human-readable line per violation; an empty vector
/// means the fleet passes.
///
/// Gates, per `(map, grip)` group:
///
/// 1. **Sanity** — every cell ran its replicates, and every aggregate is
///    finite with no missing outcomes.
/// 2. **Slip ordering** — under [`SLIP_SCENARIO`], SynPF's mean lateral
///    error must be strictly below Cartographer's (graceful degradation
///    vs divergence; paper §V).
/// 3. **Nominal baseline** — under [`NOMINAL_SCENARIO`], DeadReckoning
///    must have the worst mean lateral error of all localizers.
pub fn ordering_violations(report: &FleetReport) -> Vec<String> {
    let mut out = Vec::new();
    for cell in &report.cells {
        sanity(cell, &mut out);
    }
    let mut groups: Vec<(&str, &str)> = Vec::new();
    for cell in &report.cells {
        let g = (cell.map.as_str(), cell.grip.as_str());
        if !groups.contains(&g) {
            groups.push(g);
        }
    }
    for (map, grip) in groups {
        slip_ordering(report, map, grip, &mut out);
        nominal_baseline(report, map, grip, &mut out);
    }
    out
}

fn sanity(cell: &CellSummary, out: &mut Vec<String>) {
    let tag = format!(
        "{} × {} × {} × b{} × {}",
        cell.map, cell.grip, cell.scenario, cell.budget, cell.method
    );
    if cell.runs == 0 {
        out.push(format!("{tag}: cell has no replicates"));
        return;
    }
    if cell.missing > 0 {
        out.push(format!("{tag}: {} outcome(s) missing", cell.missing));
    }
    if !(cell.mean_rmse_cm.is_finite()
        && cell.p95_rmse_cm.is_finite()
        && cell.mean_lat_err_cm.is_finite())
    {
        out.push(format!("{tag}: non-finite aggregate"));
    }
    if cell.steps == 0 {
        out.push(format!("{tag}: no corrections executed"));
    }
}

fn slip_ordering(report: &FleetReport, map: &str, grip: &str, out: &mut Vec<String>) {
    // `cell` resolves the first-listed budget, so budget-sweeping specs
    // are judged on their lead budget (conventionally the uncapped 0).
    let synpf = report.cell(map, grip, SLIP_SCENARIO, "SynPF");
    let carto = report.cell(map, grip, SLIP_SCENARIO, "Cartographer");
    if let (Some(synpf), Some(carto)) = (synpf, carto) {
        // NaN aggregates are reported by `sanity`, so a plain comparison
        // is enough here.
        if synpf.mean_lat_err_cm >= carto.mean_lat_err_cm {
            out.push(format!(
                "{map} × {grip} × {SLIP_SCENARIO}: SynPF mean lateral error {:.1} cm must be \
                 below Cartographer's {:.1} cm (graceful degradation vs divergence)",
                synpf.mean_lat_err_cm, carto.mean_lat_err_cm
            ));
        }
    }
}

fn nominal_baseline(report: &FleetReport, map: &str, grip: &str, out: &mut Vec<String>) {
    let Some(dr) = report.cell(map, grip, NOMINAL_SCENARIO, "DeadReckoning") else {
        return;
    };
    for other in report.group(map, grip, NOMINAL_SCENARIO) {
        // Compare within one budget only: a hard-capped SynPF losing to
        // an uncapped baseline is a budget effect, not a regression.
        if other.method == "DeadReckoning" || other.budget != dr.budget {
            continue;
        }
        if dr.mean_lat_err_cm < other.mean_lat_err_cm {
            out.push(format!(
                "{map} × {grip} × {NOMINAL_SCENARIO}: DeadReckoning mean lateral error {:.1} cm \
                 beats {} ({:.1} cm) — corrected localizers must outperform the baseline",
                dr.mean_lat_err_cm, other.method, other.mean_lat_err_cm
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raceloc_obs::CounterRollup;

    fn cell(scenario: &str, method: &str, rmse: f64, rate: f64) -> CellSummary {
        CellSummary {
            map: "m0".into(),
            grip: "LQ".into(),
            scenario: scenario.into(),
            budget: 0,
            method: method.into(),
            runs: 20,
            steps: 2000,
            successes: (rate * 20.0).round() as u64,
            success_rate: rate,
            success_lo: (rate - 0.1).max(0.0),
            success_hi: (rate + 0.1).min(1.0),
            mean_rmse_cm: rmse,
            p95_rmse_cm: rmse * 1.4,
            max_rmse_cm: rmse * 2.0,
            mean_lat_err_cm: rmse * 0.5,
            p95_lat_err_cm: rmse * 0.8,
            recovered: 20,
            unrecovered: 0,
            mean_recovery_steps: 3.0,
            max_recovery_steps: 9,
            crashes: 0,
            nonfinite: 0,
            missing: 0,
        }
    }

    fn report(cells: Vec<CellSummary>) -> FleetReport {
        FleetReport {
            name: "t".into(),
            master_seed: 1,
            replicates: 20,
            total_runs: cells.iter().map(|c| c.runs).sum(),
            cells,
            counters: CounterRollup::new(),
        }
    }

    #[test]
    fn paper_consistent_ordering_passes() {
        let r = report(vec![
            cell(NOMINAL_SCENARIO, "SynPF", 5.0, 1.0),
            cell(NOMINAL_SCENARIO, "Cartographer", 7.0, 1.0),
            cell(NOMINAL_SCENARIO, "DeadReckoning", 400.0, 0.0),
            cell(SLIP_SCENARIO, "SynPF", 40.0, 0.9),
            cell(SLIP_SCENARIO, "Cartographer", 900.0, 0.1),
            cell(SLIP_SCENARIO, "DeadReckoning", 700.0, 0.0),
        ]);
        assert_eq!(ordering_violations(&r), Vec::<String>::new());
    }

    #[test]
    fn inverted_slip_ordering_fails() {
        let r = report(vec![
            cell(SLIP_SCENARIO, "SynPF", 900.0, 0.1),
            cell(SLIP_SCENARIO, "Cartographer", 40.0, 0.9),
        ]);
        let v = ordering_violations(&r);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("SynPF"));
    }

    #[test]
    fn dead_reckoning_winning_nominal_fails() {
        let r = report(vec![
            cell(NOMINAL_SCENARIO, "SynPF", 50.0, 0.5),
            cell(NOMINAL_SCENARIO, "DeadReckoning", 5.0, 1.0),
        ]);
        let v = ordering_violations(&r);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("DeadReckoning"));
    }

    #[test]
    fn sanity_catches_broken_cells() {
        let mut bad = cell(NOMINAL_SCENARIO, "SynPF", f64::NAN, 0.5);
        bad.missing = 2;
        let v = ordering_violations(&report(vec![bad]));
        assert!(v.iter().any(|m| m.contains("missing")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("non-finite")), "{v:?}");
        let mut empty = cell(NOMINAL_SCENARIO, "SynPF", 1.0, 1.0);
        empty.runs = 0;
        let v = ordering_violations(&report(vec![empty]));
        assert!(v.iter().any(|m| m.contains("no replicates")), "{v:?}");
    }

    #[test]
    fn gates_tolerate_absent_methods() {
        // A spec without Cartographer or DeadReckoning has nothing to
        // compare — no spurious violations.
        let r = report(vec![cell(SLIP_SCENARIO, "SynPF", 40.0, 0.9)]);
        assert!(ordering_violations(&r).is_empty());
    }
}
