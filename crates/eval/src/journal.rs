//! The resumable-run journal: an append-only checkpoint of completed
//! cells (DESIGN.md §15).
//!
//! A fleet run opened with a journal path appends one JSONL line per
//! *completed cell* — the same content-addressed payload the
//! [`crate::CellCache`] stores, keyed by the cell's hash. A later run
//! against the same (or an edited) spec loads the journal, takes every
//! line whose hash matches a cell it still needs, and executes only the
//! rest. Because report folding is order-independent across cells and
//! positional within a cell, the resumed report is byte-identical to an
//! uninterrupted run.
//!
//! The format is interrupt-tolerant by construction: lines are flushed
//! whole, the loader ignores a torn trailing line (the cell simply
//! re-runs), and matching is by content hash — a header mismatch on
//! `spec_hash` only means "written by a different spec/code revision",
//! which demotes the journal to a per-cell cache rather than invalidating
//! it.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use raceloc_obs::Json;

use crate::cache::{code_fingerprint, entry_doc_hash, entry_json, parse_entry_doc};
use crate::runner::RunOutcome;

const JOURNAL_MAGIC: &str = "raceloc-fleet";
const JOURNAL_VERSION: u64 = 1;

/// An append-only journal of completed fleet cells, one JSONL line each.
#[derive(Debug)]
pub struct RunJournal {
    path: PathBuf,
    file: File,
}

impl RunJournal {
    /// Opens `path` for appending, writing the header line first when the
    /// file is new or empty. `fleet` and `spec_hash` are provenance only;
    /// loading matches cells by content hash, never by header.
    pub fn open(path: impl Into<PathBuf>, fleet: &str, spec_hash: u64) -> io::Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        // An interrupted run can leave a torn, newline-less final line;
        // appending straight after it would corrupt the *next* line as
        // well, so terminate any unterminated tail first.
        let unterminated = match File::open(&path) {
            Ok(mut existing) => {
                let len = existing.metadata()?.len();
                if len == 0 {
                    false
                } else {
                    existing.seek(SeekFrom::End(-1))?;
                    let mut last = [0u8; 1];
                    existing.read_exact(&mut last)?;
                    last[0] != b'\n'
                }
            }
            Err(_) => false,
        };
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        if unterminated {
            file.write_all(b"\n")?;
        }
        if file.metadata()?.len() == 0 {
            let header = Json::Obj(vec![
                ("journal".into(), Json::Str(JOURNAL_MAGIC.into())),
                ("version".into(), Json::num(JOURNAL_VERSION as f64)),
                ("fleet".into(), Json::Str(fleet.to_string())),
                ("spec_hash".into(), Json::Str(format!("{spec_hash:016x}"))),
                (
                    "code".into(),
                    Json::Str(format!("{:016x}", code_fingerprint())),
                ),
            ]);
            writeln!(file, "{header}")?;
            file.flush()?;
        }
        Ok(Self { path, file })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one completed cell (all replicate outcomes, in replicate
    /// order) and flushes, so the line survives an interrupt immediately
    /// after this call returns.
    pub fn append_cell(&mut self, hash: u64, outcomes: &[RunOutcome]) -> io::Result<()> {
        writeln!(self.file, "{}", entry_json(hash, outcomes))?;
        self.file.flush()
    }

    /// Loads every well-formed cell line of the journal at `path`,
    /// indexed by cell hash. Later lines win (a re-run cell supersedes
    /// its earlier checkpoint), and every malformed line — including the
    /// torn final line of an interrupted run, entries with the wrong run
    /// count, or the header — is skipped, never an error. A missing file
    /// is an empty journal.
    pub fn load(path: &Path, expected_runs: usize) -> BTreeMap<u64, Vec<RunOutcome>> {
        let mut cells = BTreeMap::new();
        let Ok(file) = File::open(path) else {
            return cells;
        };
        for line in BufReader::new(file).lines() {
            let Ok(line) = line else {
                break;
            };
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let Ok(doc) = Json::parse(trimmed) else {
                continue;
            };
            if doc.get("journal").is_some() {
                continue;
            }
            let Some(hash) = entry_doc_hash(&doc) else {
                continue;
            };
            if let Some(outcomes) = parse_entry_doc(&doc, Some(hash), expected_runs) {
                cells.insert(hash, outcomes);
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_journal(tag: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "raceloc-eval-journal-{tag}-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn outcome(pos: usize, rmse: f64) -> RunOutcome {
        RunOutcome {
            index: pos,
            steps: 40,
            rmse_cm: rmse,
            p95_err_cm: rmse * 1.5,
            max_err_cm: rmse * 2.0,
            mean_lat_err_cm: rmse * 0.5,
            recovery_steps: Some(2),
            pct_nominal: 1.0,
            crashed: false,
            finite: true,
            success: true,
            counters: vec![("eval.runs", 1)],
        }
    }

    #[test]
    fn append_then_load_round_trips_cells() {
        let path = temp_journal("roundtrip");
        let mut j = RunJournal::open(&path, "t", 0xABCD).expect("open");
        j.append_cell(1, &[outcome(0, 10.0), outcome(1, 11.0)])
            .expect("append");
        j.append_cell(2, &[outcome(0, 20.0), outcome(1, 21.0)])
            .expect("append");
        drop(j);
        let cells = RunJournal::load(&path, 2);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[&1], vec![outcome(0, 10.0), outcome(1, 11.0)]);
        assert_eq!(cells[&2], vec![outcome(0, 20.0), outcome(1, 21.0)]);
        // Count mismatch filters every line out.
        assert!(RunJournal::load(&path, 3).is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reopening_appends_and_later_lines_win() {
        let path = temp_journal("reopen");
        {
            let mut j = RunJournal::open(&path, "t", 1).expect("open");
            j.append_cell(7, &[outcome(0, 1.0)]).expect("append");
        }
        {
            let mut j = RunJournal::open(&path, "t", 1).expect("reopen");
            j.append_cell(7, &[outcome(0, 9.0)]).expect("append");
            j.append_cell(8, &[outcome(0, 3.0)]).expect("append");
        }
        // One header only, three cell lines.
        let text = std::fs::read_to_string(&path).expect("read journal");
        assert_eq!(text.matches(JOURNAL_MAGIC).count(), 1);
        let cells = RunJournal::load(&path, 1);
        assert_eq!(cells[&7][0].rmse_cm, 9.0, "later line supersedes");
        assert_eq!(cells[&8][0].rmse_cm, 3.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_trailing_line_is_skipped() {
        let path = temp_journal("torn");
        {
            let mut j = RunJournal::open(&path, "t", 1).expect("open");
            j.append_cell(4, &[outcome(0, 2.0)]).expect("append");
        }
        // Simulate an interrupt mid-write of the next cell line.
        let mut text = std::fs::read_to_string(&path).expect("read journal");
        text.push_str("{\"version\":1,\"cell_hash\":\"0000000000000005\",\"outcomes\":[{\"in");
        std::fs::write(&path, &text).expect("write torn journal");
        let cells = RunJournal::load(&path, 1);
        assert_eq!(cells.len(), 1, "only the whole line survives");
        assert!(cells.contains_key(&4));
        // Reopening an interrupted journal keeps appending after the torn
        // line; the loader still recovers every whole line.
        let mut j = RunJournal::open(&path, "t", 1).expect("reopen");
        j.append_cell(5, &[outcome(0, 6.0)]).expect("append");
        drop(j);
        let cells = RunJournal::load(&path, 1);
        assert!(cells.contains_key(&5));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_empty_journal() {
        let path = temp_journal("missing");
        assert!(RunJournal::load(&path, 1).is_empty());
    }
}
