#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! **raceloc-eval** — deterministic Monte-Carlo fleet evaluation.
//!
//! The paper's robustness claims are statistical: each localizer ×
//! surface-quality × fault combination is judged over repeated runs, not
//! one trajectory. This crate turns that study into a declarative,
//! reproducible batch:
//!
//! - [`FleetSpec`] names the axes — maps × grip levels × fault scenarios
//!   × compute budgets × localizers × seed replicates — as plain data
//!   with a lossless JSON round-trip;
//! - [`run_fleet`] expands the spec into runs, fans them over a
//!   [`raceloc_par::WorkerPool`] (one closed-loop simulation per job,
//!   inner parallelism pinned to 1), scatters outcomes back by job tag,
//!   and folds them **in canonical run order**;
//! - [`FleetReport`] carries per-cell statistics — mean/p95 RMSE and
//!   lateral error, recovery-step distributions, success rates with
//!   Wilson 95% intervals — plus a fleet-wide telemetry counter rollup;
//! - [`ordering_violations`] encodes the paper's qualitative findings
//!   (SynPF degrades gracefully under odometry slip where Cartographer
//!   diverges; dead reckoning is the nominal-scenario worst case) as CI
//!   gates.
//!
//! Every world seed is a pure function of `(master_seed, map, grip,
//! scenario, replicate)` — the localizer is deliberately excluded so all
//! methods of a cell face bit-identical noise — and no report field
//! depends on wall clock, thread count, or job-completion order: the
//! serialized report is byte-identical for any pool width (rule R3).
//!
//! # Examples
//!
//! ```
//! use raceloc_eval::{run_fleet, EvalMethod, FleetSpec, GripSpec, MapSpec, ScenarioSpec};
//! use raceloc_faults::FaultSchedule;
//!
//! let spec = FleetSpec {
//!     name: "doc".into(),
//!     master_seed: 1,
//!     replicates: 1,
//!     duration_s: 1.0,
//!     particles: 60,
//!     beams: 61,
//!     success_lat_cm: 200.0,
//!     maps: vec![MapSpec {
//!         name: "m0".into(),
//!         fourier_seed: 33,
//!         half_width: 1.25,
//!         mean_radius: 6.0,
//!     }],
//!     grips: vec![GripSpec { name: "HQ".into(), mu: 1.0 }],
//!     scenarios: vec![ScenarioSpec {
//!         name: "nominal".into(),
//!         schedule: FaultSchedule::builder().build().unwrap(),
//!         measure_from: 0,
//!         recovery_budget: None,
//!     }],
//!     budgets: vec![0],
//!     methods: vec![EvalMethod::DeadReckoning],
//! };
//! let report = run_fleet(&spec, 1).unwrap();
//! assert_eq!(report.total_runs, 1);
//! assert_eq!(report.cells.len(), 1);
//! ```

pub mod aggregate;
pub mod cache;
pub mod diff;
pub mod gates;
pub mod journal;
pub mod runner;
pub mod spec;

pub use aggregate::{
    CellAggregator, CellSummary, FleetReport, ReportBuilder, ReportError, ERROR_BOUNDS_CM,
};
pub use cache::{cell_hash, code_fingerprint, spec_hash, CellCache, Fnv64, RESULT_REVISION};
pub use diff::{diff_reports, ReportDiff};
pub use gates::{ordering_violations, NOMINAL_SCENARIO, SLIP_SCENARIO};
pub use journal::RunJournal;
pub use runner::{
    execute_run, run_fleet, run_fleet_with, FleetCtx, FleetError, FleetRunOptions, FleetRunStats,
    MapResources, RunOutcome,
};
pub use spec::{
    CellKey, EvalMethod, FleetSpec, GripSpec, MapSpec, RunDesc, ScenarioSpec, SpecError,
};
