//! Deterministic static chunk scheduling.
//!
//! The chunk layout of a batch is a pure function of the item count and the
//! configured minimum chunk size — never of the worker count, the host's
//! core count, or any runtime measurement. Workers may pick chunks up in
//! any order, but because each chunk covers a fixed, disjoint index span
//! and per-chunk results are written back into that span, the combined
//! output is bit-identical for any thread count.

use std::ops::Range;

/// Hard cap on the number of chunks a batch is split into.
///
/// A fixed constant (not "number of cores") so the layout is identical on
/// every machine. 64 chunks keep all realistic worker counts busy while the
/// per-chunk scheduling overhead stays negligible.
pub const MAX_CHUNKS: usize = 64;

/// Default minimum chunk size (items per chunk) when a caller has no better
/// domain knowledge. Matches [`crate::chunk_count`]'s docs.
pub const DEFAULT_CHUNK_MIN: usize = 64;

/// Number of chunks a batch of `items` is split into: one chunk per
/// `chunk_min` items, at least 1 (for a non-empty batch), at most
/// [`MAX_CHUNKS`]. Returns 0 only for an empty batch.
///
/// # Examples
///
/// ```
/// use raceloc_par::chunk_count;
///
/// assert_eq!(chunk_count(0, 64), 0);
/// assert_eq!(chunk_count(10, 64), 1); // fewer items than one chunk
/// assert_eq!(chunk_count(1200, 64), 18);
/// assert_eq!(chunk_count(1_000_000, 1), 64); // capped
/// ```
pub fn chunk_count(items: usize, chunk_min: usize) -> usize {
    if items == 0 {
        return 0;
    }
    (items / chunk_min.max(1)).clamp(1, MAX_CHUNKS)
}

/// The index span of chunk `idx` when `items` are split into `chunks`
/// balanced chunks: the first `items % chunks` chunks carry one extra item.
///
/// Returns an empty range when `chunks == 0` or `idx >= chunks`.
pub fn chunk_span(items: usize, chunks: usize, idx: usize) -> Range<usize> {
    if chunks == 0 || idx >= chunks {
        return 0..0;
    }
    let base = items / chunks;
    let rem = items % chunks;
    let start = idx * base + idx.min(rem);
    let len = base + usize::from(idx < rem);
    start..start + len
}

/// Iterator over the chunk spans of a batch, in index order.
///
/// Equivalent to `(0..chunk_count(items, chunk_min)).map(|i| chunk_span(..))`
/// but allocation-free and self-describing at call sites.
pub fn chunk_spans(items: usize, chunk_min: usize) -> impl Iterator<Item = Range<usize>> {
    let chunks = chunk_count(items, chunk_min);
    (0..chunks).map(move |idx| chunk_span(items, chunks, idx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_cover_every_index_exactly_once() {
        for items in [0usize, 1, 5, 63, 64, 65, 150, 1200, 4096, 100_000] {
            for chunk_min in [1usize, 16, 64, 257] {
                let mut next = 0usize;
                for span in chunk_spans(items, chunk_min) {
                    assert_eq!(span.start, next, "items={items} chunk_min={chunk_min}");
                    assert!(!span.is_empty());
                    next = span.end;
                }
                assert_eq!(next, items, "items={items} chunk_min={chunk_min}");
            }
        }
    }

    #[test]
    fn chunk_sizes_are_balanced() {
        let sizes: Vec<usize> = chunk_spans(1201, 64).map(|s| s.len()).collect();
        let min = sizes.iter().min().copied().unwrap();
        let max = sizes.iter().max().copied().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn chunks_respect_minimum_size() {
        for items in [64usize, 100, 1200, 10_000] {
            for span in chunk_spans(items, 64) {
                assert!(span.len() >= 64, "items={items}, span={span:?}");
            }
        }
    }

    #[test]
    fn count_is_capped_at_max_chunks() {
        assert_eq!(chunk_count(usize::MAX, 1), MAX_CHUNKS);
        assert!(chunk_spans(1_000_000, 1).count() <= MAX_CHUNKS);
    }

    #[test]
    fn layout_ignores_everything_but_items_and_chunk_min() {
        // The whole determinism argument: the layout is a pure function.
        let a: Vec<_> = chunk_spans(1200, 64).collect();
        let b: Vec<_> = chunk_spans(1200, 64).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(chunk_count(0, 64), 0);
        assert_eq!(chunk_count(10, 0), 10); // chunk_min clamped to 1
        assert_eq!(chunk_span(10, 0, 0), 0..0);
        assert_eq!(chunk_span(10, 2, 5), 0..0);
        assert_eq!(chunk_spans(0, 64).count(), 0);
    }
}
