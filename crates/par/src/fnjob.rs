//! Heterogeneous closure jobs for the [`WorkerPool`](crate::WorkerPool).
//!
//! The chunked particle pipeline uses purpose-built job structs whose
//! buffers round-trip through the pool. Coarser consumers — the fleet
//! evaluation engine runs one *entire closed-loop simulation* per job —
//! want to reuse the same pool machinery for jobs of different shapes
//! without writing a struct per workload. [`FnJob`] packages an arbitrary
//! `FnMut(&C) -> T` closure plus a caller-chosen `tag`, so results can be
//! scattered back into a deterministic order after [`run_batch`] hands the
//! jobs back **in unspecified order**.
//!
//! Determinism contract: the pool never adds nondeterminism (each job is a
//! pure function of its captured inputs plus the shared context), so a
//! batch of `FnJob`s produces the same tagged results for every thread
//! count and every completion order — callers only need to sort or index
//! by [`FnJob::tag`].
//!
//! [`run_batch`]: crate::WorkerPool::run_batch

use crate::pool::PoolJob;

/// A boxed-closure pool job carrying its own result slot.
///
/// # Examples
///
/// ```
/// use raceloc_par::{FnJob, WorkerPool};
///
/// let pool: WorkerPool<u64, FnJob<u64, u64>> = WorkerPool::new(10, 2);
/// let mut jobs: Vec<FnJob<u64, u64>> =
///     (0..4).map(|i| FnJob::new(i as usize, move |ctx: &u64| i * ctx)).collect();
/// pool.run_batch(&mut jobs);
/// // Jobs come back in unspecified order; scatter by tag.
/// let mut out = vec![0u64; 4];
/// for job in &mut jobs {
///     let tag = job.tag();
///     if let (Some(slot), Some(v)) = (out.get_mut(tag), job.take()) {
///         *slot = v;
///     }
/// }
/// assert_eq!(out, [0, 10, 20, 30]);
/// ```
pub struct FnJob<C, T> {
    tag: usize,
    items: usize,
    work: Box<dyn FnMut(&C) -> T + Send>,
    result: Option<T>,
}

impl<C, T> FnJob<C, T> {
    /// Wraps a closure as a pool job with a scatter-back `tag`.
    pub fn new(tag: usize, work: impl FnMut(&C) -> T + Send + 'static) -> Self {
        Self {
            tag,
            items: 1,
            work: Box::new(work),
            result: None,
        }
    }

    /// Sets the item count reported to the pool's chunk-size histogram
    /// (defaults to 1; purely observational).
    pub fn with_items(mut self, items: usize) -> Self {
        self.items = items;
        self
    }

    /// The caller-chosen index identifying this job's output slot.
    pub fn tag(&self) -> usize {
        self.tag
    }

    /// The stored result, if the job has run.
    pub fn result(&self) -> Option<&T> {
        self.result.as_ref()
    }

    /// Takes the stored result out of the job (leaving `None`).
    pub fn take(&mut self) -> Option<T> {
        self.result.take()
    }
}

impl<C, T: Send> PoolJob<C> for FnJob<C, T> {
    fn run(&mut self, ctx: &C) {
        self.result = Some((self.work)(ctx));
    }

    fn items(&self) -> usize {
        self.items
    }
}

impl<C, T> std::fmt::Debug for FnJob<C, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnJob")
            .field("tag", &self.tag)
            .field("items", &self.items)
            .field("has_result", &self.result.is_some())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::WorkerPool;

    #[test]
    fn results_scatter_back_by_tag_for_any_thread_count() {
        let run = |threads: usize| {
            let pool: WorkerPool<Vec<u64>, FnJob<Vec<u64>, u64>> =
                WorkerPool::new((0..32).collect(), threads);
            let mut jobs: Vec<_> = (0..32usize)
                .map(|i| FnJob::new(i, move |ctx: &Vec<u64>| ctx[i] * 3 + i as u64))
                .collect();
            pool.run_batch(&mut jobs);
            let mut out = vec![0u64; 32];
            for job in &mut jobs {
                out[job.tag()] = job.take().expect("job ran");
            }
            out
        };
        let reference = run(1);
        for threads in [2, 4] {
            assert_eq!(run(threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn heterogeneous_work_shares_one_pool() {
        // Different closures (different captured state and work shapes) in
        // one batch — the use case the fleet engine needs.
        let pool: WorkerPool<u64, FnJob<u64, u64>> = WorkerPool::new(7, 2);
        let mut jobs = vec![
            FnJob::new(0, |ctx: &u64| ctx + 1),
            FnJob::new(1, |ctx: &u64| {
                (0..100u64).map(|i| i % ctx).sum() // a heavier, looping job
            }),
            FnJob::new(2, |ctx: &u64| ctx * ctx).with_items(5),
        ];
        pool.run_batch(&mut jobs);
        jobs.sort_by_key(FnJob::tag);
        assert_eq!(jobs[0].result(), Some(&8));
        assert_eq!(jobs[1].result(), Some(&((0..100u64).map(|i| i % 7).sum())));
        assert_eq!(jobs[2].result(), Some(&49));
        assert_eq!(pool.stats().jobs, 3);
    }

    #[test]
    fn take_empties_the_result_slot() {
        let mut job: FnJob<(), u32> = FnJob::new(9, |_| 5);
        assert!(job.result().is_none());
        job.run(&());
        assert_eq!(job.tag(), 9);
        assert_eq!(job.take(), Some(5));
        assert_eq!(job.take(), None);
    }

    #[test]
    fn reused_jobs_recompute_on_each_batch() {
        let pool: WorkerPool<u64, FnJob<u64, u64>> = WorkerPool::new(2, 1);
        let mut count = 0u64;
        let mut jobs = vec![FnJob::new(0, move |ctx: &u64| {
            count += 1;
            ctx * count
        })];
        pool.run_batch(&mut jobs);
        assert_eq!(jobs[0].result(), Some(&2));
        pool.run_batch(&mut jobs);
        assert_eq!(jobs[0].result(), Some(&4), "FnMut state persists");
    }
}
