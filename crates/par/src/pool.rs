//! Long-lived worker pool exchanging owned, reusable job buffers.
//!
//! The pool is deliberately minimal: a `Mutex<VecDeque>` job queue, two
//! condvars, and `threads` OS threads that live as long as the pool.
//! Jobs are fully owned values (buffers included) that round-trip back to
//! the caller after each batch, so the steady-state hot path performs no
//! heap allocation and no thread spawn. Determinism does not depend on the
//! pool at all — each job writes a disjoint output span fixed by the
//! [`crate::chunk`] layout — so workers may pick chunks up in any order.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use raceloc_obs::{Stopwatch, Telemetry};

use crate::chunk::MAX_CHUNKS;

/// A unit of work executed on a pool worker.
///
/// Implementations own all their inputs and outputs; the shared read-only
/// context `C` (typically an `Arc` of a map or sensor model) is provided by
/// the pool at run time.
pub trait PoolJob<C>: Send {
    /// Execute the job against the shared context.
    fn run(&mut self, ctx: &C);

    /// Number of items this job covers (used for the chunk-size histogram).
    fn items(&self) -> usize {
        1
    }
}

/// Chunk-size histogram buckets published by [`WorkerPool::publish_stats`].
/// Upper bounds are inclusive; the last bucket is open-ended.
const CHUNK_BUCKETS: [(usize, &str); 6] = [
    (64, "par.pool.chunk_le_64"),
    (128, "par.pool.chunk_le_128"),
    (256, "par.pool.chunk_le_256"),
    (512, "par.pool.chunk_le_512"),
    (1024, "par.pool.chunk_le_1024"),
    (usize::MAX, "par.pool.chunk_gt_1024"),
];

fn bucket_index(items: usize) -> usize {
    CHUNK_BUCKETS
        .iter()
        .position(|(bound, _)| items <= *bound)
        .unwrap_or(CHUNK_BUCKETS.len() - 1)
}

/// Cumulative pool counters since construction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PoolStats {
    /// Worker threads owned by the pool.
    pub threads: usize,
    /// Jobs (chunks) executed.
    pub jobs: u64,
    /// Batches submitted through [`WorkerPool::run_batch`].
    pub batches: u64,
    /// Total seconds workers spent inside [`PoolJob::run`].
    pub busy_seconds: f64,
    /// Largest queue depth ever observed at submission time.
    pub queue_peak: usize,
    /// Chunk-size histogram; buckets match `CHUNK_BUCKETS`.
    pub chunk_hist: [u64; 6],
}

#[derive(Default)]
struct StatsInner {
    jobs: u64,
    batches: u64,
    busy_seconds: f64,
    queue_peak: usize,
    chunk_hist: [u64; 6],
}

struct State<J> {
    queue: VecDeque<J>,
    done: Vec<J>,
    in_flight: usize,
    expected: usize,
    shutdown: bool,
    stats: StatsInner,
    /// What `publish_stats` has already pushed into a `Telemetry`.
    published: StatsInner,
}

struct Shared<C, J> {
    ctx: C,
    state: Mutex<State<J>>,
    work_ready: Condvar,
    batch_done: Condvar,
}

/// Locks a mutex, recovering the guard if a previous holder panicked.
///
/// A worker panicking mid-job must not take the whole localizer down; the
/// state a panicked job could leave behind is owned by the job value itself,
/// never by the shared queue, so poison recovery is sound here. Exported for
/// the other hot-path crates, which share the same no-panic policy (R1).
pub fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

use lock_unpoisoned as lock;

fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match cv.wait(guard) {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Persistent worker pool over a shared read-only context `C` and owned job
/// type `J`.
///
/// Created once, reused for every batch; see the crate docs for the
/// determinism argument and an example. Batches are serialized internally,
/// so `run_batch` may be called from a `&self` borrow without external
/// locking.
pub struct WorkerPool<C, J> {
    shared: Arc<Shared<C, J>>,
    workers: Vec<JoinHandle<()>>,
    /// Serializes batches: exactly one `run_batch` owns the queue at a time.
    batch_gate: Mutex<()>,
}

impl<C, J> WorkerPool<C, J>
where
    C: Send + Sync + 'static,
    J: PoolJob<C> + 'static,
{
    /// Spawn a pool with `threads` workers (clamped to at least 1) over the
    /// shared context.
    ///
    /// If the OS refuses to spawn some workers the pool degrades to fewer
    /// threads — results are unaffected because the chunk layout never
    /// depends on the worker count. With zero live workers, batches run
    /// inline on the calling thread.
    pub fn new(ctx: C, threads: usize) -> Self {
        let shared = Arc::new(Shared {
            ctx,
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(MAX_CHUNKS),
                done: Vec::with_capacity(MAX_CHUNKS),
                in_flight: 0,
                expected: 0,
                shutdown: false,
                stats: StatsInner::default(),
                published: StatsInner::default(),
            }),
            work_ready: Condvar::new(),
            batch_done: Condvar::new(),
        });
        let mut workers = Vec::with_capacity(threads.max(1));
        for idx in 0..threads.max(1) {
            let shared = Arc::clone(&shared);
            let builder = std::thread::Builder::new().name(format!("raceloc-par-{idx}"));
            if let Ok(handle) = builder.spawn(move || worker_loop(&shared)) {
                workers.push(handle);
            }
        }
        Self {
            shared,
            workers,
            batch_gate: Mutex::new(()),
        }
    }

    /// Number of live worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Execute every job in `jobs`, blocking until all have finished.
    ///
    /// Jobs are drained into the pool and handed back through the same
    /// vector once complete, **in unspecified order** — jobs must locate
    /// their output span themselves (e.g. via a stored start index). The
    /// vector's buffers are reused across calls, so steady-state batches
    /// allocate nothing.
    pub fn run_batch(&self, jobs: &mut Vec<J>) {
        if jobs.is_empty() {
            return;
        }
        let _gate = lock(&self.batch_gate);
        if self.workers.is_empty() {
            // Spawn-failure fallback: run the same chunk layout inline.
            let sw = Stopwatch::start();
            let mut done = 0u64;
            let mut hist = [0u64; 6];
            for job in jobs.iter_mut() {
                hist[bucket_index(job.items())] += 1;
                job.run(&self.shared.ctx);
                done += 1;
            }
            let busy = sw.elapsed_seconds();
            let mut st = lock(&self.shared.state);
            st.stats.jobs += done;
            st.stats.batches += 1;
            st.stats.busy_seconds += busy;
            for (slot, n) in st.stats.chunk_hist.iter_mut().zip(hist) {
                *slot += n;
            }
            return;
        }
        let expected = jobs.len();
        {
            let mut st = lock(&self.shared.state);
            st.queue.extend(jobs.drain(..));
            st.expected = expected;
            let depth = st.queue.len();
            st.stats.queue_peak = st.stats.queue_peak.max(depth);
            st.stats.batches += 1;
        }
        self.shared.work_ready.notify_all();
        let mut st = lock(&self.shared.state);
        while st.done.len() < expected {
            st = wait(&self.shared.batch_done, st);
        }
        st.expected = 0;
        // `jobs` is empty after the drain above; swapping hands the filled
        // `done` buffer back and parks the caller's empty one for reuse.
        std::mem::swap(jobs, &mut st.done);
    }

    /// Cumulative counters since the pool was created.
    pub fn stats(&self) -> PoolStats {
        let st = lock(&self.shared.state);
        PoolStats {
            threads: self.workers.len(),
            jobs: st.stats.jobs,
            batches: st.stats.batches,
            busy_seconds: st.stats.busy_seconds,
            queue_peak: st.stats.queue_peak,
            chunk_hist: st.stats.chunk_hist,
        }
    }

    /// Push the counters accumulated since the previous call into `tel`.
    ///
    /// Telemetry counters are add-only, so this publishes deltas:
    /// `par.pool.jobs`, `par.pool.batches`, the `par.pool.chunk_*`
    /// histogram, and `par.pool.queue_peak` (delta of a running maximum, so
    /// the cumulative counter equals the peak). Worker busy time lands on
    /// the `par.pool.busy` span.
    pub fn publish_stats(&self, tel: &Telemetry) {
        if !tel.is_enabled() {
            return;
        }
        let mut st = lock(&self.shared.state);
        let jobs = st.stats.jobs - st.published.jobs;
        let batches = st.stats.batches - st.published.batches;
        let busy = st.stats.busy_seconds - st.published.busy_seconds;
        let peak = st.stats.queue_peak - st.published.queue_peak;
        let mut hist_delta = [0u64; 6];
        for (i, slot) in hist_delta.iter_mut().enumerate() {
            *slot = st.stats.chunk_hist[i] - st.published.chunk_hist[i];
        }
        st.published.jobs = st.stats.jobs;
        st.published.batches = st.stats.batches;
        st.published.busy_seconds = st.stats.busy_seconds;
        st.published.queue_peak = st.stats.queue_peak;
        st.published.chunk_hist = st.stats.chunk_hist;
        drop(st);
        if jobs > 0 {
            tel.add("par.pool.jobs", jobs);
        }
        if batches > 0 {
            tel.add("par.pool.batches", batches);
        }
        if peak > 0 {
            tel.add("par.pool.queue_peak", peak as u64);
        }
        if busy > 0.0 {
            tel.record_span("par.pool.busy", busy);
        }
        for (i, (_, name)) in CHUNK_BUCKETS.iter().enumerate() {
            if hist_delta[i] > 0 {
                tel.add(name, hist_delta[i]);
            }
        }
    }
}

fn worker_loop<C, J: PoolJob<C>>(shared: &Shared<C, J>) {
    loop {
        let mut job = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(job) = st.queue.pop_front() {
                    st.in_flight += 1;
                    break job;
                }
                st = wait(&shared.work_ready, st);
            }
        };
        let items = job.items();
        let sw = Stopwatch::start();
        job.run(&shared.ctx);
        let busy = sw.elapsed_seconds();
        let mut st = lock(&shared.state);
        st.stats.jobs += 1;
        st.stats.busy_seconds += busy;
        st.stats.chunk_hist[bucket_index(items)] += 1;
        st.in_flight -= 1;
        st.done.push(job);
        if st.done.len() >= st.expected && st.in_flight == 0 {
            shared.batch_done.notify_all();
        }
    }
}

impl<C, J> Drop for WorkerPool<C, J> {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<C, J> std::fmt::Debug for WorkerPool<C, J> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.workers.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{chunk_span, chunk_spans};

    /// Scales its span of a shared input by a context factor.
    struct Scale {
        start: usize,
        input: Vec<f64>,
        output: Vec<f64>,
    }

    impl PoolJob<Arc<f64>> for Scale {
        fn run(&mut self, ctx: &Arc<f64>) {
            self.output.clear();
            self.output.extend(self.input.iter().map(|v| v * **ctx));
        }

        fn items(&self) -> usize {
            self.input.len()
        }
    }

    fn run_scaled(threads: usize, items: usize) -> Vec<f64> {
        let data: Vec<f64> = (0..items).map(|i| i as f64).collect();
        let pool: WorkerPool<Arc<f64>, Scale> = WorkerPool::new(Arc::new(3.0), threads);
        let mut jobs: Vec<Scale> = chunk_spans(items, 16)
            .map(|span| Scale {
                start: span.start,
                input: data[span.clone()].to_vec(),
                output: Vec::new(),
            })
            .collect();
        pool.run_batch(&mut jobs);
        let mut out = vec![0.0; items];
        for job in &jobs {
            out[job.start..job.start + job.output.len()].copy_from_slice(&job.output);
        }
        out
    }

    #[test]
    fn batch_results_are_identical_for_any_thread_count() {
        let reference = run_scaled(1, 500);
        assert_eq!(reference.len(), 500);
        assert_eq!(reference[10], 30.0);
        for threads in [2, 4, 8] {
            assert_eq!(run_scaled(threads, 500), reference, "threads={threads}");
        }
    }

    #[test]
    fn buffers_round_trip_and_pool_is_reusable() {
        let pool: WorkerPool<Arc<f64>, Scale> = WorkerPool::new(Arc::new(2.0), 3);
        let mut jobs = vec![Scale {
            start: 0,
            input: vec![1.0, 2.0],
            output: Vec::new(),
        }];
        for _ in 0..5 {
            pool.run_batch(&mut jobs);
            assert_eq!(jobs.len(), 1);
            assert_eq!(jobs[0].output, [2.0, 4.0]);
        }
        let stats = pool.stats();
        assert_eq!(stats.jobs, 5);
        assert_eq!(stats.batches, 5);
        assert!(stats.busy_seconds >= 0.0);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let pool: WorkerPool<Arc<f64>, Scale> = WorkerPool::new(Arc::new(1.0), 2);
        let mut jobs: Vec<Scale> = Vec::new();
        pool.run_batch(&mut jobs);
        assert_eq!(pool.stats().batches, 0);
    }

    #[test]
    fn zero_thread_request_is_clamped() {
        let pool: WorkerPool<Arc<f64>, Scale> = WorkerPool::new(Arc::new(1.0), 0);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn stats_track_chunk_histogram_and_queue_peak() {
        let items = 400;
        let data: Vec<f64> = (0..items).map(|i| i as f64).collect();
        let pool: WorkerPool<Arc<f64>, Scale> = WorkerPool::new(Arc::new(1.0), 2);
        let mut jobs: Vec<Scale> = chunk_spans(items, 100)
            .map(|span| Scale {
                start: span.start,
                input: data[span.clone()].to_vec(),
                output: Vec::new(),
            })
            .collect();
        let n_jobs = jobs.len() as u64;
        pool.run_batch(&mut jobs);
        let stats = pool.stats();
        assert_eq!(stats.jobs, n_jobs);
        assert!(stats.queue_peak >= 1);
        // 400 items over chunk_min=100 → 4 chunks of 100 items each.
        assert_eq!(stats.chunk_hist[bucket_index(100)], n_jobs);
    }

    #[test]
    fn publish_stats_emits_deltas_into_telemetry() {
        let tel = Telemetry::enabled();
        let pool: WorkerPool<Arc<f64>, Scale> = WorkerPool::new(Arc::new(1.0), 2);
        let mut jobs = vec![Scale {
            start: 0,
            input: vec![1.0; 32],
            output: Vec::new(),
        }];
        pool.run_batch(&mut jobs);
        pool.publish_stats(&tel);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("par.pool.jobs"), Some(1));
        assert_eq!(snap.counter("par.pool.batches"), Some(1));
        assert_eq!(snap.counter("par.pool.chunk_le_64"), Some(1));

        // A second publish with no new work adds nothing.
        pool.publish_stats(&tel);
        assert_eq!(tel.snapshot().counter("par.pool.jobs"), Some(1));

        // Another batch publishes only the delta; the counter accumulates.
        pool.run_batch(&mut jobs);
        pool.publish_stats(&tel);
        assert_eq!(tel.snapshot().counter("par.pool.jobs"), Some(2));
    }

    #[test]
    fn publish_stats_on_disabled_telemetry_is_free() {
        let tel = Telemetry::disabled();
        let pool: WorkerPool<Arc<f64>, Scale> = WorkerPool::new(Arc::new(1.0), 1);
        pool.publish_stats(&tel);
        assert!(tel.snapshot().counter("par.pool.jobs").is_none());
    }

    #[test]
    fn spans_line_up_with_job_starts() {
        // The intended usage pattern: jobs are built from chunk_spans and
        // carry their start index, so scatter-back never overlaps.
        let items = 257;
        let chunks: Vec<_> = chunk_spans(items, 32).collect();
        for (idx, span) in chunks.iter().enumerate() {
            assert_eq!(*span, chunk_span(items, chunks.len(), idx));
        }
    }
}
