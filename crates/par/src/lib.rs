#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! Persistent deterministic worker pool for the localization hot path.
//!
//! The paper's 1.25 ms CPU sensor update relies on `rangelibc`-style batched
//! ray casting; the reproduction originally paid a fresh
//! `std::thread::scope` spawn on *every* correction step. This crate
//! replaces that with a long-lived pool ([`WorkerPool`]) that is created
//! once and fed owned, reusable job buffers, so the steady-state hot path
//! performs **zero heap allocations and zero thread spawns**.
//!
//! Two properties are load-bearing (DESIGN.md §11):
//!
//! 1. **Deterministic static chunking** ([`chunk`]): the way a batch of `n`
//!    items is split into chunks depends only on `n` and the configured
//!    minimum chunk size — never on the worker count or the host's core
//!    count. Since every chunk writes a disjoint output span and chunk
//!    results are combined in chunk order, results are bit-identical for
//!    any thread count (analysis rule R3 keeps holding).
//! 2. **Safe Rust only**: workers own an `Arc` of an immutable context and
//!    exchange fully owned job values through a `Mutex<VecDeque>` + condvar
//!    queue, so no `unsafe`, no scoped-lifetime tricks, and no external
//!    dependency is needed.
//!
//! # Examples
//!
//! ```
//! use raceloc_par::{PoolJob, WorkerPool};
//! use std::sync::Arc;
//!
//! struct Square { start: usize, values: Vec<f64> }
//! impl PoolJob<Arc<()>> for Square {
//!     fn run(&mut self, _ctx: &Arc<()>) {
//!         for v in &mut self.values { *v *= *v; }
//!     }
//! }
//!
//! let pool = WorkerPool::new(Arc::new(()), 4);
//! let mut jobs = vec![Square { start: 0, values: vec![2.0, 3.0] }];
//! pool.run_batch(&mut jobs);
//! assert_eq!(jobs[0].values, [4.0, 9.0]);
//! ```

pub mod chunk;
pub mod fnjob;
pub mod pool;

pub use chunk::{chunk_count, chunk_span, chunk_spans, DEFAULT_CHUNK_MIN, MAX_CHUNKS};
pub use fnjob::FnJob;
pub use pool::{lock_unpoisoned, PoolJob, PoolStats, WorkerPool};
