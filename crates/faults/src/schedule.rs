//! Fault declarations: kinds, windows, validation, builder, and the
//! dependency-free JSON mapping.

use std::fmt;

use raceloc_obs::Json;

use crate::FaultSchedule;

/// A rejected fault declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleError {
    /// Human-readable description of what was rejected.
    pub message: String,
}

impl ScheduleError {
    /// Creates an error with the given description.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault schedule: {}", self.message)
    }
}

impl std::error::Error for ScheduleError {}

/// A half-open window `[start, end)` of LiDAR correction steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StepWindow {
    /// First step (inclusive) at which the fault is active.
    pub start: u64,
    /// First step (exclusive) at which the fault is over.
    pub end: u64,
}

impl StepWindow {
    /// Creates the window `[start, end)`.
    pub fn new(start: u64, end: u64) -> Self {
        Self { start, end }
    }

    /// Whether `step` falls inside the window.
    pub fn contains(&self, step: u64) -> bool {
        step >= self.start && step < self.end
    }

    /// The window length in steps.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Whether the window covers no step at all.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// An axis-aligned world-frame rectangle, for map-corruption faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapRegion {
    /// Lower x bound \[m\].
    pub x0: f64,
    /// Lower y bound \[m\].
    pub y0: f64,
    /// Upper x bound \[m\].
    pub x1: f64,
    /// Upper y bound \[m\].
    pub y1: f64,
}

/// What goes wrong. Each variant maps to a physical failure mode of the
/// F1TENTH sensing stack (DESIGN.md §12).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Every beam in the window is invalid: sun glare, dust cloud, or a
    /// LiDAR driver stall. Dropped beams report `f64::INFINITY`.
    LidarBlackout,
    /// Extra per-beam Bernoulli dropout on top of the sensor's own rate:
    /// burst packet loss or partial occlusion.
    BeamDropout {
        /// Additional dropout probability, in `[0, 1]`.
        extra_dropout: f64,
    },
    /// Additive range miscalibration: a bumped or re-mounted sensor.
    RangeBias {
        /// Offset added to every valid return \[m\].
        bias_m: f64,
    },
    /// Multiplicative range miscalibration: wrong intensity/temperature
    /// compensation.
    RangeScale {
        /// Factor multiplied into every valid return (must be positive).
        scale: f64,
    },
    /// Wheel-speed over-report while the tires spin: a slip spike on
    /// cold rubber or a wet patch.
    OdomSlip {
        /// Factor multiplied into the reported wheel speed.
        factor: f64,
    },
    /// The wheel encoder (and steering feedback) freeze at their values
    /// from the fault's first step: a broken encoder line.
    StuckEncoder,
    /// Scans arrive `delay_steps` corrections late (transport latency /
    /// driver buffering); their stamps reveal the staleness.
    Latency {
        /// Delay in correction steps (≥ 1).
        delay_steps: u64,
    },
    /// One-shot ground-truth teleport along the raceline at the window's
    /// start step: the kidnapped-robot problem after a collision or a
    /// marshal reposition.
    PoseKidnap {
        /// Signed arc-length displacement along the raceline \[m\].
        advance_m: f64,
    },
    /// An unmapped obstacle: the region reads as occupied to the LiDAR
    /// while the localizer's map still says free.
    MapCorruption {
        /// The world-frame rectangle that becomes occupied.
        region: MapRegion,
    },
    /// Compute pressure: a co-scheduled workload steals cycles, scaling
    /// the localizer's per-step compute budget by `factor` while active
    /// (DESIGN.md §14). Purely a budget signal — sensors are untouched —
    /// delivered through `Localizer::set_compute_pressure`.
    ComputePressure {
        /// Budget scale factor, in `(0, 1]`.
        factor: f64,
    },
}

impl FaultKind {
    /// The stable kind name used in JSON and telemetry.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::LidarBlackout => "lidar_blackout",
            FaultKind::BeamDropout { .. } => "beam_dropout",
            FaultKind::RangeBias { .. } => "range_bias",
            FaultKind::RangeScale { .. } => "range_scale",
            FaultKind::OdomSlip { .. } => "odom_slip",
            FaultKind::StuckEncoder => "stuck_encoder",
            FaultKind::Latency { .. } => "latency",
            FaultKind::PoseKidnap { .. } => "pose_kidnap",
            FaultKind::MapCorruption { .. } => "map_corruption",
            FaultKind::ComputePressure { .. } => "compute_pressure",
        }
    }

    /// Telemetry counter bumped once per rising edge of the fault.
    pub fn activation_counter(&self) -> &'static str {
        match self {
            FaultKind::LidarBlackout => "faults.lidar_blackout.activations",
            FaultKind::BeamDropout { .. } => "faults.beam_dropout.activations",
            FaultKind::RangeBias { .. } => "faults.range_bias.activations",
            FaultKind::RangeScale { .. } => "faults.range_scale.activations",
            FaultKind::OdomSlip { .. } => "faults.odom_slip.activations",
            FaultKind::StuckEncoder => "faults.stuck_encoder.activations",
            FaultKind::Latency { .. } => "faults.latency.activations",
            FaultKind::PoseKidnap { .. } => "faults.pose_kidnap.activations",
            FaultKind::MapCorruption { .. } => "faults.map_corruption.activations",
            FaultKind::ComputePressure { .. } => "faults.compute_pressure.activations",
        }
    }

    /// Telemetry counter bumped on every step the fault is active.
    pub fn step_counter(&self) -> &'static str {
        match self {
            FaultKind::LidarBlackout => "faults.lidar_blackout.steps",
            FaultKind::BeamDropout { .. } => "faults.beam_dropout.steps",
            FaultKind::RangeBias { .. } => "faults.range_bias.steps",
            FaultKind::RangeScale { .. } => "faults.range_scale.steps",
            FaultKind::OdomSlip { .. } => "faults.odom_slip.steps",
            FaultKind::StuckEncoder => "faults.stuck_encoder.steps",
            FaultKind::Latency { .. } => "faults.latency.steps",
            FaultKind::PoseKidnap { .. } => "faults.pose_kidnap.steps",
            FaultKind::MapCorruption { .. } => "faults.map_corruption.steps",
            FaultKind::ComputePressure { .. } => "faults.compute_pressure.steps",
        }
    }
}

/// One fault plus the window it is active in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// The failure mode.
    pub kind: FaultKind,
    /// When it is active, in LiDAR correction steps.
    pub window: StepWindow,
}

impl FaultSpec {
    /// Checks that the window and the kind's parameters are sane.
    pub fn validate(&self) -> Result<(), ScheduleError> {
        if self.window.is_empty() {
            return Err(ScheduleError::new(format!(
                "{}: window [{}, {}) is empty",
                self.kind.name(),
                self.window.start,
                self.window.end
            )));
        }
        let finite = |name: &str, v: f64| -> Result<(), ScheduleError> {
            if v.is_finite() {
                Ok(())
            } else {
                Err(ScheduleError::new(format!(
                    "{}: {name} must be finite",
                    self.kind.name()
                )))
            }
        };
        match self.kind {
            FaultKind::LidarBlackout | FaultKind::StuckEncoder => Ok(()),
            FaultKind::BeamDropout { extra_dropout } => {
                finite("extra_dropout", extra_dropout)?;
                if !(0.0..=1.0).contains(&extra_dropout) {
                    return Err(ScheduleError::new(
                        "beam_dropout: extra_dropout must be within [0, 1]",
                    ));
                }
                Ok(())
            }
            FaultKind::RangeBias { bias_m } => finite("bias_m", bias_m),
            FaultKind::RangeScale { scale } => {
                finite("scale", scale)?;
                if scale <= 0.0 {
                    return Err(ScheduleError::new("range_scale: scale must be positive"));
                }
                Ok(())
            }
            FaultKind::OdomSlip { factor } => {
                finite("factor", factor)?;
                if factor <= 0.0 {
                    return Err(ScheduleError::new("odom_slip: factor must be positive"));
                }
                Ok(())
            }
            FaultKind::Latency { delay_steps } => {
                if delay_steps == 0 {
                    return Err(ScheduleError::new(
                        "latency: delay_steps must be at least 1",
                    ));
                }
                Ok(())
            }
            FaultKind::PoseKidnap { advance_m } => {
                finite("advance_m", advance_m)?;
                if advance_m == 0.0 {
                    return Err(ScheduleError::new(
                        "pose_kidnap: advance_m must be non-zero",
                    ));
                }
                Ok(())
            }
            FaultKind::MapCorruption { region } => {
                finite("x0", region.x0)?;
                finite("y0", region.y0)?;
                finite("x1", region.x1)?;
                finite("y1", region.y1)?;
                if region.x1 <= region.x0 || region.y1 <= region.y0 {
                    return Err(ScheduleError::new(
                        "map_corruption: region must have positive extent",
                    ));
                }
                Ok(())
            }
            FaultKind::ComputePressure { factor } => {
                finite("factor", factor)?;
                if !(factor > 0.0 && factor <= 1.0) {
                    return Err(ScheduleError::new(
                        "compute_pressure: factor must lie in (0, 1]",
                    ));
                }
                Ok(())
            }
        }
    }

    /// Serializes the spec into a flat JSON object.
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("kind".to_string(), Json::Str(self.kind.name().to_string())),
            ("start".to_string(), Json::num(self.window.start as f64)),
            ("end".to_string(), Json::num(self.window.end as f64)),
        ];
        match self.kind {
            FaultKind::LidarBlackout | FaultKind::StuckEncoder => {}
            FaultKind::BeamDropout { extra_dropout } => {
                obj.push(("extra_dropout".to_string(), Json::num(extra_dropout)));
            }
            FaultKind::RangeBias { bias_m } => {
                obj.push(("bias_m".to_string(), Json::num(bias_m)));
            }
            FaultKind::RangeScale { scale } => {
                obj.push(("scale".to_string(), Json::num(scale)));
            }
            FaultKind::OdomSlip { factor } => {
                obj.push(("factor".to_string(), Json::num(factor)));
            }
            FaultKind::Latency { delay_steps } => {
                obj.push(("delay_steps".to_string(), Json::num(delay_steps as f64)));
            }
            FaultKind::PoseKidnap { advance_m } => {
                obj.push(("advance_m".to_string(), Json::num(advance_m)));
            }
            FaultKind::MapCorruption { region } => {
                obj.push(("x0".to_string(), Json::num(region.x0)));
                obj.push(("y0".to_string(), Json::num(region.y0)));
                obj.push(("x1".to_string(), Json::num(region.x1)));
                obj.push(("y1".to_string(), Json::num(region.y1)));
            }
            FaultKind::ComputePressure { factor } => {
                obj.push(("factor".to_string(), Json::num(factor)));
            }
        }
        Json::Obj(obj)
    }

    /// Parses a spec from the object shape written by
    /// [`FaultSpec::to_json`].
    pub fn from_json(doc: &Json) -> Result<Self, ScheduleError> {
        let kind_name = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| ScheduleError::new("fault is missing a \"kind\" string"))?;
        let step = |key: &str| -> Result<u64, ScheduleError> {
            doc.get(key).and_then(Json::as_u64).ok_or_else(|| {
                ScheduleError::new(format!("{kind_name}: missing numeric \"{key}\""))
            })
        };
        let num = |key: &str| -> Result<f64, ScheduleError> {
            doc.get(key).and_then(Json::as_f64).ok_or_else(|| {
                ScheduleError::new(format!("{kind_name}: missing numeric \"{key}\""))
            })
        };
        let window = StepWindow::new(step("start")?, step("end")?);
        let kind = match kind_name {
            "lidar_blackout" => FaultKind::LidarBlackout,
            "beam_dropout" => FaultKind::BeamDropout {
                extra_dropout: num("extra_dropout")?,
            },
            "range_bias" => FaultKind::RangeBias {
                bias_m: num("bias_m")?,
            },
            "range_scale" => FaultKind::RangeScale {
                scale: num("scale")?,
            },
            "odom_slip" => FaultKind::OdomSlip {
                factor: num("factor")?,
            },
            "stuck_encoder" => FaultKind::StuckEncoder,
            "latency" => FaultKind::Latency {
                delay_steps: step("delay_steps")?,
            },
            "pose_kidnap" => FaultKind::PoseKidnap {
                advance_m: num("advance_m")?,
            },
            "map_corruption" => FaultKind::MapCorruption {
                region: MapRegion {
                    x0: num("x0")?,
                    y0: num("y0")?,
                    x1: num("x1")?,
                    y1: num("y1")?,
                },
            },
            "compute_pressure" => FaultKind::ComputePressure {
                factor: num("factor")?,
            },
            other => {
                return Err(ScheduleError::new(format!(
                    "unknown fault kind \"{other}\""
                )));
            }
        };
        let spec = FaultSpec { kind, window };
        spec.validate()?;
        Ok(spec)
    }
}

/// Builder for [`FaultSchedule`]; see [`FaultSchedule::builder`].
#[derive(Debug, Clone, Default)]
pub struct FaultScheduleBuilder {
    seed: u64,
    faults: Vec<FaultSpec>,
}

impl FaultScheduleBuilder {
    /// An empty builder (seed 0, no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the seed for stochastic faults.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds an arbitrary fault spec.
    pub fn fault(mut self, kind: FaultKind, start: u64, end: u64) -> Self {
        self.faults.push(FaultSpec {
            kind,
            window: StepWindow::new(start, end),
        });
        self
    }

    /// Full LiDAR blackout over `[start, end)`.
    pub fn lidar_blackout(self, start: u64, end: u64) -> Self {
        self.fault(FaultKind::LidarBlackout, start, end)
    }

    /// Extra Bernoulli beam dropout over `[start, end)`.
    pub fn beam_dropout(self, start: u64, end: u64, extra_dropout: f64) -> Self {
        self.fault(FaultKind::BeamDropout { extra_dropout }, start, end)
    }

    /// Additive range bias \[m\] over `[start, end)`.
    pub fn range_bias(self, start: u64, end: u64, bias_m: f64) -> Self {
        self.fault(FaultKind::RangeBias { bias_m }, start, end)
    }

    /// Multiplicative range scale over `[start, end)`.
    pub fn range_scale(self, start: u64, end: u64, scale: f64) -> Self {
        self.fault(FaultKind::RangeScale { scale }, start, end)
    }

    /// Wheel-speed slip spike over `[start, end)`.
    pub fn odom_slip(self, start: u64, end: u64, factor: f64) -> Self {
        self.fault(FaultKind::OdomSlip { factor }, start, end)
    }

    /// Frozen encoder/steering feedback over `[start, end)`.
    pub fn stuck_encoder(self, start: u64, end: u64) -> Self {
        self.fault(FaultKind::StuckEncoder, start, end)
    }

    /// Stale scans delayed by `delay_steps` over `[start, end)`.
    pub fn latency(self, start: u64, end: u64, delay_steps: u64) -> Self {
        self.fault(FaultKind::Latency { delay_steps }, start, end)
    }

    /// One-shot raceline teleport of `advance_m` meters at `step`.
    pub fn pose_kidnap(self, step: u64, advance_m: f64) -> Self {
        self.fault(FaultKind::PoseKidnap { advance_m }, step, step + 1)
    }

    /// Unmapped-obstacle region active over `[start, end)`.
    pub fn map_corruption(self, start: u64, end: u64, region: MapRegion) -> Self {
        self.fault(FaultKind::MapCorruption { region }, start, end)
    }

    /// Compute-budget pressure of the given factor over `[start, end)`.
    pub fn compute_pressure(self, start: u64, end: u64, factor: f64) -> Self {
        self.fault(FaultKind::ComputePressure { factor }, start, end)
    }

    /// Validates every fault and returns the schedule.
    pub fn build(self) -> Result<FaultSchedule, ScheduleError> {
        FaultSchedule::new(self.seed, self.faults)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_semantics() {
        let w = StepWindow::new(5, 8);
        assert!(!w.contains(4));
        assert!(w.contains(5));
        assert!(w.contains(7));
        assert!(!w.contains(8));
        assert_eq!(w.len(), 3);
        assert!(StepWindow::new(5, 5).is_empty());
    }

    #[test]
    fn kind_names_are_stable() {
        let kinds = [
            FaultKind::LidarBlackout,
            FaultKind::BeamDropout { extra_dropout: 0.5 },
            FaultKind::RangeBias { bias_m: 0.1 },
            FaultKind::RangeScale { scale: 1.1 },
            FaultKind::OdomSlip { factor: 1.5 },
            FaultKind::StuckEncoder,
            FaultKind::Latency { delay_steps: 3 },
            FaultKind::PoseKidnap { advance_m: 2.0 },
            FaultKind::MapCorruption {
                region: MapRegion {
                    x0: 0.0,
                    y0: 0.0,
                    x1: 1.0,
                    y1: 1.0,
                },
            },
            FaultKind::ComputePressure { factor: 0.5 },
        ];
        for k in kinds {
            assert!(k.activation_counter().contains(k.name()));
            assert!(k.step_counter().contains(k.name()));
        }
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let doc = Json::parse(r#"{"kind": "gremlins", "start": 0, "end": 5}"#).expect("json");
        assert!(FaultSpec::from_json(&doc).is_err());
    }
}
