#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! Deterministic fault injection for the raceloc closed loop.
//!
//! The paper evaluates localization robustness along a single degradation
//! axis (grip → wheel-odometry quality). A real race car sees many more
//! failure modes: LiDAR blackouts from sun glare or dust, burst beam
//! dropout, range miscalibration after a sensor swap, wheel-encoder slip
//! spikes and stuck encoders, transport latency, perceptual aliasing after
//! a kidnap-grade collision, and on-track obstacles that are not in the
//! map. This crate turns each of those into a *scripted, reproducible*
//! fault:
//!
//! - a [`FaultSchedule`] declares *what* goes wrong and *when*, keyed on
//!   the sim's LiDAR correction-step counter;
//! - every stochastic choice (which beams drop) is drawn from a
//!   counter-derived [`Rng64`] stream that is a pure function of
//!   `(schedule seed, step)` — no wall clock, no global state — so a
//!   schedule replays bit-identically for any thread count (rule R3);
//! - [`ScanEffects`] / [`OdomEffects`] are the per-step evaluation of the
//!   schedule, applied by `raceloc-sim::World` between the ground-truth
//!   step and sensor emission;
//! - every activation is booked into [`raceloc_obs::Telemetry`] counters
//!   by a [`FaultTracker`] (`faults.<kind>.activations` /
//!   `faults.<kind>.steps`).
//!
//! Schedules round-trip through the dependency-free
//! [`raceloc_obs::Json`] value (the offline build has no serde/TOML), so
//! fault matrices can be checked in and replayed.
//!
//! # Examples
//!
//! ```
//! use raceloc_faults::FaultSchedule;
//!
//! let schedule = FaultSchedule::builder()
//!     .seed(9)
//!     .lidar_blackout(100, 160)
//!     .beam_dropout(200, 260, 0.7)
//!     .build()
//!     .expect("valid schedule");
//! assert!(schedule.scan_effects(120).blackout);
//! assert!(!schedule.scan_effects(160).blackout);
//! // Pure in (seed, step): replaying a step re-drops the same beams.
//! let mut a = vec![2.0; 64];
//! let mut b = vec![2.0; 64];
//! schedule.scan_effects(210).apply(&mut a, 10.0, schedule.seed(), 210);
//! schedule.scan_effects(210).apply(&mut b, 10.0, schedule.seed(), 210);
//! assert_eq!(a, b);
//! ```

mod inject;
mod schedule;

pub use inject::{FaultTracker, OdomEffects, ScanEffects};
pub use schedule::{
    FaultKind, FaultScheduleBuilder, FaultSpec, MapRegion, ScheduleError, StepWindow,
};

use raceloc_core::{stream_keys, Rng64};
use raceloc_obs::Json;

/// A deterministic script of faults over a simulation run.
///
/// Windows are expressed in LiDAR correction steps (the sim's scan
/// counter, reset at the start of each run), the one clock every consumer
/// of the schedule shares. The schedule owns a seed for its stochastic
/// faults; evaluation is a pure function of `(seed, step)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    seed: u64,
    faults: Vec<FaultSpec>,
}

impl FaultSchedule {
    /// Starts a builder for a schedule.
    pub fn builder() -> FaultScheduleBuilder {
        FaultScheduleBuilder::new()
    }

    /// Creates a schedule from parts, validating every fault.
    pub fn new(seed: u64, faults: Vec<FaultSpec>) -> Result<Self, ScheduleError> {
        for f in &faults {
            f.validate()?;
        }
        Ok(Self { seed, faults })
    }

    /// The seed of the schedule's stochastic faults.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The declared faults, in declaration order.
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// Whether the schedule declares no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The combined scan-side effects active at a correction step.
    ///
    /// Multiple overlapping faults compose: dropout probabilities add
    /// (clamped to 1), biases add, scales multiply, and the longest active
    /// latency wins.
    pub fn scan_effects(&self, step: u64) -> ScanEffects {
        let mut fx = ScanEffects::none();
        for f in &self.faults {
            if !f.window.contains(step) {
                continue;
            }
            match f.kind {
                FaultKind::LidarBlackout => fx.blackout = true,
                FaultKind::BeamDropout { extra_dropout } => {
                    fx.extra_dropout = (fx.extra_dropout + extra_dropout).min(1.0);
                }
                FaultKind::RangeBias { bias_m } => fx.bias_m += bias_m,
                FaultKind::RangeScale { scale } => fx.scale *= scale,
                FaultKind::Latency { delay_steps } => {
                    fx.delay_steps = fx.delay_steps.max(delay_steps);
                }
                FaultKind::MapCorruption { .. } => fx.corrupt_map = true,
                FaultKind::OdomSlip { .. }
                | FaultKind::StuckEncoder
                | FaultKind::PoseKidnap { .. }
                | FaultKind::ComputePressure { .. } => {}
            }
        }
        fx
    }

    /// The combined odometry-side effects active at a correction step.
    pub fn odom_effects(&self, step: u64) -> OdomEffects {
        let mut fx = OdomEffects::none();
        for f in &self.faults {
            if !f.window.contains(step) {
                continue;
            }
            match f.kind {
                FaultKind::OdomSlip { factor } => fx.slip_factor *= factor,
                FaultKind::StuckEncoder => fx.stuck = true,
                _ => {}
            }
        }
        fx
    }

    /// The combined compute-budget scale factor active at a correction
    /// step. Overlapping [`FaultKind::ComputePressure`] windows compose by
    /// multiplication; with none active the factor is `1.0`. The sim
    /// delivers this through
    /// [`Localizer::set_compute_pressure`](raceloc_core::Localizer::set_compute_pressure)
    /// before each correction.
    pub fn budget_factor_at(&self, step: u64) -> f64 {
        let mut factor = 1.0;
        for f in &self.faults {
            if let FaultKind::ComputePressure { factor: scale } = f.kind {
                if f.window.contains(step) {
                    factor *= scale;
                }
            }
        }
        factor
    }

    /// The total ground-truth teleport distance \[m\] along the raceline
    /// fired at exactly this step (`None` when no kidnap starts here).
    /// Kidnaps are one-shot: they trigger at their window's start step.
    pub fn kidnap_advance_at(&self, step: u64) -> Option<f64> {
        let mut total = 0.0;
        let mut any = false;
        for f in &self.faults {
            if let FaultKind::PoseKidnap { advance_m } = f.kind {
                if f.window.start == step {
                    total += advance_m;
                    any = true;
                }
            }
        }
        any.then_some(total)
    }

    /// Every map-corruption region in the schedule, irrespective of
    /// windows. The sim burns these into one corrupted map up front and
    /// swaps it in whenever [`ScanEffects::corrupt_map`] is active.
    pub fn corruption_regions(&self) -> Vec<MapRegion> {
        self.faults
            .iter()
            .filter_map(|f| match f.kind {
                FaultKind::MapCorruption { region } => Some(region),
                _ => None,
            })
            .collect()
    }

    /// The RNG stream for a stochastic per-scan draw at `step` — a pure
    /// function of `(seed, step)`, independent of thread count and of any
    /// other RNG in the process.
    pub fn scan_rng(seed: u64, step: u64) -> Rng64 {
        // The key comes from the central namespace registry: the 0xFA tag
        // statically proves this stream can never collide with the pf
        // motion streams or the eval filter-seed draw, even when the
        // schedule shares a seed with them (analyzer rule R7).
        Rng64::stream(seed, stream_keys::fault_scan(step))
    }

    /// Serializes the schedule to a [`Json`] value.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("seed".into(), Json::num(self.seed as f64)),
            (
                "faults".into(),
                Json::Arr(self.faults.iter().map(FaultSpec::to_json).collect()),
            ),
        ])
    }

    /// Parses a schedule from a [`Json`] value produced by
    /// [`FaultSchedule::to_json`] (or written by hand).
    pub fn from_json(doc: &Json) -> Result<Self, ScheduleError> {
        let seed = doc
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or_else(|| ScheduleError::new("schedule is missing a numeric \"seed\""))?;
        let list = doc
            .get("faults")
            .and_then(Json::as_array)
            .ok_or_else(|| ScheduleError::new("schedule is missing a \"faults\" array"))?;
        let faults = list
            .iter()
            .map(FaultSpec::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Self::new(seed, faults)
    }

    /// Parses a schedule from JSON text.
    pub fn from_json_str(text: &str) -> Result<Self, ScheduleError> {
        let doc = Json::parse(text)
            .map_err(|e| ScheduleError::new(format!("schedule is not valid JSON: {e}")))?;
        Self::from_json(&doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FaultSchedule {
        FaultSchedule::builder()
            .seed(17)
            .lidar_blackout(10, 20)
            .beam_dropout(15, 40, 0.5)
            .range_bias(30, 50, 0.25)
            .range_scale(30, 50, 1.05)
            .odom_slip(5, 12, 1.8)
            .stuck_encoder(60, 70)
            .latency(80, 90, 6)
            .pose_kidnap(100, 4.0)
            .map_corruption(
                110,
                140,
                MapRegion {
                    x0: 1.0,
                    y0: -1.0,
                    x1: 2.0,
                    y1: 0.5,
                },
            )
            .compute_pressure(150, 180, 0.5)
            .build()
            .expect("valid schedule")
    }

    #[test]
    fn windows_gate_effects() {
        let s = sample();
        assert!(s.scan_effects(10).blackout);
        assert!(!s.scan_effects(9).blackout);
        assert!(!s.scan_effects(20).blackout, "end is exclusive");
        assert_eq!(s.scan_effects(35).bias_m, 0.25);
        assert_eq!(s.scan_effects(35).scale, 1.05);
        assert_eq!(s.scan_effects(85).delay_steps, 6);
        assert!(s.scan_effects(120).corrupt_map);
        let odom = s.odom_effects(8);
        assert_eq!(odom.slip_factor, 1.8);
        assert!(!odom.stuck);
        assert!(s.odom_effects(65).stuck);
        assert_eq!(s.kidnap_advance_at(100), Some(4.0));
        assert_eq!(s.kidnap_advance_at(101), None);
        assert_eq!(s.budget_factor_at(149), 1.0);
        assert_eq!(s.budget_factor_at(150), 0.5);
        assert_eq!(s.budget_factor_at(180), 1.0, "end is exclusive");
        assert!(
            !s.scan_effects(160).any(),
            "compute pressure leaves the sensors untouched"
        );
    }

    #[test]
    fn overlapping_pressure_windows_multiply() {
        let s = FaultSchedule::builder()
            .compute_pressure(0, 10, 0.5)
            .compute_pressure(5, 15, 0.4)
            .build()
            .expect("valid schedule");
        assert_eq!(s.budget_factor_at(2), 0.5);
        assert!(
            (s.budget_factor_at(7) - 0.2).abs() < 1e-12,
            "factors multiply"
        );
        assert_eq!(s.budget_factor_at(12), 0.4);
        assert_eq!(s.budget_factor_at(20), 1.0);
    }

    #[test]
    fn overlapping_faults_compose() {
        let s = FaultSchedule::builder()
            .beam_dropout(0, 10, 0.6)
            .beam_dropout(0, 10, 0.7)
            .range_bias(0, 10, 0.1)
            .range_bias(0, 10, -0.3)
            .range_scale(0, 10, 2.0)
            .range_scale(0, 10, 0.5)
            .build()
            .expect("valid schedule");
        let fx = s.scan_effects(3);
        assert_eq!(fx.extra_dropout, 1.0, "dropouts add, clamped");
        assert!((fx.bias_m - (-0.2)).abs() < 1e-12, "biases add");
        assert_eq!(fx.scale, 1.0, "scales multiply");
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let s = sample();
        let text = format!("{}", s.to_json());
        let back = FaultSchedule::from_json_str(&text).expect("parse back");
        assert_eq!(back, s);
    }

    #[test]
    fn invalid_schedules_are_rejected() {
        assert!(
            FaultSchedule::builder()
                .lidar_blackout(20, 10)
                .build()
                .is_err(),
            "inverted window"
        );
        assert!(
            FaultSchedule::builder()
                .beam_dropout(0, 5, 1.5)
                .build()
                .is_err(),
            "dropout > 1"
        );
        assert!(
            FaultSchedule::builder()
                .range_scale(0, 5, 0.0)
                .build()
                .is_err(),
            "zero scale"
        );
        assert!(
            FaultSchedule::builder().latency(0, 5, 0).build().is_err(),
            "zero delay"
        );
        assert!(
            FaultSchedule::builder()
                .pose_kidnap(5, f64::NAN)
                .build()
                .is_err(),
            "NaN kidnap"
        );
        assert!(
            FaultSchedule::builder()
                .compute_pressure(0, 5, 0.0)
                .build()
                .is_err(),
            "zero pressure factor"
        );
        assert!(
            FaultSchedule::builder()
                .compute_pressure(0, 5, 1.5)
                .build()
                .is_err(),
            "pressure factor > 1"
        );
        assert!(
            FaultSchedule::builder()
                .compute_pressure(0, 5, f64::NAN)
                .build()
                .is_err(),
            "NaN pressure factor"
        );
        assert!(FaultSchedule::from_json_str("{}").is_err());
        assert!(FaultSchedule::from_json_str("not json").is_err());
    }

    #[test]
    fn empty_schedule_is_inert() {
        let s = FaultSchedule::builder().build().expect("empty is valid");
        assert!(s.is_empty());
        let fx = s.scan_effects(0);
        assert!(!fx.any());
        let mut ranges = vec![1.0, 2.0, 3.0];
        fx.apply(&mut ranges, 10.0, s.seed(), 0);
        assert_eq!(ranges, vec![1.0, 2.0, 3.0]);
    }
}
