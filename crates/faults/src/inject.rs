//! Per-step fault evaluation: the combined effects a schedule exerts on a
//! scan or an odometry sample, plus the telemetry tracker.

use raceloc_obs::Telemetry;

use crate::FaultSchedule;

/// The combined scan-side effects of every fault active at one step.
///
/// Produced by [`FaultSchedule::scan_effects`]; applied to a raw range
/// array by [`ScanEffects::apply`]. Dropped beams are tagged
/// `f64::INFINITY` — the sensor-side convention for an invalid return —
/// never `max_range`, which the beam model would score as a confident hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanEffects {
    /// Every beam is invalid this step.
    pub blackout: bool,
    /// Extra per-beam dropout probability, in `[0, 1]`.
    pub extra_dropout: f64,
    /// Additive range miscalibration \[m\].
    pub bias_m: f64,
    /// Multiplicative range miscalibration.
    pub scale: f64,
    /// Scans are emitted `delay_steps` corrections late (0 = live).
    pub delay_steps: u64,
    /// The scan must be cast against the corrupted map.
    pub corrupt_map: bool,
}

impl ScanEffects {
    /// The neutral element: no fault active.
    pub fn none() -> Self {
        Self {
            blackout: false,
            extra_dropout: 0.0,
            bias_m: 0.0,
            scale: 1.0,
            delay_steps: 0,
            corrupt_map: false,
        }
    }

    /// Whether any effect differs from the neutral element.
    pub fn any(&self) -> bool {
        self.blackout
            || self.extra_dropout > 0.0
            || self.bias_m != 0.0
            || self.scale != 1.0
            || self.delay_steps > 0
            || self.corrupt_map
    }

    /// Mutates a raw range array in place.
    ///
    /// Blackout and dropout tag beams `f64::INFINITY`; bias/scale apply to
    /// valid returns only (beams already invalid or saturated at
    /// `max_range` are left alone) and clamp back into `[0, max_range]`,
    /// saturating to `max_range` exactly like the real sensor. The dropout
    /// draw comes from [`FaultSchedule::scan_rng`], so it is a pure
    /// function of `(seed, step)` and replays bit-identically.
    pub fn apply(&self, ranges: &mut [f64], max_range: f64, seed: u64, step: u64) {
        if !self.any() {
            return;
        }
        if self.blackout {
            for r in ranges.iter_mut() {
                *r = f64::INFINITY;
            }
            return;
        }
        let mut rng = (self.extra_dropout > 0.0).then(|| FaultSchedule::scan_rng(seed, step));
        let saturated = max_range - 1e-9;
        for r in ranges.iter_mut() {
            // One draw per beam regardless of the beam's current state, so
            // the stream layout depends only on the beam index.
            if let Some(rng) = rng.as_mut() {
                if rng.bernoulli(self.extra_dropout) {
                    *r = f64::INFINITY;
                    continue;
                }
            }
            if !r.is_finite() || *r >= saturated {
                continue;
            }
            let v = *r * self.scale + self.bias_m;
            *r = v.clamp(0.0, max_range);
        }
    }
}

/// The combined odometry-side effects of every fault active at one step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OdomEffects {
    /// Factor multiplied into the reported wheel speed (1 = nominal).
    pub slip_factor: f64,
    /// The encoder and steering feedback are frozen at their values from
    /// the fault's first active step.
    pub stuck: bool,
}

impl OdomEffects {
    /// The neutral element: no fault active.
    pub fn none() -> Self {
        Self {
            slip_factor: 1.0,
            stuck: false,
        }
    }

    /// Whether any effect differs from the neutral element.
    pub fn any(&self) -> bool {
        self.slip_factor != 1.0 || self.stuck
    }
}

/// Books fault activity into telemetry counters.
///
/// For each fault in the schedule, `faults.<kind>.activations` counts
/// rising edges and `faults.<kind>.steps` counts active steps. Counters
/// are no-ops when the telemetry handle is disabled.
#[derive(Debug, Clone)]
pub struct FaultTracker {
    was_active: Vec<bool>,
}

impl FaultTracker {
    /// A tracker sized for the given schedule.
    pub fn new(schedule: &FaultSchedule) -> Self {
        Self {
            was_active: vec![false; schedule.faults().len()],
        }
    }

    /// Forgets all edge state (call at the start of a run).
    pub fn reset(&mut self) {
        for a in &mut self.was_active {
            *a = false;
        }
    }

    /// Records one step's fault activity.
    pub fn record(&mut self, schedule: &FaultSchedule, step: u64, tel: &Telemetry) {
        for (spec, prev) in schedule.faults().iter().zip(self.was_active.iter_mut()) {
            let now = spec.window.contains(step);
            if now {
                if !*prev {
                    tel.add(spec.kind.activation_counter(), 1);
                }
                tel.add(spec.kind.step_counter(), 1);
            }
            *prev = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blackout_invalidates_every_beam() {
        let s = FaultSchedule::builder()
            .lidar_blackout(0, 10)
            .build()
            .expect("valid");
        let mut ranges = vec![1.0, 5.0, 9.99, 10.0];
        s.scan_effects(3).apply(&mut ranges, 10.0, s.seed(), 3);
        assert!(ranges.iter().all(|r| r.is_infinite()));
    }

    #[test]
    fn dropout_is_pure_in_seed_and_step() {
        let s = FaultSchedule::builder()
            .seed(5)
            .beam_dropout(0, 100, 0.4)
            .build()
            .expect("valid");
        let run = |step: u64| {
            let mut ranges = vec![3.0; 256];
            s.scan_effects(step)
                .apply(&mut ranges, 10.0, s.seed(), step);
            ranges
        };
        assert_eq!(run(7), run(7), "same step must replay identically");
        assert_ne!(run(7), run(8), "different steps draw different beams");
        let dropped = run(7).iter().filter(|r| r.is_infinite()).count();
        assert!(
            (50..=160).contains(&dropped),
            "dropout rate implausible: {dropped}/256"
        );
    }

    #[test]
    fn bias_and_scale_respect_validity_and_saturation() {
        let s = FaultSchedule::builder()
            .range_bias(0, 10, 1.0)
            .range_scale(0, 10, 2.0)
            .build()
            .expect("valid");
        let mut ranges = vec![2.0, 6.0, 10.0, f64::INFINITY];
        s.scan_effects(0).apply(&mut ranges, 10.0, s.seed(), 0);
        assert_eq!(ranges[0], 5.0, "2·2 + 1");
        assert_eq!(ranges[1], 10.0, "6·2 + 1 saturates at max_range");
        assert_eq!(ranges[2], 10.0, "saturated beams stay saturated");
        assert!(ranges[3].is_infinite(), "invalid beams stay invalid");
    }

    #[test]
    fn negative_bias_clamps_at_zero() {
        let s = FaultSchedule::builder()
            .range_bias(0, 10, -5.0)
            .build()
            .expect("valid");
        let mut ranges = vec![1.0];
        s.scan_effects(0).apply(&mut ranges, 10.0, s.seed(), 0);
        assert_eq!(ranges[0], 0.0);
    }

    #[test]
    fn tracker_counts_edges_and_steps() {
        let s = FaultSchedule::builder()
            .lidar_blackout(2, 5)
            .odom_slip(3, 4, 1.5)
            .build()
            .expect("valid");
        let tel = Telemetry::enabled();
        let mut tracker = FaultTracker::new(&s);
        for step in 0..8 {
            tracker.record(&s, step, &tel);
        }
        let snap = tel.snapshot();
        assert_eq!(snap.counter("faults.lidar_blackout.activations"), Some(1));
        assert_eq!(snap.counter("faults.lidar_blackout.steps"), Some(3));
        assert_eq!(snap.counter("faults.odom_slip.activations"), Some(1));
        assert_eq!(snap.counter("faults.odom_slip.steps"), Some(1));
    }
}
