//! Property-based tests for the fault-schedule JSON mapping and the
//! determinism of schedule evaluation.
//!
//! The JSON round-trip is the contract that lets fault matrices be checked
//! in and replayed: any schedule the builder accepts must survive
//! `to_json → Display → parse → from_json` losslessly, and the parsed-back
//! schedule must *behave* identically — same effects at every step, same
//! beam-dropout draws.
//!
//! Numeric domains are constrained to the schedule's real operating range
//! (steps well under 2^32, seeds under 2^53) because the dependency-free
//! JSON value carries integers through `f64`.

use proptest::prelude::*;
use raceloc_faults::{FaultKind, FaultSchedule, FaultSpec, MapRegion, StepWindow};

fn arb_kind() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        Just(FaultKind::LidarBlackout),
        (0.0..=1.0f64).prop_map(|extra_dropout| FaultKind::BeamDropout { extra_dropout }),
        (-5.0..5.0f64).prop_map(|bias_m| FaultKind::RangeBias { bias_m }),
        (0.05..4.0f64).prop_map(|scale| FaultKind::RangeScale { scale }),
        (0.05..4.0f64).prop_map(|factor| FaultKind::OdomSlip { factor }),
        Just(FaultKind::StuckEncoder),
        (1u64..50).prop_map(|delay_steps| FaultKind::Latency { delay_steps }),
        (-20.0..20.0f64)
            .prop_filter("kidnap displacement must be non-zero", |a| *a != 0.0)
            .prop_map(|advance_m| FaultKind::PoseKidnap { advance_m }),
        (-10.0..10.0f64, -10.0..10.0f64, 0.1..8.0f64, 0.1..8.0f64).prop_map(|(x0, y0, w, h)| {
            FaultKind::MapCorruption {
                region: MapRegion {
                    x0,
                    y0,
                    x1: x0 + w,
                    y1: y0 + h,
                },
            }
        }),
    ]
}

fn arb_spec() -> impl Strategy<Value = FaultSpec> {
    (arb_kind(), 0u64..500, 1u64..120).prop_map(|(kind, start, len)| FaultSpec {
        kind,
        window: StepWindow::new(start, start + len),
    })
}

fn arb_schedule() -> impl Strategy<Value = FaultSchedule> {
    (0u64..(1 << 53), prop::collection::vec(arb_spec(), 0..6)).prop_map(|(seed, faults)| {
        FaultSchedule::new(seed, faults).expect("generated faults are valid by construction")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn json_value_round_trip_is_lossless(s in arb_schedule()) {
        let back = FaultSchedule::from_json(&s.to_json());
        prop_assert_eq!(back, Ok(s));
    }

    #[test]
    fn json_text_round_trip_is_lossless(s in arb_schedule()) {
        let text = format!("{}", s.to_json());
        let back = FaultSchedule::from_json_str(&text);
        prop_assert_eq!(back, Ok(s));
    }

    #[test]
    fn parsed_back_schedule_behaves_identically(s in arb_schedule(), step in 0u64..700) {
        let back = FaultSchedule::from_json_str(&format!("{}", s.to_json()))
            .expect("round-trip parses");
        prop_assert_eq!(back.seed(), s.seed());
        prop_assert_eq!(back.scan_effects(step), s.scan_effects(step));
        prop_assert_eq!(back.odom_effects(step), s.odom_effects(step));
        prop_assert_eq!(back.kidnap_advance_at(step), s.kidnap_advance_at(step));
        // The stochastic beam-dropout draw is a pure function of
        // (seed, step): both schedules mutate an identical scan the
        // same way.
        let mut a = vec![2.5; 48];
        let mut b = a.clone();
        s.scan_effects(step).apply(&mut a, 10.0, s.seed(), step);
        back.scan_effects(step).apply(&mut b, 10.0, back.seed(), step);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn builder_and_constructor_agree(s in arb_schedule()) {
        let mut builder = FaultSchedule::builder().seed(s.seed());
        for f in s.faults() {
            builder = builder.fault(f.kind, f.window.start, f.window.end);
        }
        let built = builder.build().expect("same faults revalidate");
        prop_assert_eq!(built, s);
    }

    #[test]
    fn empty_windows_are_rejected(kind in arb_kind(), start in 0u64..500, slack in 0u64..5) {
        // end <= start is never a valid window, whatever the kind.
        let spec = FaultSpec {
            kind,
            window: StepWindow::new(start + slack, start),
        };
        prop_assert!(FaultSchedule::new(0, vec![spec]).is_err());
    }
}
