//! Minimal dense linear algebra for the SLAM back-end.
//!
//! The pose-graph optimizer needs 3×3 blocks (SE(2) Jacobians, information
//! matrices) and a symmetric positive-definite solve for the Gauss–Newton
//! normal equations. Implementing these ~200 lines here keeps the workspace
//! dependency-free and the numerics fully under our control.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A 3-vector (used for SE(2) tangent vectors `[dx, dy, dθ]`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3(pub [f64; 3]);

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3([0.0; 3]);

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3([x, y, z])
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.0[0] * rhs.0[0] + self.0[1] * rhs.0[1] + self.0[2] * rhs.0[2]
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Scales every component.
    #[inline]
    pub fn scaled(self, s: f64) -> Vec3 {
        Vec3([self.0[0] * s, self.0[1] * s, self.0[2] * s])
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, r: Vec3) -> Vec3 {
        Vec3([self.0[0] + r.0[0], self.0[1] + r.0[1], self.0[2] + r.0[2]])
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, r: Vec3) -> Vec3 {
        Vec3([self.0[0] - r.0[0], self.0[1] - r.0[1], self.0[2] - r.0[2]])
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

/// A 3×3 matrix in row-major order.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Mat3(pub [[f64; 3]; 3]);

impl Mat3 {
    /// The zero matrix.
    pub const ZERO: Mat3 = Mat3([[0.0; 3]; 3]);

    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]);

    /// A diagonal matrix from three values.
    #[inline]
    pub fn diag(a: f64, b: f64, c: f64) -> Mat3 {
        Mat3([[a, 0.0, 0.0], [0.0, b, 0.0], [0.0, 0.0, c]])
    }

    /// The transpose.
    #[inline]
    pub fn transpose(self) -> Mat3 {
        let m = self.0;
        Mat3([
            [m[0][0], m[1][0], m[2][0]],
            [m[0][1], m[1][1], m[2][1]],
            [m[0][2], m[1][2], m[2][2]],
        ])
    }

    /// Matrix–vector product.
    #[inline]
    pub fn mul_vec(self, v: Vec3) -> Vec3 {
        let m = self.0;
        Vec3([
            m[0][0] * v[0] + m[0][1] * v[1] + m[0][2] * v[2],
            m[1][0] * v[0] + m[1][1] * v[1] + m[1][2] * v[2],
            m[2][0] * v[0] + m[2][1] * v[1] + m[2][2] * v[2],
        ])
    }

    /// Determinant.
    pub fn det(self) -> f64 {
        let m = self.0;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// The inverse, or `None` when the matrix is numerically singular.
    pub fn inverse(self) -> Option<Mat3> {
        let m = self.0;
        let det = self.det();
        if det.abs() < 1e-300 {
            return None;
        }
        let inv_det = 1.0 / det;
        let mut r = [[0.0; 3]; 3];
        r[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_det;
        r[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv_det;
        r[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_det;
        r[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv_det;
        r[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_det;
        r[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv_det;
        r[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_det;
        r[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv_det;
        r[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_det;
        Some(Mat3(r))
    }
}

impl Add for Mat3 {
    type Output = Mat3;
    fn add(self, r: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for i in 0..3 {
            for j in 0..3 {
                out.0[i][j] = self.0[i][j] + r.0[i][j];
            }
        }
        out
    }
}

impl Mul for Mat3 {
    type Output = Mat3;
    fn mul(self, r: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for i in 0..3 {
            for j in 0..3 {
                let mut acc = 0.0;
                for (k, row) in r.0.iter().enumerate() {
                    acc += self.0[i][k] * row[j];
                }
                out.0[i][j] = acc;
            }
        }
        out
    }
}

impl Mul<f64> for Mat3 {
    type Output = Mat3;
    fn mul(self, s: f64) -> Mat3 {
        let mut out = self;
        for row in &mut out.0 {
            for v in row {
                *v *= s;
            }
        }
        out
    }
}

/// A dense row-major matrix of runtime dimensions.
///
/// Used only by the pose-graph solver, where graphs are small enough that a
/// dense Cholesky factorization of the (damped) normal equations is fast and
/// robust.
#[derive(Debug, Clone, PartialEq)]
pub struct DMat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMat {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Adds a 3×3 block starting at `(r, c)` (used to assemble H from
    /// per-edge Jacobian blocks).
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit.
    pub fn add_block3(&mut self, r: usize, c: usize, b: &Mat3) {
        assert!(
            r + 3 <= self.rows && c + 3 <= self.cols,
            "block out of range"
        );
        for (i, row) in b.0.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                self[(r + i, c + j)] += v;
            }
        }
    }

    /// Solves `A x = b` for symmetric positive-definite `A` via Cholesky.
    ///
    /// Returns `None` when the matrix is not positive-definite (a tiny
    /// diagonal damping is the caller's responsibility).
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not square or `b.len() != rows`.
    pub fn cholesky_solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(
            self.rows, self.cols,
            "cholesky_solve: matrix must be square"
        );
        assert_eq!(b.len(), self.rows, "cholesky_solve: rhs length mismatch");
        let n = self.rows;
        // Factor A = L Lᵀ, storing L in a lower-triangular copy.
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return None;
                    }
                    l[i * n + j] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        // Forward substitution: L y = b.
        let mut y = vec![0.0f64; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= l[i * n + k] * y[k];
            }
            y[i] = sum / l[i * n + i];
        }
        // Back substitution: Lᵀ x = y.
        let mut x = vec![0.0f64; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= l[k * n + i] * x[k];
            }
            x[i] = sum / l[i * n + i];
        }
        Some(x)
    }

    /// Matrix–vector product `A v`.
    ///
    /// # Panics
    ///
    /// Panics when `v.len() != cols`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols);
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *o = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        out
    }
}

impl Index<(usize, usize)> for DMat {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for DMat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for DMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:10.4} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mat3_identity_mul() {
        let m = Mat3([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 10.0]]);
        assert_eq!(m * Mat3::IDENTITY, m);
        assert_eq!(Mat3::IDENTITY * m, m);
    }

    #[test]
    fn mat3_inverse_roundtrip() {
        let m = Mat3([[4.0, 1.0, 0.5], [1.0, 3.0, 0.2], [0.5, 0.2, 2.0]]);
        let inv = m.inverse().unwrap();
        let prod = m * inv;
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod.0[i][j] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn mat3_singular_inverse_is_none() {
        let m = Mat3([[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 0.0, 1.0]]);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn mat3_transpose_involution() {
        let m = Mat3([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]]);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn mat3_mul_vec() {
        let v = Mat3::diag(2.0, 3.0, 4.0).mul_vec(Vec3::new(1.0, 1.0, 1.0));
        assert_eq!(v, Vec3::new(2.0, 3.0, 4.0));
    }

    #[test]
    fn vec3_ops() {
        let a = Vec3::new(1.0, 2.0, 2.0);
        assert!((a.norm() - 3.0).abs() < 1e-12);
        assert_eq!(a.scaled(2.0), Vec3::new(2.0, 4.0, 4.0));
        assert_eq!((a - a), Vec3::ZERO);
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = Mᵀ M + I is SPD for any M.
        let n = 8;
        let mut a = DMat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mij = ((i * 7 + j * 3) % 11) as f64 / 11.0;
                a[(i, j)] = mij;
            }
        }
        // Form SPD matrix S = A Aᵀ + I.
        let mut s = DMat::identity(n);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += a[(i, k)] * a[(j, k)];
                }
                s[(i, j)] += acc;
            }
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let b = s.mul_vec(&x_true);
        let x = s.cholesky_solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8, "{xi} vs {ti}");
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut m = DMat::identity(2);
        m[(1, 1)] = -1.0;
        assert!(m.cholesky_solve(&[1.0, 1.0]).is_none());
    }

    #[test]
    fn add_block3_accumulates() {
        let mut m = DMat::zeros(6, 6);
        m.add_block3(0, 3, &Mat3::IDENTITY);
        m.add_block3(0, 3, &Mat3::IDENTITY);
        assert_eq!(m[(0, 3)], 2.0);
        assert_eq!(m[(2, 5)], 2.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "block out of range")]
    fn add_block3_out_of_range_panics() {
        let mut m = DMat::zeros(4, 4);
        m.add_block3(2, 2, &Mat3::IDENTITY);
    }
}
