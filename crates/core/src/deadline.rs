//! Deadline-aware adaptive compute: deterministic cost accounting and the
//! graceful-degradation ladder (DESIGN.md §14).
//!
//! A localizer that blows its scan period is as lost as one that
//! diverges, so the per-step compute budget is a first-class robustness
//! input. This module keeps the whole mechanism **deterministic**: cost
//! is accounted in integer *work units* — particles × beams × a
//! per-range-tier unit cost, calibrated once against the BENCH_pipeline
//! step-latency medians — never in wall-clock time, so the rung sequence
//! (and therefore every pose) is bit-identical for any worker-thread
//! count (analyze rule R3).
//!
//! The ladder has six rungs. Each trades accuracy for work along three
//! axes — particle-count ceiling (realized through the KLD resampler),
//! beam subsample stride, and range-query tier — and the bottom rung
//! *coasts* on dead-reckoning for a bounded number of steps instead of
//! overrunning the period. The [`DeadlineController`] debounces rung
//! changes exactly like the [`HealthMonitor`](crate::health::HealthMonitor)
//! debounces divergence: descending is immediate (a deadline must not be
//! missed waiting for a streak), climbing requires a sustained
//! under-budget streak plus headroom, and leaving a coast episode arms a
//! holdoff so the ladder never flaps between coasting and full compute.
//!
//! # Examples
//!
//! ```
//! use raceloc_core::deadline::{DeadlineConfig, DeadlineController, LADDER_LEN};
//! use raceloc_core::Health;
//!
//! // 600 particles × 60 beams at the exact tier bill 145 712 units.
//! let config = DeadlineConfig {
//!     budget_units: 160_000,
//!     ..DeadlineConfig::default()
//! };
//! let mut ctl = DeadlineController::new(config.validated().unwrap());
//! // Full compute fits the budget: the controller stays on the top rung.
//! let plan = ctl.plan(1.0, Health::Nominal, 600, 60);
//! assert_eq!(plan.rung, 0);
//! assert!(!plan.miss);
//! // A 50% pressure fault halves the budget: the ladder descends, the
//! // deadline is still met.
//! let plan = ctl.plan(0.5, Health::Nominal, 600, 60);
//! assert!(plan.rung > 0 && plan.rung < LADDER_LEN - 1);
//! assert!(!plan.miss && !plan.coast);
//! ```

use crate::health::Health;

/// Number of rungs on the degradation ladder (including the coast rung).
pub const LADDER_LEN: usize = 6;

/// The range-query cost tier of a ladder rung.
///
/// The top tier bills the exact compressed-LUT fan interpolation; the
/// degraded tiers quantize beam bearings onto a coarse conic grid
/// (CDDT-style θ-binning at [`RangeTier::Binned`], a twice-coarser
/// raymarch-stride analog at [`RangeTier::Coarse`]) so the cast amortizes
/// across bearing-identical beams and bills fewer units per beam.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeTier {
    /// Exact LUT fan interpolation at the scan's native bearings.
    Exact,
    /// Bearings snapped to the LUT's 5° heading grid (72 bins).
    Binned,
    /// Bearings snapped to a 10° grid (36 bins).
    Coarse,
}

impl RangeTier {
    /// Work units billed per particle-beam evaluation at this tier.
    pub const fn beam_units(self) -> u64 {
        match self {
            RangeTier::Exact => 4,
            RangeTier::Binned => 2,
            RangeTier::Coarse => 1,
        }
    }

    /// The bearing quantization grid \[rad\] of this tier (`None`: exact
    /// bearings). 5° matches the default LUT heading bin
    /// (`ArtifactParams::theta_bins = 72`).
    pub fn bearing_quantum(self) -> Option<f64> {
        match self {
            RangeTier::Exact => None,
            RangeTier::Binned => Some(std::f64::consts::TAU / 72.0),
            RangeTier::Coarse => Some(std::f64::consts::TAU / 36.0),
        }
    }

    /// The stable tier label used in reports.
    pub const fn name(self) -> &'static str {
        match self {
            RangeTier::Exact => "lut_exact",
            RangeTier::Binned => "lut_binned",
            RangeTier::Coarse => "lut_coarse",
        }
    }
}

/// The integer work-unit cost model of one scan correction.
///
/// One work unit is defined as the cheapest ([`RangeTier::Coarse`])
/// particle-beam evaluation. The default constants were calibrated once
/// against the checked-in `BENCH_pipeline.json` medians (step p50
/// 0.256 ms at 1200 particles vs 0.759 ms at 4000, 60 beams, exact
/// tier): the per-particle slope is ≈180 ns ≈ 242 units, i.e. one unit
/// ≈ 0.75 ns on the reference machine. The constants are *declared*,
/// not measured at runtime — the model must stay a pure function of the
/// configuration (rule R3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Fixed per-correction overhead (scan prep, normalization, pose
    /// reduction) in work units.
    pub fixed_units: u64,
    /// Per-particle overhead (motion sampling, weight reduction,
    /// resampling amortized) in work units.
    pub per_particle_units: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            fixed_units: 512,
            per_particle_units: 2,
        }
    }
}

impl CostModel {
    /// Work units of one full correction: `fixed + n·(per_particle +
    /// beams·tier)`. Saturating: a pathological configuration clamps at
    /// `u64::MAX` instead of wrapping into a tiny budget.
    pub fn step_units(&self, particles: u64, beams: u64, tier: RangeTier) -> u64 {
        let per_particle = self
            .per_particle_units
            .saturating_add(beams.saturating_mul(tier.beam_units()));
        self.fixed_units
            .saturating_add(particles.saturating_mul(per_particle))
    }

    /// Work units of a coasted step (dead-reckoning only: the fixed
    /// overhead, no casts, no resample).
    pub fn coast_units(&self) -> u64 {
        self.fixed_units
    }
}

/// One rung of the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rung {
    /// Particle-count ceiling as a percentage of the configured maximum
    /// (realized through the KLD resampler's target clamp).
    pub particle_pct: u32,
    /// Beam subsample stride applied on top of the configured beam
    /// selection (1 = every selected beam).
    pub beam_stride: u32,
    /// Range-query cost tier.
    pub tier: RangeTier,
    /// Whether this rung skips the correction entirely and coasts on
    /// dead-reckoning (bounded by [`DeadlineConfig::coast_limit`]).
    pub coast: bool,
}

/// The degradation ladder, top (full compute) to bottom (coast).
///
/// Rung costs are strictly decreasing, which the constructor of
/// [`DeadlineController`] debug-asserts: a non-monotone ladder would
/// make the descend loop livelock above an affordable rung.
pub const LADDER: [Rung; LADDER_LEN] = [
    Rung {
        particle_pct: 100,
        beam_stride: 1,
        tier: RangeTier::Exact,
        coast: false,
    },
    Rung {
        particle_pct: 60,
        beam_stride: 1,
        tier: RangeTier::Exact,
        coast: false,
    },
    Rung {
        particle_pct: 40,
        beam_stride: 2,
        tier: RangeTier::Exact,
        coast: false,
    },
    Rung {
        particle_pct: 25,
        beam_stride: 2,
        tier: RangeTier::Binned,
        coast: false,
    },
    Rung {
        particle_pct: 15,
        beam_stride: 4,
        tier: RangeTier::Coarse,
        coast: false,
    },
    Rung {
        particle_pct: 15,
        beam_stride: 4,
        tier: RangeTier::Coarse,
        coast: true,
    },
];

/// An invalid [`DeadlineConfig`] field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlineConfigError {
    /// The offending field.
    pub field: &'static str,
    /// Why it was rejected.
    pub reason: &'static str,
}

impl std::fmt::Display for DeadlineConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadline config: {} {}", self.field, self.reason)
    }
}

impl std::error::Error for DeadlineConfigError {}

/// Configuration of the [`DeadlineController`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineConfig {
    /// Per-step compute budget in work units; `0` means uncapped.
    pub budget_units: u64,
    /// Maximum consecutive coasted steps per pressure episode. Once
    /// exhausted, the controller runs the cheapest correcting rung even
    /// over budget (booking a deadline miss) rather than dead-reckoning
    /// indefinitely.
    pub coast_limit: u32,
    /// Consecutive in-budget steps required before climbing one rung
    /// (the hysteresis that keeps the ladder from flapping).
    pub upgrade_streak: u32,
    /// Steps to hold the current rung after a coast episode ends or a
    /// global re-initialization fires, before climbing is allowed again
    /// (mirrors the health machine's reinit holdoff).
    pub recover_holdoff: u32,
    /// Climb only when the next rung's cost fits within this percentage
    /// of the budget (1–100). Headroom absorbs the one-step lag between
    /// commanding a particle ceiling and the resampler realizing it.
    pub headroom_pct: u32,
    /// The work-unit cost model.
    pub cost: CostModel,
}

impl Default for DeadlineConfig {
    fn default() -> Self {
        Self {
            budget_units: 0,
            coast_limit: 8,
            upgrade_streak: 5,
            recover_holdoff: 10,
            headroom_pct: 80,
            cost: CostModel::default(),
        }
    }
}

impl DeadlineConfig {
    /// Validates the configuration, returning it unchanged on success.
    pub fn validated(self) -> Result<Self, DeadlineConfigError> {
        let err = |field, reason| Err(DeadlineConfigError { field, reason });
        if self.upgrade_streak == 0 {
            return err("upgrade_streak", "must be at least 1");
        }
        if self.headroom_pct == 0 || self.headroom_pct > 100 {
            return err("headroom_pct", "must lie in 1..=100");
        }
        if self.cost.per_particle_units == 0 {
            return err("cost.per_particle_units", "must be at least 1");
        }
        Ok(self)
    }

    /// The effective per-step budget under a compute-pressure factor in
    /// `(0, 1]` (1 = no pressure). An uncapped budget stays uncapped;
    /// a capped one never collapses below one unit.
    pub fn effective_budget(&self, pressure: f64) -> u64 {
        if self.budget_units == 0 {
            return u64::MAX;
        }
        let f = if pressure.is_finite() {
            pressure.clamp(0.0, 1.0)
        } else {
            1.0
        };
        ((self.budget_units as f64 * f) as u64).max(1)
    }
}

/// The controller's decision for one correction step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepPlan {
    /// Index of the chosen rung in [`LADDER`].
    pub rung: usize,
    /// Billed cost of the step at the chosen rung, in work units.
    pub cost_units: u64,
    /// The effective (pressure-scaled) budget the step was planned
    /// against (`u64::MAX` when uncapped).
    pub budget_units: u64,
    /// Whether the billed cost exceeds the budget even at the cheapest
    /// admissible rung — a deadline miss.
    pub miss: bool,
    /// Whether the step coasts on dead-reckoning.
    pub coast: bool,
}

impl StepPlan {
    /// The chosen rung's parameters.
    pub fn rung_params(&self) -> &'static Rung {
        &LADDER[self.rung]
    }
}

/// The debounced rung-selection state machine.
///
/// One [`DeadlineController::plan`] call per correction; the returned
/// [`StepPlan`] is a pure function of the call sequence, so two filters
/// fed the same (seed, budget, fault schedule) produce bitwise-identical
/// rung sequences regardless of worker-thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlineController {
    config: DeadlineConfig,
    rung: usize,
    ok_streak: u32,
    coast_run: u32,
    holdoff: u32,
    misses: u64,
    coast_steps: u64,
    rung_steps: [u64; LADDER_LEN],
}

impl DeadlineController {
    /// A controller starting on the top rung.
    pub fn new(config: DeadlineConfig) -> Self {
        debug_assert!(
            LADDER.windows(2).all(|w| {
                let cost = |r: &Rung| {
                    if r.coast {
                        0
                    } else {
                        (r.particle_pct as u64)
                            * (100 / r.beam_stride as u64).max(1)
                            * r.tier.beam_units()
                    }
                };
                cost(&w[0]) > cost(&w[1])
            }),
            "ladder rung costs must be strictly decreasing"
        );
        Self {
            config,
            rung: 0,
            ok_streak: 0,
            coast_run: 0,
            holdoff: 0,
            misses: 0,
            coast_steps: 0,
            rung_steps: [0; LADDER_LEN],
        }
    }

    /// The configuration the controller was built with.
    pub fn config(&self) -> &DeadlineConfig {
        &self.config
    }

    /// The current rung index (0 = top, full compute).
    pub fn rung(&self) -> usize {
        self.rung
    }

    /// Total deadline misses booked so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total coasted steps booked so far.
    pub fn coast_steps(&self) -> u64 {
        self.coast_steps
    }

    /// Steps planned at each rung (the occupancy histogram).
    pub fn rung_steps(&self) -> &[u64; LADDER_LEN] {
        &self.rung_steps
    }

    /// Records that a global re-initialization fired: arms the recovery
    /// holdoff and restarts the climb streak, so the ladder does not
    /// climb into an expensive rung while the filter re-converges.
    pub fn notify_reinit(&mut self) {
        self.holdoff = self.config.recover_holdoff;
        self.ok_streak = 0;
    }

    /// Resets the controller to the top rung, clearing streaks and
    /// statistics (mirrors `Localizer::reset`).
    pub fn reset(&mut self) {
        self.rung = 0;
        self.ok_streak = 0;
        self.coast_run = 0;
        self.holdoff = 0;
        self.misses = 0;
        self.coast_steps = 0;
        self.rung_steps = [0; LADDER_LEN];
    }

    /// Plans one correction step.
    ///
    /// `pressure` is the compute-pressure factor in `(0, 1]` (1 = no
    /// fault); `health` is the filter's current health state;
    /// `max_particles` the billing base for particle ceilings (the KLD
    /// maximum, or the live particle count when KLD is disabled);
    /// `beams` the number of selected beams before stride decimation.
    ///
    /// Descending is immediate and can cross several rungs; climbing is
    /// one rung per call, gated on streak, holdoff, and headroom. The
    /// coast rung is refused while [`Health::Lost`] (a lost filter must
    /// keep correcting) and once the per-episode coast budget is
    /// exhausted — both cases book a deadline miss instead.
    pub fn plan(
        &mut self,
        pressure: f64,
        health: Health,
        max_particles: u64,
        beams: u64,
    ) -> StepPlan {
        let budget = self.config.effective_budget(pressure);
        let cm = self.config.cost;
        let cost_at = move |r: usize| rung_cost(cm, r, max_particles, beams);
        let coast_allowed = health != Health::Lost && self.coast_run < self.config.coast_limit;
        let was_coast = LADDER[self.rung].coast;

        // A coasting controller re-plans from the cheapest correcting
        // rung: coast is an emergency, not a steady state, so resuming
        // (budget recovered) and forced over-budget correction (coast
        // bound exhausted) must not wait for the climb hysteresis.
        let mut r = if was_coast { LADDER_LEN - 2 } else { self.rung };
        // Descend until the step fits (or the cheapest admissible rung).
        while cost_at(r) > budget && r + 1 < LADDER_LEN {
            if LADDER[r + 1].coast && !coast_allowed {
                break;
            }
            r += 1;
        }
        let descended = r > self.rung;
        let mut miss = cost_at(r) > budget;

        // Climb consideration: only from a steady, in-budget rung (never
        // in the same step as a coast exit).
        if !was_coast && !descended && !miss && r > 0 {
            let next_cost = cost_at(r - 1) as u128;
            let fits = if budget == u64::MAX {
                true
            } else {
                next_cost * 100 <= budget as u128 * self.config.headroom_pct as u128
            };
            if fits && self.holdoff == 0 && self.ok_streak >= self.config.upgrade_streak {
                r -= 1;
                self.ok_streak = 0;
                miss = cost_at(r) > budget;
            }
        }

        // Streak and episode bookkeeping.
        if descended || miss {
            self.ok_streak = 0;
        } else {
            self.ok_streak = self.ok_streak.saturating_add(1);
        }
        if LADDER[r].coast {
            self.coast_run += 1;
            self.coast_steps += 1;
        } else if !miss && self.coast_run > 0 {
            // The budget admits a correcting rung again: the coast
            // episode is over; arm the holdoff before any climb. A
            // forced over-budget correction (miss) keeps the episode
            // open, so the coast bound cannot re-arm while starved.
            self.coast_run = 0;
            self.holdoff = self.config.recover_holdoff;
        }
        self.holdoff = self.holdoff.saturating_sub(1);
        if miss {
            self.misses += 1;
        }
        self.rung_steps[r] += 1;
        self.rung = r;

        StepPlan {
            rung: r,
            cost_units: cost_at(r),
            budget_units: budget,
            miss,
            coast: LADDER[r].coast,
        }
    }
}

/// Billed cost of one step at rung `r` of [`LADDER`] under cost model
/// `cm`, for a particle ceiling base of `max_particles` and `beams`
/// selected beams.
fn rung_cost(cm: CostModel, r: usize, max_particles: u64, beams: u64) -> u64 {
    let rung = &LADDER[r];
    if rung.coast {
        return cm.coast_units();
    }
    let particles = (max_particles.saturating_mul(rung.particle_pct as u64) / 100).max(1);
    let beams = beams.div_ceil(rung.beam_stride as u64);
    cm.step_units(particles, beams, rung.tier)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capped(budget: u64) -> DeadlineController {
        DeadlineController::new(
            DeadlineConfig {
                budget_units: budget,
                ..DeadlineConfig::default()
            }
            .validated()
            .expect("test config is valid"),
        )
    }

    // Full-step cost at the defaults: 512 + 600·(2 + 60·4) = 145_712.
    const N: u64 = 600;
    const BEAMS: u64 = 60;
    const FULL: u64 = 145_712;

    #[test]
    fn cost_model_matches_the_documented_formula() {
        let cost = CostModel::default();
        assert_eq!(cost.step_units(N, BEAMS, RangeTier::Exact), FULL);
        assert_eq!(
            cost.step_units(N, BEAMS, RangeTier::Coarse),
            512 + 600 * (2 + 60)
        );
        assert_eq!(cost.coast_units(), 512);
    }

    #[test]
    fn ladder_costs_strictly_decrease() {
        let ctl = capped(0);
        let costs: Vec<u64> = (0..LADDER_LEN)
            .map(|r| rung_cost(ctl.config().cost, r, N, BEAMS))
            .collect();
        for w in costs.windows(2) {
            assert!(w[0] > w[1], "{costs:?}");
        }
    }

    #[test]
    fn uncapped_budget_stays_on_the_top_rung() {
        let mut ctl = capped(0);
        for _ in 0..100 {
            let plan = ctl.plan(1.0, Health::Nominal, N, BEAMS);
            assert_eq!(plan.rung, 0);
            assert!(!plan.miss && !plan.coast);
        }
        assert_eq!(ctl.misses(), 0);
        assert_eq!(ctl.rung_steps()[0], 100);
    }

    #[test]
    fn pressure_descends_and_recovery_climbs_with_hysteresis() {
        // 1.5× full cost: the top rung fits the 80% headroom band, so the
        // ladder can climb all the way back once pressure lifts.
        let mut ctl = capped(FULL + FULL / 2);
        for _ in 0..10 {
            assert_eq!(ctl.plan(1.0, Health::Nominal, N, BEAMS).rung, 0);
        }
        // Halved budget: must leave the top rung immediately, no miss.
        let plan = ctl.plan(0.5, Health::Nominal, N, BEAMS);
        assert!(plan.rung > 0, "must descend");
        assert!(!plan.miss && !plan.coast);
        let pressured = plan.rung;
        for _ in 0..30 {
            let p = ctl.plan(0.5, Health::Nominal, N, BEAMS);
            assert_eq!(p.rung, pressured, "steady under constant pressure");
            assert!(!p.miss);
        }
        // Pressure lifts: climbing is debounced, one rung per streak.
        let mut rungs = Vec::new();
        for _ in 0..60 {
            rungs.push(ctl.plan(1.0, Health::Nominal, N, BEAMS).rung);
        }
        assert_eq!(*rungs.last().unwrap(), 0, "recovers to the top rung");
        for w in rungs.windows(2) {
            assert!(
                w[1] + 1 >= w[0] && w[1] <= w[0],
                "monotone climb: {rungs:?}"
            );
        }
        assert_eq!(ctl.misses(), 0);
    }

    #[test]
    fn starvation_coasts_bounded_then_misses() {
        let mut ctl = capped(FULL);
        // Budget below the cheapest correcting rung but above coast cost.
        let cheapest = rung_cost(ctl.config().cost, LADDER_LEN - 2, N, BEAMS);
        let pressure = (cheapest - 1) as f64 / FULL as f64;
        let limit = ctl.config().coast_limit as u64;
        for i in 0..limit {
            let p = ctl.plan(pressure, Health::Nominal, N, BEAMS);
            assert!(p.coast, "step {i} coasts");
            assert!(!p.miss);
        }
        // Coast budget exhausted: the controller corrects over budget.
        let p = ctl.plan(pressure, Health::Nominal, N, BEAMS);
        assert!(!p.coast, "coast is bounded");
        assert!(p.miss, "over-budget correction books a miss");
        assert_eq!(ctl.coast_steps(), limit);
        // The episode does not re-arm while still starved: no flapping
        // back into coast.
        for _ in 0..20 {
            assert!(!ctl.plan(pressure, Health::Nominal, N, BEAMS).coast);
        }
        assert_eq!(ctl.coast_steps(), limit);
    }

    #[test]
    fn coast_is_refused_while_lost() {
        let mut ctl = capped(FULL);
        let cheapest = rung_cost(ctl.config().cost, LADDER_LEN - 2, N, BEAMS);
        let pressure = (cheapest - 1) as f64 / FULL as f64;
        let p = ctl.plan(pressure, Health::Lost, N, BEAMS);
        assert!(!p.coast, "a lost filter must keep correcting");
        assert!(p.miss);
    }

    #[test]
    fn coast_recovery_arms_the_holdoff() {
        let mut ctl = capped(FULL);
        let cheapest = rung_cost(ctl.config().cost, LADDER_LEN - 2, N, BEAMS);
        let starve = (cheapest - 1) as f64 / FULL as f64;
        for _ in 0..3 {
            assert!(ctl.plan(starve, Health::Nominal, N, BEAMS).coast);
        }
        // Pressure lifts: the first correcting step ends the episode and
        // arms the holdoff — no climb for recover_holdoff steps even
        // though the budget now has headroom.
        let resumed = ctl.plan(1.0, Health::Nominal, N, BEAMS).rung;
        assert!(!LADDER[resumed].coast);
        let holdoff = ctl.config().recover_holdoff as usize;
        for _ in 0..holdoff.saturating_sub(1) {
            assert_eq!(ctl.plan(1.0, Health::Nominal, N, BEAMS).rung, resumed);
        }
    }

    #[test]
    fn reinit_restarts_the_climb_streak() {
        let mut ctl = capped(FULL + FULL / 5);
        ctl.plan(0.5, Health::Nominal, N, BEAMS);
        // Almost earned a climb…
        for _ in 0..ctl.config().upgrade_streak - 1 {
            ctl.plan(1.0, Health::Nominal, N, BEAMS);
        }
        let before = ctl.rung();
        ctl.notify_reinit();
        // …the reinit restarts the streak and arms the holdoff.
        for _ in 0..ctl.config().recover_holdoff {
            assert_eq!(ctl.plan(1.0, Health::Nominal, N, BEAMS).rung, before);
        }
    }

    #[test]
    fn effective_budget_handles_edges() {
        let cfg = DeadlineConfig {
            budget_units: 1000,
            ..DeadlineConfig::default()
        };
        assert_eq!(cfg.effective_budget(1.0), 1000);
        assert_eq!(cfg.effective_budget(0.5), 500);
        assert_eq!(cfg.effective_budget(0.0), 1);
        assert_eq!(cfg.effective_budget(f64::NAN), 1000);
        assert_eq!(cfg.effective_budget(7.0), 1000);
        let uncapped = DeadlineConfig::default();
        assert_eq!(uncapped.effective_budget(0.01), u64::MAX);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad = DeadlineConfig {
            upgrade_streak: 0,
            ..DeadlineConfig::default()
        };
        assert_eq!(bad.validated().unwrap_err().field, "upgrade_streak");
        let bad = DeadlineConfig {
            headroom_pct: 0,
            ..DeadlineConfig::default()
        };
        assert_eq!(bad.validated().unwrap_err().field, "headroom_pct");
        let bad = DeadlineConfig {
            headroom_pct: 101,
            ..DeadlineConfig::default()
        };
        assert!(bad.validated().is_err());
        let bad = DeadlineConfig {
            cost: CostModel {
                fixed_units: 0,
                per_particle_units: 0,
            },
            ..DeadlineConfig::default()
        };
        assert!(bad.validated().is_err());
        assert!(DeadlineConfig::default().validated().is_ok());
    }

    #[test]
    fn reset_returns_to_the_top_rung() {
        let mut ctl = capped(FULL);
        ctl.plan(0.3, Health::Nominal, N, BEAMS);
        assert!(ctl.rung() > 0);
        ctl.reset();
        assert_eq!(ctl.rung(), 0);
        assert_eq!(ctl.misses(), 0);
        assert_eq!(ctl.rung_steps(), &[0; LADDER_LEN]);
    }

    #[test]
    fn plans_are_a_pure_function_of_the_call_sequence() {
        let drive = |ctl: &mut DeadlineController| -> Vec<usize> {
            let mut out = Vec::new();
            for i in 0..200u32 {
                let pressure = if (60..90).contains(&i) { 0.4 } else { 1.0 };
                out.push(ctl.plan(pressure, Health::Nominal, N, BEAMS).rung);
            }
            out
        };
        let mut a = capped(FULL + 7);
        let mut b = capped(FULL + 7);
        assert_eq!(drive(&mut a), drive(&mut b));
        assert_eq!(a, b);
    }
}
