//! Localizer health: a degradation state machine shared by every
//! [`Localizer`](crate::localizer::Localizer) implementation.
//!
//! Divergence detectors (ESS collapse and likelihood z-scores in the
//! particle filter, scan-match residuals in the SLAM localizer) reduce
//! each correction to a coarse [`HealthSignal`]; a [`HealthMonitor`]
//! debounces those signals through streak counters into the four-state
//! machine of DESIGN.md §12:
//!
//! ```text
//!            suspect/diverged streak          diverged streak
//!  Nominal ─────────────────────────▶ Degraded ───────────────▶ Lost
//!     ▲                                  │  ▲                    │
//!     │ ok streak                        │  │ diverged streak    │ re-init /
//!     │                        ok streak │  │                    │ ok streak
//!     └────────── Recovering ◀───────────┘  └──── Recovering ◀───┘
//! ```
//!
//! Streak debouncing keeps single noisy corrections from flapping the
//! state; the thresholds are configurable per consumer.

/// The coarse health of a localizer's estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Health {
    /// Tracking normally; the estimate is trustworthy.
    #[default]
    Nominal,
    /// Inputs are degraded (dropouts, staleness, weak matches); the
    /// estimate is coasting on reduced information.
    Degraded,
    /// The estimate has diverged from the sensors; do not trust it.
    Lost,
    /// A re-initialization is converging back toward Nominal.
    Recovering,
}

impl Health {
    /// The stable lowercase name used in JSON and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            Health::Nominal => "nominal",
            Health::Degraded => "degraded",
            Health::Lost => "lost",
            Health::Recovering => "recovering",
        }
    }

    /// Parses a name written by [`Health::as_str`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "nominal" => Some(Health::Nominal),
            "degraded" => Some(Health::Degraded),
            "lost" => Some(Health::Lost),
            "recovering" => Some(Health::Recovering),
            _ => None,
        }
    }
}

impl std::fmt::Display for Health {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One correction's worth of detector output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthSignal {
    /// Detectors agree the estimate is consistent with the sensors.
    Ok,
    /// Something is off (degraded input, weak match, mild divergence).
    Suspect,
    /// Strong evidence the estimate no longer explains the sensors.
    Diverged,
}

/// Streak thresholds of the [`HealthMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Consecutive non-`Ok` corrections before leaving Nominal.
    pub enter_degraded: u32,
    /// Consecutive `Diverged` corrections before declaring Lost.
    pub enter_lost: u32,
    /// Consecutive `Ok` corrections before Degraded (or an un-reinitialized
    /// Lost) steps back toward Nominal/Recovering.
    pub exit_degraded: u32,
    /// Consecutive `Ok` corrections before Recovering settles to Nominal.
    pub exit_recovering: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            enter_degraded: 3,
            enter_lost: 8,
            exit_degraded: 5,
            exit_recovering: 10,
        }
    }
}

/// The streak-debounced health state machine.
///
/// Feed one [`HealthSignal`] per correction through
/// [`HealthMonitor::observe`]; call [`HealthMonitor::notify_reinit`] when
/// a global re-initialization was performed in response to Lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthMonitor {
    config: HealthConfig,
    state: Health,
    ok_streak: u32,
    bad_streak: u32,
    diverged_streak: u32,
}

impl HealthMonitor {
    /// A monitor starting in [`Health::Nominal`].
    pub fn new(config: HealthConfig) -> Self {
        Self {
            config,
            state: Health::Nominal,
            ok_streak: 0,
            bad_streak: 0,
            diverged_streak: 0,
        }
    }

    /// The current state.
    pub fn state(&self) -> Health {
        self.state
    }

    /// Returns to Nominal and clears every streak.
    pub fn reset(&mut self) {
        self.state = Health::Nominal;
        self.clear_streaks();
    }

    fn clear_streaks(&mut self) {
        self.ok_streak = 0;
        self.bad_streak = 0;
        self.diverged_streak = 0;
    }

    fn transition(&mut self, to: Health) {
        self.state = to;
        self.clear_streaks();
    }

    /// Records that a global re-initialization was performed: a Lost
    /// localizer moves to Recovering, and a localizer already Recovering
    /// restarts its holdoff (the streaks clear, so the full
    /// `exit_recovering` Ok streak must be re-earned after the fresh
    /// re-init). No-op in Nominal and Degraded.
    pub fn notify_reinit(&mut self) {
        match self.state {
            Health::Lost => self.transition(Health::Recovering),
            Health::Recovering => self.clear_streaks(),
            Health::Nominal | Health::Degraded => {}
        }
    }

    /// Feeds one correction's detector signal and returns the new state.
    pub fn observe(&mut self, signal: HealthSignal) -> Health {
        match signal {
            HealthSignal::Ok => {
                self.ok_streak += 1;
                self.bad_streak = 0;
                self.diverged_streak = 0;
            }
            HealthSignal::Suspect => {
                self.ok_streak = 0;
                self.bad_streak += 1;
                // A Suspect between Diverged signals pauses, but does not
                // clear, the divergence streak: oscillating evidence must
                // still eventually reach Lost.
            }
            HealthSignal::Diverged => {
                self.ok_streak = 0;
                self.bad_streak += 1;
                self.diverged_streak += 1;
            }
        }
        match self.state {
            Health::Nominal => {
                if self.diverged_streak >= self.config.enter_lost {
                    self.transition(Health::Lost);
                } else if self.bad_streak >= self.config.enter_degraded {
                    // Degrading is not a fresh start: the bad/diverged
                    // streaks keep accumulating so sustained divergence
                    // reaches Lost at `enter_lost` total, not
                    // `enter_degraded + enter_lost`.
                    self.state = Health::Degraded;
                }
            }
            Health::Degraded => {
                if self.diverged_streak >= self.config.enter_lost {
                    self.transition(Health::Lost);
                } else if self.ok_streak >= self.config.exit_degraded {
                    self.transition(Health::Nominal);
                }
            }
            Health::Lost => {
                // Without an external re-init, a sustained run of healthy
                // corrections (the filter found itself again) also moves
                // toward Recovering.
                if self.ok_streak >= self.config.exit_degraded {
                    self.transition(Health::Recovering);
                }
            }
            Health::Recovering => {
                if self.diverged_streak >= self.config.enter_lost {
                    self.transition(Health::Lost);
                } else if self.ok_streak >= self.config.exit_recovering {
                    self.transition(Health::Nominal);
                }
            }
        }
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> HealthMonitor {
        HealthMonitor::new(HealthConfig::default())
    }

    #[test]
    fn names_round_trip() {
        for h in [
            Health::Nominal,
            Health::Degraded,
            Health::Lost,
            Health::Recovering,
        ] {
            assert_eq!(Health::from_name(h.as_str()), Some(h));
        }
        assert_eq!(Health::from_name("confused"), None);
    }

    #[test]
    fn ok_signals_keep_nominal() {
        let mut m = monitor();
        for _ in 0..50 {
            assert_eq!(m.observe(HealthSignal::Ok), Health::Nominal);
        }
    }

    #[test]
    fn suspect_streak_degrades_and_recovers() {
        let mut m = monitor();
        m.observe(HealthSignal::Suspect);
        m.observe(HealthSignal::Suspect);
        assert_eq!(m.state(), Health::Nominal, "debounced");
        assert_eq!(m.observe(HealthSignal::Suspect), Health::Degraded);
        for _ in 0..4 {
            assert_eq!(m.observe(HealthSignal::Ok), Health::Degraded);
        }
        assert_eq!(m.observe(HealthSignal::Ok), Health::Nominal);
    }

    #[test]
    fn diverged_streak_reaches_lost_and_reinit_recovers() {
        let mut m = monitor();
        for _ in 0..8 {
            m.observe(HealthSignal::Diverged);
        }
        assert_eq!(m.state(), Health::Lost);
        m.notify_reinit();
        assert_eq!(m.state(), Health::Recovering);
        for _ in 0..9 {
            assert_eq!(m.observe(HealthSignal::Ok), Health::Recovering);
        }
        assert_eq!(m.observe(HealthSignal::Ok), Health::Nominal);
    }

    #[test]
    fn suspect_does_not_clear_divergence_streak() {
        let mut m = monitor();
        for _ in 0..4 {
            m.observe(HealthSignal::Diverged);
            m.observe(HealthSignal::Suspect);
        }
        for _ in 0..4 {
            m.observe(HealthSignal::Diverged);
        }
        assert_eq!(m.state(), Health::Lost, "oscillation still reaches Lost");
    }

    #[test]
    fn lost_without_reinit_can_still_recover() {
        let mut m = monitor();
        for _ in 0..8 {
            m.observe(HealthSignal::Diverged);
        }
        assert_eq!(m.state(), Health::Lost);
        for _ in 0..5 {
            m.observe(HealthSignal::Ok);
        }
        assert_eq!(m.state(), Health::Recovering);
    }

    #[test]
    fn reinit_outside_lost_is_a_noop() {
        let mut m = monitor();
        m.notify_reinit();
        assert_eq!(m.state(), Health::Nominal);
        m.observe(HealthSignal::Suspect);
        m.observe(HealthSignal::Suspect);
        m.observe(HealthSignal::Suspect);
        assert_eq!(m.state(), Health::Degraded);
        m.notify_reinit();
        assert_eq!(m.state(), Health::Degraded);
    }

    #[test]
    fn reinit_during_recovering_restarts_the_holdoff() {
        let mut m = monitor();
        for _ in 0..8 {
            m.observe(HealthSignal::Diverged);
        }
        m.notify_reinit();
        assert_eq!(m.state(), Health::Recovering);
        // One Ok short of settling back to Nominal…
        for _ in 0..9 {
            m.observe(HealthSignal::Ok);
        }
        // …a second re-init restarts the holdoff: the full exit streak
        // must be re-earned.
        m.notify_reinit();
        for _ in 0..9 {
            assert_eq!(m.observe(HealthSignal::Ok), Health::Recovering);
        }
        assert_eq!(m.observe(HealthSignal::Ok), Health::Nominal);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = monitor();
        for _ in 0..8 {
            m.observe(HealthSignal::Diverged);
        }
        m.reset();
        assert_eq!(m.state(), Health::Nominal);
        m.observe(HealthSignal::Suspect);
        m.observe(HealthSignal::Suspect);
        assert_eq!(m.state(), Health::Nominal, "streaks were cleared");
    }
}
