//! Sensor measurement types shared by the simulator and the localizers.

use crate::{Pose2, Twist2};

/// One 2-D LiDAR sweep.
///
/// Beam `i` points along `angle_min + i * angle_increment` in the *sensor*
/// frame; `ranges[i]` is the measured distance in meters. Valid returns are
/// clamped to `[0, max_range]` by the producer; a range equal to
/// `max_range` means "no return within the envelope" (saturation), and a
/// non-finite range (`f64::INFINITY`) tags a *dropped/invalid* beam —
/// sensor models must skip invalid beams rather than score them.
///
/// # Examples
///
/// ```
/// use raceloc_core::sensor_data::LaserScan;
///
/// let scan = LaserScan::new(-1.0, 0.5, vec![2.0, 3.0, 4.0, 5.0, 4.0], 10.0);
/// assert_eq!(scan.len(), 5);
/// assert!((scan.angle_of(2) - 0.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LaserScan {
    /// Angle of beam 0 in the sensor frame \[rad\].
    pub angle_min: f64,
    /// Angular spacing between consecutive beams \[rad\].
    pub angle_increment: f64,
    /// Measured ranges \[m\], one per beam.
    pub ranges: Vec<f64>,
    /// Sensor maximum range \[m\]; `ranges[i] >= max_range` means no return.
    pub max_range: f64,
    /// Measurement timestamp \[s\].
    pub stamp: f64,
}

impl LaserScan {
    /// Creates a scan (stamp 0); see the type docs for field meanings.
    pub fn new(angle_min: f64, angle_increment: f64, ranges: Vec<f64>, max_range: f64) -> Self {
        Self {
            angle_min,
            angle_increment,
            ranges,
            max_range,
            stamp: 0.0,
        }
    }

    /// Number of beams.
    #[inline]
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True when the scan has no beams.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The sensor-frame angle of beam `i`.
    #[inline]
    pub fn angle_of(&self, i: usize) -> f64 {
        self.angle_min + i as f64 * self.angle_increment
    }

    /// Iterates over `(angle, range)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.ranges
            .iter()
            .enumerate()
            .map(|(i, &r)| (self.angle_of(i), r))
    }

    /// Iterates over only the beams that returned (range < max_range),
    /// yielding `(angle, range)`.
    pub fn valid_returns(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let cutoff = self.max_range - 1e-9;
        self.iter().filter(move |&(_, r)| r < cutoff && r > 0.0)
    }

    /// Converts returned beams to Cartesian points in the sensor frame.
    pub fn to_points(&self) -> Vec<crate::Point2> {
        self.valid_returns()
            .map(|(a, r)| crate::Point2::new(r * a.cos(), r * a.sin()))
            .collect()
    }
}

/// An integrated wheel-odometry measurement.
///
/// `pose` lives in the arbitrary *odometry frame* (it drifts); localizers
/// consume the *relative motion* between successive samples. `twist` carries
/// the instantaneous body velocities the TUM motion model needs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Odometry {
    /// Integrated pose in the odometry frame.
    pub pose: Pose2,
    /// Instantaneous body-frame velocity estimate.
    pub twist: Twist2,
    /// Measurement timestamp \[s\].
    pub stamp: f64,
}

impl Odometry {
    /// Creates a sample.
    pub fn new(pose: Pose2, twist: Twist2, stamp: f64) -> Self {
        Self { pose, twist, stamp }
    }
}

/// A single IMU reading (planar subset).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ImuSample {
    /// Yaw rate \[rad/s\].
    pub yaw_rate: f64,
    /// Longitudinal acceleration \[m/s²\].
    pub accel_x: f64,
    /// Lateral acceleration \[m/s²\].
    pub accel_y: f64,
    /// Measurement timestamp \[s\].
    pub stamp: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn angles_are_affine() {
        let s = LaserScan::new(-1.5, 0.25, vec![1.0; 13], 10.0);
        assert_eq!(s.angle_of(0), -1.5);
        assert!((s.angle_of(12) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn valid_returns_filters_max_range_and_zero() {
        let s = LaserScan::new(0.0, 0.1, vec![5.0, 10.0, 0.0, 3.0], 10.0);
        let v: Vec<(f64, f64)> = s.valid_returns().collect();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].1, 5.0);
        assert_eq!(v[1].1, 3.0);
    }

    #[test]
    fn to_points_in_sensor_frame() {
        let s = LaserScan::new(0.0, std::f64::consts::FRAC_PI_2, vec![2.0, 3.0], 10.0);
        let pts = s.to_points();
        assert!((pts[0].x - 2.0).abs() < 1e-12 && pts[0].y.abs() < 1e-12);
        assert!(pts[1].x.abs() < 1e-12 && (pts[1].y - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_scan() {
        let s = LaserScan::new(0.0, 0.1, vec![], 10.0);
        assert!(s.is_empty());
        assert_eq!(s.to_points().len(), 0);
    }

    #[test]
    fn odometry_roundtrip_fields() {
        let o = Odometry::new(Pose2::new(1.0, 2.0, 0.5), Twist2::new(3.0, 0.0, 0.1), 4.2);
        assert_eq!(o.stamp, 4.2);
        assert_eq!(o.twist.vx, 3.0);
    }
}
