//! The interface every localization algorithm in the workspace implements.

use crate::diagnostics::Diagnostics;
use crate::health::Health;
use crate::sensor_data::{LaserScan, Odometry};
use crate::Pose2;

/// A map-based pose estimator driven by odometry and LiDAR.
///
/// The simulator's closed loop calls [`Localizer::predict`] at the odometry
/// rate and [`Localizer::correct`] at the LiDAR rate, then steers the car
/// from [`Localizer::pose`] — exactly the signal path of the paper's
/// in-field evaluation, so localization error propagates into lap time and
/// lateral deviation.
pub trait Localizer {
    /// Ingests an odometry sample (prediction / motion update).
    fn predict(&mut self, odom: &Odometry);

    /// Ingests a LiDAR scan (correction / measurement update) and returns
    /// the new pose estimate in the map frame.
    fn correct(&mut self, scan: &LaserScan) -> Pose2;

    /// The current pose estimate in the map frame.
    fn pose(&self) -> Pose2;

    /// (Re-)initializes the estimator around a known pose (e.g. the starting
    /// grid). Implementations should discard previous state.
    fn reset(&mut self, pose: Pose2);

    /// A short human-readable name for experiment reports.
    fn name(&self) -> &str;

    /// Filter-health diagnostics for the most recent correction step.
    ///
    /// The default implementation returns an empty record, so simple
    /// estimators need not opt in. Stateful filters should report ESS,
    /// particle count, covariance spread, and per-stage timings here —
    /// the closed loop logs this through a
    /// [`Diagnostics`]-shaped pipe instead of downcasting to concrete
    /// localizer types.
    fn diagnostics(&self) -> Diagnostics {
        Diagnostics::empty()
    }

    /// The localizer's current health state (DESIGN.md §12).
    ///
    /// The default implementation reports [`Health::Nominal`] forever:
    /// estimators without divergence detectors (dead reckoning) have no
    /// basis to declare themselves degraded. Implementations running a
    /// [`HealthMonitor`](crate::health::HealthMonitor) report its state.
    fn health(&self) -> Health {
        Health::Nominal
    }

    /// Informs the localizer of the current compute-pressure factor in
    /// `(0, 1]` (1 = no pressure), scaling its per-step compute budget
    /// for the next correction (DESIGN.md §14).
    ///
    /// The default implementation ignores the signal: estimators without
    /// a [`DeadlineController`](crate::deadline::DeadlineController) have
    /// no budget to scale. The factor must influence *which* work a
    /// deadline-aware implementation schedules, never wall-clock
    /// measurements — results stay bit-identical for any thread count.
    fn set_compute_pressure(&mut self, _factor: f64) {}
}

/// A trivial localizer that integrates odometry only (dead reckoning).
///
/// Serves as the no-correction baseline: its error is exactly the
/// accumulated odometry drift, which makes it useful for validating the
/// odometry-degradation machinery itself.
///
/// # Examples
///
/// ```
/// use raceloc_core::localizer::{DeadReckoning, Localizer};
/// use raceloc_core::sensor_data::Odometry;
/// use raceloc_core::{Pose2, Twist2};
///
/// let mut dr = DeadReckoning::new();
/// dr.reset(Pose2::new(1.0, 0.0, 0.0));
/// // The first sample establishes the odometry reference frame…
/// dr.predict(&Odometry::new(Pose2::IDENTITY, Twist2::ZERO, 0.0));
/// // …subsequent samples apply their relative motion.
/// dr.predict(&Odometry::new(Pose2::new(0.5, 0.0, 0.0), Twist2::ZERO, 0.1));
/// assert!((dr.pose().x - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DeadReckoning {
    map_pose: Pose2,
    last_odom: Option<Pose2>,
}

impl DeadReckoning {
    /// Creates a dead-reckoning localizer at the origin.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Localizer for DeadReckoning {
    fn predict(&mut self, odom: &Odometry) {
        if let Some(prev) = self.last_odom {
            let delta = prev.relative_to(odom.pose);
            self.map_pose = self.map_pose * delta;
        }
        self.last_odom = Some(odom.pose);
    }

    fn correct(&mut self, _scan: &LaserScan) -> Pose2 {
        self.map_pose
    }

    fn pose(&self) -> Pose2 {
        self.map_pose
    }

    fn reset(&mut self, pose: Pose2) {
        self.map_pose = pose;
        self.last_odom = None;
    }

    fn name(&self) -> &str {
        "dead-reckoning"
    }

    fn diagnostics(&self) -> Diagnostics {
        // A single deterministic hypothesis: no spread, nothing resampled.
        Diagnostics {
            particles: Some(1),
            ess: Some(1.0),
            covariance_trace: Some(0.0),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Twist2;

    #[test]
    fn dead_reckoning_follows_odometry_deltas() {
        let mut dr = DeadReckoning::new();
        dr.reset(Pose2::new(0.0, 0.0, std::f64::consts::FRAC_PI_2));
        // Odometry frame: drive 1 m along odom-x.
        dr.predict(&Odometry::new(Pose2::IDENTITY, Twist2::ZERO, 0.0));
        dr.predict(&Odometry::new(Pose2::new(1.0, 0.0, 0.0), Twist2::ZERO, 0.1));
        // Map frame: the car faces +y, so it moved 1 m along map-y.
        assert!(dr.pose().x.abs() < 1e-12);
        assert!((dr.pose().y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn first_sample_sets_reference_only() {
        let mut dr = DeadReckoning::new();
        dr.reset(Pose2::new(2.0, 3.0, 0.0));
        dr.predict(&Odometry::new(Pose2::new(9.0, 9.0, 1.0), Twist2::ZERO, 0.0));
        assert_eq!(dr.pose(), Pose2::new(2.0, 3.0, 0.0));
    }

    #[test]
    fn reset_clears_reference() {
        let mut dr = DeadReckoning::new();
        dr.predict(&Odometry::new(Pose2::new(1.0, 0.0, 0.0), Twist2::ZERO, 0.0));
        dr.reset(Pose2::IDENTITY);
        dr.predict(&Odometry::new(Pose2::new(5.0, 0.0, 0.0), Twist2::ZERO, 0.1));
        assert_eq!(dr.pose(), Pose2::IDENTITY);
    }

    #[test]
    fn correct_is_identity_for_dead_reckoning() {
        let mut dr = DeadReckoning::new();
        dr.reset(Pose2::new(1.0, 1.0, 0.0));
        let scan = crate::sensor_data::LaserScan::new(0.0, 0.1, vec![1.0], 5.0);
        assert_eq!(dr.correct(&scan), dr.pose());
        assert_eq!(dr.name(), "dead-reckoning");
    }

    #[test]
    fn dead_reckoning_reports_single_hypothesis_diagnostics() {
        let dr = DeadReckoning::new();
        let d = dr.diagnostics();
        assert_eq!(d.particles, Some(1));
        assert_eq!(d.ess, Some(1.0));
        assert_eq!(d.covariance_trace, Some(0.0));
        assert!(d.stages.is_empty());
    }
}
