//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component of the workspace (tire noise, sensor noise,
//! particle sampling, resampling) draws from [`Rng64`], a xoshiro256\*\*
//! generator seeded via SplitMix64. Identical seeds yield bit-identical
//! experiment runs on every platform, which is what makes the paper
//! reproduction harness deterministic.

/// A deterministic xoshiro256\*\* pseudo-random generator.
///
/// # Examples
///
/// ```
/// use raceloc_core::Rng64;
///
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        // SplitMix64 cannot produce an all-zero expansion for any seed, but
        // guard anyway: xoshiro must never be seeded with all zeros.
        let s = if s == [0; 4] { [1, 2, 3, 4] } else { s };
        Self { s }
    }

    /// Creates the `stream`-th counter-derived generator for a seed.
    ///
    /// Unlike [`Rng64::fork`], which advances the parent generator, this is
    /// a pure function of `(seed, stream)` — the basis for deterministic
    /// parallel sampling: each chunk of a batch draws from
    /// `Rng64::stream(seed, chunk_index)`, so the noise applied to any item
    /// depends only on the chunk layout, never on which worker thread runs
    /// the chunk or in what order.
    ///
    /// The stream index is diffused with an odd 64-bit constant (the
    /// golden-ratio multiplier already used by SplitMix64) before being
    /// XOR-folded into the seed, so adjacent stream indices land in
    /// well-separated regions of the seed space.
    ///
    /// # Examples
    ///
    /// ```
    /// use raceloc_core::Rng64;
    /// let mut a = Rng64::stream(7, 0);
    /// let mut b = Rng64::stream(7, 1);
    /// assert_ne!(a.next_u64(), b.next_u64());
    /// // Pure: reconstructing the stream replays it exactly.
    /// assert_eq!(Rng64::stream(7, 0).next_u64(), Rng64::stream(7, 0).next_u64());
    /// ```
    pub fn stream(seed: u64, stream: u64) -> Self {
        // `stream + 1` so stream 0 still perturbs the seed, keeping
        // `stream(seed, 0)` distinct from `new(seed)` callers elsewhere.
        Self::new(seed ^ (stream.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Derives an independent child generator (for per-subsystem streams).
    ///
    /// # Examples
    ///
    /// ```
    /// use raceloc_core::Rng64;
    /// let mut root = Rng64::new(7);
    /// let mut lidar = root.fork();
    /// let mut tires = root.fork();
    /// assert_ne!(lidar.next_u64(), tires.next_u64());
    /// ```
    pub fn fork(&mut self) -> Rng64 {
        Rng64::new(self.next_u64())
    }

    /// Returns the next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `lo > hi`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "uniform_range: lo {lo} > hi {hi}");
        lo + (hi - lo) * self.uniform()
    }

    /// A uniform integer in `[0, n)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    #[inline]
    pub fn uniform_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "uniform_usize: n must be positive");
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let l = m as u64;
            if l >= n {
                return (m >> 64) as usize;
            }
            // Rejection zone for exact uniformity.
            let t = n.wrapping_neg() % n;
            if l >= t {
                return (m >> 64) as usize;
            }
        }
    }

    /// A standard normal sample (256-layer ziggurat).
    ///
    /// The common case consumes one raw 64-bit output and costs two table
    /// loads and a compare; wedge and tail cases (≈ 2 % of draws) fall back
    /// to rejection sampling with `exp`/`ln`. The layer tables are built
    /// once per process (see [`zig_tables`]) and shared by every generator,
    /// so the stream remains a pure function of the seed.
    #[inline]
    pub fn gaussian(&mut self) -> f64 {
        let t = zig_tables();
        loop {
            let bits = self.next_u64();
            let i = (bits & 0xFF) as usize;
            let u = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let x = u * t.x[i];
            if x < t.x[i + 1] {
                // Strictly inside the layer's rectangle: accept directly.
                return if bits & 0x100 != 0 { -x } else { x };
            }
            if i == 0 {
                // Base layer overflow: sample the tail beyond r (Marsaglia,
                // 1964). `uniform()` may return 0; `ln(0) = -∞` makes the
                // acceptance test fail and simply retries.
                let r = t.x[1];
                loop {
                    let tx = -self.uniform().ln() / r;
                    let ty = -self.uniform().ln();
                    if ty + ty > tx * tx {
                        let v = r + tx;
                        return if bits & 0x100 != 0 { -v } else { v };
                    }
                }
            }
            // Wedge between the rectangle and the density curve: uniform
            // height in the layer's y-band, accept under the curve.
            let y = t.f[i + 1] + (t.f[i] - t.f[i + 1]) * self.uniform();
            if y < (-0.5 * x * x).exp() {
                return if bits & 0x100 != 0 { -x } else { x };
            }
        }
    }

    /// A normal sample with the given mean and standard deviation.
    ///
    /// A non-positive `sigma` returns `mean` exactly, which lets callers
    /// disable a noise source by zeroing its parameter.
    #[inline]
    pub fn gaussian_with(&mut self, mean: f64, sigma: f64) -> f64 {
        if sigma <= 0.0 {
            mean
        } else {
            mean + sigma * self.gaussian()
        }
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Samples an index from an unnormalized weight slice.
    ///
    /// Returns `None` when the slice is empty or the total weight is not
    /// positive/finite.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().sum();
        if weights.is_empty() || total <= 0.0 || total.is_nan() || !total.is_finite() {
            return None;
        }
        let mut target = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return Some(i);
            }
        }
        Some(weights.len() - 1)
    }
}

impl Default for Rng64 {
    fn default() -> Self {
        Self::new(0)
    }
}

/// Layer tables for the ziggurat gaussian sampler.
///
/// `x[i]` is the right edge of layer `i`'s rectangle (decreasing from the
/// widened base `x[0] = v / f(r)` through the tail cut `x[1] = r` down to
/// `x[256] = 0`); `f[i] = exp(-x[i]²/2)` is the density at that edge.
struct ZigTables {
    x: [f64; 257],
    f: [f64; 257],
}

/// Builds the 256-layer ziggurat tables on first use.
///
/// Rather than hard-coding the published tail-cut and layer-area decimals,
/// the cut `r` is found by bisection: each candidate computes the layer
/// area `v = r·f(r) + ∫ᵣ^∞ f` (Simpson) and stacks the layers; the correct
/// `r` is the one whose 256th layer closes exactly at the density's peak.
/// The construction is deterministic, so every process derives bit-equal
/// tables and sampled streams stay a pure function of the seed.
fn zig_tables() -> &'static ZigTables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<ZigTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let pdf = |t: f64| (-0.5 * t * t).exp();
        // Upper-tail mass of the unnormalized density over [r, r + 14]
        // (the remainder beyond +14 is below 1e-40), Simpson's rule.
        let tail = |r: f64| {
            let n = 2000;
            let h = 14.0 / n as f64;
            let mut s = pdf(r) + pdf(r + 14.0);
            for j in 1..n {
                s += pdf(r + j as f64 * h) * if j % 2 == 1 { 4.0 } else { 2.0 };
            }
            s * h / 3.0
        };
        // Stacks the layers for a candidate cut and reports how far the
        // topmost layer lands from the peak f(0) = 1 (signed closure
        // error; early overshoot short-circuits with the positive error).
        let closure_err = |r: f64, x: &mut [f64; 257]| -> f64 {
            let v = r * pdf(r) + tail(r);
            x[0] = v / pdf(r);
            x[1] = r;
            for i in 2..=256 {
                let t = v / x[i - 1] + pdf(x[i - 1]);
                if t >= 1.0 {
                    return t - 1.0;
                }
                x[i] = (-2.0 * t.ln()).sqrt();
            }
            let t = v / x[255] + pdf(x[255]);
            x[256] = 0.0;
            t - 1.0
        };
        let mut x = [0.0; 257];
        let (mut lo, mut hi) = (3.0f64, 4.0f64);
        debug_assert!(closure_err(lo, &mut x) > 0.0 && closure_err(hi, &mut x) < 0.0);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if closure_err(mid, &mut x) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let err = closure_err(hi, &mut x);
        assert!(
            err.abs() < 1e-9,
            "ziggurat table construction failed to close: {err}"
        );
        let mut f = [0.0; 257];
        for i in 0..257 {
            f[i] = pdf(x[i]);
        }
        ZigTables { x, f }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng64::new(123);
        let mut b = Rng64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = Rng64::new(5);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut r = Rng64::new(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }

    #[test]
    fn uniform_usize_covers_all_buckets() {
        let mut r = Rng64::new(11);
        let mut counts = [0usize; 7];
        for _ in 0..7_000 {
            counts[r.uniform_usize(7)] += 1;
        }
        for &c in &counts {
            assert!(c > 700, "bucket too small: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn uniform_usize_zero_panics() {
        Rng64::new(0).uniform_usize(0);
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng64::new(21);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 1.0).abs() < 0.02, "var={var}");
    }

    #[test]
    fn gaussian_with_zero_sigma_is_mean() {
        let mut r = Rng64::new(3);
        assert_eq!(r.gaussian_with(4.2, 0.0), 4.2);
        assert_eq!(r.gaussian_with(4.2, -1.0), 4.2);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = Rng64::new(17);
        assert!(!(0..100).any(|_| r.bernoulli(0.0)));
        assert!((0..100).all(|_| r.bernoulli(1.0)));
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = Rng64::new(31);
        let w = [0.0, 10.0, 0.0];
        for _ in 0..100 {
            assert_eq!(r.weighted_index(&w), Some(1));
        }
    }

    #[test]
    fn weighted_index_degenerate() {
        let mut r = Rng64::new(31);
        assert_eq!(r.weighted_index(&[]), None);
        assert_eq!(r.weighted_index(&[0.0, 0.0]), None);
        assert_eq!(r.weighted_index(&[f64::INFINITY]), None);
    }

    #[test]
    fn stream_is_a_pure_function_of_seed_and_index() {
        for stream in [0u64, 1, 17, u64::MAX] {
            let mut a = Rng64::stream(42, stream);
            let mut b = Rng64::stream(42, stream);
            for _ in 0..32 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }

    #[test]
    fn stream_indices_are_decorrelated() {
        let mut a = Rng64::stream(42, 0);
        let mut b = Rng64::stream(42, 1);
        let matches = (0..1000)
            .filter(|_| (a.uniform() - b.uniform()).abs() < 1e-3)
            .count();
        assert!(matches < 50);
    }

    #[test]
    fn stream_zero_differs_from_plain_seeding() {
        assert_ne!(Rng64::stream(42, 0), Rng64::new(42));
    }

    #[test]
    fn fork_streams_are_decorrelated() {
        let mut root = Rng64::new(99);
        let mut a = root.fork();
        let mut b = root.fork();
        let matches = (0..1000)
            .filter(|_| (a.uniform() - b.uniform()).abs() < 1e-3)
            .count();
        assert!(matches < 50);
    }
}
