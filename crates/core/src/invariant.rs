//! Runtime invariants for the numeric kernels — the dynamic half of the
//! correctness story whose static half is the `raceloc-analyze` pass.
//!
//! The static pass proves the hot paths cannot *panic by accident*
//! (no `unwrap`, no `partial_cmp(..).expect`); this module lets them
//! *assert on purpose* in debug builds. [`debug_invariant!`] is the
//! project-wide assertion macro: it documents a numeric contract at the
//! point where it must hold (particle weights normalized, ranges within
//! the sensor envelope, optimized poses finite) and vanishes entirely from
//! release binaries, so the paper's latency numbers (Table III) are
//! measured on exactly the code that ships.
//!
//! Call sites use `debug_invariant!` rather than `debug_assert!` so that
//! (a) the failure message carries the module path and a project-standard
//! prefix greppable in CI logs, and (b) the static pass can whitelist the
//! macro by name while still banning bare `panic!` in the same crates.
//!
//! # Examples
//!
//! ```
//! use raceloc_core::debug_invariant;
//!
//! let weights = [0.25f64; 4];
//! let sum: f64 = weights.iter().sum();
//! debug_invariant!((sum - 1.0).abs() < 1e-9, "weights must be normalized");
//! ```

/// `true` when invariant checks are compiled in (debug builds and
/// `cargo test`), `false` in `--release`.
///
/// Exposed as a `const` so [`debug_invariant!`] expands to an
/// `if false { .. }` in release builds that the optimizer removes entirely,
/// and so tests can assert the compile-time state they run under.
pub const ENABLED: bool = cfg!(debug_assertions);

/// Cold failure path shared by every [`debug_invariant!`] expansion.
///
/// Kept out-of-line so the in-line cost of a passing check is a single
/// predictable branch.
///
/// # Panics
///
/// Always — that is its job. Only reachable from debug builds.
#[cold]
#[inline(never)]
pub fn invariant_failed(module: &str, line: u32, detail: &str) -> ! {
    panic!("invariant violated at {module}:{line}: {detail}");
}

/// Asserts a numeric-kernel invariant in debug builds; compiled out in
/// release.
///
/// The first argument is the condition; optional further arguments are a
/// `format!` message (defaults to the stringified condition). The message
/// arguments are only evaluated when the invariant fails, so call sites
/// may format expensive diagnostics freely.
///
/// # Examples
///
/// ```
/// use raceloc_core::debug_invariant;
///
/// let r = 4.2f64;
/// let max_range = 10.0;
/// debug_invariant!(r.is_finite() && r <= max_range, "range {r} beyond {max_range}");
/// ```
///
/// A failing invariant panics in debug builds only:
///
/// ```should_panic
/// use raceloc_core::debug_invariant;
///
/// # if !raceloc_core::invariant::ENABLED { panic!("compiled out"); }
/// debug_invariant!(1.0f64 < 0.0, "impossible ordering");
/// ```
#[macro_export]
macro_rules! debug_invariant {
    ($cond:expr $(,)?) => {
        $crate::debug_invariant!($cond, "{}", stringify!($cond))
    };
    ($cond:expr, $($msg:tt)+) => {
        if $crate::invariant::ENABLED && !($cond) {
            $crate::invariant::invariant_failed(
                module_path!(),
                line!(),
                &format!($($msg)+),
            );
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn passing_invariant_is_silent() {
        debug_invariant!(1 + 1 == 2);
        debug_invariant!(true, "never printed {}", 42);
    }

    // Under `cargo test` (debug profile) the macro must be live …
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "invariant violated")]
    fn failing_invariant_panics_in_debug() {
        debug_invariant!(1 + 1 == 3, "arithmetic broke: {}", 1 + 1);
    }

    // … and under `cargo test --release` it must be compiled out: the same
    // failing condition is a no-op.
    #[cfg(not(debug_assertions))]
    #[test]
    fn failing_invariant_is_compiled_out_in_release() {
        debug_invariant!(1 + 1 == 3, "must not evaluate");
        assert!(!super::ENABLED);
    }

    #[test]
    fn enabled_mirrors_profile() {
        assert_eq!(super::ENABLED, cfg!(debug_assertions));
    }

    #[cfg(debug_assertions)]
    #[test]
    fn message_carries_module_and_detail() {
        let err = std::panic::catch_unwind(|| {
            debug_invariant!(false, "weight {} not finite", f64::NAN);
        })
        .expect_err("must panic in debug");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("invariant violated"), "got: {msg}");
        assert!(msg.contains("invariant::tests"), "got: {msg}");
        assert!(msg.contains("weight NaN not finite"), "got: {msg}");
    }
}
