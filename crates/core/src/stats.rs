//! Streaming statistics used by the evaluation harness.

use std::fmt;

/// Welford's online mean/variance accumulator.
///
/// # Examples
///
/// ```
/// use raceloc_core::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The running mean; `0.0` when empty.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (divides by `n - 1`); `0.0` with fewer than two points.
    #[inline]
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[inline]
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Population variance (divides by `n`); `0.0` when empty.
    #[inline]
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    #[inline]
    pub fn population_std(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation; `+∞` when empty.
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-∞` when empty.
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Freezes the accumulator into a [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.n,
            mean: self.mean(),
            std: self.sample_std(),
            min: self.min,
            max: self.max,
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = RunningStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for RunningStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// A frozen statistical summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator).
    pub std: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "μ={:.4} σ={:.4} (n={}, min={:.4}, max={:.4})",
            self.mean, self.std, self.count, self.min, self.max
        )
    }
}

/// Computes the `q`-quantile (0 ≤ q ≤ 1) of a sample by linear interpolation.
///
/// Returns `None` on empty input. The input does not need to be sorted.
///
/// # Examples
///
/// ```
/// use raceloc_core::stats::quantile;
///
/// let xs = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(quantile(&xs, 0.5), Some(2.5));
/// assert_eq!(quantile(&xs, 0.0), Some(1.0));
/// assert_eq!(quantile(&xs, 1.0), Some(4.0));
/// ```
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median of a sample (see [`quantile`]).
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_benign() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_std(), 0.0);
        assert!(s.min().is_infinite());
    }

    #[test]
    fn single_observation() {
        let mut s = RunningStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.731).sin() * 10.0).collect();
        let s: RunningStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-10);
        assert!((s.sample_variance() - var).abs() < 1e-10);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sqrt()).collect();
        let (a, b) = xs.split_at(200);
        let mut sa: RunningStats = a.iter().copied().collect();
        let sb: RunningStats = b.iter().copied().collect();
        sa.merge(&sb);
        let all: RunningStats = xs.iter().copied().collect();
        assert_eq!(sa.count(), all.count());
        assert!((sa.mean() - all.mean()).abs() < 1e-10);
        assert!((sa.sample_variance() - all.sample_variance()).abs() < 1e-8);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: RunningStats = [1.0, 2.0].iter().copied().collect();
        let before = s;
        s.merge(&RunningStats::new());
        assert_eq!(s, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile(&[7.0], 0.25), Some(7.0));
    }

    #[test]
    fn quantile_empty_is_none() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn median_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
    }

    #[test]
    fn summary_display_contains_fields() {
        let s: RunningStats = [1.0, 2.0, 3.0].iter().copied().collect();
        let text = s.summary().to_string();
        assert!(text.contains("μ=2.0000"));
        assert!(text.contains("n=3"));
    }
}
