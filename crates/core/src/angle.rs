//! Angle normalization and circular statistics.
//!
//! All angles in the workspace are radians. Functions here keep headings in
//! the half-open interval `(-π, π]` and compute means/differences that are
//! correct across the ±π wrap.

use std::f64::consts::PI;

/// Normalizes an angle to the interval `(-π, π]`.
///
/// # Examples
///
/// ```
/// use raceloc_core::angle::normalize;
/// use std::f64::consts::PI;
///
/// assert!((normalize(3.0 * PI) - PI).abs() < 1e-12);
/// assert!((normalize(-3.5 * PI) - 0.5 * PI).abs() < 1e-12);
/// ```
#[inline]
pub fn normalize(theta: f64) -> f64 {
    if theta.is_finite() {
        let two_pi = 2.0 * PI;
        let mut a = theta % two_pi;
        if a <= -PI {
            a += two_pi;
        } else if a > PI {
            a -= two_pi;
        }
        a
    } else {
        theta
    }
}

/// Returns the signed smallest difference `a - b`, normalized to `(-π, π]`.
///
/// # Examples
///
/// ```
/// use raceloc_core::angle::diff;
/// use std::f64::consts::PI;
///
/// // Crossing the wrap: 170° to -170° is a +20° step, not -340°.
/// let d = diff(-170.0f64.to_radians(), 170.0f64.to_radians());
/// assert!((d - 20.0f64.to_radians()).abs() < 1e-12);
/// # let _ = PI;
/// ```
#[inline]
pub fn diff(a: f64, b: f64) -> f64 {
    normalize(a - b)
}

/// Linearly interpolates between two angles along the shortest arc.
///
/// `t = 0` yields `a`, `t = 1` yields `b`.
#[inline]
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    normalize(a + diff(b, a) * t)
}

/// Computes the circular (directional) mean of a set of angles.
///
/// Returns `None` when the input is empty or the resultant vector is
/// numerically zero (e.g. two antipodal angles), in which case no mean
/// direction is defined.
///
/// # Examples
///
/// ```
/// use raceloc_core::angle::circular_mean;
///
/// let m = circular_mean([0.1, -0.1].iter().copied()).unwrap();
/// assert!(m.abs() < 1e-12);
/// assert!(circular_mean(std::iter::empty()).is_none());
/// ```
pub fn circular_mean<I: IntoIterator<Item = f64>>(angles: I) -> Option<f64> {
    let (mut s, mut c, mut n) = (0.0f64, 0.0f64, 0usize);
    for a in angles {
        s += a.sin();
        c += a.cos();
        n += 1;
    }
    if n == 0 || (s.hypot(c)) < 1e-12 {
        None
    } else {
        Some(s.atan2(c))
    }
}

/// Computes the weighted circular mean of `(angle, weight)` pairs.
///
/// Returns `None` for empty input, non-positive total weight, or a
/// numerically zero resultant.
pub fn weighted_circular_mean<I: IntoIterator<Item = (f64, f64)>>(pairs: I) -> Option<f64> {
    let (mut s, mut c, mut w) = (0.0f64, 0.0f64, 0.0f64);
    for (a, wi) in pairs {
        s += wi * a.sin();
        c += wi * a.cos();
        w += wi;
    }
    if w <= 0.0 || s.hypot(c) < 1e-12 {
        None
    } else {
        Some(s.atan2(c))
    }
}

/// Circular standard deviation of a set of angles, in radians.
///
/// Uses the standard definition `sqrt(-2 ln R̄)` where `R̄` is the mean
/// resultant length. Returns `None` on empty input.
pub fn circular_std<I: IntoIterator<Item = f64>>(angles: I) -> Option<f64> {
    let (mut s, mut c, mut n) = (0.0f64, 0.0f64, 0usize);
    for a in angles {
        s += a.sin();
        c += a.cos();
        n += 1;
    }
    if n == 0 {
        return None;
    }
    let r = (s.hypot(c) / n as f64).clamp(0.0, 1.0);
    if r <= f64::MIN_POSITIVE {
        return Some(f64::INFINITY);
    }
    Some((-2.0 * r.ln()).max(0.0).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_is_idempotent() {
        for k in -20..20 {
            let a = 0.37 + k as f64 * 1.1;
            let n = normalize(a);
            assert!(n > -PI - 1e-12 && n <= PI + 1e-12, "{n}");
            assert!((normalize(n) - n).abs() < 1e-12);
        }
    }

    #[test]
    fn normalize_boundary() {
        assert!((normalize(PI) - PI).abs() < 1e-12);
        // -π maps to +π under the (-π, π] convention.
        assert!((normalize(-PI) - PI).abs() < 1e-12);
        assert_eq!(normalize(0.0), 0.0);
    }

    #[test]
    fn normalize_non_finite_passthrough() {
        assert!(normalize(f64::NAN).is_nan());
        assert!(normalize(f64::INFINITY).is_infinite());
    }

    #[test]
    fn diff_wraps() {
        let a = 3.0; // ~172°
        let b = -3.0; // ~-172°
        let d = diff(a, b);
        assert!((d - (6.0 - 2.0 * PI)).abs() < 1e-12);
        assert!(d < 0.0 && d.abs() < 0.5);
    }

    #[test]
    fn lerp_shortest_arc() {
        let a = 3.0;
        let b = -3.0;
        let mid = lerp(a, b, 0.5);
        // Midpoint of the short arc across ±π is near ±π, not 0.
        assert!(mid.abs() > 3.0);
    }

    #[test]
    fn lerp_endpoints() {
        assert!((lerp(0.4, 1.2, 0.0) - 0.4).abs() < 1e-12);
        assert!((lerp(0.4, 1.2, 1.0) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn circular_mean_wraps() {
        let m = circular_mean([PI - 0.1, -PI + 0.1].iter().copied()).unwrap();
        assert!((m.abs() - PI).abs() < 1e-9, "{m}");
    }

    #[test]
    fn circular_mean_antipodal_is_none() {
        assert!(circular_mean([0.0, PI].iter().copied()).is_none());
    }

    #[test]
    fn weighted_mean_respects_weights() {
        let m = weighted_circular_mean([(0.0, 3.0), (1.0, 1.0)].iter().copied()).unwrap();
        assert!(m > 0.0 && m < 0.5);
    }

    #[test]
    fn weighted_mean_zero_weight_is_none() {
        assert!(weighted_circular_mean([(1.0, 0.0)].iter().copied()).is_none());
    }

    #[test]
    fn circular_std_concentrated_is_small() {
        let s = circular_std([0.01, -0.01, 0.02].iter().copied()).unwrap();
        assert!(s < 0.05);
    }

    #[test]
    fn circular_std_uniform_is_large() {
        let angles: Vec<f64> = (0..100).map(|i| i as f64 / 100.0 * 2.0 * PI).collect();
        let s = circular_std(angles.iter().copied()).unwrap();
        assert!(s > 1.0);
    }
}
