//! Planar rigid-body poses and velocities (SE(2) / se(2)).

use crate::angle;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A point (or free vector) in the plane, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    /// X coordinate \[m\].
    pub x: f64,
    /// Y coordinate \[m\].
    pub y: f64,
}

impl Point2 {
    /// Creates a point from its coordinates.
    ///
    /// # Examples
    ///
    /// ```
    /// let p = raceloc_core::Point2::new(1.0, -2.0);
    /// assert_eq!(p.x, 1.0);
    /// ```
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Euclidean norm treated as a vector from the origin.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean norm (avoids the square root).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn dist(self, other: Point2) -> f64 {
        (self - other).norm()
    }

    /// Dot product with another vector.
    #[inline]
    pub fn dot(self, other: Point2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2D cross product (z-component of the 3D cross product).
    #[inline]
    pub fn cross(self, other: Point2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Rotates the vector by `theta` radians about the origin.
    #[inline]
    pub fn rotated(self, theta: f64) -> Point2 {
        let (s, c) = theta.sin_cos();
        Point2::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// Returns the unit vector in the same direction.
    ///
    /// Returns `None` when the vector is numerically zero.
    #[inline]
    pub fn normalized(self) -> Option<Point2> {
        let n = self.norm();
        if n < 1e-300 {
            None
        } else {
            Some(Point2::new(self.x / n, self.y / n))
        }
    }

    /// Linear interpolation: `self + (other - self) * t`.
    #[inline]
    pub fn lerp(self, other: Point2, t: f64) -> Point2 {
        self + (other - self) * t
    }

    /// The polar angle `atan2(y, x)`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// The vector rotated by +90°.
    #[inline]
    pub fn perp(self) -> Point2 {
        Point2::new(-self.y, self.x)
    }
}

impl Add for Point2 {
    type Output = Point2;
    #[inline]
    fn add(self, rhs: Point2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point2 {
    type Output = Point2;
    #[inline]
    fn sub(self, rhs: Point2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point2 {
    type Output = Point2;
    #[inline]
    fn mul(self, rhs: f64) -> Point2 {
        Point2::new(self.x * rhs, self.y * rhs)
    }
}

impl Neg for Point2 {
    type Output = Point2;
    #[inline]
    fn neg(self) -> Point2 {
        Point2::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Point2 {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point2::new(x, y)
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

/// A planar rigid-body pose: translation plus heading (an element of SE(2)).
///
/// Composition via `*` follows the usual frame convention:
/// `world_from_lidar = world_from_base * base_from_lidar`.
///
/// # Examples
///
/// ```
/// use raceloc_core::{Point2, Pose2};
///
/// let pose = Pose2::new(1.0, 0.0, std::f64::consts::FRAC_PI_2);
/// let p = pose.transform(Point2::new(1.0, 0.0));
/// assert!((p.x - 1.0).abs() < 1e-12 && (p.y - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Pose2 {
    /// X position \[m\].
    pub x: f64,
    /// Y position \[m\].
    pub y: f64,
    /// Heading \[rad\], normalized to `(-π, π]` by the constructors.
    pub theta: f64,
}

impl Pose2 {
    /// Creates a pose, normalizing the heading into `(-π, π]`.
    #[inline]
    pub fn new(x: f64, y: f64, theta: f64) -> Self {
        Self {
            x,
            y,
            theta: angle::normalize(theta),
        }
    }

    /// The identity pose at the origin.
    pub const IDENTITY: Pose2 = Pose2 {
        x: 0.0,
        y: 0.0,
        theta: 0.0,
    };

    /// Creates a pose from a translation point and a heading.
    #[inline]
    pub fn from_point(p: Point2, theta: f64) -> Self {
        Self::new(p.x, p.y, theta)
    }

    /// The translation component as a [`Point2`].
    #[inline]
    pub fn translation(self) -> Point2 {
        Point2::new(self.x, self.y)
    }

    /// Transforms a point from this pose's local frame to the parent frame.
    #[inline]
    pub fn transform(self, p: Point2) -> Point2 {
        let (s, c) = self.theta.sin_cos();
        Point2::new(self.x + c * p.x - s * p.y, self.y + s * p.x + c * p.y)
    }

    /// Transforms a point from the parent frame into this pose's local frame.
    #[inline]
    pub fn inverse_transform(self, p: Point2) -> Point2 {
        let (s, c) = self.theta.sin_cos();
        let dx = p.x - self.x;
        let dy = p.y - self.y;
        Point2::new(c * dx + s * dy, -s * dx + c * dy)
    }

    /// The inverse pose, such that `pose * pose.inverse() == identity`.
    #[inline]
    pub fn inverse(self) -> Pose2 {
        let (s, c) = self.theta.sin_cos();
        Pose2::new(
            -(c * self.x + s * self.y),
            s * self.x - c * self.y,
            -self.theta,
        )
    }

    /// The relative pose taking `self` to `other`: `self.inverse() * other`.
    ///
    /// This is the "odometry delta" representation used by the motion models.
    #[inline]
    pub fn relative_to(self, other: Pose2) -> Pose2 {
        self.inverse() * other
    }

    /// Applies a body-frame increment: equivalent to `self * delta`.
    #[inline]
    pub fn oplus(self, delta: Pose2) -> Pose2 {
        self * delta
    }

    /// Euclidean distance between the translation parts of two poses.
    #[inline]
    pub fn dist(self, other: Pose2) -> f64 {
        self.translation().dist(other.translation())
    }

    /// Absolute heading difference to another pose, in `[0, π]`.
    #[inline]
    pub fn heading_dist(self, other: Pose2) -> f64 {
        angle::diff(self.theta, other.theta).abs()
    }

    /// The unit vector of the heading direction.
    #[inline]
    pub fn heading_vector(self) -> Point2 {
        let (s, c) = self.theta.sin_cos();
        Point2::new(c, s)
    }

    /// Interpolates between two poses (linear in translation, shortest-arc
    /// in heading). `t = 0` yields `self`; `t = 1` yields `other`.
    #[inline]
    pub fn interpolate(self, other: Pose2, t: f64) -> Pose2 {
        Pose2::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
            angle::lerp(self.theta, other.theta, t),
        )
    }

    /// Returns the pose as an `[x, y, theta]` array (useful for optimizers).
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.theta]
    }

    /// Builds a pose from an `[x, y, theta]` array, normalizing the heading.
    #[inline]
    pub fn from_array(a: [f64; 3]) -> Pose2 {
        Pose2::new(a[0], a[1], a[2])
    }

    /// True when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.theta.is_finite()
    }
}

impl Mul for Pose2 {
    type Output = Pose2;

    /// Pose composition: `a * b` applies `b` in `a`'s frame.
    // Heading composition really is addition inside this group operation.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn mul(self, rhs: Pose2) -> Pose2 {
        let p = self.transform(rhs.translation());
        Pose2::new(p.x, p.y, self.theta + rhs.theta)
    }
}

impl From<(f64, f64, f64)> for Pose2 {
    #[inline]
    fn from((x, y, theta): (f64, f64, f64)) -> Self {
        Pose2::new(x, y, theta)
    }
}

impl fmt::Display for Pose2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({:.3}, {:.3}, {:.1}°)",
            self.x,
            self.y,
            self.theta.to_degrees()
        )
    }
}

/// A planar body-frame velocity (an element of se(2)).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Twist2 {
    /// Longitudinal velocity \[m/s\] (positive forward).
    pub vx: f64,
    /// Lateral velocity \[m/s\] (positive left).
    pub vy: f64,
    /// Yaw rate \[rad/s\] (positive counter-clockwise).
    pub omega: f64,
}

impl Twist2 {
    /// Creates a twist from its components.
    #[inline]
    pub const fn new(vx: f64, vy: f64, omega: f64) -> Self {
        Self { vx, vy, omega }
    }

    /// The zero twist.
    pub const ZERO: Twist2 = Twist2 {
        vx: 0.0,
        vy: 0.0,
        omega: 0.0,
    };

    /// Speed (norm of the linear velocity).
    #[inline]
    pub fn speed(self) -> f64 {
        self.vx.hypot(self.vy)
    }

    /// Integrates the twist for `dt` seconds using the SE(2) exponential map,
    /// returning the body-frame pose increment.
    ///
    /// This is exact for constant twists (arc motion), and falls back to a
    /// second-order expansion when `|omega * dt|` is tiny.
    ///
    /// # Examples
    ///
    /// ```
    /// use raceloc_core::Twist2;
    /// use std::f64::consts::PI;
    ///
    /// // Quarter circle of radius 1 at 1 m/s.
    /// let delta = Twist2::new(1.0, 0.0, 1.0).integrate(PI / 2.0);
    /// assert!((delta.x - 1.0).abs() < 1e-9);
    /// assert!((delta.y - 1.0).abs() < 1e-9);
    /// ```
    pub fn integrate(self, dt: f64) -> Pose2 {
        let wt = self.omega * dt;
        let (vxt, vyt) = (self.vx * dt, self.vy * dt);
        if wt.abs() < 1e-9 {
            // Second-order small-angle expansion of the exponential map.
            Pose2::new(vxt - 0.5 * wt * vyt, vyt + 0.5 * wt * vxt, wt)
        } else {
            let (s, c) = wt.sin_cos();
            let a = s / wt;
            let b = (1.0 - c) / wt;
            Pose2::new(a * vxt - b * vyt, b * vxt + a * vyt, wt)
        }
    }
}

impl fmt::Display for Twist2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(vx={:.3}, vy={:.3}, ω={:.3})",
            self.vx, self.vy, self.omega
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn assert_pose_eq(a: Pose2, b: Pose2, tol: f64) {
        assert!(
            (a.x - b.x).abs() < tol && (a.y - b.y).abs() < tol,
            "{a} vs {b}"
        );
        assert!(angle::diff(a.theta, b.theta).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn compose_with_identity() {
        let p = Pose2::new(1.5, -2.0, 0.7);
        assert_pose_eq(p * Pose2::IDENTITY, p, 1e-12);
        assert_pose_eq(Pose2::IDENTITY * p, p, 1e-12);
    }

    #[test]
    fn inverse_cancels() {
        let p = Pose2::new(3.0, -1.0, 2.2);
        assert_pose_eq(p * p.inverse(), Pose2::IDENTITY, 1e-12);
        assert_pose_eq(p.inverse() * p, Pose2::IDENTITY, 1e-12);
    }

    #[test]
    fn relative_roundtrip() {
        let a = Pose2::new(1.0, 2.0, 0.5);
        let b = Pose2::new(-0.5, 4.0, -1.2);
        let rel = a.relative_to(b);
        assert_pose_eq(a * rel, b, 1e-12);
    }

    #[test]
    fn transform_inverse_transform_roundtrip() {
        let pose = Pose2::new(0.7, -0.3, 1.9);
        let p = Point2::new(2.0, -5.0);
        let q = pose.inverse_transform(pose.transform(p));
        assert!((q.x - p.x).abs() < 1e-12 && (q.y - p.y).abs() < 1e-12);
    }

    #[test]
    fn composition_is_associative() {
        let a = Pose2::new(1.0, 0.0, 0.3);
        let b = Pose2::new(0.0, 2.0, -0.8);
        let c = Pose2::new(-1.0, 1.0, 2.0);
        assert_pose_eq((a * b) * c, a * (b * c), 1e-12);
    }

    #[test]
    fn rotation_by_quarter_turn() {
        let pose = Pose2::new(0.0, 0.0, FRAC_PI_2);
        let p = pose.transform(Point2::new(1.0, 0.0));
        assert!(p.x.abs() < 1e-12 && (p.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn heading_normalized_by_ctor() {
        let p = Pose2::new(0.0, 0.0, 3.0 * PI);
        assert!((p.theta - PI).abs() < 1e-12);
    }

    #[test]
    fn twist_straight_line() {
        let d = Twist2::new(2.0, 0.0, 0.0).integrate(0.5);
        assert_pose_eq(d, Pose2::new(1.0, 0.0, 0.0), 1e-12);
    }

    #[test]
    fn twist_full_circle_returns_home() {
        let d = Twist2::new(1.0, 0.0, 1.0).integrate(2.0 * PI);
        assert!(d.x.abs() < 1e-9 && d.y.abs() < 1e-9);
    }

    #[test]
    fn twist_small_omega_matches_limit() {
        let exact = Twist2::new(1.0, 0.3, 1e-10).integrate(1.0);
        let straight = Twist2::new(1.0, 0.3, 0.0).integrate(1.0);
        assert!((exact.x - straight.x).abs() < 1e-9);
        assert!((exact.y - straight.y).abs() < 1e-9);
    }

    #[test]
    fn twist_integration_composes() {
        // Integrating for dt then dt again equals integrating 2*dt.
        let tw = Twist2::new(1.5, 0.0, 0.8);
        let one = tw.integrate(0.3);
        let two = one * one;
        let direct = tw.integrate(0.6);
        assert_pose_eq(two, direct, 1e-9);
    }

    #[test]
    fn point_ops() {
        let a = Point2::new(3.0, 4.0);
        assert!((a.norm() - 5.0).abs() < 1e-12);
        assert!((a.perp().dot(a)).abs() < 1e-12);
        assert!((a.rotated(PI).x + 3.0).abs() < 1e-12);
        assert!(a.normalized().unwrap().norm() - 1.0 < 1e-12);
        assert!(Point2::ORIGIN.normalized().is_none());
    }

    #[test]
    fn point_cross_sign() {
        let x = Point2::new(1.0, 0.0);
        let y = Point2::new(0.0, 1.0);
        assert!(x.cross(y) > 0.0);
        assert!(y.cross(x) < 0.0);
    }

    #[test]
    fn interpolate_endpoints_and_wrap() {
        let a = Pose2::new(0.0, 0.0, PI - 0.1);
        let b = Pose2::new(1.0, 1.0, -PI + 0.1);
        assert_pose_eq(a.interpolate(b, 0.0), a, 1e-12);
        assert_pose_eq(a.interpolate(b, 1.0), b, 1e-12);
        let mid = a.interpolate(b, 0.5);
        assert!((mid.theta.abs() - PI).abs() < 1e-9);
    }

    #[test]
    fn array_roundtrip() {
        let p = Pose2::new(1.0, 2.0, -0.4);
        assert_pose_eq(Pose2::from_array(p.to_array()), p, 1e-15);
    }
}
