//! Central registry of [`Rng64::stream`](crate::Rng64::stream) key
//! namespaces (analyzer rule **R7**).
//!
//! Every counter-derived RNG stream in the workspace keys its draws with a
//! 64-bit stream index. Two subsystems that ever share a seed **must not**
//! share a key, or their "independent" noise streams silently correlate —
//! which would invalidate every paired comparison the fleet engine makes.
//! Before this module, the key layouts were hand-maintained conventions
//! scattered across four crates; now each namespace is declared here once,
//! with its seed *domain* and the half-open region of key space it owns,
//! and pairwise disjointness inside a domain is proven at compile time
//! (see the `const` assertion below) and re-checked structurally by
//! `raceloc-analyze` (rule R7, which also requires every
//! `Rng64::stream(seed, key)` call site workspace-wide to construct `key`
//! through one of the constructors in this module).
//!
//! # Domains
//!
//! Keys are only comparable when the seeds they pair with can coincide.
//! The registry groups namespaces into *seed domains*:
//!
//! | domain | seeds drawn from | namespaces |
//! |---|---|---|
//! | `run` | per-run seed lineage (world seed, filter seed, fault-schedule seed — any of which may coincide) | `pf_motion`, `fault_scan`, `eval_filter` |
//! | `eval-master` | a fleet spec's master seed | `eval_world_cell` |
//! | `serve-engine` | a serve engine's configured seed | `serve_session` |
//! | `bench-driver` | constant seeds of bench/test traffic drivers | `bench_driver` |
//!
//! Disjointness is required (and proven) pairwise **within** each domain;
//! regions in different domains may overlap freely because their seeds
//! never alias by construction.
//!
//! # Layout (the `run` domain)
//!
//! ```text
//!   bit 63      56 55              32 31                0
//!        ┌────────┬──────────────────┬──────────────────┐
//!  pf_motion 0x00 │ epoch (24b, ≥ 1) │   chunk (32b)    │  [2^32, 2^56)
//!        ├────────┼──────────────────┴──────────────────┤
//!  fault_scan 0xFA│            step (56b)               │  [0xFA<<56, …]
//!        ├────────┴─────────────────────────────────────┤
//!  eval_filter    │            constant 0xF1            │  [0xF1, 0xF1]
//!        └──────────────────────────────────────────────┘
//! ```

/// One registered stream-key namespace: who owns which region of the
/// 64-bit key space, under which seed domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamNamespace {
    /// Registry name; must match the constructor function below and is
    /// what analyzer rule R7 resolves call sites against.
    pub name: &'static str,
    /// Seed domain the namespace keys under (disjointness is proven
    /// pairwise within a domain).
    pub domain: &'static str,
    /// Human-readable bit layout of the key.
    pub layout: &'static str,
    /// Lowest key the namespace can produce (inclusive).
    pub lo: u64,
    /// Highest key the namespace can produce (inclusive).
    pub hi: u64,
}

/// The workspace's registered namespaces. Keep entries literal: the
/// analyzer parses this table structurally (it cannot evaluate Rust), so
/// `lo`/`hi` must be plain integer literals.
pub const REGISTRY: [StreamNamespace; 6] = [
    StreamNamespace {
        name: "pf_motion",
        domain: "run",
        layout: "epoch:24 @ 32 | chunk:32 @ 0 (epoch >= 1)",
        lo: 0x0000_0001_0000_0000,
        hi: 0x00FF_FFFF_FFFF_FFFF,
    },
    StreamNamespace {
        name: "fault_scan",
        domain: "run",
        layout: "tag 0xFA @ 56 | step:56 @ 0",
        lo: 0xFA00_0000_0000_0000,
        hi: 0xFAFF_FFFF_FFFF_FFFF,
    },
    StreamNamespace {
        name: "eval_filter",
        domain: "run",
        layout: "constant 0xF1",
        lo: 0x0000_0000_0000_00F1,
        hi: 0x0000_0000_0000_00F1,
    },
    StreamNamespace {
        name: "eval_world_cell",
        domain: "eval-master",
        layout: "map:16 @ 48 | grip:8 @ 40 | scenario:8 @ 32 | replicate:32 @ 0",
        lo: 0x0000_0000_0000_0000,
        hi: 0xFFFF_FFFF_FFFF_FFFF,
    },
    StreamNamespace {
        name: "serve_session",
        domain: "serve-engine",
        layout: "session:32 @ 0",
        lo: 0x0000_0000_0000_0000,
        hi: 0x0000_0000_FFFF_FFFF,
    },
    StreamNamespace {
        name: "bench_driver",
        domain: "bench-driver",
        layout: "actor:32 @ 0",
        lo: 0x0000_0000_0000_0000,
        hi: 0x0000_0000_FFFF_FFFF,
    },
];

/// `const`-compatible string equality (no trait calls in `const fn`).
const fn str_eq(a: &str, b: &str) -> bool {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    if a.len() != b.len() {
        return false;
    }
    let mut i = 0;
    while i < a.len() {
        if a[i] != b[i] {
            return false;
        }
        i += 1;
    }
    true
}

/// Whether the registry is sound: every region is a valid interval and no
/// two namespaces in the same seed domain overlap. Evaluated at compile
/// time by the assertion below, so an overlapping registration is a build
/// error, not a latent correlation bug.
pub const fn registry_is_sound() -> bool {
    let mut i = 0;
    while i < REGISTRY.len() {
        if REGISTRY[i].lo > REGISTRY[i].hi {
            return false;
        }
        let mut j = i + 1;
        while j < REGISTRY.len() {
            if str_eq(REGISTRY[i].domain, REGISTRY[j].domain)
                && REGISTRY[i].lo <= REGISTRY[j].hi
                && REGISTRY[j].lo <= REGISTRY[i].hi
            {
                return false;
            }
            j += 1;
        }
        i += 1;
    }
    true
}

const _: () = assert!(
    registry_is_sound(),
    "stream-key registry has an invalid or overlapping namespace"
);

/// Key of one particle chunk's motion stream: `(epoch << 32) | chunk`.
///
/// `epoch` is the filter's prediction counter (incremented before each
/// prediction, so always ≥ 1) and `chunk` the chunk index in the static
/// layout. 24 epoch bits cover ~4.8 days of 40 Hz stepping.
#[inline]
pub const fn pf_motion(epoch: u64, chunk: u64) -> u64 {
    debug_assert!(
        epoch >= 1 && epoch < (1 << 24),
        "pf_motion epoch out of range"
    );
    debug_assert!(chunk < (1 << 32), "pf_motion chunk out of range");
    ((epoch & 0x00FF_FFFF) << 32) | (chunk & 0xFFFF_FFFF)
}

/// Key of the per-step fault-injection scan draw: `0xFA << 56 | step`.
#[inline]
pub const fn fault_scan(step: u64) -> u64 {
    debug_assert!(step < (1 << 56), "fault_scan step out of range");
    0xFA00_0000_0000_0000 | (step & 0x00FF_FFFF_FFFF_FFFF)
}

/// Key of the eval runner's filter-seed derivation draw (a single
/// reserved point, so filter noise and world noise are independent
/// streams of the same world seed).
#[inline]
pub const fn eval_filter() -> u64 {
    0xF1
}

/// Key of one fleet cell's world-seed draw under the spec's master seed:
/// `map:16 | grip:8 | scenario:8 | replicate:32`.
#[inline]
pub const fn eval_world_cell(map: u64, grip: u64, scenario: u64, replicate: u32) -> u64 {
    ((map & 0xFFFF) << 48) | ((grip & 0xFF) << 40) | ((scenario & 0xFF) << 32) | replicate as u64
}

/// Key of one serve session's seed draw under the engine seed (the raw
/// session id; ids are engine-assigned and sequential).
#[inline]
pub const fn serve_session(id: u64) -> u64 {
    debug_assert!(id <= 0xFFFF_FFFF, "serve_session id out of range");
    id & 0xFFFF_FFFF
}

/// Key of a bench/test traffic driver's per-actor input stream (seeded
/// with a constant driver seed, never a run seed).
#[inline]
pub const fn bench_driver(actor: u64) -> u64 {
    debug_assert!(actor <= 0xFFFF_FFFF, "bench_driver actor out of range");
    actor & 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sound_at_runtime_too() {
        assert!(registry_is_sound());
    }

    #[test]
    fn constructors_reproduce_the_legacy_ad_hoc_keys_exactly() {
        // The PR 7 migration is behavior-preserving: each constructor must
        // return byte-for-byte the key the ad-hoc expression produced.
        for (epoch, chunk) in [
            (1u64, 0u64),
            (3, 1),
            (40_000, 15),
            ((1 << 24) - 1, u32::MAX as u64),
        ] {
            assert_eq!(pf_motion(epoch, chunk), (epoch << 32) | chunk);
        }
        for step in [0u64, 1, 49, (1 << 56) - 1] {
            assert_eq!(fault_scan(step), (0xFA << 56) | step);
        }
        assert_eq!(eval_filter(), 0xF1);
        for (m, g, s, r) in [
            (0u64, 0u64, 0u64, 0u32),
            (1, 1, 2, 19),
            (65_535, 255, 255, u32::MAX),
        ] {
            let legacy = ((m & 0xFFFF) << 48) | ((g & 0xFF) << 40) | ((s & 0xFF) << 32) | r as u64;
            assert_eq!(eval_world_cell(m, g, s, r), legacy);
        }
        for id in [0u64, 3, 255, u32::MAX as u64] {
            assert_eq!(serve_session(id), id);
            assert_eq!(bench_driver(id), id);
        }
    }

    #[test]
    fn constructed_keys_land_inside_their_declared_region() {
        let region = |name: &str| {
            REGISTRY
                .iter()
                .find(|n| n.name == name)
                .map(|n| (n.lo, n.hi))
                .expect("registered")
        };
        let check = |name: &str, key: u64| {
            let (lo, hi) = region(name);
            assert!(
                (lo..=hi).contains(&key),
                "{name}: key {key:#x} outside [{lo:#x}, {hi:#x}]"
            );
        };
        check("pf_motion", pf_motion(1, 0));
        check("pf_motion", pf_motion((1 << 24) - 1, u32::MAX as u64));
        check("fault_scan", fault_scan(0));
        check("fault_scan", fault_scan((1 << 56) - 1));
        check("eval_filter", eval_filter());
        check(
            "eval_world_cell",
            eval_world_cell(65_535, 255, 255, u32::MAX),
        );
        check("serve_session", serve_session(u32::MAX as u64));
        check("bench_driver", bench_driver(u32::MAX as u64));
    }

    #[test]
    fn run_domain_namespaces_are_pairwise_disjoint_by_construction() {
        // The three namespaces that can share a seed lineage: a pf_motion
        // key can never equal a fault_scan or eval_filter key.
        let motion = pf_motion(1, 0)..=pf_motion((1 << 24) - 1, u32::MAX as u64);
        assert!(!motion.contains(&fault_scan(0)));
        assert!(!motion.contains(&eval_filter()));
        assert!(fault_scan(0) > *motion.end());
        assert!(eval_filter() < *motion.start());
    }

    #[test]
    fn overlap_detection_rejects_a_colliding_registration() {
        // Sanity-check the const machinery on a synthetic collision.
        const fn collides(a: &StreamNamespace, b: &StreamNamespace) -> bool {
            str_eq(a.domain, b.domain) && a.lo <= b.hi && b.lo <= a.hi
        }
        let a = StreamNamespace {
            name: "a",
            domain: "run",
            layout: "",
            lo: 0x100,
            hi: 0x1FF,
        };
        let b = StreamNamespace {
            name: "b",
            domain: "run",
            layout: "",
            lo: 0x180,
            hi: 0x200,
        };
        let c = StreamNamespace {
            name: "c",
            domain: "other",
            layout: "",
            lo: 0x180,
            hi: 0x200,
        };
        assert!(collides(&a, &b));
        assert!(!collides(&a, &c), "different domains never collide");
    }
}
