//! Algorithm-agnostic filter-health diagnostics.
//!
//! The closed loop and the run recorder need to log *how* a localizer is
//! doing (effective sample size, spread, per-stage timings) without knowing
//! *which* localizer is running. [`Diagnostics`] is that common currency:
//! every field is optional, so a dead-reckoning baseline reports almost
//! nothing while a particle filter fills in ESS, particle count, and the
//! per-stage breakdown of its last correction.

use std::borrow::Cow;

use crate::health::Health;

/// A snapshot of localizer health after the most recent correction step.
///
/// Produced by [`Localizer::diagnostics`](crate::Localizer::diagnostics).
/// Fields a given algorithm cannot populate stay `None`/empty; consumers
/// must treat every field as optional.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diagnostics {
    /// Number of particles / hypotheses currently maintained.
    pub particles: Option<usize>,
    /// Effective sample size of the importance weights.
    pub ess: Option<f64>,
    /// Trace of the position covariance \[m²\] — a scalar spread measure.
    pub covariance_trace: Option<f64>,
    /// Score of the last scan match (method-specific scale).
    pub match_score: Option<f64>,
    /// The localizer's health state, when it runs a health monitor
    /// (DESIGN.md §12); `None` when health tracking is disabled.
    pub health: Option<Health>,
    /// Per-stage wall-clock timings \[s\] of the last correction, in
    /// execution order (e.g. `("motion", 1.2e-4)`, `("raycast", 8e-4)`).
    pub stages: Vec<(Cow<'static, str>, f64)>,
}

impl Diagnostics {
    /// An empty diagnostics record (everything unknown).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Whether no field carries information.
    pub fn is_empty(&self) -> bool {
        self.particles.is_none()
            && self.ess.is_none()
            && self.covariance_trace.is_none()
            && self.match_score.is_none()
            && self.health.is_none()
            && self.stages.is_empty()
    }

    /// Appends a stage timing (builder-style).
    pub fn with_stage(mut self, name: impl Into<Cow<'static, str>>, seconds: f64) -> Self {
        self.stages.push((name.into(), seconds));
        self
    }

    /// Looks up a stage timing \[s\] by name.
    pub fn stage(&self, name: &str) -> Option<f64> {
        self.stages.iter().find(|(n, _)| n == name).map(|(_, s)| *s)
    }

    /// Sum of all recorded stage timings \[s\].
    pub fn stages_total(&self) -> f64 {
        self.stages.iter().map(|(_, s)| s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_by_default() {
        let d = Diagnostics::default();
        assert!(d.is_empty());
        assert_eq!(d.stage("motion"), None);
        assert_eq!(d.stages_total(), 0.0);
    }

    #[test]
    fn stage_lookup_and_total() {
        let d = Diagnostics::empty()
            .with_stage("motion", 1e-4)
            .with_stage("raycast", 3e-4);
        assert!(!d.is_empty());
        assert_eq!(d.stage("motion"), Some(1e-4));
        assert_eq!(d.stage("sensor"), None);
        assert!((d.stages_total() - 4e-4).abs() < 1e-15);
    }

    #[test]
    fn populated_fields_flip_is_empty() {
        let d = Diagnostics {
            ess: Some(123.0),
            ..Default::default()
        };
        assert!(!d.is_empty());
    }
}
