#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! Core primitives shared by every crate in the `raceloc` workspace.
//!
//! This crate is dependency-free and provides:
//!
//! - [`Pose2`], [`Point2`], [`Twist2`]: the SE(2) types used by the vehicle
//!   simulator, the particle filter, and the pose-graph optimizer.
//! - [`angle`]: angle normalization and circular statistics.
//! - [`rng::Rng64`]: a deterministic, seedable xoshiro256** generator with
//!   Gaussian sampling, so every experiment in the workspace is
//!   bit-reproducible.
//! - [`stats`]: streaming mean/variance accumulators and summaries used by
//!   the evaluation harness.
//! - [`linalg`]: the small dense linear-algebra kernel (fixed 2/3-dim types
//!   plus a dense matrix with Cholesky factorization) backing the SLAM
//!   pose-graph optimizer.
//!
//! # Examples
//!
//! ```
//! use raceloc_core::Pose2;
//!
//! let world_from_base = Pose2::new(1.0, 2.0, std::f64::consts::FRAC_PI_2);
//! let base_from_lidar = Pose2::new(0.3, 0.0, 0.0);
//! let world_from_lidar = world_from_base * base_from_lidar;
//! assert!((world_from_lidar.x - 1.0).abs() < 1e-12);
//! assert!((world_from_lidar.y - 2.3).abs() < 1e-12);
//! ```

pub mod angle;
pub mod deadline;
pub mod diagnostics;
pub mod health;
pub mod invariant;
pub mod linalg;
pub mod localizer;
pub mod pose;
pub mod rng;
pub mod sensor_data;
pub mod stats;
pub mod stream_keys;

pub use deadline::{CostModel, DeadlineConfig, DeadlineController, RangeTier, StepPlan};
pub use diagnostics::Diagnostics;
pub use health::{Health, HealthConfig, HealthMonitor, HealthSignal};
pub use localizer::Localizer;
pub use pose::{Point2, Pose2, Twist2};
pub use rng::Rng64;
pub use sensor_data::{LaserScan, Odometry};
pub use stats::{RunningStats, Summary};
