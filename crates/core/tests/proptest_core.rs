//! Property-based tests for the core geometry, statistics, and random
//! primitives.

use proptest::prelude::*;
use raceloc_core::{
    angle, stats, Health, HealthConfig, HealthMonitor, HealthSignal, Point2, Pose2, Rng64,
    RunningStats, Twist2,
};

fn finite_angle() -> impl Strategy<Value = f64> {
    -50.0..50.0f64
}

fn pose() -> impl Strategy<Value = Pose2> {
    (-100.0..100.0f64, -100.0..100.0f64, finite_angle()).prop_map(|(x, y, t)| Pose2::new(x, y, t))
}

proptest! {
    #[test]
    fn normalize_lands_in_half_open_interval(a in finite_angle()) {
        let n = angle::normalize(a);
        prop_assert!(n > -std::f64::consts::PI - 1e-12);
        prop_assert!(n <= std::f64::consts::PI + 1e-12);
        // Idempotent.
        prop_assert!((angle::normalize(n) - n).abs() < 1e-12);
        // Same direction as the input.
        prop_assert!(((a - n) / (2.0 * std::f64::consts::PI)).round()
            * 2.0 * std::f64::consts::PI + n - a < 1e-9);
    }

    #[test]
    fn angle_diff_antisymmetric(a in finite_angle(), b in finite_angle()) {
        let d1 = angle::diff(a, b);
        let d2 = angle::diff(b, a);
        // d1 == -d2 modulo the boundary case at exactly π.
        let sum = angle::normalize(d1 + d2);
        prop_assert!(sum.abs() < 1e-9 || (sum.abs() - 2.0 * std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn pose_inverse_is_identity(p in pose()) {
        let id = p * p.inverse();
        prop_assert!(id.translation().norm() < 1e-9);
        prop_assert!(angle::normalize(id.theta).abs() < 1e-9);
    }

    #[test]
    fn pose_composition_associative(a in pose(), b in pose(), c in pose()) {
        let left = (a * b) * c;
        let right = a * (b * c);
        prop_assert!(left.dist(right) < 1e-6);
        prop_assert!(angle::diff(left.theta, right.theta).abs() < 1e-9);
    }

    #[test]
    fn relative_to_roundtrips(a in pose(), b in pose()) {
        let rel = a.relative_to(b);
        let back = a * rel;
        prop_assert!(back.dist(b) < 1e-6);
        prop_assert!(angle::diff(back.theta, b.theta).abs() < 1e-9);
    }

    #[test]
    fn transform_roundtrips(p in pose(), x in -50.0..50.0f64, y in -50.0..50.0f64) {
        let pt = Point2::new(x, y);
        let back = p.inverse_transform(p.transform(pt));
        prop_assert!(back.dist(pt) < 1e-7);
    }

    #[test]
    fn twist_integration_splits(vx in -5.0..5.0f64, vy in -2.0..2.0f64,
                                w in -3.0..3.0f64, dt in 0.001..0.5f64) {
        // Integrating dt then dt equals integrating 2·dt for a constant twist.
        let tw = Twist2::new(vx, vy, w);
        let half = tw.integrate(dt);
        let two = half * half;
        let direct = tw.integrate(2.0 * dt);
        prop_assert!(two.dist(direct) < 1e-7);
        prop_assert!(angle::diff(two.theta, direct.theta).abs() < 1e-9);
    }

    #[test]
    fn running_stats_merge_matches_sequential(xs in prop::collection::vec(-1e3..1e3f64, 1..200),
                                              split in 0usize..200) {
        let split = split.min(xs.len());
        let mut a: RunningStats = xs[..split].iter().copied().collect();
        let b: RunningStats = xs[split..].iter().copied().collect();
        a.merge(&b);
        let all: RunningStats = xs.iter().copied().collect();
        prop_assert_eq!(a.count(), all.count());
        prop_assert!((a.mean() - all.mean()).abs() < 1e-6);
        prop_assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-4);
    }

    #[test]
    fn quantile_is_monotone(xs in prop::collection::vec(-1e3..1e3f64, 1..100),
                            q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = stats::quantile(&xs, lo).unwrap();
        let b = stats::quantile(&xs, hi).unwrap();
        prop_assert!(a <= b + 1e-12);
    }

    #[test]
    fn rng_uniform_range_respects_bounds(seed in any::<u64>(),
                                         lo in -100.0..100.0f64,
                                         span in 0.0..100.0f64) {
        let mut rng = Rng64::new(seed);
        let hi = lo + span;
        for _ in 0..50 {
            let u = rng.uniform_range(lo, hi);
            prop_assert!(u >= lo && u <= hi);
        }
    }

    #[test]
    fn rng_weighted_index_only_picks_positive(seed in any::<u64>(),
                                              weights in prop::collection::vec(0.0..10.0f64, 1..20)) {
        let mut rng = Rng64::new(seed);
        if let Some(i) = rng.weighted_index(&weights) {
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0 || weights.iter().all(|&w| w == 0.0));
        } else {
            prop_assert!(weights.iter().sum::<f64>() <= 0.0);
        }
    }
}

fn signal() -> impl Strategy<Value = HealthSignal> {
    prop_oneof![
        Just(HealthSignal::Ok),
        Just(HealthSignal::Suspect),
        Just(HealthSignal::Diverged),
    ]
}

proptest! {
    /// Debounce floor: as long as every run of non-Ok corrections is
    /// shorter than `enter_degraded`, the monitor never leaves Nominal —
    /// isolated noisy corrections cannot flap the state.
    #[test]
    fn short_bad_runs_never_leave_nominal(
        blocks in prop::collection::vec((0u32..3, 1u32..6, any::<bool>()), 0..30),
    ) {
        let cfg = HealthConfig::default();
        let mut m = HealthMonitor::new(cfg);
        for (bad, ok, diverged) in blocks {
            prop_assert!(bad < cfg.enter_degraded);
            let sig = if diverged { HealthSignal::Diverged } else { HealthSignal::Suspect };
            for _ in 0..bad {
                prop_assert_eq!(m.observe(sig), Health::Nominal);
            }
            for _ in 0..ok {
                prop_assert_eq!(m.observe(HealthSignal::Ok), Health::Nominal);
            }
        }
    }

    /// The Suspect-pause edge: any Ok-free interleaving of Diverged and
    /// Suspect corrections with at least `enter_lost` Diverged among them
    /// ends in Lost — oscillating evidence must not hide divergence.
    #[test]
    fn ok_free_oscillation_still_reaches_lost(
        mut pattern in prop::collection::vec(any::<bool>(), 0..40),
    ) {
        let cfg = HealthConfig::default();
        // Top the pattern up to exactly `enter_lost` Diverged signals.
        let diverged = pattern.iter().filter(|&&d| d).count() as u32;
        let missing = cfg.enter_lost.saturating_sub(diverged) as usize;
        pattern.extend(std::iter::repeat_n(true, missing));
        let mut m = HealthMonitor::new(cfg);
        for d in pattern {
            let sig = if d { HealthSignal::Diverged } else { HealthSignal::Suspect };
            m.observe(sig);
        }
        prop_assert_eq!(m.state(), Health::Lost);
    }

    /// Bounded recovery: from whatever state an arbitrary signal history
    /// leaves the monitor in, `exit_degraded + exit_recovering`
    /// consecutive Ok corrections always settle it back at Nominal.
    #[test]
    fn sustained_ok_always_settles_nominal(history in prop::collection::vec(signal(), 0..60)) {
        let cfg = HealthConfig::default();
        let mut m = HealthMonitor::new(cfg);
        for sig in history {
            m.observe(sig);
        }
        for _ in 0..(cfg.exit_degraded + cfg.exit_recovering) {
            m.observe(HealthSignal::Ok);
        }
        prop_assert_eq!(m.state(), Health::Nominal);
    }

    /// Streak reset on re-init: however the monitor got Lost, a re-init
    /// moves it to Recovering, and a second re-init after any partial Ok
    /// holdoff clears the streak — the full `exit_recovering` run must be
    /// re-earned from the fresh re-initialization.
    #[test]
    fn reinit_always_restarts_the_recovery_holdoff(
        history in prop::collection::vec(signal(), 0..40),
        partial in 0u32..10,
    ) {
        let cfg = HealthConfig::default();
        prop_assert!(partial < cfg.exit_recovering);
        let mut m = HealthMonitor::new(cfg);
        for sig in history {
            m.observe(sig);
        }
        // Force Lost from wherever the history left us.
        for _ in 0..cfg.enter_lost {
            m.observe(HealthSignal::Diverged);
        }
        prop_assert_eq!(m.state(), Health::Lost);
        m.notify_reinit();
        prop_assert_eq!(m.state(), Health::Recovering);
        // A partial holdoff, then a second re-init: the clock restarts.
        for _ in 0..partial {
            prop_assert_eq!(m.observe(HealthSignal::Ok), Health::Recovering);
        }
        m.notify_reinit();
        for _ in 0..(cfg.exit_recovering - 1) {
            prop_assert_eq!(m.observe(HealthSignal::Ok), Health::Recovering);
        }
        prop_assert_eq!(m.observe(HealthSignal::Ok), Health::Nominal);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Distribution-level pin of the ziggurat gaussian sampler: for any
    /// stream, empirical moments and tail mass must match the standard
    /// normal within generous (≥ 6σ) sampling-noise bounds. A broken layer
    /// table, wedge test, or tail sampler shifts these statistics far
    /// outside the bounds long before it would be visible in filter-level
    /// tests.
    #[test]
    fn gaussian_matches_standard_normal_statistics(seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let n = 20_000usize;
        let (mut sum, mut sum2) = (0.0f64, 0.0f64);
        let (mut beyond2, mut positive) = (0usize, 0usize);
        for _ in 0..n {
            let x = rng.gaussian();
            prop_assert!(x.is_finite());
            sum += x;
            sum2 += x * x;
            beyond2 += usize::from(x.abs() > 2.0);
            positive += usize::from(x > 0.0);
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        prop_assert!(mean.abs() < 0.05, "mean {mean}");
        prop_assert!((var - 1.0).abs() < 0.06, "variance {var}");
        // P(|X| > 2) = 0.04550 for the standard normal.
        let tail = beyond2 as f64 / n as f64;
        prop_assert!((tail - 0.0455).abs() < 0.012, "2-sigma tail {tail}");
        let sym = positive as f64 / n as f64;
        prop_assert!((sym - 0.5).abs() < 0.025, "sign balance {sym}");
    }
}
