//! Property-based tests for the core geometry, statistics, and random
//! primitives.

use proptest::prelude::*;
use raceloc_core::{angle, stats, Point2, Pose2, Rng64, RunningStats, Twist2};

fn finite_angle() -> impl Strategy<Value = f64> {
    -50.0..50.0f64
}

fn pose() -> impl Strategy<Value = Pose2> {
    (-100.0..100.0f64, -100.0..100.0f64, finite_angle()).prop_map(|(x, y, t)| Pose2::new(x, y, t))
}

proptest! {
    #[test]
    fn normalize_lands_in_half_open_interval(a in finite_angle()) {
        let n = angle::normalize(a);
        prop_assert!(n > -std::f64::consts::PI - 1e-12);
        prop_assert!(n <= std::f64::consts::PI + 1e-12);
        // Idempotent.
        prop_assert!((angle::normalize(n) - n).abs() < 1e-12);
        // Same direction as the input.
        prop_assert!(((a - n) / (2.0 * std::f64::consts::PI)).round()
            * 2.0 * std::f64::consts::PI + n - a < 1e-9);
    }

    #[test]
    fn angle_diff_antisymmetric(a in finite_angle(), b in finite_angle()) {
        let d1 = angle::diff(a, b);
        let d2 = angle::diff(b, a);
        // d1 == -d2 modulo the boundary case at exactly π.
        let sum = angle::normalize(d1 + d2);
        prop_assert!(sum.abs() < 1e-9 || (sum.abs() - 2.0 * std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn pose_inverse_is_identity(p in pose()) {
        let id = p * p.inverse();
        prop_assert!(id.translation().norm() < 1e-9);
        prop_assert!(angle::normalize(id.theta).abs() < 1e-9);
    }

    #[test]
    fn pose_composition_associative(a in pose(), b in pose(), c in pose()) {
        let left = (a * b) * c;
        let right = a * (b * c);
        prop_assert!(left.dist(right) < 1e-6);
        prop_assert!(angle::diff(left.theta, right.theta).abs() < 1e-9);
    }

    #[test]
    fn relative_to_roundtrips(a in pose(), b in pose()) {
        let rel = a.relative_to(b);
        let back = a * rel;
        prop_assert!(back.dist(b) < 1e-6);
        prop_assert!(angle::diff(back.theta, b.theta).abs() < 1e-9);
    }

    #[test]
    fn transform_roundtrips(p in pose(), x in -50.0..50.0f64, y in -50.0..50.0f64) {
        let pt = Point2::new(x, y);
        let back = p.inverse_transform(p.transform(pt));
        prop_assert!(back.dist(pt) < 1e-7);
    }

    #[test]
    fn twist_integration_splits(vx in -5.0..5.0f64, vy in -2.0..2.0f64,
                                w in -3.0..3.0f64, dt in 0.001..0.5f64) {
        // Integrating dt then dt equals integrating 2·dt for a constant twist.
        let tw = Twist2::new(vx, vy, w);
        let half = tw.integrate(dt);
        let two = half * half;
        let direct = tw.integrate(2.0 * dt);
        prop_assert!(two.dist(direct) < 1e-7);
        prop_assert!(angle::diff(two.theta, direct.theta).abs() < 1e-9);
    }

    #[test]
    fn running_stats_merge_matches_sequential(xs in prop::collection::vec(-1e3..1e3f64, 1..200),
                                              split in 0usize..200) {
        let split = split.min(xs.len());
        let mut a: RunningStats = xs[..split].iter().copied().collect();
        let b: RunningStats = xs[split..].iter().copied().collect();
        a.merge(&b);
        let all: RunningStats = xs.iter().copied().collect();
        prop_assert_eq!(a.count(), all.count());
        prop_assert!((a.mean() - all.mean()).abs() < 1e-6);
        prop_assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-4);
    }

    #[test]
    fn quantile_is_monotone(xs in prop::collection::vec(-1e3..1e3f64, 1..100),
                            q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = stats::quantile(&xs, lo).unwrap();
        let b = stats::quantile(&xs, hi).unwrap();
        prop_assert!(a <= b + 1e-12);
    }

    #[test]
    fn rng_uniform_range_respects_bounds(seed in any::<u64>(),
                                         lo in -100.0..100.0f64,
                                         span in 0.0..100.0f64) {
        let mut rng = Rng64::new(seed);
        let hi = lo + span;
        for _ in 0..50 {
            let u = rng.uniform_range(lo, hi);
            prop_assert!(u >= lo && u <= hi);
        }
    }

    #[test]
    fn rng_weighted_index_only_picks_positive(seed in any::<u64>(),
                                              weights in prop::collection::vec(0.0..10.0f64, 1..20)) {
        let mut rng = Rng64::new(seed);
        if let Some(i) = rng.weighted_index(&weights) {
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0 || weights.iter().all(|&w| w == 0.0));
        } else {
            prop_assert!(weights.iter().sum::<f64>() <= 0.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Distribution-level pin of the ziggurat gaussian sampler: for any
    /// stream, empirical moments and tail mass must match the standard
    /// normal within generous (≥ 6σ) sampling-noise bounds. A broken layer
    /// table, wedge test, or tail sampler shifts these statistics far
    /// outside the bounds long before it would be visible in filter-level
    /// tests.
    #[test]
    fn gaussian_matches_standard_normal_statistics(seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let n = 20_000usize;
        let (mut sum, mut sum2) = (0.0f64, 0.0f64);
        let (mut beyond2, mut positive) = (0usize, 0usize);
        for _ in 0..n {
            let x = rng.gaussian();
            prop_assert!(x.is_finite());
            sum += x;
            sum2 += x * x;
            beyond2 += usize::from(x.abs() > 2.0);
            positive += usize::from(x > 0.0);
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        prop_assert!(mean.abs() < 0.05, "mean {mean}");
        prop_assert!((var - 1.0).abs() < 0.06, "variance {var}");
        // P(|X| > 2) = 0.04550 for the standard normal.
        let tail = beyond2 as f64 / n as f64;
        prop_assert!((tail - 0.0455).abs() < 0.012, "2-sigma tail {tail}");
        let sym = positive as f64 / n as f64;
        prop_assert!((sym - 0.5).abs() < 0.025, "sign balance {sym}");
    }
}
