//! Property-based tests of the SLAM building blocks: probability-grid
//! algebra and pose-graph optimization on randomly generated consistent
//! graphs.

use proptest::prelude::*;
use raceloc_core::{Point2, Pose2};
use raceloc_map::GridIndex;
use raceloc_slam::{Constraint, PoseGraph, ProbabilityGrid};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn probability_updates_stay_clamped(
        hits in prop::collection::vec((0i64..20, 0i64..20), 0..60),
        misses in prop::collection::vec((0i64..20, 0i64..20), 0..60),
    ) {
        let mut g = ProbabilityGrid::new(20, 20, 0.1, Point2::ORIGIN);
        for (c, r) in hits {
            g.apply_hit(GridIndex::new(c, r));
        }
        for (c, r) in misses {
            g.apply_miss(GridIndex::new(c, r));
        }
        for r in 0..20 {
            for c in 0..20 {
                let p = g.probability(GridIndex::new(c, r));
                prop_assert!((0.1..=0.98).contains(&p) || (p - 0.5).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn hit_then_miss_orders_probability(c in 0i64..10, r in 0i64..10,
                                        n_hits in 1usize..10) {
        let mut g = ProbabilityGrid::new(10, 10, 0.1, Point2::ORIGIN);
        let idx = GridIndex::new(c, r);
        for _ in 0..n_hits {
            g.apply_hit(idx);
        }
        let before = g.probability(idx);
        g.apply_miss(idx);
        prop_assert!(g.probability(idx) < before);
    }

    #[test]
    fn bilinear_interpolation_is_bounded_by_neighbors(
        hits in prop::collection::vec((1i64..9, 1i64..9), 1..20),
        fx in 0.05..0.95f64,
        fy in 0.05..0.95f64,
    ) {
        let mut g = ProbabilityGrid::new(10, 10, 0.1, Point2::ORIGIN);
        for (c, r) in hits {
            g.apply_hit(GridIndex::new(c, r));
        }
        let p = Point2::new(fx, fy);
        let v = g.probability_at(p);
        prop_assert!((0.0..=1.0).contains(&v));
        // Interpolated value never exceeds the max of the 4 surrounding
        // cell probabilities (convex combination).
        let idx = g.world_to_index(Point2::new(p.x - 0.05, p.y - 0.05));
        let mut hi = 0.0f64;
        let mut lo = 1.0f64;
        for dc in 0..2 {
            for dr in 0..2 {
                let q = g.probability(GridIndex::new(idx.col + dc, idx.row + dr));
                hi = hi.max(q);
                lo = lo.min(q);
            }
        }
        prop_assert!(v <= hi + 1e-9 && v >= lo - 1e-9);
    }

    #[test]
    fn consistent_pose_graph_optimizes_to_near_zero_chi2(
        steps in prop::collection::vec((-0.5..1.5f64, -0.3..0.3f64, -0.5..0.5f64), 2..12),
        noise in prop::collection::vec((-0.05..0.05f64, -0.05..0.05f64, -0.03..0.03f64), 2..12),
    ) {
        // Build a chain whose constraints are exactly consistent with some
        // trajectory, but whose initial node estimates carry noise: the
        // optimizer must drive chi² to ~0.
        let mut g = PoseGraph::new();
        let mut truth = vec![Pose2::IDENTITY];
        for &(dx, dy, dt) in &steps {
            let last = *truth.last().unwrap();
            truth.push(last * Pose2::new(dx, dy, dt));
        }
        for (i, t) in truth.iter().enumerate() {
            let (nx, ny, nt) = noise.get(i % noise.len()).copied().unwrap_or((0.0, 0.0, 0.0));
            let init = if i == 0 {
                *t
            } else {
                Pose2::new(t.x + nx, t.y + ny, t.theta + nt)
            };
            g.add_node(init);
        }
        for (i, &(dx, dy, dt)) in steps.iter().enumerate() {
            g.add_constraint(Constraint::new(i, i + 1, Pose2::new(dx, dy, dt), 100.0, 100.0));
        }
        let report = g.optimize(30);
        prop_assert!(report.final_chi2 < 1e-6,
            "chi² {} -> {}", report.initial_chi2, report.final_chi2);
        // Node estimates recover the truth (gauge fixed at node 0).
        for (i, t) in truth.iter().enumerate() {
            prop_assert!(g.node(i).dist(*t) < 1e-3, "node {i}: {} vs {t}", g.node(i));
        }
    }

    #[test]
    fn optimization_never_panics_on_random_graphs(
        n_nodes in 2usize..10,
        edges in prop::collection::vec((0usize..10, 0usize..10, -1.0..1.0f64, -1.0..1.0f64, -1.0..1.0f64), 1..20),
    ) {
        let mut g = PoseGraph::new();
        for i in 0..n_nodes {
            g.add_node(Pose2::new(i as f64, 0.0, 0.0));
        }
        for (a, b, dx, dy, dt) in edges {
            let a = a % n_nodes;
            let b = b % n_nodes;
            if a != b {
                g.add_constraint(Constraint::new(a, b, Pose2::new(dx, dy, dt), 10.0, 10.0));
            }
        }
        let report = g.optimize(10);
        prop_assert!(report.final_chi2.is_finite());
        for i in 0..n_nodes {
            prop_assert!(g.node(i).is_finite());
        }
    }
}
