//! Submaps: the locally consistent map chunks of Cartographer-style SLAM.

use crate::probgrid::ProbabilityGrid;
use raceloc_core::sensor_data::LaserScan;
use raceloc_core::{Point2, Pose2};

/// One submap: a probability grid anchored near the pose that spawned it.
#[derive(Debug, Clone)]
pub struct Submap {
    grid: ProbabilityGrid,
    /// World pose of the submap anchor (its first scan's sensor pose).
    anchor: Pose2,
    scan_count: usize,
    finished: bool,
}

impl Submap {
    /// Creates an empty submap of `size_m × size_m` meters centred on the
    /// anchor pose.
    ///
    /// # Panics
    ///
    /// Panics when `size_m` or `resolution` is not positive.
    pub fn new(anchor: Pose2, size_m: f64, resolution: f64) -> Self {
        assert!(size_m > 0.0, "submap size must be positive");
        assert!(resolution > 0.0, "resolution must be positive");
        let cells = (size_m / resolution).ceil() as usize;
        let origin = Point2::new(anchor.x - size_m / 2.0, anchor.y - size_m / 2.0);
        Self {
            grid: ProbabilityGrid::new(cells, cells, resolution, origin),
            anchor,
            scan_count: 0,
            finished: false,
        }
    }

    /// The underlying probability grid.
    pub fn grid(&self) -> &ProbabilityGrid {
        &self.grid
    }

    /// The submap anchor pose.
    pub fn anchor(&self) -> Pose2 {
        self.anchor
    }

    /// Number of scans inserted so far.
    pub fn scan_count(&self) -> usize {
        self.scan_count
    }

    /// True once the submap stopped accepting scans.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Inserts a scan taken from `sensor_pose` (world frame).
    ///
    /// # Panics
    ///
    /// Panics when the submap is already finished.
    pub fn insert(&mut self, sensor_pose: Pose2, scan: &LaserScan) {
        assert!(!self.finished, "cannot insert into a finished submap");
        self.grid.insert_scan(sensor_pose, scan);
        self.scan_count += 1;
    }

    /// Marks the submap finished (no more insertions).
    pub fn finish(&mut self) {
        self.finished = true;
    }
}

/// The pair of active submaps plus the archive of finished ones.
///
/// Mirrors Cartographer's scheme: every scan is inserted into (up to) two
/// overlapping submaps; when the older one has received
/// `scans_per_submap` scans it is finished and a new submap starts at the
/// current pose, so consecutive submaps overlap by half their scans.
#[derive(Debug, Clone)]
pub struct SubmapCollection {
    submaps: Vec<Submap>,
    size_m: f64,
    resolution: f64,
    scans_per_submap: usize,
}

impl SubmapCollection {
    /// Creates an empty collection.
    ///
    /// # Panics
    ///
    /// Panics when `scans_per_submap < 2`.
    pub fn new(size_m: f64, resolution: f64, scans_per_submap: usize) -> Self {
        assert!(scans_per_submap >= 2, "need at least 2 scans per submap");
        Self {
            submaps: Vec::new(),
            size_m,
            resolution,
            scans_per_submap,
        }
    }

    /// All submaps, oldest first.
    pub fn submaps(&self) -> &[Submap] {
        &self.submaps
    }

    /// Index of the submap used for matching: the *oldest* still-active
    /// submap with data (it has seen the most scans and is therefore the
    /// most complete), falling back to the newest submap overall.
    pub fn matching_index(&self) -> Option<usize> {
        let n = self.submaps.len();
        if n == 0 {
            return None;
        }
        for i in n.saturating_sub(2)..n {
            if !self.submaps[i].is_finished() && self.submaps[i].scan_count() > 0 {
                return Some(i);
            }
        }
        Some(n - 1)
    }

    /// The submap currently used for matching (see
    /// [`SubmapCollection::matching_index`]).
    pub fn matching_submap(&self) -> Option<&Submap> {
        self.matching_index().map(|i| &self.submaps[i])
    }

    /// Inserts a scan at `sensor_pose` into the active submaps, spawning and
    /// finishing submaps per the overlap scheme. Returns the indices of the
    /// submaps the scan went into.
    pub fn insert(&mut self, sensor_pose: Pose2, scan: &LaserScan) -> Vec<usize> {
        // Spawn the first submap, or a new one when the newest is half full.
        let spawn = match self.submaps.last() {
            None => true,
            Some(s) => s.scan_count() >= self.scans_per_submap / 2,
        };
        if spawn {
            self.submaps
                .push(Submap::new(sensor_pose, self.size_m, self.resolution));
        }
        let n = self.submaps.len();
        let mut touched = Vec::new();
        let lo = n.saturating_sub(2);
        for (i, submap) in self.submaps.iter_mut().enumerate().skip(lo) {
            if !submap.is_finished() {
                submap.insert(sensor_pose, scan);
                touched.push(i);
            }
        }
        // Finish any submap that reached its budget.
        for s in &mut self.submaps {
            if !s.is_finished() && s.scan_count() >= self.scans_per_submap {
                s.finish();
            }
        }
        touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan() -> LaserScan {
        LaserScan::new(-1.0, 0.1, vec![3.0; 21], 10.0)
    }

    #[test]
    fn submap_inserts_and_counts() {
        let mut s = Submap::new(Pose2::IDENTITY, 10.0, 0.1);
        s.insert(Pose2::IDENTITY, &scan());
        s.insert(Pose2::new(0.1, 0.0, 0.0), &scan());
        assert_eq!(s.scan_count(), 2);
        assert!(!s.is_finished());
    }

    #[test]
    #[should_panic(expected = "finished")]
    fn finished_submap_rejects_inserts() {
        let mut s = Submap::new(Pose2::IDENTITY, 10.0, 0.1);
        s.finish();
        s.insert(Pose2::IDENTITY, &scan());
    }

    #[test]
    fn collection_overlap_scheme() {
        let mut col = SubmapCollection::new(10.0, 0.1, 10);
        for i in 0..30 {
            let pose = Pose2::new(i as f64 * 0.1, 0.0, 0.0);
            let touched = col.insert(pose, &scan());
            assert!(!touched.is_empty());
            assert!(touched.len() <= 2);
        }
        // 30 scans, new submap every 5: several submaps, early ones finished.
        assert!(col.submaps().len() >= 4);
        assert!(col.submaps()[0].is_finished());
        // Every finished submap holds the full budget.
        for s in col.submaps().iter().filter(|s| s.is_finished()) {
            assert_eq!(s.scan_count(), 10);
        }
    }

    #[test]
    fn matching_submap_exists_after_first_insert() {
        let mut col = SubmapCollection::new(10.0, 0.1, 6);
        assert!(col.matching_submap().is_none());
        col.insert(Pose2::IDENTITY, &scan());
        assert!(col.matching_submap().is_some());
        assert_eq!(col.matching_index(), Some(0));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_budget_panics() {
        SubmapCollection::new(10.0, 0.1, 1);
    }
}
