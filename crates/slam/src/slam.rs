//! The online SLAM pipeline: local matching, submap insertion, pose-graph
//! construction, loop closure, and map export.

use raceloc_obs::Stopwatch;
use std::borrow::Cow;

use crate::loop_closure::{BranchAndBoundConfig, BranchAndBoundMatcher};
use crate::pose_graph::{Constraint, PoseGraph};
use crate::probgrid::ProbabilityGrid;
use crate::scan_matcher::{CorrelativeScanMatcher, GaussNewtonRefiner, SearchWindow};
use crate::submap::SubmapCollection;
use raceloc_core::localizer::Localizer;
use raceloc_core::sensor_data::{LaserScan, Odometry};
use raceloc_core::{Diagnostics, Point2, Pose2};
use raceloc_map::OccupancyGrid;
use raceloc_obs::Telemetry;

/// Configuration of the [`CartoSlam`] pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct CartoSlamConfig {
    /// Submap grid resolution \[m\].
    pub resolution: f64,
    /// Submap physical size \[m\].
    pub submap_size_m: f64,
    /// Scans per submap before it is finished.
    pub scans_per_submap: usize,
    /// Motion filter: minimum travel before a scan is inserted \[m\].
    pub motion_min_dist: f64,
    /// Motion filter: minimum rotation before a scan is inserted \[rad\].
    pub motion_min_angle: f64,
    /// Search window of the real-time matcher.
    pub tracking_window: SearchWindow,
    /// LiDAR pose in the body frame.
    pub lidar_mount: Pose2,
    /// Maximum scan points used for matching (uniform downsample).
    pub max_points: usize,
    /// Attempt loop closure every this many inserted nodes.
    pub loop_closure_every: usize,
    /// Branch-and-bound settings for loop closure.
    pub loop_closure: BranchAndBoundConfig,
    /// Minimum node-index separation for a closure attempt.
    pub min_closure_separation: usize,
    /// Prior penalty on translation in the scan refiner (Cartographer's
    /// `translation_weight`): how much the matcher trusts odometry.
    pub prior_translation_weight: f64,
    /// Prior penalty on rotation in the scan refiner.
    pub prior_rotation_weight: f64,
    /// Run the correlative matcher before refining only when the refined
    /// score falls below this (Cartographer's optional real-time matcher).
    pub correlative_rescue_score: f64,
}

impl Default for CartoSlamConfig {
    fn default() -> Self {
        Self {
            resolution: 0.05,
            submap_size_m: 12.0,
            scans_per_submap: 40,
            motion_min_dist: 0.1,
            motion_min_angle: 0.05,
            tracking_window: SearchWindow::tracking(),
            lidar_mount: Pose2::new(0.1, 0.0, 0.0),
            max_points: 140,
            loop_closure_every: 8,
            loop_closure: BranchAndBoundConfig::default(),
            min_closure_separation: 60,
            prior_translation_weight: 1.5,
            prior_rotation_weight: 1.0,
            correlative_rescue_score: 0.45,
        }
    }
}

struct NodeData {
    /// Index in the pose graph.
    graph_idx: usize,
    /// Downsampled sensor-frame points of the node's scan.
    points: Vec<Point2>,
}

/// A Cartographer-style online SLAM system.
///
/// Implements [`Localizer`] so it can be driven by the simulator: `predict`
/// extrapolates with odometry, `correct` runs scan-to-submap matching,
/// inserts motion-filtered scans, and periodically attempts loop closures
/// followed by a pose-graph optimization.
///
/// # Examples
///
/// ```
/// use raceloc_slam::{CartoSlam, CartoSlamConfig};
/// use raceloc_core::localizer::Localizer;
/// use raceloc_core::Pose2;
///
/// let mut slam = CartoSlam::new(CartoSlamConfig::default());
/// slam.reset(Pose2::IDENTITY);
/// assert_eq!(slam.name(), "carto-slam");
/// ```
pub struct CartoSlam {
    config: CartoSlamConfig,
    submaps: SubmapCollection,
    graph: PoseGraph,
    nodes: Vec<NodeData>,
    /// Anchor graph node of each submap (its first scan's node).
    submap_anchor_node: Vec<usize>,
    matcher: CorrelativeScanMatcher,
    refiner: GaussNewtonRefiner,
    tracked: Pose2,
    last_odom: Option<Odometry>,
    last_insert_pose: Option<Pose2>,
    nodes_since_closure: usize,
    closures_found: usize,
    tel: Telemetry,
    last_match_score: Option<f64>,
    /// Per-stage timings of the last correction, for
    /// [`Localizer::diagnostics`].
    last_stages: Vec<(Cow<'static, str>, f64)>,
}

impl std::fmt::Debug for CartoSlam {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CartoSlam")
            .field("nodes", &self.nodes.len())
            .field("submaps", &self.submaps.submaps().len())
            .field("closures_found", &self.closures_found)
            .field("tracked", &self.tracked)
            .finish_non_exhaustive()
    }
}

impl CartoSlam {
    /// Books one pipeline stage's wall-clock share into the stage list
    /// surfaced by [`Localizer::diagnostics`]. The list is cleared at the
    /// start of each correction and retains its capacity, so steady-state
    /// corrections append without reallocating.
    fn record_stage(&mut self, name: &'static str, seconds: f64) {
        self.last_stages.push((Cow::Borrowed(name), seconds));
    }

    /// Creates a SLAM instance.
    pub fn new(config: CartoSlamConfig) -> Self {
        let matcher = CorrelativeScanMatcher::new(config.resolution, 0.01);
        Self {
            submaps: SubmapCollection::new(
                config.submap_size_m,
                config.resolution,
                config.scans_per_submap,
            ),
            graph: PoseGraph::new(),
            nodes: Vec::new(),
            submap_anchor_node: Vec::new(),
            matcher,
            refiner: GaussNewtonRefiner::default(),
            tracked: Pose2::IDENTITY,
            last_odom: None,
            last_insert_pose: None,
            nodes_since_closure: 0,
            closures_found: 0,
            tel: Telemetry::disabled(),
            last_match_score: None,
            last_stages: Vec::new(),
            config,
        }
    }

    /// Attaches a telemetry handle: corrections record the `slam.match`,
    /// `slam.insert`, `slam.loop_closure`, `slam.optimize`, and
    /// `slam.correct` spans into it. Survives [`Localizer::reset`].
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// The configuration.
    pub fn config(&self) -> &CartoSlamConfig {
        &self.config
    }

    /// Number of pose-graph nodes created so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of submaps created so far.
    pub fn submap_count(&self) -> usize {
        self.submaps.submaps().len()
    }

    /// Number of accepted loop closures.
    pub fn closure_count(&self) -> usize {
        self.closures_found
    }

    /// The current pose-graph estimate of all scan nodes.
    pub fn trajectory(&self) -> Vec<Pose2> {
        self.nodes
            .iter()
            .map(|n| self.graph.node(n.graph_idx))
            .collect()
    }

    fn downsample(&self, scan: &LaserScan) -> Vec<Point2> {
        let pts = scan.to_points();
        if pts.len() <= self.config.max_points {
            return pts;
        }
        let stride = pts.len() as f64 / self.config.max_points as f64;
        (0..self.config.max_points)
            .map(|i| pts[(i as f64 * stride) as usize])
            .collect()
    }

    fn try_loop_closure(&mut self) {
        let Some(node) = self.nodes.last() else {
            return;
        };
        let node_pose = self.graph.node(node.graph_idx);
        let sensor_pose = node_pose * self.config.lidar_mount;
        // Match against finished submaps whose anchor is far in the past.
        for (si, submap) in self.submaps.submaps().iter().enumerate() {
            if !submap.is_finished() {
                continue;
            }
            let anchor_node = self.submap_anchor_node[si];
            if node.graph_idx.saturating_sub(anchor_node) < self.config.min_closure_separation {
                continue;
            }
            if submap.anchor().dist(node_pose) > self.config.loop_closure.linear_window {
                continue;
            }
            let bnb = BranchAndBoundMatcher::new(submap.grid(), self.config.loop_closure);
            if let Some(m) = bnb.match_scan(&node.points, sensor_pose) {
                let refined = self.refiner.refine(submap.grid(), &node.points, m.pose);
                let matched_body = refined.pose * self.config.lidar_mount.inverse();
                let anchor_pose = self.graph.node(anchor_node);
                let relative = anchor_pose.relative_to(matched_body);
                self.graph.add_constraint(Constraint::new(
                    anchor_node,
                    node.graph_idx,
                    relative,
                    50.0,
                    200.0,
                ));
                self.closures_found += 1;
            }
        }
        // A closure can only be found once a node exists, so `nodes` is
        // non-empty here; the `if let` keeps the path panic-free regardless.
        if self.closures_found > 0 {
            let Some(newest) = self.nodes.last().map(|n| n.graph_idx) else {
                return;
            };
            let optimize_started = Stopwatch::start();
            let before = self.graph.node(newest);
            self.graph.optimize(10);
            let after = self.graph.node(newest);
            // Propagate the correction of the newest node to the tracked pose.
            let correction = after * before.inverse();
            self.tracked = correction * self.tracked;
            let optimize_seconds = optimize_started.elapsed_seconds();
            self.tel.record_span("slam.optimize", optimize_seconds);
            self.record_stage("optimize", optimize_seconds);
        }
    }

    /// Exports the stitched map of all submaps as a ternary occupancy grid.
    pub fn map(&self) -> OccupancyGrid {
        // Bounding box over submap grids.
        let submaps = self.submaps.submaps();
        let res = self.config.resolution;
        if submaps.is_empty() {
            return OccupancyGrid::new(1, 1, res, Point2::ORIGIN);
        }
        let mut lo = Point2::new(f64::INFINITY, f64::INFINITY);
        let mut hi = Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for s in submaps {
            let o = s.grid().origin();
            lo.x = lo.x.min(o.x);
            lo.y = lo.y.min(o.y);
            hi.x = hi.x.max(o.x + s.grid().width() as f64 * res);
            hi.y = hi.y.max(o.y + s.grid().height() as f64 * res);
        }
        let width = ((hi.x - lo.x) / res).ceil() as usize + 1;
        let height = ((hi.y - lo.y) / res).ceil() as usize + 1;
        let mut merged = ProbabilityGrid::new(width, height, res, lo);
        // Merge: average the known probabilities per cell.
        let mut sum = vec![0.0f64; width * height];
        let mut cnt = vec![0u32; width * height];
        for s in submaps {
            let g = s.grid();
            for r in 0..g.height() as i64 {
                for c in 0..g.width() as i64 {
                    let idx = raceloc_map::GridIndex::new(c, r);
                    if !g.is_known(idx) {
                        continue;
                    }
                    let w = g.index_to_world(idx);
                    let midx = merged.world_to_index(w);
                    if midx.col >= 0
                        && midx.row >= 0
                        && (midx.col as usize) < width
                        && (midx.row as usize) < height
                    {
                        let flat = midx.row as usize * width + midx.col as usize;
                        sum[flat] += g.probability(idx);
                        cnt[flat] += 1;
                    }
                }
            }
        }
        for r in 0..height as i64 {
            for c in 0..width as i64 {
                let flat = r as usize * width + c as usize;
                if cnt[flat] > 0 {
                    let idx = raceloc_map::GridIndex::new(c, r);
                    merged.set_probability(idx, sum[flat] / cnt[flat] as f64);
                }
            }
        }
        merged.to_occupancy(0.55, 0.45)
    }
}

impl Localizer for CartoSlam {
    fn predict(&mut self, odom: &Odometry) {
        if let Some(last) = self.last_odom {
            let delta = last.pose.relative_to(odom.pose);
            self.tracked = self.tracked * delta;
        }
        self.last_odom = Some(*odom);
    }

    fn correct(&mut self, scan: &LaserScan) -> Pose2 {
        let points = self.downsample(scan);
        if points.is_empty() {
            return self.tracked;
        }
        let correct_started = Stopwatch::start();
        self.last_stages.clear();
        let sensor_prior = self.tracked * self.config.lidar_mount;
        // Local scan matching against the active submap (if it has data):
        // prior-regularized Gauss–Newton, with the correlative matcher as a
        // rescue when the refined placement scores poorly.
        if let Some(submap) = self.submaps.matching_submap() {
            if submap.scan_count() > 0 {
                let match_started = Stopwatch::start();
                let fine = self.refiner.refine_with_prior(
                    submap.grid(),
                    &points,
                    sensor_prior,
                    sensor_prior,
                    self.config.prior_translation_weight,
                    self.config.prior_rotation_weight,
                );
                let fine = if fine.score < self.config.correlative_rescue_score {
                    let coarse = self.matcher.match_scan(
                        submap.grid(),
                        &points,
                        sensor_prior,
                        self.config.tracking_window,
                    );
                    self.refiner.refine_with_prior(
                        submap.grid(),
                        &points,
                        coarse.pose,
                        sensor_prior,
                        self.config.prior_translation_weight,
                        self.config.prior_rotation_weight,
                    )
                } else {
                    fine
                };
                self.tracked = fine.pose * self.config.lidar_mount.inverse();
                self.last_match_score = Some(fine.score);
                let match_seconds = match_started.elapsed_seconds();
                self.tel.record_span("slam.match", match_seconds);
                self.record_stage("match", match_seconds);
            }
        }
        // Motion filter: only insert when the car moved enough.
        let insert = match self.last_insert_pose {
            None => true,
            Some(prev) => {
                prev.dist(self.tracked) >= self.config.motion_min_dist
                    || prev.heading_dist(self.tracked) >= self.config.motion_min_angle
            }
        };
        if insert {
            let insert_started = Stopwatch::start();
            let sensor_pose = self.tracked * self.config.lidar_mount;
            let n_submaps_before = self.submaps.submaps().len();
            self.submaps.insert(sensor_pose, scan);
            // Register anchors of any newly created submap.
            for _ in n_submaps_before..self.submaps.submaps().len() {
                let anchor_node = self.graph.len().saturating_sub(1);
                self.submap_anchor_node.push(anchor_node);
            }
            let graph_idx = self.graph.add_node(self.tracked);
            if graph_idx > 0 {
                let prev_pose = self.graph.node(graph_idx - 1);
                self.graph.add_constraint(Constraint::new(
                    graph_idx - 1,
                    graph_idx,
                    prev_pose.relative_to(self.tracked),
                    100.0,
                    400.0,
                ));
            }
            self.nodes.push(NodeData { graph_idx, points });
            self.last_insert_pose = Some(self.tracked);
            self.nodes_since_closure += 1;
            let insert_seconds = insert_started.elapsed_seconds();
            self.tel.record_span("slam.insert", insert_seconds);
            self.record_stage("insert", insert_seconds);
            if self.nodes_since_closure >= self.config.loop_closure_every {
                self.nodes_since_closure = 0;
                let closure_started = Stopwatch::start();
                self.try_loop_closure();
                let closure_seconds = closure_started.elapsed_seconds();
                self.tel.record_span("slam.loop_closure", closure_seconds);
                self.record_stage("loop_closure", closure_seconds);
            }
        }
        self.tel
            .record_span("slam.correct", correct_started.elapsed_seconds());
        self.tracked
    }

    fn pose(&self) -> Pose2 {
        self.tracked
    }

    fn reset(&mut self, pose: Pose2) {
        let config = self.config.clone();
        let tel = self.tel.clone();
        *self = CartoSlam::new(config);
        self.tel = tel;
        self.tracked = pose;
    }

    fn name(&self) -> &str {
        "carto-slam"
    }

    fn diagnostics(&self) -> Diagnostics {
        Diagnostics {
            particles: Some(1),
            match_score: self.last_match_score,
            stages: self.last_stages.clone(),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raceloc_core::Twist2;
    use raceloc_map::{CellState, TrackShape, TrackSpec};
    use raceloc_range::{RangeMethod, RayMarching};

    /// Drives ground truth along the track centerline, generating noiseless
    /// odometry and scans, and feeds them to the SLAM.
    fn run_slam_on_track(steps: usize) -> (CartoSlam, Vec<Pose2>, Vec<Pose2>) {
        let track = TrackSpec::new(TrackShape::Oval {
            width: 10.0,
            height: 6.0,
        })
        .resolution(0.1)
        .build();
        let caster = RayMarching::new(&track.grid, 10.0);
        let mut slam = CartoSlam::new(CartoSlamConfig {
            resolution: 0.1,
            max_points: 90,
            scans_per_submap: 20,
            ..CartoSlamConfig::default()
        });
        let path = &track.centerline;
        let ds = 0.12;
        let start = Pose2::from_point(path.point_at(0.0), path.heading_at(0.0));
        slam.reset(start);
        let mut truths = Vec::new();
        let mut estimates = Vec::new();
        let mut odom_pose = Pose2::IDENTITY;
        let mount = slam.config().lidar_mount;
        for i in 0..steps {
            let s = i as f64 * ds;
            let truth = Pose2::from_point(path.point_at(s), path.heading_at(s));
            if i > 0 {
                let prev = Pose2::from_point(path.point_at(s - ds), path.heading_at(s - ds));
                let delta = prev.relative_to(truth);
                odom_pose = odom_pose * delta;
            }
            slam.predict(&Odometry::new(
                odom_pose,
                Twist2::new(ds / 0.05, 0.0, 0.0),
                i as f64 * 0.05,
            ));
            // Noiseless scan from the truth pose.
            let sensor = truth * mount;
            let beams = 120;
            let fov = 270.0f64.to_radians();
            let inc = fov / (beams - 1) as f64;
            let ranges: Vec<f64> = (0..beams)
                .map(|b| {
                    caster.range(
                        sensor.x,
                        sensor.y,
                        sensor.theta - 0.5 * fov + b as f64 * inc,
                    )
                })
                .collect();
            let scan = raceloc_core::LaserScan::new(-0.5 * fov, inc, ranges, 10.0);
            let est = slam.correct(&scan);
            truths.push(truth);
            estimates.push(est);
        }
        (slam, truths, estimates)
    }

    #[test]
    fn tracks_centerline_with_good_odometry() {
        let (_slam, truths, estimates) = run_slam_on_track(120);
        // SLAM without a closed loop accumulates bounded drift; over the
        // ~14 m of this run the estimate must stay within grid-scale error.
        let final_err = truths
            .last()
            .expect("non-empty")
            .dist(*estimates.last().expect("non-empty"));
        assert!(final_err < 0.7, "final error {final_err}");
        let mean: f64 = truths
            .iter()
            .zip(&estimates)
            .map(|(t, e)| t.dist(*e))
            .sum::<f64>()
            / truths.len() as f64;
        assert!(mean < 0.3, "mean error {mean}");
    }

    #[test]
    fn builds_submaps_and_nodes() {
        let (slam, _, _) = run_slam_on_track(120);
        assert!(slam.node_count() > 50, "nodes {}", slam.node_count());
        assert!(slam.submap_count() >= 2, "submaps {}", slam.submap_count());
        assert_eq!(slam.trajectory().len(), slam.node_count());
    }

    #[test]
    fn map_export_contains_track_walls() {
        let (slam, truths, _) = run_slam_on_track(150);
        let map = slam.map();
        let (_, occ, _) = map.census();
        assert!(occ > 100, "occupied cells {occ}");
        // The traversed poses must be free in the exported map.
        let mut free_hits = 0;
        for t in truths.iter().step_by(10) {
            if map.state_at_world(t.translation()) == CellState::Free {
                free_hits += 1;
            }
        }
        assert!(
            free_hits * 10 >= truths.len() / 2,
            "trajectory not free in map"
        );
    }

    #[test]
    fn motion_filter_limits_node_rate() {
        let (slam, truths, _) = run_slam_on_track(100);
        // 100 scans, 0.12 m apart, min insert distance 0.1 → roughly one
        // node per scan is allowed here, but never more than scans.
        assert!(slam.node_count() <= truths.len());
        assert!(slam.node_count() >= truths.len() / 3);
    }

    #[test]
    fn reset_clears_state() {
        let (mut slam, _, _) = run_slam_on_track(60);
        assert!(slam.node_count() > 0);
        slam.reset(Pose2::new(1.0, 2.0, 0.3));
        assert_eq!(slam.node_count(), 0);
        assert_eq!(slam.submap_count(), 0);
        assert_eq!(slam.pose(), Pose2::new(1.0, 2.0, 0.3));
    }

    #[test]
    fn empty_scan_keeps_pose() {
        let mut slam = CartoSlam::new(CartoSlamConfig::default());
        slam.reset(Pose2::new(1.0, 1.0, 0.0));
        let est = slam.correct(&raceloc_core::LaserScan::new(0.0, 0.1, vec![], 10.0));
        assert_eq!(est, Pose2::new(1.0, 1.0, 0.0));
    }

    #[test]
    fn telemetry_and_diagnostics_cover_pipeline_stages() {
        let tel = Telemetry::enabled();
        let track = TrackSpec::new(TrackShape::Oval {
            width: 10.0,
            height: 6.0,
        })
        .resolution(0.1)
        .build();
        let caster = RayMarching::new(&track.grid, 10.0);
        let mut slam = CartoSlam::new(CartoSlamConfig {
            resolution: 0.1,
            max_points: 90,
            scans_per_submap: 20,
            ..CartoSlamConfig::default()
        });
        let path = &track.centerline;
        let start = Pose2::from_point(path.point_at(0.0), path.heading_at(0.0));
        slam.set_telemetry(tel.clone());
        slam.reset(start); // telemetry must survive the reset
        let mount = slam.config().lidar_mount;
        let mut odom_pose = Pose2::IDENTITY;
        let ds = 0.12;
        for i in 0..30 {
            let s = i as f64 * ds;
            let truth = Pose2::from_point(path.point_at(s), path.heading_at(s));
            if i > 0 {
                let prev = Pose2::from_point(path.point_at(s - ds), path.heading_at(s - ds));
                odom_pose = odom_pose * prev.relative_to(truth);
            }
            slam.predict(&Odometry::new(odom_pose, Twist2::ZERO, i as f64 * 0.05));
            let sensor = truth * mount;
            let beams = 120;
            let fov = 270.0f64.to_radians();
            let inc = fov / (beams - 1) as f64;
            let ranges: Vec<f64> = (0..beams)
                .map(|b| {
                    caster.range(
                        sensor.x,
                        sensor.y,
                        sensor.theta - 0.5 * fov + b as f64 * inc,
                    )
                })
                .collect();
            slam.correct(&raceloc_core::LaserScan::new(-0.5 * fov, inc, ranges, 10.0));
        }
        let snap = tel.snapshot();
        assert!(snap.span("slam.correct").expect("correct span").count >= 30);
        assert!(snap.span("slam.match").expect("match span").count >= 1);
        assert!(snap.span("slam.insert").expect("insert span").count >= 1);
        let d = slam.diagnostics();
        assert!(d.match_score.is_some());
        assert!(d.stage("match").is_some() || d.stage("insert").is_some());
    }
}
