//! Branch-and-bound loop-closure matching (Hess et al., ICRA 2016 §V).
//!
//! A scan is matched against a (finished) submap over a large search window.
//! Upper bounds for whole regions of the translational search space come
//! from precomputed *sliding-window max* grids: at depth `h`, cell `(x, y)`
//! stores the maximum probability over the window `[x, x+2ʰ) × [y, y+2ʰ)`,
//! so a candidate at depth `h` bounds all its 2ʰ×2ʰ child translations and
//! whole subtrees can be pruned against the best leaf found so far.

use crate::probgrid::ProbabilityGrid;
use crate::scan_matcher::MatchResult;
use raceloc_core::{Point2, Pose2};

/// Precomputed max-pool pyramid over a probability grid.
#[derive(Debug, Clone)]
struct Pyramid {
    width: usize,
    height: usize,
    /// `levels[h][y * width + x] = max P over [x, x+2^h) × [y, y+2^h)`.
    levels: Vec<Vec<f32>>,
}

impl Pyramid {
    fn new(grid: &ProbabilityGrid, depth: usize) -> Self {
        let (w, h) = (grid.width(), grid.height());
        let mut level0 = vec![0.0f32; w * h];
        for r in 0..h {
            for c in 0..w {
                level0[r * w + c] =
                    grid.probability(raceloc_map::GridIndex::new(c as i64, r as i64)) as f32;
            }
        }
        let mut levels = vec![level0];
        for lvl in 1..=depth {
            let window = 1usize << lvl;
            let prev = &levels[lvl - 1];
            let half = window / 2;
            // max over window 2^lvl = max of two 2^(lvl-1) windows offset by half.
            let mut cur = vec![0.0f32; w * h];
            for r in 0..h {
                for c in 0..w {
                    let a = prev[r * w + c];
                    let b = if c + half < w {
                        prev[r * w + c + half]
                    } else {
                        0.0
                    };
                    let d = if r + half < h {
                        prev[(r + half) * w + c]
                    } else {
                        0.0
                    };
                    let e = if c + half < w && r + half < h {
                        prev[(r + half) * w + c + half]
                    } else {
                        0.0
                    };
                    cur[r * w + c] = a.max(b).max(d).max(e);
                }
            }
            levels.push(cur);
        }
        Self {
            width: w,
            height: h,
            levels,
        }
    }

    #[inline]
    fn value(&self, level: usize, x: i64, y: i64) -> f32 {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            0.0
        } else {
            self.levels[level][y as usize * self.width + x as usize]
        }
    }
}

/// Configuration of the branch-and-bound matcher.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchAndBoundConfig {
    /// Half-extent of the translational window \[m\].
    pub linear_window: f64,
    /// Half-extent of the rotational window \[rad\].
    pub angular_window: f64,
    /// Rotational step \[rad\].
    pub angular_step: f64,
    /// Tree depth (leaf = 1 cell; root regions are `2^depth` cells wide).
    pub depth: usize,
    /// Minimum leaf score for a match to be reported.
    pub min_score: f64,
}

impl Default for BranchAndBoundConfig {
    fn default() -> Self {
        Self {
            linear_window: 3.0,
            angular_window: 0.5,
            angular_step: 0.02,
            depth: 6,
            min_score: 0.55,
        }
    }
}

/// The branch-and-bound scan-to-submap matcher used for loop closure.
#[derive(Debug, Clone)]
pub struct BranchAndBoundMatcher {
    config: BranchAndBoundConfig,
    pyramid: Pyramid,
    resolution: f64,
    origin: Point2,
}

#[derive(Debug, Clone, Copy)]
struct Candidate {
    angle_idx: usize,
    level: usize,
    ox: i64,
    oy: i64,
    bound: f32,
}

impl BranchAndBoundMatcher {
    /// Precomputes the pyramid for a submap grid.
    pub fn new(grid: &ProbabilityGrid, config: BranchAndBoundConfig) -> Self {
        Self {
            pyramid: Pyramid::new(grid, config.depth),
            resolution: grid.resolution(),
            origin: grid.origin(),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &BranchAndBoundConfig {
        &self.config
    }

    /// Matches sensor-frame `points` against the submap around `initial`.
    ///
    /// Returns `None` when no placement reaches `min_score`.
    pub fn match_scan(&self, points: &[Point2], initial: Pose2) -> Option<MatchResult> {
        if points.is_empty() {
            return None;
        }
        let cfg = &self.config;
        let w_cells = (cfg.linear_window / self.resolution).ceil() as i64;
        let n_ang = (cfg.angular_window / cfg.angular_step).ceil() as usize;
        let angles: Vec<f64> = (0..=2 * n_ang)
            .map(|i| initial.theta - cfg.angular_window + i as f64 * cfg.angular_step)
            .collect();
        // Per-angle integer cell coordinates of points placed at `initial`
        // translation; candidate (ox, oy) shifts them in whole cells.
        let per_angle: Vec<Vec<(i64, i64)>> = angles
            .iter()
            .map(|&theta| {
                let pose = Pose2::new(initial.x, initial.y, theta);
                points
                    .iter()
                    .map(|&p| {
                        let wpt = pose.transform(p);
                        (
                            ((wpt.x - self.origin.x) / self.resolution).floor() as i64,
                            ((wpt.y - self.origin.y) / self.resolution).floor() as i64,
                        )
                    })
                    .collect()
            })
            .collect();
        let score_at = |angle_idx: usize, level: usize, ox: i64, oy: i64| -> f32 {
            let pts = &per_angle[angle_idx];
            let mut total = 0.0f32;
            for &(px, py) in pts {
                total += self.pyramid.value(level, px + ox, py + oy);
            }
            total / pts.len() as f32
        };
        // Root candidates: tile the window at the top level.
        let top = cfg.depth;
        let step = 1i64 << top;
        let mut stack: Vec<Candidate> = Vec::new();
        for (ai, _) in angles.iter().enumerate() {
            let mut ox = -w_cells;
            while ox <= w_cells {
                let mut oy = -w_cells;
                while oy <= w_cells {
                    stack.push(Candidate {
                        angle_idx: ai,
                        level: top,
                        ox,
                        oy,
                        bound: score_at(ai, top, ox, oy),
                    });
                    oy += step;
                }
                ox += step;
            }
        }
        // Best-first: highest bound on top of the stack.
        stack.sort_by(|a, b| a.bound.total_cmp(&b.bound));
        let mut best_score = cfg.min_score as f32;
        let mut best: Option<(usize, i64, i64)> = None;
        while let Some(cand) = stack.pop() {
            if cand.bound <= best_score {
                continue; // prune (stack is not fully sorted after pushes,
                          // so children below may still be explored — the
                          // bound test here is what guarantees correctness)
            }
            if cand.level == 0 {
                best_score = cand.bound;
                best = Some((cand.angle_idx, cand.ox, cand.oy));
                continue;
            }
            // Split into four children at the next level down.
            let half = 1i64 << (cand.level - 1);
            let mut children = [Candidate {
                angle_idx: cand.angle_idx,
                level: cand.level - 1,
                ox: cand.ox,
                oy: cand.oy,
                bound: 0.0,
            }; 4];
            let offs = [(0, 0), (half, 0), (0, half), (half, half)];
            for (k, (dx, dy)) in offs.iter().enumerate() {
                let (ox, oy) = (cand.ox + dx, cand.oy + dy);
                children[k].ox = ox;
                children[k].oy = oy;
                children[k].bound = if ox.abs() <= w_cells && oy.abs() <= w_cells {
                    score_at(cand.angle_idx, cand.level - 1, ox, oy)
                } else {
                    0.0
                };
            }
            children.sort_by(|a, b| a.bound.total_cmp(&b.bound));
            for ch in children {
                if ch.bound > best_score {
                    stack.push(ch);
                }
            }
        }
        best.map(|(ai, ox, oy)| MatchResult {
            pose: Pose2::new(
                initial.x + ox as f64 * self.resolution,
                initial.y + oy as f64 * self.resolution,
                angles[ai],
            ),
            score: best_score as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raceloc_core::sensor_data::LaserScan;

    /// A probability grid of a distinctive L-shaped wall arrangement.
    fn scene_grid() -> (ProbabilityGrid, Pose2) {
        let mut g = ProbabilityGrid::new(200, 200, 0.05, Point2::new(-5.0, -5.0));
        let pose = Pose2::new(0.0, 0.0, 0.0);
        let scan = scene_scan(pose);
        for _ in 0..8 {
            g.insert_scan(pose, &scan);
        }
        (g, pose)
    }

    /// Analytic scan of a room: walls at x=±2 (left wall at x=-2 only for
    /// y>0, making the scene rotationally unambiguous) plus y=±1.5.
    fn scene_scan(pose: Pose2) -> LaserScan {
        let beams = 240;
        let inc = std::f64::consts::TAU / beams as f64;
        let ranges: Vec<f64> = (0..beams)
            .map(|i| {
                let a = pose.theta - std::f64::consts::PI + i as f64 * inc;
                let (s, c) = a.sin_cos();
                let mut best = 9.0f64;
                // Wall x = 2.
                if c > 1e-9 {
                    let t = (2.0 - pose.x) / c;
                    let y = pose.y + t * s;
                    if t > 0.0 && y.abs() <= 1.5 {
                        best = best.min(t);
                    }
                }
                // Wall x = -2 (upper half only — breaks symmetry).
                if c < -1e-9 {
                    let t = (-2.0 - pose.x) / c;
                    let y = pose.y + t * s;
                    if t > 0.0 && (0.0..=1.5).contains(&y) {
                        best = best.min(t);
                    }
                }
                // Walls y = ±1.5.
                for wy in [1.5f64, -1.5] {
                    if s.abs() > 1e-9 {
                        let t = (wy - pose.y) / s;
                        let x = pose.x + t * c;
                        if t > 0.0 && x.abs() <= 2.0 {
                            best = best.min(t);
                        }
                    }
                }
                best.min(9.0)
            })
            .collect();
        LaserScan::new(-std::f64::consts::PI, inc, ranges, 10.0)
    }

    #[test]
    fn finds_large_offset() {
        let (g, map_pose) = scene_grid();
        let matcher = BranchAndBoundMatcher::new(&g, BranchAndBoundConfig::default());
        // The scan really came from the mapping pose, but our prior is off
        // by over a meter — far outside any tracking window.
        let pts = scene_scan(map_pose).to_points();
        let bad_prior = Pose2::new(1.2, -0.8, 0.1);
        let m = matcher.match_scan(&pts, bad_prior).expect("match found");
        assert!(
            m.pose.dist(map_pose) < 0.1,
            "matched {} truth {}",
            m.pose,
            map_pose
        );
        assert!(m.pose.heading_dist(map_pose) < 0.05);
        assert!(m.score > 0.55);
    }

    #[test]
    fn finds_rotated_offset() {
        let (g, _) = scene_grid();
        let matcher = BranchAndBoundMatcher::new(&g, BranchAndBoundConfig::default());
        let true_pose = Pose2::new(0.3, 0.2, 0.25);
        let pts = scene_scan(true_pose).to_points();
        let m = matcher
            .match_scan(&pts, Pose2::new(-0.5, -0.5, 0.0))
            .expect("match found");
        assert!(m.pose.dist(true_pose) < 0.12, "{} vs {true_pose}", m.pose);
        assert!(m.pose.heading_dist(true_pose) < 0.05);
    }

    #[test]
    fn rejects_scan_from_elsewhere() {
        let (g, _) = scene_grid();
        let cfg = BranchAndBoundConfig {
            min_score: 0.75,
            linear_window: 1.0,
            ..BranchAndBoundConfig::default()
        };
        let matcher = BranchAndBoundMatcher::new(&g, cfg);
        // Garbage points that match nothing.
        let pts: Vec<Point2> = (0..100)
            .map(|i| Point2::new(8.0 + (i % 7) as f64, -8.0 + (i % 5) as f64))
            .collect();
        assert!(matcher.match_scan(&pts, Pose2::IDENTITY).is_none());
    }

    #[test]
    fn empty_points_is_none() {
        let (g, _) = scene_grid();
        let matcher = BranchAndBoundMatcher::new(&g, BranchAndBoundConfig::default());
        assert!(matcher.match_scan(&[], Pose2::IDENTITY).is_none());
    }

    #[test]
    fn agrees_with_exhaustive_search() {
        let (g, map_pose) = scene_grid();
        let cfg = BranchAndBoundConfig {
            linear_window: 0.8,
            angular_window: 0.1,
            angular_step: 0.05,
            depth: 4,
            min_score: 0.3,
        };
        let matcher = BranchAndBoundMatcher::new(&g, cfg);
        let true_pose = Pose2::new(0.4, -0.3, 0.05);
        let pts = scene_scan(true_pose).to_points();
        let bnb = matcher.match_scan(&pts, map_pose).expect("match");
        let exhaustive = crate::scan_matcher::CorrelativeScanMatcher::new(0.05, 0.05).match_scan(
            &g,
            &pts,
            map_pose,
            crate::scan_matcher::SearchWindow {
                linear: 0.8,
                angular: 0.1,
            },
        );
        assert!(
            bnb.pose.dist(exhaustive.pose) < 0.11,
            "bnb {} vs exhaustive {}",
            bnb.pose,
            exhaustive.pose
        );
    }
}
