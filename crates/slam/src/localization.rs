//! Pure-localization mode: Cartographer against a frozen map.
//!
//! This is the baseline configuration of the paper's Table I: the map is
//! known (built beforehand), and the algorithm tracks the car by correlative
//! scan-to-map matching seeded with the odometry-extrapolated pose, then
//! Gauss–Newton refinement.
//!
//! Its robustness character — excellent under nominal odometry, degrading
//! under wheel slip — comes from the single-hypothesis pipeline: the matcher
//! only searches a small window around the extrapolated prior, so when the
//! wheels lie (wheelspin, side-slip) the prior walks away and the matcher
//! can neither cover the discrepancy (corridor sections are longitudinally
//! ambiguous) nor recover more than one window per scan.

use raceloc_obs::Stopwatch;
use std::borrow::Cow;

use crate::probgrid::ProbabilityGrid;
use crate::scan_matcher::{CorrelativeScanMatcher, GaussNewtonRefiner, SearchWindow};
use raceloc_core::localizer::Localizer;
use raceloc_core::sensor_data::{LaserScan, Odometry};
use raceloc_core::{Diagnostics, Point2, Pose2};
use raceloc_map::OccupancyGrid;
use raceloc_obs::Telemetry;

/// Configuration of the pure localizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CartoLocalizerConfig {
    /// Search window around the odometry-extrapolated prior.
    pub window: SearchWindow,
    /// Translational search step \[m\] (defaults to the map resolution).
    pub linear_step: f64,
    /// Rotational search step \[rad\].
    pub angular_step: f64,
    /// LiDAR pose in the body frame.
    pub lidar_mount: Pose2,
    /// Maximum scan points used per match.
    pub max_points: usize,
    /// Matches scoring below this keep the odometry prediction instead.
    pub min_score: f64,
    /// Prior penalty on translation in the refiner — how much the matcher
    /// trusts the odometry-extrapolated pose. This odometry trust is the
    /// mechanism behind Cartographer's low-quality-odometry degradation in
    /// the paper's Table I.
    pub prior_translation_weight: f64,
    /// Prior penalty on rotation in the refiner.
    pub prior_rotation_weight: f64,
    /// Run the correlative search before refinement only when the refined
    /// score falls below this. The default of 1.0 keeps the correlative
    /// matcher always on, matching the F1TENTH Cartographer configuration
    /// (`use_online_correlative_scan_matching = true`).
    pub correlative_rescue_score: f64,
}

impl Default for CartoLocalizerConfig {
    fn default() -> Self {
        Self {
            window: SearchWindow {
                linear: 0.22,
                angular: 0.09,
            },
            linear_step: 0.05,
            angular_step: 0.015,
            lidar_mount: Pose2::new(0.1, 0.0, 0.0),
            max_points: 120,
            min_score: 0.35,
            prior_translation_weight: 2.6,
            prior_rotation_weight: 1.3,
            correlative_rescue_score: 1.0,
        }
    }
}

/// Cartographer-style scan-to-map localization on a known map.
///
/// # Examples
///
/// ```
/// use raceloc_map::{TrackShape, TrackSpec};
/// use raceloc_slam::{CartoLocalizer, CartoLocalizerConfig};
/// use raceloc_core::localizer::Localizer;
///
/// let track = TrackSpec::new(TrackShape::Oval { width: 10.0, height: 6.0 })
///     .resolution(0.1)
///     .build();
/// let mut loc = CartoLocalizer::new(&track.grid, CartoLocalizerConfig::default());
/// loc.reset(track.start_pose());
/// assert_eq!(loc.name(), "cartographer");
/// ```
#[derive(Debug, Clone)]
pub struct CartoLocalizer {
    config: CartoLocalizerConfig,
    grid: ProbabilityGrid,
    matcher: CorrelativeScanMatcher,
    refiner: GaussNewtonRefiner,
    pose: Pose2,
    last_odom: Option<Odometry>,
    last_score: f64,
    tel: Telemetry,
    /// Per-stage timings of the last correction (refine, and optionally the
    /// correlative rescue), for [`Localizer::diagnostics`].
    last_stages: Vec<(Cow<'static, str>, f64)>,
}

impl CartoLocalizer {
    /// Builds the localizer over a known occupancy map. The map is
    /// converted to a smoothed probability field (Gaussian ridge on the
    /// wall surface) so gradient refinement works on thick wall bands.
    pub fn new(map: &OccupancyGrid, config: CartoLocalizerConfig) -> Self {
        Self {
            grid: ProbabilityGrid::from_occupancy_smoothed(map, 3.0 * map.resolution()),
            matcher: CorrelativeScanMatcher::new(config.linear_step, config.angular_step),
            refiner: GaussNewtonRefiner::default(),
            pose: Pose2::IDENTITY,
            last_odom: None,
            last_score: 0.0,
            tel: Telemetry::disabled(),
            last_stages: Vec::new(),
            config,
        }
    }

    /// Attaches a telemetry handle: corrections record the
    /// `slam.refine`, `slam.correlative`, and `slam.correct` spans into it.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// The configuration.
    pub fn config(&self) -> &CartoLocalizerConfig {
        &self.config
    }

    /// Score of the most recent scan match (diagnostic).
    pub fn last_score(&self) -> f64 {
        self.last_score
    }

    fn downsample(&self, scan: &LaserScan) -> Vec<Point2> {
        let pts = scan.to_points();
        if pts.len() <= self.config.max_points {
            return pts;
        }
        let stride = pts.len() as f64 / self.config.max_points as f64;
        (0..self.config.max_points)
            .map(|i| pts[(i as f64 * stride) as usize])
            .collect()
    }
}

impl Localizer for CartoLocalizer {
    fn predict(&mut self, odom: &Odometry) {
        if let Some(last) = self.last_odom {
            let delta = last.pose.relative_to(odom.pose);
            self.pose = self.pose * delta;
        }
        self.last_odom = Some(*odom);
    }

    fn correct(&mut self, scan: &LaserScan) -> Pose2 {
        let points = self.downsample(scan);
        if points.is_empty() {
            return self.pose;
        }
        let correct_started = Stopwatch::start();
        self.last_stages.clear();
        let prior = self.pose * self.config.lidar_mount;
        let refine_started = Stopwatch::start();
        let direct = self.refiner.refine_with_prior(
            &self.grid,
            &points,
            prior,
            prior,
            self.config.prior_translation_weight,
            self.config.prior_rotation_weight,
        );
        let refine_seconds = refine_started.elapsed_seconds();
        self.tel.record_span("slam.refine", refine_seconds);
        self.last_stages
            .push((Cow::Borrowed("refine"), refine_seconds));
        let fine = if direct.score < self.config.correlative_rescue_score {
            let rescue_started = Stopwatch::start();
            let coarse = self
                .matcher
                .match_scan(&self.grid, &points, prior, self.config.window);
            let rescued = self.refiner.refine_with_prior(
                &self.grid,
                &points,
                coarse.pose,
                prior,
                self.config.prior_translation_weight,
                self.config.prior_rotation_weight,
            );
            let rescue_seconds = rescue_started.elapsed_seconds();
            self.tel.record_span("slam.correlative", rescue_seconds);
            self.last_stages
                .push((Cow::Borrowed("correlative"), rescue_seconds));
            if rescued.score > direct.score {
                rescued
            } else {
                direct
            }
        } else {
            direct
        };
        self.last_score = fine.score;
        self.tel
            .record_span("slam.correct", correct_started.elapsed_seconds());
        if self.last_score >= self.config.min_score {
            // Clamp the refined pose back into the search window: the
            // single-hypothesis tracker never jumps beyond its window.
            let mut candidate = fine.pose;
            let dx = candidate.x - prior.x;
            let dy = candidate.y - prior.y;
            let lim = self.config.window.linear * 1.5;
            if dx.abs() > lim || dy.abs() > lim {
                // Never jump beyond the window: clamp back to the prior.
                candidate = Pose2::new(
                    prior.x + dx.clamp(-lim, lim),
                    prior.y + dy.clamp(-lim, lim),
                    candidate.theta,
                );
            }
            self.pose = candidate * self.config.lidar_mount.inverse();
        }
        self.pose
    }

    fn pose(&self) -> Pose2 {
        self.pose
    }

    fn reset(&mut self, pose: Pose2) {
        self.pose = pose;
        self.last_odom = None;
        self.last_score = 0.0;
        self.last_stages.clear();
    }

    fn name(&self) -> &str {
        "cartographer"
    }

    fn diagnostics(&self) -> Diagnostics {
        Diagnostics {
            particles: Some(1),
            match_score: Some(self.last_score),
            stages: self.last_stages.clone(),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raceloc_core::Twist2;
    use raceloc_map::{Track, TrackShape, TrackSpec};
    use raceloc_range::{RangeMethod, RayMarching};

    fn track() -> Track {
        TrackSpec::new(TrackShape::Oval {
            width: 10.0,
            height: 6.0,
        })
        .resolution(0.1)
        .build()
    }

    fn scan_from(track: &Track, pose: Pose2, mount: Pose2) -> LaserScan {
        let caster = RayMarching::new(&track.grid, 10.0);
        let beams = 140;
        let fov = 270.0f64.to_radians();
        let inc = fov / (beams - 1) as f64;
        let sensor = pose * mount;
        let ranges: Vec<f64> = (0..beams)
            .map(|i| {
                caster.range(
                    sensor.x,
                    sensor.y,
                    sensor.theta - 0.5 * fov + i as f64 * inc,
                )
            })
            .collect();
        LaserScan::new(-0.5 * fov, inc, ranges, 10.0)
    }

    #[test]
    fn corrects_small_offsets() {
        let t = track();
        let mut loc = CartoLocalizer::new(&t.grid, CartoLocalizerConfig::default());
        let truth = t.start_pose();
        // Start with a ~13 cm, 1.7° error.
        let initial = Pose2::new(truth.x + 0.1, truth.y - 0.08, truth.theta + 0.03);
        loc.reset(initial);
        let scan = scan_from(&t, truth, loc.config().lidar_mount);
        let mut est = loc.pose();
        for _ in 0..4 {
            est = loc.correct(&scan);
        }
        // With the default odometry-trust weights a longitudinal remnant can
        // survive on corridor-like geometry; what the matcher must deliver
        // is heading convergence plus a clear overall improvement.
        assert!(
            est.dist(truth) < 0.75 * initial.dist(truth),
            "est {est} truth {truth}"
        );
        assert!(est.heading_dist(truth) < 0.012, "heading {}", est.theta);
        assert!(loc.last_score() > 0.4);
    }

    #[test]
    fn tracks_motion_with_odometry() {
        let t = track();
        let mut loc = CartoLocalizer::new(&t.grid, CartoLocalizerConfig::default());
        let path = &t.centerline;
        let start = Pose2::from_point(path.point_at(0.0), path.heading_at(0.0));
        loc.reset(start);
        let mut odom_pose = Pose2::IDENTITY;
        let ds = 0.1;
        loc.predict(&Odometry::new(odom_pose, Twist2::ZERO, 0.0));
        for i in 1..80 {
            let s = i as f64 * ds;
            let truth = Pose2::from_point(path.point_at(s), path.heading_at(s));
            let prev = Pose2::from_point(path.point_at(s - ds), path.heading_at(s - ds));
            odom_pose = odom_pose * prev.relative_to(truth);
            loc.predict(&Odometry::new(odom_pose, Twist2::ZERO, i as f64 * 0.05));
            let est = loc.correct(&scan_from(&t, truth, loc.config().lidar_mount));
            assert!(est.dist(truth) < 0.25, "step {i}: {est} vs {truth}");
        }
    }

    #[test]
    fn cannot_recover_beyond_window() {
        // The single-hypothesis failure mode the paper quantifies: with the
        // prior far outside the window, one correction cannot recover.
        let t = track();
        let mut loc = CartoLocalizer::new(&t.grid, CartoLocalizerConfig::default());
        let truth = t.start_pose();
        let far = Pose2::new(truth.x - 1.2, truth.y + 0.9, truth.theta + 0.4);
        loc.reset(far);
        let scan = scan_from(&t, truth, loc.config().lidar_mount);
        let est = loc.correct(&scan);
        assert!(
            est.dist(truth) > 0.5,
            "should not fully recover in one step: {est}"
        );
    }

    #[test]
    fn low_score_keeps_prediction() {
        let t = track();
        let cfg = CartoLocalizerConfig {
            min_score: 0.99, // unreachable
            ..CartoLocalizerConfig::default()
        };
        let mut loc = CartoLocalizer::new(&t.grid, cfg);
        let truth = t.start_pose();
        let offset = Pose2::new(truth.x + 0.1, truth.y, truth.theta);
        loc.reset(offset);
        let est = loc.correct(&scan_from(&t, truth, loc.config().lidar_mount));
        assert_eq!(est, offset);
    }

    #[test]
    fn empty_scan_keeps_pose() {
        let t = track();
        let mut loc = CartoLocalizer::new(&t.grid, CartoLocalizerConfig::default());
        loc.reset(Pose2::new(1.0, 2.0, 0.0));
        let est = loc.correct(&LaserScan::new(0.0, 0.1, vec![], 10.0));
        assert_eq!(est, Pose2::new(1.0, 2.0, 0.0));
    }

    #[test]
    fn diagnostics_and_telemetry_record_match() {
        let t = track();
        let mut loc = CartoLocalizer::new(&t.grid, CartoLocalizerConfig::default());
        let tel = Telemetry::enabled();
        loc.set_telemetry(tel.clone());
        let truth = t.start_pose();
        loc.reset(truth);
        assert!(loc.diagnostics().stages.is_empty(), "no correction yet");
        loc.correct(&scan_from(&t, truth, loc.config().lidar_mount));
        let d = loc.diagnostics();
        assert_eq!(d.particles, Some(1));
        assert_eq!(d.match_score, Some(loc.last_score()));
        assert!(d.stage("refine").expect("refine stage") >= 0.0);
        let snap = tel.snapshot();
        assert_eq!(snap.span("slam.correct").expect("span").count, 1);
        assert!(snap.span("slam.refine").is_some());
    }

    #[test]
    fn reset_clears_odometry_reference() {
        let t = track();
        let mut loc = CartoLocalizer::new(&t.grid, CartoLocalizerConfig::default());
        loc.predict(&Odometry::new(Pose2::new(3.0, 0.0, 0.0), Twist2::ZERO, 0.0));
        loc.reset(Pose2::IDENTITY);
        loc.predict(&Odometry::new(Pose2::new(9.0, 0.0, 0.0), Twist2::ZERO, 0.1));
        // First post-reset sample only establishes the reference.
        assert_eq!(loc.pose(), Pose2::IDENTITY);
    }
}
