//! Pure-localization mode: Cartographer against a frozen map.
//!
//! This is the baseline configuration of the paper's Table I: the map is
//! known (built beforehand), and the algorithm tracks the car by correlative
//! scan-to-map matching seeded with the odometry-extrapolated pose, then
//! Gauss–Newton refinement.
//!
//! Its robustness character — excellent under nominal odometry, degrading
//! under wheel slip — comes from the single-hypothesis pipeline: the matcher
//! only searches a small window around the extrapolated prior, so when the
//! wheels lie (wheelspin, side-slip) the prior walks away and the matcher
//! can neither cover the discrepancy (corridor sections are longitudinally
//! ambiguous) nor recover more than one window per scan.

use raceloc_obs::Stopwatch;
use std::borrow::Cow;

use crate::probgrid::ProbabilityGrid;
use crate::scan_matcher::{CorrelativeScanMatcher, GaussNewtonRefiner, SearchWindow};
use raceloc_core::localizer::Localizer;
use raceloc_core::sensor_data::{LaserScan, Odometry};
use raceloc_core::{Diagnostics, Health, HealthConfig, HealthMonitor, HealthSignal, Point2, Pose2};
use raceloc_map::OccupancyGrid;
use raceloc_obs::Telemetry;
use raceloc_range::MapArtifacts;

/// Divergence-detector policy for the Cartographer health machine
/// (DESIGN.md §12).
///
/// The single signal a scan-to-map matcher has is its own match score: a
/// strong match means the estimate explains the map, a weak one means the
/// prior walked outside the search window (wheel slip, kidnap) or the
/// scan is unusable (blackout). Unlike SynPF there is no global
/// re-initialization to fall back on — a Lost Cartographer holds
/// dead-reckoning, which is exactly the single-hypothesis limitation the
/// paper's robustness comparison quantifies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlamHealthPolicy {
    /// Streak thresholds of the underlying state machine.
    pub monitor: HealthConfig,
    /// Match scores below this vote Suspect.
    pub suspect_score: f64,
    /// Match scores below this vote Diverged.
    pub lost_score: f64,
    /// Scans older than this relative to the latest odometry \[s\] are
    /// rejected and the step coasts on dead-reckoning.
    pub max_scan_age: f64,
}

impl Default for SlamHealthPolicy {
    fn default() -> Self {
        Self {
            monitor: HealthConfig::default(),
            suspect_score: 0.35,
            lost_score: 0.18,
            max_scan_age: 0.15,
        }
    }
}

/// Configuration of the pure localizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CartoLocalizerConfig {
    /// Search window around the odometry-extrapolated prior.
    pub window: SearchWindow,
    /// Translational search step \[m\] (defaults to the map resolution).
    pub linear_step: f64,
    /// Rotational search step \[rad\].
    pub angular_step: f64,
    /// LiDAR pose in the body frame.
    pub lidar_mount: Pose2,
    /// Maximum scan points used per match.
    pub max_points: usize,
    /// Matches scoring below this keep the odometry prediction instead.
    pub min_score: f64,
    /// Prior penalty on translation in the refiner — how much the matcher
    /// trusts the odometry-extrapolated pose. This odometry trust is the
    /// mechanism behind Cartographer's low-quality-odometry degradation in
    /// the paper's Table I.
    pub prior_translation_weight: f64,
    /// Prior penalty on rotation in the refiner.
    pub prior_rotation_weight: f64,
    /// Run the correlative search before refinement only when the refined
    /// score falls below this. The default of 1.0 keeps the correlative
    /// matcher always on, matching the F1TENTH Cartographer configuration
    /// (`use_online_correlative_scan_matching = true`).
    pub correlative_rescue_score: f64,
    /// Optional health monitoring (DESIGN.md §12): the scan-match score
    /// drives a Nominal → Degraded → Lost state machine, with stale-input
    /// rejection. `None` (the default) disables it at zero cost.
    pub health: Option<SlamHealthPolicy>,
}

impl Default for CartoLocalizerConfig {
    fn default() -> Self {
        Self {
            window: SearchWindow {
                linear: 0.22,
                angular: 0.09,
            },
            linear_step: 0.05,
            angular_step: 0.015,
            lidar_mount: Pose2::new(0.1, 0.0, 0.0),
            max_points: 120,
            min_score: 0.35,
            prior_translation_weight: 2.6,
            prior_rotation_weight: 1.3,
            correlative_rescue_score: 1.0,
            health: None,
        }
    }
}

/// Cartographer-style scan-to-map localization on a known map.
///
/// # Examples
///
/// ```
/// use raceloc_map::{TrackShape, TrackSpec};
/// use raceloc_range::{ArtifactParams, MapArtifacts};
/// use raceloc_slam::{CartoLocalizer, CartoLocalizerConfig};
/// use raceloc_core::localizer::Localizer;
///
/// let track = TrackSpec::new(TrackShape::Oval { width: 10.0, height: 6.0 })
///     .resolution(0.1)
///     .build();
/// let artifacts = MapArtifacts::build(&track.grid, ArtifactParams::default());
/// let mut loc = CartoLocalizer::from_artifacts(&artifacts, CartoLocalizerConfig::default());
/// loc.reset(track.start_pose());
/// assert_eq!(loc.name(), "cartographer");
/// ```
#[derive(Debug, Clone)]
pub struct CartoLocalizer {
    config: CartoLocalizerConfig,
    grid: ProbabilityGrid,
    matcher: CorrelativeScanMatcher,
    refiner: GaussNewtonRefiner,
    pose: Pose2,
    last_odom: Option<Odometry>,
    last_score: f64,
    tel: Telemetry,
    /// Per-stage timings of the last correction (refine, and optionally the
    /// correlative rescue), for [`Localizer::diagnostics`].
    last_stages: Vec<(Cow<'static, str>, f64)>,
    /// Health state machine (DESIGN.md §12); only fed when
    /// [`CartoLocalizerConfig::health`] is set.
    health_monitor: HealthMonitor,
}

impl CartoLocalizer {
    /// Books one pipeline stage's wall-clock share into the stage list
    /// surfaced by [`Localizer::diagnostics`]. The list is cleared at the
    /// start of each correction and retains its capacity, so steady-state
    /// corrections append without reallocating.
    fn record_stage(&mut self, name: &'static str, seconds: f64) {
        self.last_stages.push((Cow::Borrowed(name), seconds));
    }

    /// Builds the localizer from a shared [`MapArtifacts`] bundle — the
    /// service-oriented constructor. Only the bundle's occupancy grid is
    /// consumed (converted once to the matcher's smoothed probability
    /// field); the bundle's lazy range LUT is *not* touched, so
    /// Cartographer-only sessions never pay a LUT build.
    pub fn from_artifacts(artifacts: &MapArtifacts, config: CartoLocalizerConfig) -> Self {
        Self::from_grid(artifacts.grid(), config)
    }

    /// Builds the localizer over a known occupancy map. The map is
    /// converted to a smoothed probability field (Gaussian ridge on the
    /// wall surface) so gradient refinement works on thick wall bands.
    pub(crate) fn from_grid(map: &OccupancyGrid, config: CartoLocalizerConfig) -> Self {
        Self {
            grid: ProbabilityGrid::from_occupancy_smoothed(map, 3.0 * map.resolution()),
            matcher: CorrelativeScanMatcher::new(config.linear_step, config.angular_step),
            refiner: GaussNewtonRefiner::default(),
            pose: Pose2::IDENTITY,
            last_odom: None,
            last_score: 0.0,
            tel: Telemetry::disabled(),
            last_stages: Vec::new(),
            health_monitor: HealthMonitor::new(
                config.health.map(|h| h.monitor).unwrap_or_default(),
            ),
            config,
        }
    }

    /// Attaches a telemetry handle: corrections record the
    /// `slam.refine`, `slam.correlative`, and `slam.correct` spans into it.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// The configuration.
    pub fn config(&self) -> &CartoLocalizerConfig {
        &self.config
    }

    /// Score of the most recent scan match (diagnostic).
    pub fn last_score(&self) -> f64 {
        self.last_score
    }

    /// Books a correction that could not be scored (empty, blacked-out, or
    /// stale scan) into the health machine: the tracker is coasting on
    /// dead-reckoning alone.
    fn note_uninformative_scan(&mut self) {
        if self.config.health.is_some() {
            self.health_monitor.observe(HealthSignal::Suspect);
        }
    }

    /// Whether the scan is too old relative to the newest odometry to be
    /// matched against (stale-input rejection, DESIGN.md §12).
    fn scan_is_stale(&self, scan: &LaserScan) -> bool {
        let Some(policy) = self.config.health else {
            return false;
        };
        match self.last_odom {
            Some(last) => last.stamp - scan.stamp > policy.max_scan_age,
            None => false,
        }
    }

    /// Feeds the match score of a finished correction into the health
    /// machine. Cartographer has no re-initialization machinery, so Lost
    /// simply persists until the matcher re-acquires (the window happens to
    /// cover the true pose again).
    fn update_health(&mut self, score: f64) {
        let Some(policy) = self.config.health else {
            return;
        };
        let signal = if score >= policy.suspect_score {
            HealthSignal::Ok
        } else if score >= policy.lost_score {
            HealthSignal::Suspect
        } else {
            HealthSignal::Diverged
        };
        self.health_monitor.observe(signal);
    }

    fn downsample(&self, scan: &LaserScan) -> Vec<Point2> {
        let pts = scan.to_points();
        if pts.len() <= self.config.max_points {
            return pts;
        }
        let stride = pts.len() as f64 / self.config.max_points as f64;
        (0..self.config.max_points)
            .map(|i| pts[(i as f64 * stride) as usize])
            .collect()
    }
}

impl Localizer for CartoLocalizer {
    fn predict(&mut self, odom: &Odometry) {
        if let Some(last) = self.last_odom {
            let delta = last.pose.relative_to(odom.pose);
            self.pose = self.pose * delta;
        }
        self.last_odom = Some(*odom);
    }

    fn correct(&mut self, scan: &LaserScan) -> Pose2 {
        // Stale-input rejection (DESIGN.md §12): matching a scan older than
        // the odometry horizon would drag the estimate backwards.
        if self.scan_is_stale(scan) {
            self.note_uninformative_scan();
            return self.pose;
        }
        let points = self.downsample(scan);
        if points.is_empty() {
            self.note_uninformative_scan();
            return self.pose;
        }
        let correct_started = Stopwatch::start();
        self.last_stages.clear();
        let prior = self.pose * self.config.lidar_mount;
        let refine_started = Stopwatch::start();
        let direct = self.refiner.refine_with_prior(
            &self.grid,
            &points,
            prior,
            prior,
            self.config.prior_translation_weight,
            self.config.prior_rotation_weight,
        );
        let refine_seconds = refine_started.elapsed_seconds();
        self.tel.record_span("slam.refine", refine_seconds);
        self.record_stage("refine", refine_seconds);
        let fine = if direct.score < self.config.correlative_rescue_score {
            let rescue_started = Stopwatch::start();
            let coarse = self
                .matcher
                .match_scan(&self.grid, &points, prior, self.config.window);
            let rescued = self.refiner.refine_with_prior(
                &self.grid,
                &points,
                coarse.pose,
                prior,
                self.config.prior_translation_weight,
                self.config.prior_rotation_weight,
            );
            let rescue_seconds = rescue_started.elapsed_seconds();
            self.tel.record_span("slam.correlative", rescue_seconds);
            self.record_stage("correlative", rescue_seconds);
            if rescued.score > direct.score {
                rescued
            } else {
                direct
            }
        } else {
            direct
        };
        self.last_score = fine.score;
        self.update_health(fine.score);
        self.tel
            .record_span("slam.correct", correct_started.elapsed_seconds());
        if self.last_score >= self.config.min_score {
            // Clamp the refined pose back into the search window: the
            // single-hypothesis tracker never jumps beyond its window.
            let mut candidate = fine.pose;
            let dx = candidate.x - prior.x;
            let dy = candidate.y - prior.y;
            let lim = self.config.window.linear * 1.5;
            if dx.abs() > lim || dy.abs() > lim {
                // Never jump beyond the window: clamp back to the prior.
                candidate = Pose2::new(
                    prior.x + dx.clamp(-lim, lim),
                    prior.y + dy.clamp(-lim, lim),
                    candidate.theta,
                );
            }
            self.pose = candidate * self.config.lidar_mount.inverse();
        }
        self.pose
    }

    fn pose(&self) -> Pose2 {
        self.pose
    }

    fn reset(&mut self, pose: Pose2) {
        self.pose = pose;
        self.last_odom = None;
        self.last_score = 0.0;
        self.last_stages.clear();
        self.health_monitor.reset();
    }

    fn name(&self) -> &str {
        "cartographer"
    }

    fn health(&self) -> Health {
        self.health_monitor.state()
    }

    fn diagnostics(&self) -> Diagnostics {
        Diagnostics {
            particles: Some(1),
            match_score: Some(self.last_score),
            health: self
                .config
                .health
                .is_some()
                .then(|| self.health_monitor.state()),
            stages: self.last_stages.clone(),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raceloc_core::Twist2;
    use raceloc_map::{Track, TrackShape, TrackSpec};
    use raceloc_range::{RangeMethod, RayMarching};

    fn track() -> Track {
        TrackSpec::new(TrackShape::Oval {
            width: 10.0,
            height: 6.0,
        })
        .resolution(0.1)
        .build()
    }

    /// Artifact bundle for a test track. The LUT stays unbuilt: these tests
    /// only exercise the scan matcher, which needs the grid alone.
    fn artifacts(t: &Track) -> MapArtifacts {
        MapArtifacts::build(&t.grid, raceloc_range::ArtifactParams::default())
    }

    fn scan_from(track: &Track, pose: Pose2, mount: Pose2) -> LaserScan {
        let caster = RayMarching::new(&track.grid, 10.0);
        let beams = 140;
        let fov = 270.0f64.to_radians();
        let inc = fov / (beams - 1) as f64;
        let sensor = pose * mount;
        let ranges: Vec<f64> = (0..beams)
            .map(|i| {
                caster.range(
                    sensor.x,
                    sensor.y,
                    sensor.theta - 0.5 * fov + i as f64 * inc,
                )
            })
            .collect();
        LaserScan::new(-0.5 * fov, inc, ranges, 10.0)
    }

    #[test]
    fn corrects_small_offsets() {
        let t = track();
        let mut loc =
            CartoLocalizer::from_artifacts(&artifacts(&t), CartoLocalizerConfig::default());
        let truth = t.start_pose();
        // Start with a ~13 cm, 1.7° error.
        let initial = Pose2::new(truth.x + 0.1, truth.y - 0.08, truth.theta + 0.03);
        loc.reset(initial);
        let scan = scan_from(&t, truth, loc.config().lidar_mount);
        let mut est = loc.pose();
        for _ in 0..4 {
            est = loc.correct(&scan);
        }
        // With the default odometry-trust weights a longitudinal remnant can
        // survive on corridor-like geometry; what the matcher must deliver
        // is heading convergence plus a clear overall improvement.
        assert!(
            est.dist(truth) < 0.75 * initial.dist(truth),
            "est {est} truth {truth}"
        );
        assert!(est.heading_dist(truth) < 0.012, "heading {}", est.theta);
        assert!(loc.last_score() > 0.4);
    }

    #[test]
    fn tracks_motion_with_odometry() {
        let t = track();
        let mut loc =
            CartoLocalizer::from_artifacts(&artifacts(&t), CartoLocalizerConfig::default());
        let path = &t.centerline;
        let start = Pose2::from_point(path.point_at(0.0), path.heading_at(0.0));
        loc.reset(start);
        let mut odom_pose = Pose2::IDENTITY;
        let ds = 0.1;
        loc.predict(&Odometry::new(odom_pose, Twist2::ZERO, 0.0));
        for i in 1..80 {
            let s = i as f64 * ds;
            let truth = Pose2::from_point(path.point_at(s), path.heading_at(s));
            let prev = Pose2::from_point(path.point_at(s - ds), path.heading_at(s - ds));
            odom_pose = odom_pose * prev.relative_to(truth);
            loc.predict(&Odometry::new(odom_pose, Twist2::ZERO, i as f64 * 0.05));
            let est = loc.correct(&scan_from(&t, truth, loc.config().lidar_mount));
            assert!(est.dist(truth) < 0.25, "step {i}: {est} vs {truth}");
        }
    }

    #[test]
    fn cannot_recover_beyond_window() {
        // The single-hypothesis failure mode the paper quantifies: with the
        // prior far outside the window, one correction cannot recover.
        let t = track();
        let mut loc =
            CartoLocalizer::from_artifacts(&artifacts(&t), CartoLocalizerConfig::default());
        let truth = t.start_pose();
        let far = Pose2::new(truth.x - 1.2, truth.y + 0.9, truth.theta + 0.4);
        loc.reset(far);
        let scan = scan_from(&t, truth, loc.config().lidar_mount);
        let est = loc.correct(&scan);
        assert!(
            est.dist(truth) > 0.5,
            "should not fully recover in one step: {est}"
        );
    }

    #[test]
    fn low_score_keeps_prediction() {
        let t = track();
        let cfg = CartoLocalizerConfig {
            min_score: 0.99, // unreachable
            ..CartoLocalizerConfig::default()
        };
        let mut loc = CartoLocalizer::from_artifacts(&artifacts(&t), cfg);
        let truth = t.start_pose();
        let offset = Pose2::new(truth.x + 0.1, truth.y, truth.theta);
        loc.reset(offset);
        let est = loc.correct(&scan_from(&t, truth, loc.config().lidar_mount));
        assert_eq!(est, offset);
    }

    #[test]
    fn empty_scan_keeps_pose() {
        let t = track();
        let mut loc =
            CartoLocalizer::from_artifacts(&artifacts(&t), CartoLocalizerConfig::default());
        loc.reset(Pose2::new(1.0, 2.0, 0.0));
        let est = loc.correct(&LaserScan::new(0.0, 0.1, vec![], 10.0));
        assert_eq!(est, Pose2::new(1.0, 2.0, 0.0));
    }

    #[test]
    fn diagnostics_and_telemetry_record_match() {
        let t = track();
        let mut loc =
            CartoLocalizer::from_artifacts(&artifacts(&t), CartoLocalizerConfig::default());
        let tel = Telemetry::enabled();
        loc.set_telemetry(tel.clone());
        let truth = t.start_pose();
        loc.reset(truth);
        assert!(loc.diagnostics().stages.is_empty(), "no correction yet");
        loc.correct(&scan_from(&t, truth, loc.config().lidar_mount));
        let d = loc.diagnostics();
        assert_eq!(d.particles, Some(1));
        assert_eq!(d.match_score, Some(loc.last_score()));
        assert!(d.stage("refine").expect("refine stage") >= 0.0);
        let snap = tel.snapshot();
        assert_eq!(snap.span("slam.correct").expect("span").count, 1);
        assert!(snap.span("slam.refine").is_some());
    }

    #[test]
    fn health_tracks_match_quality() {
        let t = track();
        // Thresholds pinned between the nominal score band (> 0.4 on this
        // map) and the smoothed grid's free-space floor (~0.3).
        let cfg = CartoLocalizerConfig {
            health: Some(SlamHealthPolicy {
                suspect_score: 0.4,
                lost_score: 0.33,
                ..SlamHealthPolicy::default()
            }),
            ..CartoLocalizerConfig::default()
        };
        let mut loc = CartoLocalizer::from_artifacts(&artifacts(&t), cfg);
        let truth = t.start_pose();
        loc.reset(truth);
        let good = scan_from(&t, truth, loc.config().lidar_mount);
        for _ in 0..5 {
            loc.correct(&good);
        }
        assert_eq!(loc.health(), Health::Nominal);
        assert_eq!(loc.diagnostics().health, Some(Health::Nominal));
        // A scan inconsistent with the map (every return 0.4 m away, as if
        // boxed in by an unmapped obstacle): every endpoint lands in free
        // space, scores collapse, and the single-hypothesis tracker — with
        // no re-init machinery — goes Lost.
        let bad = LaserScan::new(-1.35, 0.02, vec![0.4; 136], 10.0);
        let mut state = loc.health();
        for _ in 0..20 {
            loc.correct(&bad);
            state = loc.health();
        }
        assert_eq!(state, Health::Lost, "score {}", loc.last_score());
    }

    #[test]
    fn blackout_scan_degrades_health() {
        let t = track();
        let cfg = CartoLocalizerConfig {
            health: Some(SlamHealthPolicy::default()),
            ..CartoLocalizerConfig::default()
        };
        let mut loc = CartoLocalizer::from_artifacts(&artifacts(&t), cfg);
        let truth = t.start_pose();
        loc.reset(truth);
        // All beams dropped: `to_points` yields nothing, the tracker coasts.
        let blackout = LaserScan::new(0.0, 0.01, vec![f64::INFINITY; 100], 10.0);
        let before = loc.pose();
        for _ in 0..4 {
            assert_eq!(loc.correct(&blackout), before);
        }
        assert_eq!(loc.health(), Health::Degraded);
        // Recovery: good scans return.
        let good = scan_from(&t, truth, loc.config().lidar_mount);
        for _ in 0..6 {
            loc.correct(&good);
        }
        assert_eq!(loc.health(), Health::Nominal);
    }

    #[test]
    fn stale_scan_is_rejected() {
        let t = track();
        let cfg = CartoLocalizerConfig {
            health: Some(SlamHealthPolicy::default()),
            ..CartoLocalizerConfig::default()
        };
        let mut loc = CartoLocalizer::from_artifacts(&artifacts(&t), cfg);
        let truth = t.start_pose();
        loc.reset(truth);
        let mut scan = scan_from(&t, truth, loc.config().lidar_mount);
        loc.predict(&Odometry::new(Pose2::IDENTITY, Twist2::ZERO, 0.0));
        loc.predict(&Odometry::new(Pose2::IDENTITY, Twist2::ZERO, 1.0));
        scan.stamp = 0.0; // 1 s older than the odometry horizon.
        let score_before = loc.last_score();
        assert_eq!(loc.correct(&scan), truth);
        assert_eq!(loc.last_score(), score_before, "no match happened");
        // Without a health policy the same scan is accepted.
        let mut plain =
            CartoLocalizer::from_artifacts(&artifacts(&t), CartoLocalizerConfig::default());
        plain.reset(truth);
        plain.predict(&Odometry::new(Pose2::IDENTITY, Twist2::ZERO, 0.0));
        plain.predict(&Odometry::new(Pose2::IDENTITY, Twist2::ZERO, 1.0));
        plain.correct(&scan);
        assert!(plain.last_score() > 0.0);
    }

    #[test]
    fn reset_clears_odometry_reference() {
        let t = track();
        let mut loc =
            CartoLocalizer::from_artifacts(&artifacts(&t), CartoLocalizerConfig::default());
        loc.predict(&Odometry::new(Pose2::new(3.0, 0.0, 0.0), Twist2::ZERO, 0.0));
        loc.reset(Pose2::IDENTITY);
        loc.predict(&Odometry::new(Pose2::new(9.0, 0.0, 0.0), Twist2::ZERO, 0.1));
        // First post-reset sample only establishes the reference.
        assert_eq!(loc.pose(), Pose2::IDENTITY);
    }
}
