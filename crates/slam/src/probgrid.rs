//! Probability grids: the submap representation of Cartographer-style SLAM.
//!
//! Each cell stores the probability that it is occupied, updated through
//! odds multiplication with per-observation hit/miss factors (Hess et al.,
//! ICRA 2016 §IV). Unknown cells carry no information until first observed.

use raceloc_core::{Point2, Pose2};
use raceloc_map::{CellState, GridIndex, OccupancyGrid};

/// Occupancy probability assigned on a LiDAR hit.
pub const P_HIT: f64 = 0.63;
/// Occupancy probability assigned on a LiDAR pass-through (miss).
pub const P_MISS: f64 = 0.46;
/// Clamping bounds of the stored probability.
pub const P_MIN: f64 = 0.12;
/// Upper clamping bound of the stored probability.
pub const P_MAX: f64 = 0.97;

#[inline]
fn odds(p: f64) -> f64 {
    p / (1.0 - p)
}

#[inline]
fn from_odds(o: f64) -> f64 {
    o / (1.0 + o)
}

/// A fixed-extent 2-D probability grid.
///
/// # Examples
///
/// ```
/// use raceloc_slam::ProbabilityGrid;
/// use raceloc_core::Point2;
///
/// let mut grid = ProbabilityGrid::new(100, 100, 0.05, Point2::ORIGIN);
/// let idx = grid.world_to_index(Point2::new(2.0, 2.0));
/// grid.apply_hit(idx);
/// assert!(grid.probability(idx) > 0.6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProbabilityGrid {
    width: usize,
    height: usize,
    resolution: f64,
    origin: Point2,
    /// Probability per cell; negative = never observed (unknown).
    cells: Vec<f32>,
}

impl ProbabilityGrid {
    /// Creates an all-unknown grid.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions or non-positive resolution.
    pub fn new(width: usize, height: usize, resolution: f64, origin: Point2) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        assert!(resolution > 0.0, "resolution must be positive");
        Self {
            width,
            height,
            resolution,
            origin,
            cells: vec![-1.0; width * height],
        }
    }

    /// Builds a probability grid from a known occupancy map (for pure
    /// localization): occupied → `P_MAX`, free → `P_MIN`, unknown stays
    /// unknown.
    pub fn from_occupancy(grid: &OccupancyGrid) -> Self {
        let mut pg = Self::new(
            grid.width(),
            grid.height(),
            grid.resolution(),
            grid.origin(),
        );
        for (idx, state) in grid.iter() {
            let i = idx.row as usize * pg.width + idx.col as usize;
            pg.cells[i] = match state {
                CellState::Occupied => P_MAX as f32,
                CellState::Free => P_MIN as f32,
                CellState::Unknown => -1.0,
            };
        }
        pg
    }

    /// Builds a *smoothed* probability field from a known occupancy map,
    /// for scan-to-map localization: probability peaks at `P_MAX` on the
    /// wall **surface** (occupied cells adjacent to free space) and decays
    /// as a Gaussian of the distance to that surface, down to `P_MIN`.
    ///
    /// Unlike [`ProbabilityGrid::from_occupancy`], thick wall bands do not
    /// form flat plateaus, so gradient-based refinement keeps a pull toward
    /// the surface from both sides. `sigma` is the decay scale in meters
    /// (≈1–2 cells works well).
    ///
    /// # Panics
    ///
    /// Panics when `sigma` is not positive.
    pub fn from_occupancy_smoothed(grid: &OccupancyGrid, sigma: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        // Surface = occupied cells with at least one free 4-neighbor.
        let mut surface = OccupancyGrid::new(
            grid.width(),
            grid.height(),
            grid.resolution(),
            grid.origin(),
        );
        surface.fill(CellState::Free);
        for (idx, state) in grid.iter() {
            if state != CellState::Occupied {
                continue;
            }
            let neighbors = [
                GridIndex::new(idx.col + 1, idx.row),
                GridIndex::new(idx.col - 1, idx.row),
                GridIndex::new(idx.col, idx.row + 1),
                GridIndex::new(idx.col, idx.row - 1),
            ];
            if neighbors.iter().any(|&n| grid.state(n) == CellState::Free) {
                surface.set(idx, CellState::Occupied);
            }
        }
        let dist = raceloc_map::DistanceMap::from_grid_with(&surface, |s| s == CellState::Occupied);
        let mut pg = Self::new(
            grid.width(),
            grid.height(),
            grid.resolution(),
            grid.origin(),
        );
        for (idx, state) in grid.iter() {
            if state == CellState::Unknown {
                continue;
            }
            let d = dist.distance(idx);
            let p = P_MIN + (P_MAX - P_MIN) * (-0.5 * d * d / (sigma * sigma)).exp();
            let i = idx.row as usize * pg.width + idx.col as usize;
            pg.cells[i] = p as f32;
        }
        pg
    }

    /// Grid width in cells.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height in cells.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Cell size in meters.
    #[inline]
    pub fn resolution(&self) -> f64 {
        self.resolution
    }

    /// World position of the grid's lower-left corner.
    #[inline]
    pub fn origin(&self) -> Point2 {
        self.origin
    }

    /// Converts a world point to a cell index (may be out of bounds).
    #[inline]
    pub fn world_to_index(&self, p: Point2) -> GridIndex {
        GridIndex::new(
            ((p.x - self.origin.x) / self.resolution).floor() as i64,
            ((p.y - self.origin.y) / self.resolution).floor() as i64,
        )
    }

    /// World position of a cell center.
    #[inline]
    pub fn index_to_world(&self, idx: GridIndex) -> Point2 {
        Point2::new(
            self.origin.x + (idx.col as f64 + 0.5) * self.resolution,
            self.origin.y + (idx.row as f64 + 0.5) * self.resolution,
        )
    }

    #[inline]
    fn flat(&self, idx: GridIndex) -> Option<usize> {
        if idx.col >= 0
            && idx.row >= 0
            && (idx.col as usize) < self.width
            && (idx.row as usize) < self.height
        {
            Some(idx.row as usize * self.width + idx.col as usize)
        } else {
            None
        }
    }

    /// Occupancy probability of a cell; unknown and out-of-bounds cells read
    /// as 0.5 (no information).
    #[inline]
    pub fn probability(&self, idx: GridIndex) -> f64 {
        match self.flat(idx) {
            Some(i) if self.cells[i] >= 0.0 => self.cells[i] as f64,
            _ => 0.5,
        }
    }

    /// True when the cell has been observed at least once.
    #[inline]
    pub fn is_known(&self, idx: GridIndex) -> bool {
        self.flat(idx).is_some_and(|i| self.cells[i] >= 0.0)
    }

    /// Bilinearly interpolated probability at a world point (the smooth
    /// field the Gauss–Newton refiner differentiates).
    pub fn probability_at(&self, p: Point2) -> f64 {
        // Sample at the four surrounding cell centers.
        let gx = (p.x - self.origin.x) / self.resolution - 0.5;
        let gy = (p.y - self.origin.y) / self.resolution - 0.5;
        let c0 = gx.floor();
        let r0 = gy.floor();
        let tx = gx - c0;
        let ty = gy - r0;
        let sample =
            |dc: i64, dr: i64| self.probability(GridIndex::new(c0 as i64 + dc, r0 as i64 + dr));
        let p00 = sample(0, 0);
        let p10 = sample(1, 0);
        let p01 = sample(0, 1);
        let p11 = sample(1, 1);
        p00 * (1.0 - tx) * (1.0 - ty)
            + p10 * tx * (1.0 - ty)
            + p01 * (1.0 - tx) * ty
            + p11 * tx * ty
    }

    /// Bilinear probability plus its spatial gradient `(P, dP/dx, dP/dy)`
    /// at a world point — the quantities the Gauss–Newton scan refiner
    /// needs.
    pub fn probability_with_gradient(&self, p: Point2) -> (f64, f64, f64) {
        let gx = (p.x - self.origin.x) / self.resolution - 0.5;
        let gy = (p.y - self.origin.y) / self.resolution - 0.5;
        let c0 = gx.floor();
        let r0 = gy.floor();
        let tx = gx - c0;
        let ty = gy - r0;
        let sample =
            |dc: i64, dr: i64| self.probability(GridIndex::new(c0 as i64 + dc, r0 as i64 + dr));
        let p00 = sample(0, 0);
        let p10 = sample(1, 0);
        let p01 = sample(0, 1);
        let p11 = sample(1, 1);
        let value = p00 * (1.0 - tx) * (1.0 - ty)
            + p10 * tx * (1.0 - ty)
            + p01 * (1.0 - tx) * ty
            + p11 * tx * ty;
        let ddx = ((p10 - p00) * (1.0 - ty) + (p11 - p01) * ty) / self.resolution;
        let ddy = ((p01 - p00) * (1.0 - tx) + (p11 - p10) * tx) / self.resolution;
        (value, ddx, ddy)
    }

    /// Overwrites a cell's probability directly (clamped to the valid
    /// band); used when merging grids. No-op out of bounds.
    pub fn set_probability(&mut self, idx: GridIndex, p: f64) {
        if let Some(i) = self.flat(idx) {
            self.cells[i] = p.clamp(P_MIN, P_MAX) as f32;
        }
    }

    /// Applies a hit update to a cell (no-op out of bounds).
    pub fn apply_hit(&mut self, idx: GridIndex) {
        self.apply_odds(idx, odds(P_HIT));
    }

    /// Applies a miss update to a cell (no-op out of bounds).
    pub fn apply_miss(&mut self, idx: GridIndex) {
        self.apply_odds(idx, odds(P_MISS));
    }

    fn apply_odds(&mut self, idx: GridIndex, factor: f64) {
        let Some(i) = self.flat(idx) else { return };
        let prior = if self.cells[i] >= 0.0 {
            self.cells[i] as f64
        } else {
            0.5
        };
        let posterior = from_odds(odds(prior) * factor).clamp(P_MIN, P_MAX);
        self.cells[i] = posterior as f32;
    }

    /// Integrates one scan taken from `sensor_pose` (world frame): the cells
    /// under each return get a hit, the cells along each ray a miss. Beams
    /// at max range contribute misses only.
    pub fn insert_scan(&mut self, sensor_pose: Pose2, scan: &raceloc_core::sensor_data::LaserScan) {
        // Collect hits and misses separately so a hit is never cancelled by
        // a miss from a neighboring beam in the same scan (Cartographer
        // applies hits after misses per insertion).
        let mut hits: Vec<GridIndex> = Vec::new();
        let mut misses: Vec<GridIndex> = Vec::new();
        let origin = sensor_pose.translation();
        for (angle, range) in scan.iter() {
            let is_return = range < scan.max_range - 1e-9 && range > 0.0;
            let world_angle = sensor_pose.theta + angle;
            let end = Point2::new(
                origin.x + range * world_angle.cos(),
                origin.y + range * world_angle.sin(),
            );
            let end_idx = self.world_to_index(end);
            // The traversal may stop one cell short of `end_idx` when the
            // endpoint lies exactly on a cell boundary, so the hit cell is
            // handled explicitly rather than inside the walk.
            traverse(self, origin, end, |idx| {
                if idx != end_idx {
                    misses.push(idx);
                }
                true
            });
            if is_return {
                hits.push(end_idx);
            } else {
                misses.push(end_idx);
            }
        }
        for idx in misses {
            self.apply_miss(idx);
        }
        for idx in hits {
            self.apply_hit(idx);
        }
    }

    /// Exports the grid as a ternary occupancy map with the given
    /// classification thresholds.
    pub fn to_occupancy(&self, occupied_above: f64, free_below: f64) -> OccupancyGrid {
        let mut out = OccupancyGrid::new(self.width, self.height, self.resolution, self.origin);
        for r in 0..self.height as i64 {
            for c in 0..self.width as i64 {
                let idx = GridIndex::new(c, r);
                let state = if !self.is_known(idx) {
                    CellState::Unknown
                } else {
                    let p = self.probability(idx);
                    if p >= occupied_above {
                        CellState::Occupied
                    } else if p <= free_below {
                        CellState::Free
                    } else {
                        CellState::Unknown
                    }
                };
                out.set(idx, state);
            }
        }
        out
    }
}

/// Amanatides–Woo traversal over a probability grid (same algorithm as
/// `OccupancyGrid::traverse_ray`, duplicated here to keep grid types
/// independent).
fn traverse<F: FnMut(GridIndex) -> bool>(
    grid: &ProbabilityGrid,
    from: Point2,
    to: Point2,
    mut visit: F,
) {
    let res = grid.resolution();
    let mut idx = grid.world_to_index(from);
    let end = grid.world_to_index(to);
    if !visit(idx) {
        return;
    }
    let dx = to.x - from.x;
    let dy = to.y - from.y;
    let step_c: i64 = if dx > 0.0 { 1 } else { -1 };
    let step_r: i64 = if dy > 0.0 { 1 } else { -1 };
    let next_edge = |i: i64, step: i64, origin: f64| {
        let edge = if step > 0 { i + 1 } else { i };
        origin + edge as f64 * res
    };
    let inv_dx = if dx != 0.0 { 1.0 / dx } else { f64::INFINITY };
    let inv_dy = if dy != 0.0 { 1.0 / dy } else { f64::INFINITY };
    let mut t_max_x = if dx != 0.0 {
        (next_edge(idx.col, step_c, grid.origin().x) - from.x) * inv_dx
    } else {
        f64::INFINITY
    };
    let mut t_max_y = if dy != 0.0 {
        (next_edge(idx.row, step_r, grid.origin().y) - from.y) * inv_dy
    } else {
        f64::INFINITY
    };
    let t_dx = (res * inv_dx).abs();
    let t_dy = (res * inv_dy).abs();
    let max_steps = 2 * (grid.width() + grid.height()) + 4;
    for _ in 0..max_steps {
        if idx == end || (t_max_x > 1.0 && t_max_y > 1.0) {
            return;
        }
        if t_max_x < t_max_y {
            t_max_x += t_dx;
            idx.col += step_c;
        } else {
            t_max_y += t_dy;
            idx.row += step_r;
        }
        if !visit(idx) {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raceloc_core::sensor_data::LaserScan;

    #[test]
    fn unknown_reads_half() {
        let g = ProbabilityGrid::new(10, 10, 0.1, Point2::ORIGIN);
        assert_eq!(g.probability(GridIndex::new(3, 3)), 0.5);
        assert_eq!(g.probability(GridIndex::new(-1, 0)), 0.5);
        assert!(!g.is_known(GridIndex::new(3, 3)));
    }

    #[test]
    fn hits_raise_misses_lower() {
        let mut g = ProbabilityGrid::new(10, 10, 0.1, Point2::ORIGIN);
        let idx = GridIndex::new(5, 5);
        g.apply_hit(idx);
        let after_hit = g.probability(idx);
        assert!(after_hit > 0.5);
        g.apply_miss(idx);
        assert!(g.probability(idx) < after_hit);
        let idx2 = GridIndex::new(2, 2);
        g.apply_miss(idx2);
        assert!(g.probability(idx2) < 0.5);
    }

    #[test]
    fn probabilities_clamp() {
        let mut g = ProbabilityGrid::new(4, 4, 0.1, Point2::ORIGIN);
        let idx = GridIndex::new(1, 1);
        for _ in 0..200 {
            g.apply_hit(idx);
        }
        assert!(g.probability(idx) <= P_MAX + 1e-6);
        for _ in 0..400 {
            g.apply_miss(idx);
        }
        assert!(g.probability(idx) >= P_MIN - 1e-6);
    }

    #[test]
    fn insert_scan_marks_hit_and_ray() {
        let mut g = ProbabilityGrid::new(100, 100, 0.1, Point2::ORIGIN);
        // Sensor at (1, 5) facing +x, wall return at 4 m.
        let scan = LaserScan::new(0.0, 0.1, vec![4.0], 10.0);
        let pose = Pose2::new(1.0, 5.0, 0.0);
        g.insert_scan(pose, &scan);
        let hit_idx = g.world_to_index(Point2::new(5.0, 5.0));
        assert!(g.probability(hit_idx) > 0.5, "{}", g.probability(hit_idx));
        // Midway along the ray: a miss.
        let mid_idx = g.world_to_index(Point2::new(3.0, 5.0));
        assert!(g.probability(mid_idx) < 0.5);
        // Beyond the return: untouched.
        let beyond = g.world_to_index(Point2::new(7.0, 5.0));
        assert!(!g.is_known(beyond));
    }

    #[test]
    fn max_range_beam_only_misses() {
        let mut g = ProbabilityGrid::new(100, 100, 0.1, Point2::ORIGIN);
        let scan = LaserScan::new(0.0, 0.1, vec![10.0], 10.0);
        g.insert_scan(Pose2::new(1.0, 5.0, 0.0), &scan);
        // Every touched cell is a miss; none is a hit.
        for c in 10..95 {
            let p = g.probability(GridIndex::new(c, 50));
            assert!(p <= 0.5 + 1e-9, "col {c}: {p}");
        }
    }

    #[test]
    fn repeated_scans_sharpen_the_map() {
        let mut g = ProbabilityGrid::new(100, 100, 0.1, Point2::ORIGIN);
        let scan = LaserScan::new(0.0, 0.1, vec![4.0], 10.0);
        let pose = Pose2::new(1.0, 5.0, 0.0);
        for _ in 0..5 {
            g.insert_scan(pose, &scan);
        }
        let hit_idx = g.world_to_index(Point2::new(5.0, 5.0));
        assert!(g.probability(hit_idx) > 0.85);
    }

    #[test]
    fn from_occupancy_roundtrip() {
        let mut occ = OccupancyGrid::new(8, 8, 0.25, Point2::new(-1.0, -1.0));
        occ.fill(CellState::Free);
        occ.set(GridIndex::new(3, 3), CellState::Occupied);
        occ.set(GridIndex::new(0, 0), CellState::Unknown);
        let pg = ProbabilityGrid::from_occupancy(&occ);
        assert!(pg.probability(GridIndex::new(3, 3)) > 0.9);
        assert!(pg.probability(GridIndex::new(5, 5)) < 0.2);
        assert!(!pg.is_known(GridIndex::new(0, 0)));
        let back = pg.to_occupancy(0.6, 0.35);
        assert_eq!(back.state(GridIndex::new(3, 3)), CellState::Occupied);
        assert_eq!(back.state(GridIndex::new(5, 5)), CellState::Free);
        assert_eq!(back.state(GridIndex::new(0, 0)), CellState::Unknown);
    }

    #[test]
    fn bilinear_interpolation_is_smooth() {
        let mut g = ProbabilityGrid::new(10, 10, 0.1, Point2::ORIGIN);
        for _ in 0..10 {
            g.apply_hit(GridIndex::new(5, 5));
        }
        // Probability decays smoothly moving away from the hit cell center.
        let center = g.index_to_world(GridIndex::new(5, 5));
        let p0 = g.probability_at(center);
        let p1 = g.probability_at(Point2::new(center.x + 0.05, center.y));
        let p2 = g.probability_at(Point2::new(center.x + 0.1, center.y));
        assert!(p0 >= p1 && p1 >= p2, "{p0} {p1} {p2}");
        assert!(p0 > 0.9);
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn zero_size_panics() {
        ProbabilityGrid::new(0, 1, 0.1, Point2::ORIGIN);
    }
}
