//! Scan-to-grid matching: real-time correlative search plus Gauss–Newton
//! refinement (the "local SLAM" front-end of Hess et al., ICRA 2016).

use crate::probgrid::ProbabilityGrid;
use raceloc_core::{Point2, Pose2};

/// The outcome of a scan match.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchResult {
    /// The matched sensor pose in the grid's world frame.
    pub pose: Pose2,
    /// Mean per-point probability of the matched placement, in `[0, 1]`.
    pub score: f64,
}

/// The search window of the correlative matcher.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchWindow {
    /// Half-extent of the translational search in x and y \[m\].
    pub linear: f64,
    /// Half-extent of the rotational search \[rad\].
    pub angular: f64,
}

impl SearchWindow {
    /// A window sized for frame-to-frame tracking with a decent odometry
    /// prior (what Cartographer's real-time matcher uses).
    pub fn tracking() -> Self {
        Self {
            linear: 0.25,
            angular: 0.1,
        }
    }

    /// A wide window for loop closure / relocalization.
    pub fn loop_closure() -> Self {
        Self {
            linear: 3.0,
            angular: 0.6,
        }
    }
}

/// Exhaustive correlative scan matcher: scores every pose in a discretized
/// window and returns the best (Olson 2009; used by Cartographer both as
/// the real-time matcher and, via branch-and-bound, for loop closure).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelativeScanMatcher {
    /// Translational step \[m\] (usually the grid resolution).
    pub linear_step: f64,
    /// Rotational step \[rad\].
    pub angular_step: f64,
}

impl CorrelativeScanMatcher {
    /// Creates a matcher with the given discretization.
    ///
    /// # Panics
    ///
    /// Panics when either step is not positive.
    pub fn new(linear_step: f64, angular_step: f64) -> Self {
        assert!(
            linear_step > 0.0 && angular_step > 0.0,
            "matcher steps must be positive"
        );
        Self {
            linear_step,
            angular_step,
        }
    }

    /// Scores a candidate placement: mean occupancy probability under the
    /// scan's points transformed by `pose`.
    pub fn score(&self, grid: &ProbabilityGrid, points: &[Point2], pose: Pose2) -> f64 {
        if points.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for &p in points {
            let w = pose.transform(p);
            total += grid.probability(grid.world_to_index(w));
        }
        total / points.len() as f64
    }

    /// Searches the window around `initial` for the best placement of the
    /// sensor-frame `points`.
    pub fn match_scan(
        &self,
        grid: &ProbabilityGrid,
        points: &[Point2],
        initial: Pose2,
        window: SearchWindow,
    ) -> MatchResult {
        let mut best = MatchResult {
            pose: initial,
            score: self.score(grid, points, initial),
        };
        if points.is_empty() {
            return best;
        }
        let n_ang = (window.angular / self.angular_step).ceil() as i64;
        let n_lin = (window.linear / self.linear_step).ceil() as i64;
        for ia in -n_ang..=n_ang {
            let theta = initial.theta + ia as f64 * self.angular_step;
            // Rotate (and translate by the initial position) once per angle.
            let base = Pose2::new(initial.x, initial.y, theta);
            let rotated: Vec<Point2> = points.iter().map(|&p| base.transform(p)).collect();
            for ix in -n_lin..=n_lin {
                let dx = ix as f64 * self.linear_step;
                for iy in -n_lin..=n_lin {
                    let dy = iy as f64 * self.linear_step;
                    let mut total = 0.0;
                    for &w in &rotated {
                        let q = Point2::new(w.x + dx, w.y + dy);
                        total += grid.probability(grid.world_to_index(q));
                    }
                    let score = total / points.len() as f64;
                    if score > best.score {
                        best = MatchResult {
                            pose: Pose2::new(initial.x + dx, initial.y + dy, theta),
                            score,
                        };
                    }
                }
            }
        }
        best
    }
}

/// Gauss–Newton scan refiner: polishes a pose to sub-cell accuracy by
/// maximizing the bilinearly interpolated occupancy under the scan points
/// (the role Ceres plays in Cartographer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussNewtonRefiner {
    /// Maximum iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the update norm.
    pub epsilon: f64,
    /// Levenberg damping added to the normal equations' diagonal.
    pub damping: f64,
}

impl Default for GaussNewtonRefiner {
    fn default() -> Self {
        Self {
            max_iterations: 12,
            epsilon: 1e-5,
            damping: 1e-4,
        }
    }
}

impl GaussNewtonRefiner {
    /// Refines `initial` against the grid; returns the polished pose and its
    /// final mean-probability score.
    pub fn refine(&self, grid: &ProbabilityGrid, points: &[Point2], initial: Pose2) -> MatchResult {
        self.refine_with_prior(grid, points, initial, initial, 0.0, 0.0)
    }

    /// Refines `initial` with additional penalty terms pulling the solution
    /// toward `prior` — the translation/rotation regularizers of
    /// Cartographer's Ceres scan matcher. `translation_weight` has units of
    /// residual-per-meter, `rotation_weight` residual-per-radian, comparable
    /// to the per-point occupancy residuals in `[0, 1]`.
    pub fn refine_with_prior(
        &self,
        grid: &ProbabilityGrid,
        points: &[Point2],
        initial: Pose2,
        prior: Pose2,
        translation_weight: f64,
        rotation_weight: f64,
    ) -> MatchResult {
        use raceloc_core::linalg::{Mat3, Vec3};
        let mut pose = initial;
        if points.is_empty() {
            return MatchResult { pose, score: 0.0 };
        }
        for _ in 0..self.max_iterations {
            let (s, c) = pose.theta.sin_cos();
            let mut h = Mat3::ZERO;
            let mut b = Vec3::ZERO;
            for &p in points {
                let w = pose.transform(p);
                let (prob, ddx, ddy) = grid.probability_with_gradient(w);
                let r = 1.0 - prob;
                // d(world)/dθ for the point.
                let dwx_dt = -s * p.x - c * p.y;
                let dwy_dt = c * p.x - s * p.y;
                // Jacobian of the residual r = 1 − P(w(ξ)).
                let j = [-ddx, -ddy, -(ddx * dwx_dt + ddy * dwy_dt)];
                for (i, ji) in j.iter().enumerate() {
                    b[i] -= ji * r;
                    for (k, jk) in j.iter().enumerate() {
                        h.0[i][k] += ji * jk;
                    }
                }
            }
            // Prior penalties: residuals w·(ξ − ξ_prior) per dimension.
            // The occupancy term sums n squared-gradients, so scaling the
            // prior weight by √n keeps the relative strength independent of
            // the number of points used.
            let n = points.len() as f64;
            let tw = translation_weight * n.sqrt();
            let rw = rotation_weight * n.sqrt();
            if tw > 0.0 {
                h.0[0][0] += tw * tw;
                h.0[1][1] += tw * tw;
                b[0] -= tw * tw * (pose.x - prior.x);
                b[1] -= tw * tw * (pose.y - prior.y);
            }
            if rw > 0.0 {
                h.0[2][2] += rw * rw;
                b[2] -= rw * rw * raceloc_core::angle::diff(pose.theta, prior.theta);
            }
            for i in 0..3 {
                h.0[i][i] += self.damping;
            }
            let Some(hinv) = h.inverse() else { break };
            let step = hinv.mul_vec(b);
            pose = Pose2::new(pose.x + step[0], pose.y + step[1], pose.theta + step[2]);
            if step.norm() < self.epsilon {
                break;
            }
        }
        let matcher = CorrelativeScanMatcher::new(1.0, 1.0);
        MatchResult {
            pose,
            score: matcher.score(grid, points, pose),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raceloc_core::sensor_data::LaserScan;

    /// Builds a probability grid of a square room by inserting noiseless
    /// scans from the center.
    fn room_grid() -> ProbabilityGrid {
        let mut g = ProbabilityGrid::new(120, 120, 0.05, Point2::new(-3.0, -3.0));
        let pose = Pose2::IDENTITY;
        let scan = synthetic_scan(pose);
        for _ in 0..8 {
            g.insert_scan(pose, &scan);
        }
        g
    }

    /// A noiseless 180-beam scan of the 4 m × 4 m room centred at origin,
    /// taken from `pose` (analytic ray-box intersection).
    fn synthetic_scan(pose: Pose2) -> LaserScan {
        let beams = 180;
        let inc = std::f64::consts::TAU / beams as f64;
        let half = 2.0;
        let ranges: Vec<f64> = (0..beams)
            .map(|i| {
                let a = pose.theta - std::f64::consts::PI + i as f64 * inc;
                let (s, c) = a.sin_cos();
                // Distance from pose to the axis-aligned box walls.
                let tx = if c > 1e-9 {
                    (half - pose.x) / c
                } else if c < -1e-9 {
                    (-half - pose.x) / c
                } else {
                    f64::INFINITY
                };
                let ty = if s > 1e-9 {
                    (half - pose.y) / s
                } else if s < -1e-9 {
                    (-half - pose.y) / s
                } else {
                    f64::INFINITY
                };
                tx.min(ty)
            })
            .collect();
        LaserScan::new(-std::f64::consts::PI, inc, ranges, 10.0)
    }

    fn scan_points(pose: Pose2) -> Vec<Point2> {
        synthetic_scan(pose).to_points()
    }

    #[test]
    fn score_is_high_at_truth_low_far_away() {
        let g = room_grid();
        let m = CorrelativeScanMatcher::new(0.05, 0.02);
        let pts = scan_points(Pose2::IDENTITY);
        let at_truth = m.score(&g, &pts, Pose2::IDENTITY);
        let off = m.score(&g, &pts, Pose2::new(0.5, 0.3, 0.2));
        assert!(at_truth > 0.7, "{at_truth}");
        assert!(at_truth > off + 0.2, "{at_truth} vs {off}");
    }

    #[test]
    fn correlative_recovers_translation() {
        let g = room_grid();
        let m = CorrelativeScanMatcher::new(0.05, 0.02);
        // The scan was really taken from (0.15, -0.1); start the search at
        // the origin.
        let true_pose = Pose2::new(0.15, -0.1, 0.0);
        let pts = scan_points(true_pose);
        let result = m.match_scan(&g, &pts, Pose2::IDENTITY, SearchWindow::tracking());
        assert!(
            result.pose.dist(true_pose) < 0.08,
            "matched {} truth {}",
            result.pose,
            true_pose
        );
    }

    #[test]
    fn correlative_recovers_rotation() {
        let g = room_grid();
        let m = CorrelativeScanMatcher::new(0.05, 0.02);
        let true_pose = Pose2::new(0.0, 0.0, 0.08);
        let pts = scan_points(true_pose);
        let result = m.match_scan(&g, &pts, Pose2::IDENTITY, SearchWindow::tracking());
        assert!(
            result.pose.heading_dist(true_pose) < 0.03,
            "matched θ {}",
            result.pose.theta
        );
    }

    #[test]
    fn empty_points_return_initial() {
        let g = room_grid();
        let m = CorrelativeScanMatcher::new(0.05, 0.02);
        let init = Pose2::new(1.0, 1.0, 1.0);
        let r = m.match_scan(&g, &[], init, SearchWindow::tracking());
        assert_eq!(r.pose, init);
        assert_eq!(r.score, 0.0);
    }

    #[test]
    fn refiner_polishes_subcell_offsets() {
        let g = room_grid();
        let refiner = GaussNewtonRefiner::default();
        let true_pose = Pose2::new(0.02, -0.017, 0.008);
        let pts = scan_points(true_pose);
        let r = refiner.refine(&g, &pts, Pose2::IDENTITY);
        // The map's walls are quantized to 5 cm cells, so the attainable
        // accuracy is about half a cell.
        assert!(
            r.pose.dist(true_pose) < 0.04,
            "refined {} truth {}",
            r.pose,
            true_pose
        );
        assert!(r.pose.heading_dist(true_pose) < 0.02);
    }

    #[test]
    fn refiner_improves_correlative_result() {
        let g = room_grid();
        let m = CorrelativeScanMatcher::new(0.05, 0.02);
        let refiner = GaussNewtonRefiner::default();
        let true_pose = Pose2::new(0.13, 0.07, -0.04);
        let pts = scan_points(true_pose);
        let coarse = m.match_scan(&g, &pts, Pose2::IDENTITY, SearchWindow::tracking());
        let fine = refiner.refine(&g, &pts, coarse.pose);
        // The refiner maximizes the map score; with cell-quantized walls the
        // score optimum may sit a fraction of a cell away from the true
        // pose, so assert on the score and near-truth distance instead.
        assert!(
            fine.score >= coarse.score - 0.02,
            "refinement lowered the score: {} -> {}",
            coarse.score,
            fine.score
        );
        assert!(fine.pose.dist(true_pose) < 0.08);
    }

    #[test]
    fn refiner_empty_points_benign() {
        let g = room_grid();
        let r = GaussNewtonRefiner::default().refine(&g, &[], Pose2::IDENTITY);
        assert_eq!(r.pose, Pose2::IDENTITY);
    }

    #[test]
    #[should_panic(expected = "steps must be positive")]
    fn zero_step_panics() {
        CorrelativeScanMatcher::new(0.0, 0.1);
    }
}
