//! Deprecated owning-map constructors, quarantined pending removal.
//!
//! The shared-artifact API (`CartoLocalizer::from_artifacts` over an
//! [`raceloc_range::ArtifactStore`] bundle) replaced the raw-grid
//! constructor. The shim below keeps old call sites compiling for one
//! release; `raceloc-analyze` rule **R6** denies the token outside
//! `compat.rs` files, so no *new* uses can land (the same gone-for-good
//! ratchet that retired `cast_batch` under R5).

use crate::localization::{CartoLocalizer, CartoLocalizerConfig};
use raceloc_map::OccupancyGrid;

impl CartoLocalizer {
    /// Builds the localizer directly over an occupancy grid, bypassing the
    /// shared artifact cache.
    #[deprecated(
        since = "0.6.0",
        note = "construct via ArtifactStore::get_or_build + \
                CartoLocalizer::from_artifacts so sessions share per-map artifacts"
    )]
    pub fn with_owned_map(map: &OccupancyGrid, config: CartoLocalizerConfig) -> Self {
        Self::from_grid(map, config)
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)]

    use super::*;
    use raceloc_core::localizer::Localizer;
    use raceloc_map::{TrackShape, TrackSpec};
    use raceloc_range::{ArtifactParams, MapArtifacts};

    #[test]
    fn shim_builds_the_same_localizer_as_from_artifacts() {
        let track = TrackSpec::new(TrackShape::Oval {
            width: 8.0,
            height: 5.0,
        })
        .resolution(0.1)
        .build();
        let old = CartoLocalizer::with_owned_map(&track.grid, CartoLocalizerConfig::default());
        let artifacts = MapArtifacts::build(&track.grid, ArtifactParams::default());
        let new = CartoLocalizer::from_artifacts(&artifacts, CartoLocalizerConfig::default());
        assert_eq!(old.name(), new.name());
        assert_eq!(old.config(), new.config());
        assert_eq!(old.pose(), new.pose());
        assert!(!artifacts.lut_built(), "Carto must not trigger a LUT build");
    }
}
