#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! A Cartographer-style 2-D LiDAR SLAM system — the state-of-the-art
//! pose-graph baseline the paper benchmarks SynPF against.
//!
//! Reimplements the published algorithm (Hess et al., *"Real-Time Loop
//! Closure in 2D LIDAR SLAM"*, ICRA 2016) from scratch:
//!
//! - [`ProbabilityGrid`]: odds-updated occupancy submap representation;
//! - [`CorrelativeScanMatcher`] + [`GaussNewtonRefiner`]: the real-time
//!   local matcher (exhaustive window search, then sub-cell polish);
//! - [`Submap`] / [`SubmapCollection`]: overlapping submap lifecycle;
//! - [`PoseGraph`]: sparse-pose-adjustment back-end (damped Gauss–Newton,
//!   Huber loss, analytic SE(2) Jacobians);
//! - [`BranchAndBoundMatcher`]: the loop-closure search over precomputed
//!   max-pool grids;
//! - [`CartoSlam`]: the online mapping pipeline tying it all together;
//! - [`CartoLocalizer`]: the pure-localization mode used in the paper's
//!   Table I — scan-to-known-map matching seeded by wheel odometry, which
//!   is exactly the configuration that degrades under wheel slip.
//!
//! # Examples
//!
//! ```
//! use raceloc_map::{TrackShape, TrackSpec};
//! use raceloc_range::{ArtifactParams, MapArtifacts};
//! use raceloc_slam::{CartoLocalizer, CartoLocalizerConfig};
//! use raceloc_core::localizer::Localizer;
//!
//! let track = TrackSpec::new(TrackShape::Oval { width: 10.0, height: 6.0 })
//!     .resolution(0.1)
//!     .build();
//! let artifacts = MapArtifacts::build(&track.grid, ArtifactParams::default());
//! let mut localizer = CartoLocalizer::from_artifacts(&artifacts, CartoLocalizerConfig::default());
//! localizer.reset(track.start_pose());
//! ```

mod compat;
pub mod localization;
pub mod loop_closure;
pub mod pose_graph;
pub mod probgrid;
pub mod scan_matcher;
pub mod slam;
pub mod submap;

pub use localization::{CartoLocalizer, CartoLocalizerConfig, SlamHealthPolicy};
pub use loop_closure::{BranchAndBoundConfig, BranchAndBoundMatcher};
pub use pose_graph::{Constraint, OptimizeReport, PoseGraph};
pub use probgrid::ProbabilityGrid;
pub use scan_matcher::{CorrelativeScanMatcher, GaussNewtonRefiner, MatchResult, SearchWindow};
pub use slam::{CartoSlam, CartoSlamConfig};
pub use submap::{Submap, SubmapCollection};
