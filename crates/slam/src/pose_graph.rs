//! 2-D pose-graph optimization (the SLAM back-end).
//!
//! Nodes are scan poses; edges are relative SE(2) constraints from local
//! scan matching and loop closure. Optimization is damped Gauss–Newton with
//! analytic Jacobians and a Huber robust loss, solving the dense normal
//! equations with the in-house Cholesky (graphs in this workspace are a few
//! hundred nodes, where dense is both fast and dependable).

use raceloc_core::linalg::{DMat, Mat3, Vec3};
use raceloc_core::{angle, Pose2};

/// A relative-pose constraint between two nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constraint {
    /// Index of the source node.
    pub from: usize,
    /// Index of the target node.
    pub to: usize,
    /// Measured pose of `to` in `from`'s frame.
    pub relative: Pose2,
    /// Information (inverse covariance) of the measurement.
    pub information: Mat3,
}

impl Constraint {
    /// A constraint with diagonal information `(trans, trans, rot)`.
    pub fn new(from: usize, to: usize, relative: Pose2, info_trans: f64, info_rot: f64) -> Self {
        Self {
            from,
            to,
            relative,
            information: Mat3::diag(info_trans, info_trans, info_rot),
        }
    }
}

/// Result of one optimization run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizeReport {
    /// Iterations actually performed.
    pub iterations: usize,
    /// Total robustified chi² before optimization.
    pub initial_chi2: f64,
    /// Total robustified chi² after optimization.
    pub final_chi2: f64,
}

/// A 2-D pose graph.
///
/// # Examples
///
/// ```
/// use raceloc_slam::{Constraint, PoseGraph};
/// use raceloc_core::Pose2;
///
/// let mut graph = PoseGraph::new();
/// let a = graph.add_node(Pose2::IDENTITY);
/// let b = graph.add_node(Pose2::new(1.1, 0.0, 0.0)); // drifted guess
/// graph.add_constraint(Constraint::new(a, b, Pose2::new(1.0, 0.0, 0.0), 100.0, 100.0));
/// graph.optimize(10);
/// assert!((graph.node(b).x - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PoseGraph {
    nodes: Vec<Pose2>,
    constraints: Vec<Constraint>,
    /// Huber loss threshold on the Mahalanobis residual norm.
    huber_delta: f64,
}

impl PoseGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            constraints: Vec::new(),
            huber_delta: 1.5,
        }
    }

    /// Adds a node with an initial pose estimate; returns its index.
    pub fn add_node(&mut self, pose: Pose2) -> usize {
        self.nodes.push(pose);
        self.nodes.len() - 1
    }

    /// Adds a constraint.
    ///
    /// # Panics
    ///
    /// Panics when either endpoint index is out of range or the constraint
    /// is a self-loop.
    pub fn add_constraint(&mut self, c: Constraint) {
        assert!(
            c.from < self.nodes.len() && c.to < self.nodes.len(),
            "constraint endpoints out of range"
        );
        assert!(c.from != c.to, "self-loop constraint");
        self.constraints.push(c);
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The current estimate of a node.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn node(&self, i: usize) -> Pose2 {
        self.nodes[i]
    }

    /// All node estimates.
    pub fn nodes(&self) -> &[Pose2] {
        &self.nodes
    }

    /// All constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Overwrites a node estimate (used when the front-end re-anchors).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn set_node(&mut self, i: usize, pose: Pose2) {
        self.nodes[i] = pose;
    }

    fn residual(&self, c: &Constraint) -> Vec3 {
        let xi = self.nodes[c.from];
        let xj = self.nodes[c.to];
        let delta = xi.relative_to(xj);
        let err = c.relative.relative_to(delta);
        Vec3::new(err.x, err.y, angle::normalize(err.theta))
    }

    /// Total robustified chi² of the current estimate.
    pub fn chi2(&self) -> f64 {
        self.constraints
            .iter()
            .map(|c| {
                let e = self.residual(c);
                let v = c.information.mul_vec(e);
                let chi = e.dot(v).max(0.0);
                huber(chi.sqrt(), self.huber_delta)
            })
            .sum()
    }

    /// Runs up to `max_iterations` damped Gauss–Newton steps with node 0
    /// gauge-fixed. Returns a report; the graph nodes are updated in place.
    pub fn optimize(&mut self, max_iterations: usize) -> OptimizeReport {
        let n = self.nodes.len();
        let initial_chi2 = self.chi2();
        if n < 2 || self.constraints.is_empty() {
            return OptimizeReport {
                iterations: 0,
                initial_chi2,
                final_chi2: initial_chi2,
            };
        }
        let dim = 3 * n;
        let mut iterations = 0;
        for _ in 0..max_iterations {
            let mut h = DMat::zeros(dim, dim);
            let mut g = vec![0.0f64; dim];
            for c in &self.constraints {
                let xi = self.nodes[c.from];
                let xj = self.nodes[c.to];
                let e = self.residual(c);
                // Robust weight: scales the information of outlier edges.
                let v = c.information.mul_vec(e);
                let chi = e.dot(v).max(1e-12).sqrt();
                let w = huber_weight(chi, self.huber_delta);

                let (si, ci) = xi.theta.sin_cos();
                let (sz, cz) = c.relative.theta.sin_cos();
                let dtx = xj.x - xi.x;
                let dty = xj.y - xi.y;
                // Rz' and Ri' are the transposed rotations; standard SE(2)
                // pose-graph Jacobians (g2o tutorial, eq. 30-32).
                // A = ∂e/∂xi, B = ∂e/∂xj.
                // Rzᵀ·Riᵀ = R(θi+θz)ᵀ.
                let cphi = cz * ci - sz * si;
                let sphi = cz * si + sz * ci;
                let rzt_rit = Mat3([[cphi, sphi, 0.0], [-sphi, cphi, 0.0], [0.0, 0.0, 1.0]]);
                // d(Riᵀ)/dθi · (tj − ti)
                let d_rit = (-si * dtx + ci * dty, -ci * dtx - si * dty);
                // Rzᵀ · d_rit
                let top_right = (cz * d_rit.0 + sz * d_rit.1, -sz * d_rit.0 + cz * d_rit.1);
                let mut a = Mat3::ZERO;
                for r in 0..2 {
                    for cc in 0..2 {
                        a.0[r][cc] = -rzt_rit.0[r][cc];
                    }
                }
                a.0[0][2] = top_right.0;
                a.0[1][2] = top_right.1;
                a.0[2][2] = -1.0;
                let mut b = Mat3::ZERO;
                for r in 0..2 {
                    for cc in 0..2 {
                        b.0[r][cc] = rzt_rit.0[r][cc];
                    }
                }
                b.0[2][2] = 1.0;

                let info_w = c.information * w;
                let at_w = a.transpose() * info_w;
                let bt_w = b.transpose() * info_w;
                h.add_block3(3 * c.from, 3 * c.from, &(at_w * a));
                h.add_block3(3 * c.from, 3 * c.to, &(at_w * b));
                h.add_block3(3 * c.to, 3 * c.from, &(bt_w * a));
                h.add_block3(3 * c.to, 3 * c.to, &(bt_w * b));
                let ae = at_w.mul_vec(e);
                let be = bt_w.mul_vec(e);
                for k in 0..3 {
                    g[3 * c.from + k] -= ae[k];
                    g[3 * c.to + k] -= be[k];
                }
            }
            // Gauge fix node 0 with a strong prior, plus light damping.
            for k in 0..3 {
                h[(k, k)] += 1e9;
            }
            for d in 0..dim {
                h[(d, d)] += 1e-6;
            }
            let Some(dx) = h.cholesky_solve(&g) else {
                break;
            };
            let mut step_norm: f64 = 0.0;
            for (i, node) in self.nodes.iter_mut().enumerate() {
                let (ddx, ddy, ddt) = (dx[3 * i], dx[3 * i + 1], dx[3 * i + 2]);
                *node = Pose2::new(node.x + ddx, node.y + ddy, node.theta + ddt);
                step_norm += ddx * ddx + ddy * ddy + ddt * ddt;
            }
            iterations += 1;
            if step_norm.sqrt() < 1e-8 {
                break;
            }
        }
        // A diverging Gauss-Newton step would poison every pose consumed
        // downstream (tracking correction, map stitching).
        raceloc_core::debug_invariant!(
            self.nodes
                .iter()
                .all(|p| p.x.is_finite() && p.y.is_finite() && p.theta.is_finite()),
            "pose-graph optimization produced a non-finite node pose"
        );
        OptimizeReport {
            iterations,
            initial_chi2,
            final_chi2: self.chi2(),
        }
    }
}

fn huber(r: f64, delta: f64) -> f64 {
    if r <= delta {
        r * r
    } else {
        2.0 * delta * r - delta * delta
    }
}

fn huber_weight(r: f64, delta: f64) -> f64 {
    if r <= delta {
        1.0
    } else {
        delta / r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn odom_chain(n: usize, step: Pose2, drift: Pose2) -> PoseGraph {
        let mut g = PoseGraph::new();
        let mut pose = Pose2::IDENTITY;
        g.add_node(pose);
        let noisy = step * drift;
        for i in 1..n {
            pose = pose * noisy;
            g.add_node(pose);
            g.add_constraint(Constraint::new(i - 1, i, step, 100.0, 400.0));
        }
        g
    }

    #[test]
    fn two_node_chain_converges_exactly() {
        let mut g = PoseGraph::new();
        g.add_node(Pose2::IDENTITY);
        g.add_node(Pose2::new(2.0, 0.5, 0.3));
        g.add_constraint(Constraint::new(0, 1, Pose2::new(1.0, 0.0, 0.1), 50.0, 50.0));
        let report = g.optimize(20);
        assert!(report.final_chi2 < 1e-10, "{report:?}");
        let b = g.node(1);
        assert!(b.dist(Pose2::new(1.0, 0.0, 0.1)) < 1e-5);
        assert!((b.theta - 0.1).abs() < 1e-5);
    }

    #[test]
    fn gauge_is_fixed_at_node_zero() {
        let mut g = PoseGraph::new();
        g.add_node(Pose2::new(5.0, 5.0, 1.0));
        g.add_node(Pose2::new(5.0, 5.0, 1.0));
        g.add_constraint(Constraint::new(0, 1, Pose2::new(1.0, 0.0, 0.0), 10.0, 10.0));
        g.optimize(10);
        assert!(g.node(0).dist(Pose2::new(5.0, 5.0, 1.0)) < 1e-3);
    }

    #[test]
    fn loop_closure_redistributes_drift() {
        // A square loop with accumulated heading drift; the closure pulls
        // the end back onto the start.
        let side = 5;
        let mut g = PoseGraph::new();
        let step = Pose2::new(1.0, 0.0, 0.0);
        let turn = Pose2::new(1.0, 0.0, std::f64::consts::FRAC_PI_2);
        let mut truth = vec![Pose2::IDENTITY];
        for leg in 0..4 {
            for i in 0..side {
                let s = if i == side - 1 && leg < 3 { turn } else { step };
                let last = *truth.last().expect("non-empty");
                truth.push(last * s);
            }
        }
        // Noisy initial estimates: inject a heading error each step.
        let mut est = vec![Pose2::IDENTITY];
        let mut idx = 0;
        for leg in 0..4 {
            for i in 0..side {
                let s = if i == side - 1 && leg < 3 { turn } else { step };
                let noisy = s * Pose2::new(0.02, 0.0, 0.015);
                est.push(est[idx] * noisy);
                idx += 1;
            }
        }
        for (k, e) in est.iter().enumerate() {
            let id = g.add_node(*e);
            assert_eq!(id, k);
        }
        idx = 0;
        for leg in 0..4 {
            for i in 0..side {
                let s = if i == side - 1 && leg < 3 { turn } else { step };
                g.add_constraint(Constraint::new(idx, idx + 1, s, 100.0, 400.0));
                idx += 1;
            }
        }
        let before_end_err = g.node(g.len() - 1).dist(*truth.last().expect("non-empty"));
        // Loop closure: last node coincides with node 0.
        let n_last = g.len() - 1;
        g.add_constraint(Constraint::new(
            0,
            n_last,
            truth[0].relative_to(*truth.last().expect("non-empty")),
            400.0,
            800.0,
        ));
        let report = g.optimize(30);
        assert!(report.final_chi2 < report.initial_chi2);
        let after_end_err = g.node(n_last).dist(*truth.last().expect("non-empty"));
        assert!(
            after_end_err < 0.5 * before_end_err,
            "closure did not help: {before_end_err} -> {after_end_err}"
        );
        // Mid-loop nodes improve too.
        let mid = g.len() / 2;
        assert!(g.node(mid).dist(truth[mid]) < before_end_err);
    }

    #[test]
    fn chain_without_noise_stays_put() {
        let mut g = odom_chain(10, Pose2::new(0.5, 0.0, 0.05), Pose2::IDENTITY);
        let before: Vec<Pose2> = g.nodes().to_vec();
        let report = g.optimize(10);
        assert!(report.final_chi2 < 1e-9);
        for (a, b) in before.iter().zip(g.nodes()) {
            assert!(a.dist(*b) < 1e-4);
        }
    }

    #[test]
    fn huber_tames_outlier_edge() {
        // Chain edges carry much more information than the single wrong
        // closure, so the robustified optimum keeps the chain shape.
        let mut g = PoseGraph::new();
        let step = Pose2::new(1.0, 0.0, 0.0);
        let mut pose = Pose2::IDENTITY;
        g.add_node(pose);
        for i in 1..8 {
            pose = pose * step;
            g.add_node(pose);
            g.add_constraint(Constraint::new(i - 1, i, step, 400.0, 800.0));
        }
        // A wildly wrong constraint between 0 and 7 (truth: 7 m apart).
        g.add_constraint(Constraint::new(0, 7, Pose2::new(1.0, 3.0, 1.0), 50.0, 50.0));
        g.optimize(25);
        assert!(g.node(7).x > 5.5, "chain collapsed: {}", g.node(7));
        assert!(g.node(7).y.abs() < 1.0, "chain bent: {}", g.node(7));
    }

    #[test]
    fn empty_graph_is_benign() {
        let mut g = PoseGraph::new();
        let r = g.optimize(5);
        assert_eq!(r.iterations, 0);
        assert!(g.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_constraint_panics() {
        let mut g = PoseGraph::new();
        g.add_node(Pose2::IDENTITY);
        g.add_constraint(Constraint::new(0, 3, Pose2::IDENTITY, 1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut g = PoseGraph::new();
        g.add_node(Pose2::IDENTITY);
        g.add_node(Pose2::IDENTITY);
        g.add_constraint(Constraint::new(1, 1, Pose2::IDENTITY, 1.0, 1.0));
    }
}
