//! Scan-alignment scoring (Table I "Scan Align \[%\]").
//!
//! The paper scores localization quality by "the average percentage of
//! overlapping scans and the track boundary": project each scan endpoint
//! through the *estimated* pose and check whether it lands on (near) a
//! mapped wall. A well-localized car has almost every return on the
//! boundary; a mislocalized one paints returns into free space.

use raceloc_core::sensor_data::LaserScan;
use raceloc_core::Pose2;
use raceloc_map::{CellState, DistanceMap, OccupancyGrid};

/// Scores scans against the mapped track boundary.
#[derive(Debug, Clone)]
pub struct ScanAlignmentScorer {
    dist_to_wall: DistanceMap,
    tolerance: f64,
    lidar_mount: Pose2,
}

impl ScanAlignmentScorer {
    /// Builds a scorer over the map; endpoints within `tolerance` meters of
    /// an occupied cell count as aligned.
    ///
    /// # Panics
    ///
    /// Panics when `tolerance` is not positive.
    pub fn new(map: &OccupancyGrid, tolerance: f64, lidar_mount: Pose2) -> Self {
        assert!(tolerance > 0.0, "tolerance must be positive");
        Self {
            dist_to_wall: DistanceMap::from_grid_with(map, |s| s == CellState::Occupied),
            tolerance,
            lidar_mount,
        }
    }

    /// Fraction (0–1) of a scan's returns that align with the boundary when
    /// placed at the estimated body pose. Scans without valid returns score
    /// zero.
    pub fn score(&self, estimated_body_pose: Pose2, scan: &LaserScan) -> f64 {
        let sensor = estimated_body_pose * self.lidar_mount;
        let mut aligned = 0usize;
        let mut total = 0usize;
        for (angle, range) in scan.valid_returns() {
            let world_angle = sensor.theta + angle;
            let p = raceloc_core::Point2::new(
                sensor.x + range * world_angle.cos(),
                sensor.y + range * world_angle.sin(),
            );
            total += 1;
            if self.dist_to_wall.distance_at_world(p) <= self.tolerance {
                aligned += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            aligned as f64 / total as f64
        }
    }

    /// Mean alignment percentage (0–100) over `(estimated pose, scan)`
    /// pairs — the Table I number.
    pub fn mean_percentage<'a, I>(&self, pairs: I) -> f64
    where
        I: IntoIterator<Item = (Pose2, &'a LaserScan)>,
    {
        let mut total = 0.0;
        let mut n = 0usize;
        for (pose, scan) in pairs {
            total += self.score(pose, scan);
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            100.0 * total / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raceloc_core::Point2;

    /// A square room: occupied ring at the border of a 10×10 m map.
    fn room() -> OccupancyGrid {
        let n = 100;
        let mut g = OccupancyGrid::new(n, n, 0.1, Point2::ORIGIN);
        g.fill(CellState::Free);
        for i in 0..n as i64 {
            g.set((i, 0).into(), CellState::Occupied);
            g.set((i, n as i64 - 1).into(), CellState::Occupied);
            g.set((0, i).into(), CellState::Occupied);
            g.set((n as i64 - 1, i).into(), CellState::Occupied);
        }
        g
    }

    /// A scan that, from the room center facing +x, exactly hits the walls
    /// in the four cardinal directions.
    fn cardinal_scan() -> LaserScan {
        LaserScan::new(
            0.0,
            std::f64::consts::FRAC_PI_2,
            vec![4.9, 4.9, 4.9, 4.9],
            10.0,
        )
    }

    #[test]
    fn perfect_pose_aligns_everything() {
        let scorer = ScanAlignmentScorer::new(&room(), 0.2, Pose2::IDENTITY);
        let s = scorer.score(Pose2::new(5.0, 5.0, 0.0), &cardinal_scan());
        assert!((s - 1.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn shifted_pose_breaks_alignment() {
        let scorer = ScanAlignmentScorer::new(&room(), 0.2, Pose2::IDENTITY);
        // Shift 1 m: two beams now end 1 m off the walls, two still on
        // (the ones perpendicular to the shift remain near the boundary).
        let s = scorer.score(Pose2::new(4.0, 5.0, 0.0), &cardinal_scan());
        assert!(s < 0.8, "{s}");
        // Rotated 45° at the center every endpoint lands mid-air.
        let bad = scorer.score(
            Pose2::new(5.0, 5.0, std::f64::consts::FRAC_PI_4),
            &cardinal_scan(),
        );
        assert_eq!(bad, 0.0);
    }

    #[test]
    fn tolerance_widens_acceptance() {
        let map = room();
        let tight = ScanAlignmentScorer::new(&map, 0.05, Pose2::IDENTITY);
        let loose = ScanAlignmentScorer::new(&map, 0.5, Pose2::IDENTITY);
        let pose = Pose2::new(4.8, 5.0, 0.0);
        assert!(loose.score(pose, &cardinal_scan()) >= tight.score(pose, &cardinal_scan()));
    }

    #[test]
    fn mount_offset_is_applied() {
        let scorer = ScanAlignmentScorer::new(&room(), 0.2, Pose2::new(1.0, 0.0, 0.0));
        // Body at x=4: sensor at x=5 → the cardinal scan fits again.
        let s = scorer.score(Pose2::new(4.0, 5.0, 0.0), &cardinal_scan());
        assert!((s - 1.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn max_range_beams_are_ignored() {
        let scorer = ScanAlignmentScorer::new(&room(), 0.2, Pose2::IDENTITY);
        let scan = LaserScan::new(0.0, 0.1, vec![10.0, 10.0], 10.0);
        assert_eq!(scorer.score(Pose2::new(5.0, 5.0, 0.0), &scan), 0.0);
    }

    #[test]
    fn mean_percentage_over_pairs() {
        let scorer = ScanAlignmentScorer::new(&room(), 0.2, Pose2::IDENTITY);
        let scan = cardinal_scan();
        let pairs = vec![
            (Pose2::new(5.0, 5.0, 0.0), &scan),
            (Pose2::new(5.0, 5.0, 0.0), &scan),
        ];
        let pct = scorer.mean_percentage(pairs);
        assert!((pct - 100.0).abs() < 1e-9);
        assert_eq!(scorer.mean_percentage(std::iter::empty()), 0.0);
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn zero_tolerance_panics() {
        ScanAlignmentScorer::new(&room(), 0.0, Pose2::IDENTITY);
    }
}
