//! Lap timing from a timestamped pose trace.

use raceloc_core::Pose2;
use raceloc_map::ClosedPath;

/// Extracts completed lap times from a `(stamp, pose)` trace following a
/// closed reference path.
///
/// Progress along the path is unwrapped sample-to-sample (using the
/// shortest signed arc delta), and a lap completes every time the unwrapped
/// progress advances by one full path length. The crossing instant is
/// linearly interpolated between samples, so timing resolution is better
/// than the sampling period.
///
/// Incomplete laps (including the currently running one) are not reported.
///
/// # Examples
///
/// ```
/// use raceloc_map::ClosedPath;
/// use raceloc_core::{Point2, Pose2};
/// use raceloc_metrics::lap_times;
///
/// let square = ClosedPath::new(vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(4.0, 0.0),
///     Point2::new(4.0, 4.0),
///     Point2::new(0.0, 4.0),
/// ]).unwrap();
/// // Constant 2 m/s around the 16 m square: one lap every 8 s.
/// let trace: Vec<(f64, Pose2)> = (0..200)
///     .map(|i| {
///         let t = i as f64 * 0.1;
///         let p = square.point_at(2.0 * t);
///         (t, Pose2::new(p.x, p.y, 0.0))
///     })
///     .collect();
/// let laps = lap_times(&trace, &square);
/// assert_eq!(laps.len(), 2);
/// assert!((laps[0] - 8.0).abs() < 0.2);
/// ```
pub fn lap_times(trace: &[(f64, Pose2)], path: &ClosedPath) -> Vec<f64> {
    if trace.len() < 2 {
        return Vec::new();
    }
    let total = path.total_length();
    let mut laps = Vec::new();
    let (mut prev_t, first_pose) = trace[0];
    let (mut prev_s, _) = path.project(first_pose.translation());
    let mut unwrapped = 0.0f64;
    let mut lap_start_time = prev_t;
    let mut next_lap_at = total;
    for &(t, pose) in &trace[1..] {
        let (s, _) = path.project(pose.translation());
        let delta = path.signed_arc_delta(prev_s, s);
        let new_unwrapped = unwrapped + delta;
        while new_unwrapped >= next_lap_at {
            // Interpolate the crossing time within this sample interval.
            let frac = if delta.abs() > 1e-12 {
                (next_lap_at - unwrapped) / delta
            } else {
                1.0
            };
            let crossing = prev_t + frac.clamp(0.0, 1.0) * (t - prev_t);
            laps.push(crossing - lap_start_time);
            lap_start_time = crossing;
            next_lap_at += total;
        }
        unwrapped = new_unwrapped;
        prev_s = s;
        prev_t = t;
    }
    laps
}

/// Total unwrapped arc-length progress of a pose trace along a path,
/// in meters (forward minus backward motion).
pub fn total_progress(trace: &[(f64, Pose2)], path: &ClosedPath) -> f64 {
    if trace.len() < 2 {
        return 0.0;
    }
    let mut prev_s = path.project(trace[0].1.translation()).0;
    let mut acc = 0.0;
    for &(_, pose) in &trace[1..] {
        let (s, _) = path.project(pose.translation());
        acc += path.signed_arc_delta(prev_s, s);
        prev_s = s;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use raceloc_core::Point2;

    fn square() -> ClosedPath {
        ClosedPath::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(4.0, 0.0),
            Point2::new(4.0, 4.0),
            Point2::new(0.0, 4.0),
        ])
        .expect("valid path")
    }

    fn circulate(laps: f64, speed: f64, dt: f64) -> Vec<(f64, Pose2)> {
        let path = square();
        let total = path.total_length();
        let duration = laps * total / speed;
        let n = (duration / dt) as usize;
        (0..=n)
            .map(|i| {
                let t = i as f64 * dt;
                let p = path.point_at(speed * t);
                (t, Pose2::new(p.x, p.y, 0.0))
            })
            .collect()
    }

    #[test]
    fn counts_completed_laps_only() {
        let path = square();
        assert_eq!(lap_times(&circulate(2.5, 2.0, 0.05), &path).len(), 2);
        assert_eq!(lap_times(&circulate(0.9, 2.0, 0.05), &path).len(), 0);
    }

    #[test]
    fn lap_time_matches_speed() {
        let path = square();
        let laps = lap_times(&circulate(3.2, 4.0, 0.025), &path);
        assert_eq!(laps.len(), 3);
        for lap in laps {
            assert!((lap - 4.0).abs() < 0.06, "lap {lap}");
        }
    }

    #[test]
    fn variable_speed_laps_differ() {
        // First lap at 2 m/s, second at 4 m/s.
        let path = square();
        let total = path.total_length();
        let mut trace = Vec::new();
        let dt = 0.02;
        let mut s = 0.0;
        let mut t = 0.0;
        while s < total {
            let p = path.point_at(s);
            trace.push((t, Pose2::new(p.x, p.y, 0.0)));
            s += 2.0 * dt;
            t += dt;
        }
        while s < 2.0 * total + 0.5 {
            let p = path.point_at(s);
            trace.push((t, Pose2::new(p.x, p.y, 0.0)));
            s += 4.0 * dt;
            t += dt;
        }
        let laps = lap_times(&trace, &path);
        assert_eq!(laps.len(), 2);
        assert!((laps[0] - 8.0).abs() < 0.15, "{laps:?}");
        assert!((laps[1] - 4.0).abs() < 0.15, "{laps:?}");
    }

    #[test]
    fn standing_still_yields_no_laps() {
        let path = square();
        let trace: Vec<(f64, Pose2)> = (0..100)
            .map(|i| (i as f64 * 0.1, Pose2::IDENTITY))
            .collect();
        assert!(lap_times(&trace, &path).is_empty());
    }

    #[test]
    fn jitter_at_start_line_does_not_double_count() {
        // Oscillate across the start line: the unwrapped progress never
        // reaches one lap, so nothing is counted.
        let path = square();
        let trace: Vec<(f64, Pose2)> = (0..200)
            .map(|i| {
                let t = i as f64 * 0.05;
                let s = 0.3 * (t * 3.0).sin();
                let p = path.point_at(s);
                (t, Pose2::new(p.x, p.y, 0.0))
            })
            .collect();
        assert!(lap_times(&trace, &path).is_empty());
    }

    #[test]
    fn progress_accumulates_signed() {
        let path = square();
        let forward = circulate(1.5, 2.0, 0.05);
        let p = total_progress(&forward, &path);
        assert!((p - 1.5 * path.total_length()).abs() < 0.3, "{p}");
    }

    #[test]
    fn short_traces_are_benign() {
        let path = square();
        assert!(lap_times(&[], &path).is_empty());
        assert!(lap_times(&[(0.0, Pose2::IDENTITY)], &path).is_empty());
        assert_eq!(total_progress(&[], &path), 0.0);
    }
}
