//! Binomial confidence intervals for Monte-Carlo success rates.
//!
//! Fleet evaluation reports each cell's success rate over a finite number
//! of seed replicates; a point estimate alone ("18/20 succeeded") hides
//! how little 20 samples constrain the true rate. The Wilson score
//! interval is the standard small-sample choice: unlike the normal
//! (Wald) approximation it never leaves `[0, 1]`, stays informative at 0
//! or n successes, and is accurate down to a handful of trials.

/// A binomial proportion with its confidence bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateInterval {
    /// The observed proportion `successes / trials` (0 when `trials` is 0).
    pub rate: f64,
    /// Lower confidence bound.
    pub lo: f64,
    /// Upper confidence bound.
    pub hi: f64,
}

/// The Wilson score interval for `successes` out of `trials` at normal
/// quantile `z` (e.g. 1.96 for 95% coverage).
///
/// With zero trials the proportion is unconstrained: the interval is the
/// maximally uninformative `[0, 1]` around a rate of 0.
///
/// # Examples
///
/// ```
/// use raceloc_metrics::interval::wilson_interval;
///
/// let iv = wilson_interval(18, 20, 1.96);
/// assert!((iv.rate - 0.9).abs() < 1e-12);
/// assert!(iv.lo > 0.65 && iv.lo < 0.9);
/// assert!(iv.hi > 0.9 && iv.hi < 1.0);
/// ```
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> RateInterval {
    if trials == 0 {
        return RateInterval {
            rate: 0.0,
            lo: 0.0,
            hi: 1.0,
        };
    }
    let n = trials as f64;
    let p = (successes.min(trials)) as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    RateInterval {
        rate: p,
        lo: (center - half).max(0.0),
        hi: (center + half).min(1.0),
    }
}

/// [`wilson_interval`] at 95% coverage (z = 1.96), the fleet-report
/// default.
pub fn wilson95(successes: u64, trials: u64) -> RateInterval {
    wilson_interval(successes, trials, 1.96)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_brackets_the_point_estimate() {
        for (s, n) in [(0u64, 20u64), (1, 20), (10, 20), (19, 20), (20, 20)] {
            let iv = wilson95(s, n);
            assert!(iv.lo <= iv.rate + 1e-12, "{s}/{n}: lo {} > rate", iv.lo);
            assert!(iv.hi >= iv.rate - 1e-12, "{s}/{n}: hi {} < rate", iv.hi);
            assert!((0.0..=1.0).contains(&iv.lo));
            assert!((0.0..=1.0).contains(&iv.hi));
        }
    }

    #[test]
    fn extremes_stay_informative() {
        // Unlike Wald, Wilson gives a non-degenerate interval at 0/n and n/n.
        let zero = wilson95(0, 20);
        assert_eq!(zero.rate, 0.0);
        assert_eq!(zero.lo, 0.0);
        assert!(zero.hi > 0.1 && zero.hi < 0.3, "hi = {}", zero.hi);
        let full = wilson95(20, 20);
        assert_eq!(full.rate, 1.0);
        assert_eq!(full.hi, 1.0);
        assert!(full.lo > 0.7 && full.lo < 0.9, "lo = {}", full.lo);
    }

    #[test]
    fn more_trials_tighten_the_interval() {
        let small = wilson95(9, 10);
        let large = wilson95(900, 1000);
        assert!((large.hi - large.lo) < (small.hi - small.lo) / 3.0);
    }

    #[test]
    fn known_value_matches_reference() {
        // Canonical textbook case: 45/50 at 95% → approximately
        // [0.7864, 0.9565] (center 0.938416/1.076832, half-width
        // (1.96/1.076832)·√(0.09/50 + 3.8416/10000)).
        let iv = wilson95(45, 50);
        assert!((iv.lo - 0.7864).abs() < 2e-3, "lo = {}", iv.lo);
        assert!((iv.hi - 0.9565).abs() < 2e-3, "hi = {}", iv.hi);
    }

    #[test]
    fn zero_trials_are_unconstrained() {
        let iv = wilson95(0, 0);
        assert_eq!((iv.rate, iv.lo, iv.hi), (0.0, 0.0, 1.0));
        // Successes beyond trials are clamped rather than extrapolated.
        let iv = wilson95(5, 3);
        assert_eq!(iv.rate, 1.0);
    }

    #[test]
    fn wider_z_widens_the_interval() {
        let narrow = wilson_interval(15, 20, 1.0);
        let wide = wilson_interval(15, 20, 2.58);
        assert!(wide.lo < narrow.lo && wide.hi > narrow.hi);
    }
}
