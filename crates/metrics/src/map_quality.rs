//! Map-quality metrics: how well does a SLAM-built map reproduce the
//! ground-truth occupancy grid?
//!
//! Wall cells are compared with a distance tolerance (a wall drawn one cell
//! off is still a wall), yielding precision / recall / F1 over the occupied
//! class plus free-space IoU — the standard grid-map evaluation suite.

use raceloc_core::Point2;
use raceloc_map::{CellState, DistanceMap, OccupancyGrid};

/// The comparison result of [`compare_maps`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapQuality {
    /// Fraction of mapped wall cells that lie within tolerance of a true
    /// wall (1 − hallucinated walls).
    pub wall_precision: f64,
    /// Fraction of true wall cells that have a mapped wall within
    /// tolerance (1 − missed walls).
    pub wall_recall: f64,
    /// Harmonic mean of precision and recall.
    pub wall_f1: f64,
    /// Intersection-over-union of the free-space regions.
    pub free_iou: f64,
    /// Fraction of the true free space the map explored (classified at all).
    pub coverage: f64,
}

/// Compares a (SLAM-built) map against the ground truth.
///
/// The grids may have different extents and resolutions; comparison happens
/// in world coordinates over the *intersection* of the two extents (wall
/// metrics) and on the truth grid's lattice. `tolerance` is the
/// wall-matching distance in meters.
///
/// # Panics
///
/// Panics when `tolerance` is negative.
///
/// # Examples
///
/// ```
/// use raceloc_map::{CellState, OccupancyGrid};
/// use raceloc_core::Point2;
/// use raceloc_metrics::map_quality::compare_maps;
///
/// let mut truth = OccupancyGrid::new(20, 20, 0.1, Point2::ORIGIN);
/// truth.fill(CellState::Free);
/// for i in 0..20i64 { truth.set((i, 0).into(), CellState::Occupied); }
/// let q = compare_maps(&truth, &truth, 0.1);
/// assert!(q.wall_f1 > 0.99 && q.free_iou > 0.99);
/// ```
pub fn compare_maps(truth: &OccupancyGrid, built: &OccupancyGrid, tolerance: f64) -> MapQuality {
    assert!(tolerance >= 0.0, "tolerance must be non-negative");
    let truth_walls = DistanceMap::from_grid_with(truth, |s| s == CellState::Occupied);
    let built_walls = DistanceMap::from_grid_with(built, |s| s == CellState::Occupied);

    let mut wall_tp = 0usize; // built wall near a true wall
    let mut built_wall_total = 0usize;
    for (idx, state) in built.iter() {
        if state != CellState::Occupied {
            continue;
        }
        let w = built.index_to_world(idx);
        // Evaluate on the intersection of the two extents (out-of-extent
        // distance would read as 0 under the opaque convention).
        if !truth.contains(truth.world_to_index(w)) {
            continue;
        }
        built_wall_total += 1;
        if truth_walls.distance_at_world(w) <= tolerance {
            wall_tp += 1;
        }
    }

    let mut truth_wall_found = 0usize;
    let mut truth_wall_total = 0usize;
    let mut free_truth = 0usize;
    let mut free_both = 0usize;
    let mut free_either = 0usize;
    let mut explored = 0usize;
    for (idx, state) in truth.iter() {
        let w = truth.index_to_world(idx);
        match state {
            CellState::Occupied => {
                if !built.contains(built.world_to_index(w)) {
                    continue;
                }
                truth_wall_total += 1;
                if built_walls.distance_at_world(w) <= tolerance {
                    truth_wall_found += 1;
                }
            }
            CellState::Free => {
                free_truth += 1;
                let b = built.state_at_world(w);
                if b != CellState::Unknown {
                    explored += 1;
                }
                match b {
                    CellState::Free => {
                        free_both += 1;
                        free_either += 1;
                    }
                    _ => free_either += 1,
                }
            }
            CellState::Unknown => {}
        }
    }
    // Free cells only in the built map (inside the truth's extent).
    for (idx, state) in built.iter() {
        if state == CellState::Free {
            let w = built.index_to_world(idx);
            if truth.state_at_world(w) != CellState::Free && truth.contains(truth.world_to_index(w))
            {
                free_either += 1;
            }
        }
    }

    let precision = if built_wall_total == 0 {
        0.0
    } else {
        wall_tp as f64 / built_wall_total as f64
    };
    let recall = if truth_wall_total == 0 {
        0.0
    } else {
        truth_wall_found as f64 / truth_wall_total as f64
    };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    MapQuality {
        wall_precision: precision,
        wall_recall: recall,
        wall_f1: f1,
        free_iou: if free_either == 0 {
            0.0
        } else {
            free_both as f64 / free_either as f64
        },
        coverage: if free_truth == 0 {
            0.0
        } else {
            explored as f64 / free_truth as f64
        },
    }
}

/// Convenience: quality of a map against itself shifted by `offset` —
/// useful for calibrating how the metrics respond to known misalignment.
pub fn self_quality_with_offset(
    truth: &OccupancyGrid,
    offset: Point2,
    tolerance: f64,
) -> MapQuality {
    let mut shifted = OccupancyGrid::new(
        truth.width(),
        truth.height(),
        truth.resolution(),
        truth.origin() + offset,
    );
    for (idx, state) in truth.iter() {
        shifted.set(idx, state);
    }
    compare_maps(truth, &shifted, tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn room() -> OccupancyGrid {
        let n = 40;
        let mut g = OccupancyGrid::new(n, n, 0.1, Point2::ORIGIN);
        g.fill(CellState::Free);
        for i in 0..n as i64 {
            g.set((i, 0).into(), CellState::Occupied);
            g.set((i, n as i64 - 1).into(), CellState::Occupied);
            g.set((0, i).into(), CellState::Occupied);
            g.set((n as i64 - 1, i).into(), CellState::Occupied);
        }
        g
    }

    #[test]
    fn identical_maps_are_perfect() {
        let g = room();
        let q = compare_maps(&g, &g, 0.05);
        assert!(q.wall_precision > 0.999);
        assert!(q.wall_recall > 0.999);
        assert!(q.free_iou > 0.999);
        assert!((q.coverage - 1.0).abs() < 1e-9);
    }

    #[test]
    fn small_shift_within_tolerance_keeps_f1() {
        let g = room();
        let q = self_quality_with_offset(&g, Point2::new(0.08, 0.0), 0.15);
        assert!(q.wall_f1 > 0.95, "f1 {}", q.wall_f1);
    }

    #[test]
    fn large_shift_destroys_f1() {
        let g = room();
        let q = self_quality_with_offset(&g, Point2::new(1.0, 1.0), 0.1);
        assert!(q.wall_f1 < 0.6, "f1 {}", q.wall_f1);
        assert!(q.free_iou < 0.8);
    }

    #[test]
    fn hallucinated_walls_hit_precision_not_recall() {
        let truth = room();
        let mut built = truth.clone();
        for i in 10..30i64 {
            built.set((i, 20).into(), CellState::Occupied);
        }
        let q = compare_maps(&truth, &built, 0.05);
        assert!(q.wall_precision < 0.95);
        assert!(q.wall_recall > 0.999);
    }

    #[test]
    fn missing_walls_hit_recall_not_precision() {
        let truth = room();
        let mut built = truth.clone();
        for i in 0..20i64 {
            built.set((i, 0).into(), CellState::Free);
        }
        let q = compare_maps(&truth, &built, 0.05);
        assert!(q.wall_recall < 0.95);
        assert!(q.wall_precision > 0.999);
    }

    #[test]
    fn unexplored_map_scores_low_coverage() {
        let truth = room();
        let built = OccupancyGrid::new(40, 40, 0.1, Point2::ORIGIN); // all unknown
        let q = compare_maps(&truth, &built, 0.05);
        assert_eq!(q.coverage, 0.0);
        assert_eq!(q.wall_precision, 0.0);
    }

    #[test]
    fn different_resolutions_compare() {
        let truth = room();
        // Same room at half resolution.
        let n = 20;
        let mut coarse = OccupancyGrid::new(n, n, 0.2, Point2::ORIGIN);
        coarse.fill(CellState::Free);
        for i in 0..n as i64 {
            coarse.set((i, 0).into(), CellState::Occupied);
            coarse.set((i, n as i64 - 1).into(), CellState::Occupied);
            coarse.set((0, i).into(), CellState::Occupied);
            coarse.set((n as i64 - 1, i).into(), CellState::Occupied);
        }
        let q = compare_maps(&truth, &coarse, 0.25);
        assert!(q.wall_f1 > 0.8, "f1 {}", q.wall_f1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_tolerance_panics() {
        let g = room();
        compare_maps(&g, &g, -0.1);
    }
}
