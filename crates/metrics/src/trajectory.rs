//! Trajectory error metrics for SLAM evaluation: absolute trajectory error
//! (ATE) and relative pose error (RPE), following Sturm et al. (2012).

use raceloc_core::{Pose2, RunningStats, Summary};

/// Absolute trajectory error: per-pose translation distance between
/// ground-truth and estimated trajectories, after rigid alignment of the
/// first pose (the usual convention for a tracker initialized at truth).
///
/// # Panics
///
/// Panics when the slices have different lengths.
///
/// # Examples
///
/// ```
/// use raceloc_core::Pose2;
/// use raceloc_metrics::trajectory::absolute_trajectory_error;
///
/// let truth = vec![Pose2::IDENTITY, Pose2::new(1.0, 0.0, 0.0)];
/// let est = vec![Pose2::IDENTITY, Pose2::new(1.1, 0.0, 0.0)];
/// let ate = absolute_trajectory_error(&truth, &est);
/// assert!((ate.mean - 0.05).abs() < 1e-9);
/// ```
pub fn absolute_trajectory_error(truth: &[Pose2], estimate: &[Pose2]) -> Summary {
    assert_eq!(truth.len(), estimate.len(), "trajectory length mismatch");
    if truth.is_empty() {
        return Summary::default();
    }
    // Align the estimate's first pose onto the truth's first pose.
    let align = truth[0] * estimate[0].inverse();
    truth
        .iter()
        .zip(estimate)
        .map(|(t, e)| t.dist(align * *e))
        .collect::<RunningStats>()
        .summary()
}

/// Relative pose error over a fixed step: the translation error of the
/// estimated motion `e_i → e_{i+step}` against the true motion, per window.
///
/// # Panics
///
/// Panics when lengths differ or `step == 0`.
pub fn relative_pose_error(truth: &[Pose2], estimate: &[Pose2], step: usize) -> Summary {
    assert_eq!(truth.len(), estimate.len(), "trajectory length mismatch");
    assert!(step > 0, "step must be positive");
    let mut stats = RunningStats::new();
    for i in 0..truth.len().saturating_sub(step) {
        let true_motion = truth[i].relative_to(truth[i + step]);
        let est_motion = estimate[i].relative_to(estimate[i + step]);
        stats.push(true_motion.dist(est_motion));
    }
    stats.summary()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize, step: f64) -> Vec<Pose2> {
        (0..n)
            .map(|i| Pose2::new(i as f64 * step, 0.0, 0.0))
            .collect()
    }

    #[test]
    fn identical_trajectories_zero_error() {
        let t = line(20, 0.5);
        assert_eq!(absolute_trajectory_error(&t, &t).mean, 0.0);
        assert_eq!(relative_pose_error(&t, &t, 3).mean, 0.0);
    }

    #[test]
    fn ate_aligns_first_pose() {
        // The estimate lives in a different frame; ATE must still be zero
        // after first-pose alignment.
        let truth = line(10, 1.0);
        let offset = Pose2::new(5.0, -3.0, 1.2);
        let est: Vec<Pose2> = truth.iter().map(|p| offset * *p).collect();
        let ate = absolute_trajectory_error(&truth, &est);
        assert!(ate.mean < 1e-9, "{}", ate.mean);
    }

    #[test]
    fn rpe_catches_scale_drift() {
        let truth = line(50, 1.0);
        // Estimate overcounts distance by 10% (wheelspin-like drift).
        let est = line(50, 1.1);
        let rpe = relative_pose_error(&truth, &est, 1);
        assert!((rpe.mean - 0.1).abs() < 1e-9, "{}", rpe.mean);
        // ATE grows with trajectory length instead.
        let ate = absolute_trajectory_error(&truth, &est);
        assert!(ate.max > 4.0);
    }

    #[test]
    fn empty_trajectories_are_benign() {
        assert_eq!(absolute_trajectory_error(&[], &[]).count, 0);
        assert_eq!(relative_pose_error(&[], &[], 1).count, 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        absolute_trajectory_error(&line(3, 1.0), &line(4, 1.0));
    }

    #[test]
    #[should_panic(expected = "step")]
    fn zero_step_panics() {
        relative_pose_error(&line(3, 1.0), &line(3, 1.0), 0);
    }
}
