#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! Evaluation metrics for racing localization — the proxy measurements of
//! the paper's Table I plus standard trajectory-error metrics.
//!
//! - [`lap::lap_times`]: lap-time extraction from a pose trace;
//! - [`error`]: lateral deviation from the raceline and estimation error;
//! - [`alignment::ScanAlignmentScorer`]: the scan-alignment percentage
//!   ("overlap of scan endpoints with the track boundary");
//! - [`latency`]: compute-time summaries and the CPU-load proxy;
//! - [`trajectory`]: absolute/relative trajectory error (ATE / RPE) for
//!   SLAM evaluation;
//! - [`map_quality`]: wall precision/recall/F1 and free-space IoU of a
//!   SLAM-built map against ground truth;
//! - [`interval`]: Wilson binomial confidence intervals for Monte-Carlo
//!   success rates (fleet evaluation).

pub mod alignment;
pub mod error;
pub mod interval;
pub mod lap;
pub mod latency;
pub mod map_quality;
pub mod trajectory;

pub use alignment::ScanAlignmentScorer;
pub use interval::{wilson95, wilson_interval, RateInterval};
pub use lap::lap_times;
pub use map_quality::{compare_maps, MapQuality};
