//! Lateral-deviation and estimation-error metrics.

use raceloc_core::{Pose2, RunningStats, Summary};
use raceloc_map::ClosedPath;

/// Absolute lateral deviation of each pose from a reference line, in meters.
///
/// This is the paper's "average lateral error with respect to the ideal race
/// line": it measures where the *car actually drove*, so localization error
/// shows up through the controller.
///
/// # Examples
///
/// ```
/// use raceloc_map::ClosedPath;
/// use raceloc_core::{Point2, Pose2};
/// use raceloc_metrics::error::lateral_deviations;
///
/// let square = ClosedPath::new(vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(4.0, 0.0),
///     Point2::new(4.0, 4.0),
///     Point2::new(0.0, 4.0),
/// ]).unwrap();
/// let dev = lateral_deviations(&[Pose2::new(2.0, 0.25, 0.0)], &square);
/// assert!((dev[0] - 0.25).abs() < 1e-9);
/// ```
pub fn lateral_deviations(poses: &[Pose2], line: &ClosedPath) -> Vec<f64> {
    poses
        .iter()
        .map(|p| line.project(p.translation()).1.abs())
        .collect()
}

/// Summarizes the lateral deviation of a pose trace from a reference line.
pub fn lateral_deviation_summary(poses: &[Pose2], line: &ClosedPath) -> Summary {
    lateral_deviations(poses, line)
        .into_iter()
        .collect::<RunningStats>()
        .summary()
}

/// Per-sample estimation errors between truth and estimate:
/// `(translation distance [m], absolute heading error [rad])`.
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn estimation_errors(truth: &[Pose2], estimate: &[Pose2]) -> Vec<(f64, f64)> {
    assert_eq!(
        truth.len(),
        estimate.len(),
        "truth/estimate length mismatch"
    );
    truth
        .iter()
        .zip(estimate)
        .map(|(t, e)| (t.dist(*e), t.heading_dist(*e)))
        .collect()
}

/// Summary of the translation component of the estimation error.
pub fn translation_error_summary(truth: &[Pose2], estimate: &[Pose2]) -> Summary {
    estimation_errors(truth, estimate)
        .into_iter()
        .map(|(d, _)| d)
        .collect::<RunningStats>()
        .summary()
}

#[cfg(test)]
mod tests {
    use super::*;
    use raceloc_core::Point2;

    fn square() -> ClosedPath {
        ClosedPath::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(4.0, 0.0),
            Point2::new(4.0, 4.0),
            Point2::new(0.0, 4.0),
        ])
        .expect("valid path")
    }

    #[test]
    fn deviation_is_absolute() {
        let line = square();
        let dev = lateral_deviations(
            &[
                Pose2::new(2.0, 0.3, 0.0),
                Pose2::new(2.0, -0.3, 0.0),
                Pose2::new(2.0, 0.0, 1.0),
            ],
            &line,
        );
        assert!((dev[0] - 0.3).abs() < 1e-9);
        assert!((dev[1] - 0.3).abs() < 1e-9);
        assert!(dev[2] < 1e-9);
    }

    #[test]
    fn summary_mean_and_std() {
        let line = square();
        let poses = vec![Pose2::new(2.0, 0.1, 0.0), Pose2::new(2.0, 0.3, 0.0)];
        let s = lateral_deviation_summary(&poses, &line);
        assert!((s.mean - 0.2).abs() < 1e-9);
        assert_eq!(s.count, 2);
    }

    #[test]
    fn estimation_error_components() {
        let truth = vec![Pose2::new(0.0, 0.0, 0.0)];
        let est = vec![Pose2::new(3.0, 4.0, 0.5)];
        let errs = estimation_errors(&truth, &est);
        assert!((errs[0].0 - 5.0).abs() < 1e-12);
        assert!((errs[0].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perfect_estimate_is_zero_error() {
        let poses = vec![Pose2::new(1.0, 2.0, 0.7); 5];
        let s = translation_error_summary(&poses, &poses);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        estimation_errors(&[Pose2::IDENTITY], &[]);
    }

    #[test]
    fn empty_inputs_are_benign() {
        let line = square();
        assert!(lateral_deviations(&[], &line).is_empty());
        let s = lateral_deviation_summary(&[], &line);
        assert_eq!(s.count, 0);
    }
}
