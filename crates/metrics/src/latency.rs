//! Compute-time summaries and the CPU-load proxy of Table I.

use raceloc_core::{RunningStats, Summary};

/// Summarizes a series of per-call wall-clock durations (seconds).
pub fn latency_summary(durations_s: &[f64]) -> Summary {
    durations_s
        .iter()
        .copied()
        .collect::<RunningStats>()
        .summary()
}

/// The paper's "Load avg" proxy: percentage of one CPU core consumed by a
/// periodic task, `100 · duration · rate`.
///
/// # Examples
///
/// ```
/// use raceloc_metrics::latency::cpu_load_percent;
///
/// // 1.25 ms per scan at 40 Hz → 5% of a core.
/// let load = cpu_load_percent(1.25e-3, 40.0);
/// assert!((load - 5.0).abs() < 1e-9);
/// ```
pub fn cpu_load_percent(mean_duration_s: f64, rate_hz: f64) -> f64 {
    100.0 * mean_duration_s * rate_hz
}

/// Combined load of the correction task plus a prediction task running at a
/// different rate.
pub fn combined_load_percent(
    correct_mean_s: f64,
    correct_hz: f64,
    predict_mean_s: f64,
    predict_hz: f64,
) -> f64 {
    cpu_load_percent(correct_mean_s, correct_hz) + cpu_load_percent(predict_mean_s, predict_hz)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = latency_summary(&[1e-3, 2e-3, 3e-3]);
        assert!((s.mean - 2e-3).abs() < 1e-12);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1e-3);
        assert_eq!(s.max, 3e-3);
    }

    #[test]
    fn empty_summary() {
        let s = latency_summary(&[]);
        assert_eq!(s.count, 0);
    }

    #[test]
    fn load_scales_linearly() {
        assert_eq!(cpu_load_percent(0.01, 10.0), 10.0);
        assert_eq!(cpu_load_percent(0.0, 100.0), 0.0);
    }

    #[test]
    fn combined_load_adds() {
        let total = combined_load_percent(1e-3, 40.0, 0.5e-3, 50.0);
        assert!((total - (4.0 + 2.5)).abs() < 1e-9);
    }
}
