//! Compute-time summaries and the CPU-load proxy of Table I.

use raceloc_core::{RunningStats, Summary};

/// Summarizes a series of per-call wall-clock durations (seconds).
pub fn latency_summary(durations_s: &[f64]) -> Summary {
    durations_s
        .iter()
        .copied()
        .collect::<RunningStats>()
        .summary()
}

/// The paper's "Load avg" proxy: percentage of one CPU core consumed by a
/// periodic task, `100 · duration · rate`.
///
/// # Examples
///
/// ```
/// use raceloc_metrics::latency::cpu_load_percent;
///
/// // 1.25 ms per scan at 40 Hz → 5% of a core.
/// let load = cpu_load_percent(1.25e-3, 40.0);
/// assert!((load - 5.0).abs() < 1e-9);
/// ```
pub fn cpu_load_percent(mean_duration_s: f64, rate_hz: f64) -> f64 {
    100.0 * mean_duration_s * rate_hz
}

/// Combined load of the correction task plus a prediction task running at a
/// different rate.
pub fn combined_load_percent(
    correct_mean_s: f64,
    correct_hz: f64,
    predict_mean_s: f64,
    predict_hz: f64,
) -> f64 {
    cpu_load_percent(correct_mean_s, correct_hz) + cpu_load_percent(predict_mean_s, predict_hz)
}

/// Load proxy computed directly from a recorded telemetry span.
pub fn span_load_percent(span: &raceloc_obs::SpanStat, rate_hz: f64) -> f64 {
    cpu_load_percent(span.mean_seconds(), rate_hz)
}

/// The closed-loop load of Table I computed from a telemetry snapshot: the
/// `sim.correct` span at the LiDAR rate plus the `sim.predict` span at the
/// odometry rate. Returns `None` when the snapshot holds neither span
/// (e.g. telemetry was disabled for the run).
pub fn snapshot_load_percent(
    snap: &raceloc_obs::Snapshot,
    lidar_hz: f64,
    odom_hz: f64,
) -> Option<f64> {
    let correct = snap
        .span("sim.correct")
        .map(|s| span_load_percent(s, lidar_hz));
    let predict = snap
        .span("sim.predict")
        .map(|s| span_load_percent(s, odom_hz));
    match (correct, predict) {
        (None, None) => None,
        (c, p) => Some(c.unwrap_or(0.0) + p.unwrap_or(0.0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = latency_summary(&[1e-3, 2e-3, 3e-3]);
        assert!((s.mean - 2e-3).abs() < 1e-12);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1e-3);
        assert_eq!(s.max, 3e-3);
    }

    #[test]
    fn empty_summary() {
        let s = latency_summary(&[]);
        assert_eq!(s.count, 0);
    }

    #[test]
    fn load_scales_linearly() {
        assert_eq!(cpu_load_percent(0.01, 10.0), 10.0);
        assert_eq!(cpu_load_percent(0.0, 100.0), 0.0);
    }

    #[test]
    fn combined_load_adds() {
        let total = combined_load_percent(1e-3, 40.0, 0.5e-3, 50.0);
        assert!((total - (4.0 + 2.5)).abs() < 1e-9);
    }

    #[test]
    fn snapshot_load_matches_recorded_spans() {
        let tel = raceloc_obs::Telemetry::enabled();
        tel.record_span("sim.correct", 1.25e-3);
        tel.record_span("sim.predict", 0.5e-3);
        let snap = tel.snapshot();
        // 1.25 ms at 40 Hz (5%) + 0.5 ms at 50 Hz (2.5%).
        let load = snapshot_load_percent(&snap, 40.0, 50.0).expect("spans present");
        assert!((load - 7.5).abs() < 1e-9);

        let empty = raceloc_obs::Telemetry::enabled().snapshot();
        assert_eq!(snapshot_load_percent(&empty, 40.0, 50.0), None);
    }
}
