//! Property-based tests for grids, distance transforms, and closed paths.

use proptest::prelude::*;
use raceloc_core::Point2;
use raceloc_map::{CellState, ClosedPath, DistanceMap, GridIndex, OccupancyGrid};

fn arb_grid() -> impl Strategy<Value = OccupancyGrid> {
    (
        4usize..24,
        4usize..24,
        0.05..0.5f64,
        -10.0..10.0f64,
        -10.0..10.0f64,
        prop::collection::vec(0u8..3, 16..=576),
    )
        .prop_map(|(w, h, res, ox, oy, cells)| {
            let mut g = OccupancyGrid::new(w, h, res, Point2::new(ox, oy));
            for (i, &c) in cells.iter().take(w * h).enumerate() {
                let idx = GridIndex::new((i % w) as i64, (i / w) as i64);
                let state = match c {
                    0 => CellState::Free,
                    1 => CellState::Occupied,
                    _ => CellState::Unknown,
                };
                g.set(idx, state);
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn world_index_roundtrip_on_cell_centers(g in arb_grid()) {
        for (idx, _) in g.iter() {
            let p = g.index_to_world(idx);
            prop_assert_eq!(g.world_to_index(p), idx);
        }
    }

    #[test]
    fn out_of_bounds_is_unknown_and_opaque(g in arb_grid(),
                                           c in -5i64..30, r in -5i64..30) {
        let idx = GridIndex::new(c, r);
        if !g.contains(idx) {
            prop_assert_eq!(g.state(idx), CellState::Unknown);
            prop_assert!(g.is_opaque(idx));
        }
    }

    #[test]
    fn census_counts_sum_to_cell_count(g in arb_grid()) {
        let (f, o, u) = g.census();
        prop_assert_eq!(f + o + u, g.cell_count());
    }

    #[test]
    fn edt_matches_brute_force(g in arb_grid()) {
        let dm = DistanceMap::from_grid(&g);
        let obstacles: Vec<GridIndex> = g
            .iter()
            .filter(|(_, s)| *s != CellState::Free)
            .map(|(i, _)| i)
            .collect();
        for (idx, _) in g.iter() {
            let expect = obstacles
                .iter()
                .map(|o| {
                    let dc = (idx.col - o.col) as f64;
                    let dr = (idx.row - o.row) as f64;
                    (dc * dc + dr * dr).sqrt() * g.resolution()
                })
                .fold(f64::INFINITY, f64::min);
            let got = dm.distance(idx);
            if expect.is_finite() {
                prop_assert!((got - expect).abs() < 1e-4,
                    "at {idx}: got {got}, want {expect}");
            } else {
                // No obstacles at all: the transform reports a huge distance.
                prop_assert!(got > g.diagonal() * 0.5);
            }
        }
    }

    #[test]
    fn edt_is_one_lipschitz(g in arb_grid()) {
        // Neighboring cells differ by at most one cell size (only
        // meaningful when an obstacle exists: an all-free grid stores a
        // sentinel-sized distance everywhere).
        let dm = DistanceMap::from_grid(&g);
        let res = g.resolution();
        let diag = g.diagonal();
        for (idx, _) in g.iter() {
            let right = GridIndex::new(idx.col + 1, idx.row);
            if g.contains(right) {
                let a = dm.distance(idx);
                let b = dm.distance(right);
                if a <= diag && b <= diag {
                    prop_assert!((a - b).abs() <= res + 1e-4);
                }
            }
        }
    }

    #[test]
    fn traverse_ray_is_connected_and_starts_at_origin(
        g in arb_grid(),
        fx in 0.0..1.0f64, fy in 0.0..1.0f64,
        tx in 0.0..1.0f64, ty in 0.0..1.0f64,
    ) {
        let (lo, hi) = g.bounds();
        let from = Point2::new(lo.x + fx * (hi.x - lo.x), lo.y + fy * (hi.y - lo.y));
        let to = Point2::new(lo.x + tx * (hi.x - lo.x), lo.y + ty * (hi.y - lo.y));
        let mut cells = Vec::new();
        g.traverse_ray(from, to, |idx| {
            cells.push(idx);
            true
        });
        prop_assert_eq!(cells[0], g.world_to_index(from));
        for w in cells.windows(2) {
            let d = (w[0].col - w[1].col).abs() + (w[0].row - w[1].row).abs();
            prop_assert_eq!(d, 1, "traversal must be 4-connected");
        }
    }

    #[test]
    fn pgm_roundtrip(g in arb_grid()) {
        let mut buf = Vec::new();
        raceloc_map::io::write_pgm(&g, &mut buf).unwrap();
        let back = raceloc_map::io::read_pgm(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back, g);
    }
}

fn arb_polygon() -> impl Strategy<Value = Vec<Point2>> {
    // A star-shaped polygon: strictly positive radii at sorted angles is
    // always simple and non-degenerate.
    prop::collection::vec((0.5..10.0f64, 0.01..1.0f64), 4..24).prop_map(|pts| {
        let total: f64 = pts.iter().map(|(_, w)| w).sum();
        let mut angle = 0.0;
        pts.iter()
            .map(|(r, w)| {
                angle += w / total * std::f64::consts::TAU;
                Point2::new(r * angle.cos(), r * angle.sin())
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn path_point_at_wraps(poly in arb_polygon(), s in -100.0..100.0f64) {
        let path = ClosedPath::new(poly).unwrap();
        let total = path.total_length();
        let a = path.point_at(s);
        let b = path.point_at(s + total);
        prop_assert!(a.dist(b) < 1e-6);
    }

    #[test]
    fn path_projection_of_on_path_point_is_exact(poly in arb_polygon(), s in 0.0..1.0f64) {
        let path = ClosedPath::new(poly).unwrap();
        let q = path.point_at(s * path.total_length());
        let (s_hat, lat) = path.project(q);
        prop_assert!(lat.abs() < 1e-6);
        prop_assert!(path.point_at(s_hat).dist(q) < 1e-6);
    }

    #[test]
    fn path_signed_delta_bounds(poly in arb_polygon(),
                                s0 in -50.0..50.0f64, s1 in -50.0..50.0f64) {
        let path = ClosedPath::new(poly).unwrap();
        let d = path.signed_arc_delta(s0, s1);
        prop_assert!(d.abs() <= path.total_length() / 2.0 + 1e-9);
    }

    #[test]
    fn resample_preserves_geometry(poly in arb_polygon()) {
        let path = ClosedPath::new(poly).unwrap();
        let r = path.resampled(path.total_length() / 64.0);
        // Every resampled vertex lies on (or extremely near) the original.
        for p in r.points() {
            let (_, lat) = path.project(*p);
            prop_assert!(lat.abs() < 1e-6);
        }
    }
}
