//! Procedural race-track generation.
//!
//! The paper evaluates on a physical corridor-style test track (its Fig. 2).
//! This module generates closed corridor circuits with configurable geometry
//! and rasterizes them into an [`OccupancyGrid`], providing the ground-truth
//! world the simulator drives in and the localization map both algorithms
//! consume.

use crate::edt::DistanceMap;
use crate::grid::{CellState, OccupancyGrid};
use crate::path::ClosedPath;
use raceloc_core::{Point2, Pose2, Rng64};

/// The family of centerline shapes the generator can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum TrackShape {
    /// A rectangle with rounded corners — close to the paper's test track.
    RoundedRectangle {
        /// Outer centerline width \[m\].
        width: f64,
        /// Outer centerline height \[m\].
        height: f64,
        /// Corner radius \[m\] (clamped to half the smaller dimension).
        corner_radius: f64,
    },
    /// An ellipse (constant-ish curvature oval).
    Oval {
        /// Full width of the centerline ellipse \[m\].
        width: f64,
        /// Full height of the centerline ellipse \[m\].
        height: f64,
    },
    /// An L-shaped circuit with rounded corners.
    LShape {
        /// Length of the long arm \[m\].
        arm: f64,
        /// Corridor-to-corridor offset of the short arm \[m\].
        notch: f64,
        /// Corner radius \[m\].
        corner_radius: f64,
    },
    /// A random smooth closed curve: `r(φ) = R·(1 + Σ aₖ cos(kφ + φₖ))`.
    /// Deterministic in the seed.
    RandomFourier {
        /// PRNG seed.
        seed: u64,
        /// Mean centerline radius \[m\].
        mean_radius: f64,
        /// Total relative amplitude of the harmonics (≲ 0.3 keeps the curve
        /// self-intersection free in practice).
        amplitude: f64,
        /// Number of harmonics (2–5 gives natural-looking tracks).
        harmonics: usize,
    },
}

/// Builder for a [`Track`].
///
/// # Examples
///
/// ```
/// use raceloc_map::trackgen::{TrackShape, TrackSpec};
///
/// let track = TrackSpec::new(TrackShape::Oval { width: 12.0, height: 7.0 })
///     .half_width(1.2)
///     .resolution(0.1)
///     .build();
/// assert!(track.grid.census().0 > 0); // has free space
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrackSpec {
    shape: TrackShape,
    half_width: f64,
    wall_thickness: f64,
    resolution: f64,
    raceline_margin: f64,
}

impl TrackSpec {
    /// Creates a spec with F1TENTH-scale defaults: 1.1 m corridor half-width,
    /// 0.05 m grid resolution, 0.15 m walls.
    pub fn new(shape: TrackShape) -> Self {
        Self {
            shape,
            half_width: 1.1,
            wall_thickness: 0.15,
            resolution: 0.05,
            raceline_margin: 0.35,
        }
    }

    /// Sets the corridor half-width in meters.
    ///
    /// # Panics
    ///
    /// Panics when `hw` is not positive.
    pub fn half_width(mut self, hw: f64) -> Self {
        assert!(hw > 0.0, "half width must be positive");
        self.half_width = hw;
        self
    }

    /// Sets the wall band thickness in meters.
    pub fn wall_thickness(mut self, t: f64) -> Self {
        assert!(t > 0.0, "wall thickness must be positive");
        self.wall_thickness = t;
        self
    }

    /// Sets the grid resolution in meters per cell.
    pub fn resolution(mut self, r: f64) -> Self {
        assert!(r > 0.0 && r.is_finite(), "resolution must be positive");
        self.resolution = r;
        self
    }

    /// Sets the raceline safety margin from the walls in meters.
    pub fn raceline_margin(mut self, m: f64) -> Self {
        assert!(m >= 0.0, "margin must be non-negative");
        self.raceline_margin = m;
        self
    }

    /// Generates the centerline for the configured shape, resampled to
    /// roughly half the grid resolution so it rasterizes densely.
    fn centerline(&self) -> ClosedPath {
        let raw: Vec<Point2> = match &self.shape {
            TrackShape::RoundedRectangle {
                width,
                height,
                corner_radius,
            } => rounded_rectangle(*width, *height, *corner_radius),
            TrackShape::Oval { width, height } => (0..256)
                .map(|i| {
                    let a = i as f64 / 256.0 * std::f64::consts::TAU;
                    Point2::new(0.5 * width * a.cos(), 0.5 * height * a.sin())
                })
                .collect(),
            TrackShape::LShape {
                arm,
                notch,
                corner_radius,
            } => l_shape(*arm, *notch, *corner_radius),
            TrackShape::RandomFourier {
                seed,
                mean_radius,
                amplitude,
                harmonics,
            } => random_fourier(*seed, *mean_radius, *amplitude, *harmonics),
        };
        let path = ClosedPath::new(raw).expect("generated centerline is valid");
        path.resampled(self.resolution * 0.5)
    }

    /// Builds the track: rasterizes the corridor into an occupancy grid and
    /// derives the raceline.
    pub fn build(&self) -> Track {
        let center = self.centerline();
        // Grid bounds: centerline bbox padded by corridor + walls + margin.
        let pad = self.half_width + self.wall_thickness + 3.0 * self.resolution;
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in center.points() {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let origin = Point2::new(min_x - pad, min_y - pad);
        let width = (((max_x - min_x) + 2.0 * pad) / self.resolution).ceil() as usize + 1;
        let height = (((max_y - min_y) + 2.0 * pad) / self.resolution).ceil() as usize + 1;

        // Rasterize the centerline, then classify cells by EDT distance to it.
        let mut seed_grid = OccupancyGrid::new(width, height, self.resolution, origin);
        seed_grid.fill(CellState::Free);
        for p in center.points() {
            seed_grid.set_world(*p, CellState::Occupied);
        }
        let dist_to_center = DistanceMap::from_grid_with(&seed_grid, |s| s == CellState::Occupied);

        let mut grid = OccupancyGrid::new(width, height, self.resolution, origin);
        // Half a cell of slack keeps the free corridor conservative.
        let free_limit = self.half_width;
        let wall_limit = self.half_width + self.wall_thickness;
        for (idx, _) in seed_grid.iter() {
            let d = dist_to_center.distance(idx);
            let state = if d <= free_limit {
                CellState::Free
            } else if d <= wall_limit {
                CellState::Occupied
            } else {
                CellState::Unknown
            };
            grid.set(idx, state);
        }

        // Raceline: corner-cut the centerline within the corridor.
        let max_offset = (self.half_width - self.raceline_margin).max(0.05);
        let raceline = center
            .resampled(0.25)
            .smoothed(0.3, 120, max_offset)
            .resampled(0.25);

        Track {
            grid,
            centerline: center.resampled(0.25),
            raceline,
            half_width: self.half_width,
        }
    }
}

/// A generated race track: the occupancy-grid world plus its reference lines.
#[derive(Debug, Clone, PartialEq)]
pub struct Track {
    /// The rasterized world: free corridor, occupied wall band, unknown
    /// elsewhere.
    pub grid: OccupancyGrid,
    /// The corridor centerline.
    pub centerline: ClosedPath,
    /// The smoothed racing line (stays `raceline_margin` away from walls).
    pub raceline: ClosedPath,
    /// Corridor half-width in meters.
    pub half_width: f64,
}

impl Track {
    /// The start pose: on the raceline at arc length zero, facing along it.
    pub fn start_pose(&self) -> Pose2 {
        let p = self.raceline.point_at(0.0);
        Pose2::new(p.x, p.y, self.raceline.heading_at(0.0))
    }

    /// True when a world point lies in mapped free space.
    pub fn is_free(&self, p: Point2) -> bool {
        self.grid.state_at_world(p) == CellState::Free
    }
}

fn rounded_rectangle(width: f64, height: f64, corner_radius: f64) -> Vec<Point2> {
    let r = corner_radius.clamp(0.05, 0.5 * width.min(height) - 1e-6);
    let (hw, hh) = (0.5 * width, 0.5 * height);
    let mut pts = Vec::new();
    // Corner centers, counter-clockwise from bottom-right.
    let corners = [
        (Point2::new(hw - r, -(hh - r)), -std::f64::consts::FRAC_PI_2),
        (Point2::new(hw - r, hh - r), 0.0),
        (Point2::new(-(hw - r), hh - r), std::f64::consts::FRAC_PI_2),
        (Point2::new(-(hw - r), -(hh - r)), std::f64::consts::PI),
    ];
    let arc_steps = 24;
    for (c, start) in corners {
        for i in 0..=arc_steps {
            let a = start + i as f64 / arc_steps as f64 * std::f64::consts::FRAC_PI_2;
            pts.push(Point2::new(c.x + r * a.cos(), c.y + r * a.sin()));
        }
    }
    dedup(pts)
}

fn l_shape(arm: f64, notch: f64, corner_radius: f64) -> Vec<Point2> {
    // Build an L-shaped waypoint loop, then round it by sampling arcs at each
    // corner. Waypoints counter-clockwise.
    let a = arm;
    let n = notch;
    let waypoints = [
        Point2::new(0.0, 0.0),
        Point2::new(a, 0.0),
        Point2::new(a, n),
        Point2::new(n, n),
        Point2::new(n, a),
        Point2::new(0.0, a),
    ];
    round_polygon(&waypoints, corner_radius)
}

/// Replaces each polygon corner with a circular arc of radius `r` tangent to
/// the adjacent edges.
fn round_polygon(waypoints: &[Point2], r: f64) -> Vec<Point2> {
    let n = waypoints.len();
    let mut pts = Vec::new();
    for i in 0..n {
        let prev = waypoints[(i + n - 1) % n];
        let cur = waypoints[i];
        let next = waypoints[(i + 1) % n];
        let din = (cur - prev).normalized().expect("distinct waypoints");
        let dout = (next - cur).normalized().expect("distinct waypoints");
        let turn = din.cross(dout); // >0 left turn
        let half_angle = 0.5 * din.dot(dout).clamp(-1.0, 1.0).acos();
        let setback =
            (r / half_angle.tan().max(1e-9)).min(0.4 * (cur.dist(prev)).min(cur.dist(next)));
        let radius = setback * half_angle.tan();
        let entry = cur - din * setback;
        let exit = cur + dout * setback;
        if radius < 1e-6 || turn.abs() < 1e-9 {
            pts.push(cur);
            continue;
        }
        // Arc center is offset perpendicular from the entry point.
        let perp = if turn > 0.0 { din.perp() } else { -din.perp() };
        let center = entry + perp * radius;
        let a0 = (entry - center).angle();
        let a1 = (exit - center).angle();
        let sweep = raceloc_core::angle::diff(a1, a0);
        let steps = 16;
        for k in 0..=steps {
            let a = a0 + sweep * k as f64 / steps as f64;
            pts.push(Point2::new(
                center.x + radius * a.cos(),
                center.y + radius * a.sin(),
            ));
        }
    }
    dedup(pts)
}

fn random_fourier(seed: u64, mean_radius: f64, amplitude: f64, harmonics: usize) -> Vec<Point2> {
    let mut rng = Rng64::new(seed);
    let harmonics = harmonics.max(1);
    let coeffs: Vec<(f64, f64)> = (0..harmonics)
        .map(|_| {
            (
                rng.uniform_range(0.3, 1.0),
                rng.uniform_range(0.0, std::f64::consts::TAU),
            )
        })
        .collect();
    let norm: f64 = coeffs.iter().map(|(a, _)| a).sum();
    let scale = amplitude / norm.max(1e-9);
    (0..512)
        .map(|i| {
            let phi = i as f64 / 512.0 * std::f64::consts::TAU;
            let mut r = 1.0;
            for (k, (a, ph)) in coeffs.iter().enumerate() {
                r += scale * a * ((k as f64 + 2.0) * phi + ph).cos();
            }
            let r = mean_radius * r.max(0.2);
            Point2::new(r * phi.cos(), r * phi.sin())
        })
        .collect()
}

fn dedup(pts: Vec<Point2>) -> Vec<Point2> {
    let mut out: Vec<Point2> = Vec::with_capacity(pts.len());
    for p in pts {
        if out.last().is_none_or(|q| q.dist(p) > 1e-9) {
            out.push(p);
        }
    }
    if out.len() > 1 && out[0].dist(*out.last().expect("non-empty")) < 1e-9 {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec(shape: TrackShape) -> TrackSpec {
        TrackSpec::new(shape).resolution(0.1)
    }

    #[test]
    fn rounded_rectangle_track_is_well_formed() {
        let t = quick_spec(TrackShape::RoundedRectangle {
            width: 14.0,
            height: 8.0,
            corner_radius: 2.0,
        })
        .build();
        let (free, occ, _unk) = t.grid.census();
        assert!(free > 1000, "free={free}");
        assert!(occ > 500, "occ={occ}");
        // The centerline must lie in free space everywhere.
        for i in 0..100 {
            let s = i as f64 / 100.0 * t.centerline.total_length();
            assert!(t.is_free(t.centerline.point_at(s)), "s={s}");
        }
    }

    #[test]
    fn raceline_lies_in_free_space() {
        let t = quick_spec(TrackShape::RoundedRectangle {
            width: 14.0,
            height: 8.0,
            corner_radius: 2.0,
        })
        .build();
        for i in 0..200 {
            let s = i as f64 / 200.0 * t.raceline.total_length();
            let p = t.raceline.point_at(s);
            assert!(t.is_free(p), "raceline leaves corridor at s={s}: {p}");
        }
    }

    #[test]
    fn raceline_is_shorter_than_centerline() {
        let t = quick_spec(TrackShape::RoundedRectangle {
            width: 14.0,
            height: 8.0,
            corner_radius: 1.5,
        })
        .build();
        assert!(t.raceline.total_length() < t.centerline.total_length());
    }

    #[test]
    fn oval_track_builds() {
        let t = quick_spec(TrackShape::Oval {
            width: 12.0,
            height: 7.0,
        })
        .build();
        assert!(t.centerline.total_length() > 25.0);
        assert!(t.is_free(t.start_pose().translation()));
    }

    #[test]
    fn lshape_track_builds() {
        let t = quick_spec(TrackShape::LShape {
            arm: 12.0,
            notch: 5.0,
            corner_radius: 1.5,
        })
        .build();
        for i in 0..100 {
            let s = i as f64 / 100.0 * t.centerline.total_length();
            assert!(t.is_free(t.centerline.point_at(s)));
        }
    }

    #[test]
    fn random_fourier_is_deterministic() {
        let mk = || {
            quick_spec(TrackShape::RandomFourier {
                seed: 7,
                mean_radius: 6.0,
                amplitude: 0.2,
                harmonics: 3,
            })
            .build()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.grid, b.grid);
    }

    #[test]
    fn random_fourier_seeds_differ() {
        let mk = |seed| {
            quick_spec(TrackShape::RandomFourier {
                seed,
                mean_radius: 6.0,
                amplitude: 0.2,
                harmonics: 3,
            })
            .build()
        };
        assert_ne!(mk(1).grid, mk(2).grid);
    }

    #[test]
    fn corridor_is_enclosed_by_walls() {
        // Every free cell must be at least half_width - eps from unknown
        // space "through" a wall: concretely, walking outward from the
        // centerline must hit an Occupied cell before Unknown.
        let t = quick_spec(TrackShape::Oval {
            width: 10.0,
            height: 6.0,
        })
        .build();
        let c = &t.centerline;
        for i in 0..72 {
            let s = i as f64 / 72.0 * c.total_length();
            let p = c.point_at(s);
            let n = c.tangent_at(s).perp();
            let mut hit_wall = false;
            for k in 1..200 {
                let q = p + n * (k as f64 * 0.05);
                match t.grid.state_at_world(q) {
                    CellState::Occupied => {
                        hit_wall = true;
                        break;
                    }
                    CellState::Unknown => break,
                    CellState::Free => {}
                }
            }
            assert!(hit_wall, "no wall outward at s={s}");
        }
    }

    #[test]
    fn start_pose_heading_matches_raceline() {
        let t = quick_spec(TrackShape::Oval {
            width: 10.0,
            height: 6.0,
        })
        .build();
        let sp = t.start_pose();
        assert!((raceloc_core::angle::diff(sp.theta, t.raceline.heading_at(0.0))).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "half width")]
    fn negative_half_width_panics() {
        let _ = TrackSpec::new(TrackShape::Oval {
            width: 5.0,
            height: 5.0,
        })
        .half_width(-1.0);
    }
}
