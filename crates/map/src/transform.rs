//! Rigid SE(2) transforms of occupancy grids and poses.
//!
//! Localization is equivariant under rigid motions of the world: moving
//! the map and the robot by the same transform must move the estimate the
//! same way, because nothing the localizer consumes (robot-frame scans,
//! odometry-frame increments) changes. These helpers build the
//! transformed worlds for that metamorphic property — exact translations
//! of a grid, and exact quarter-turn rotations (the only rotations an
//! axis-aligned grid represents without resampling cells).

use raceloc_core::{angle, Point2, Pose2};

use crate::{GridIndex, OccupancyGrid};

/// The grid rigidly translated by `(dx, dy)` meters.
///
/// Cell contents are untouched — only the origin moves — so every world
/// point `p` satisfies
/// `translated(g, dx, dy).state_at_world(p + (dx, dy)) == g.state_at_world(p)`
/// up to floating-point rounding at cell boundaries.
pub fn translated(grid: &OccupancyGrid, dx: f64, dy: f64) -> OccupancyGrid {
    let origin = grid.origin();
    let mut out = OccupancyGrid::new(
        grid.width(),
        grid.height(),
        grid.resolution(),
        Point2::new(origin.x + dx, origin.y + dy),
    );
    for (idx, state) in grid.iter() {
        out.set(idx, state);
    }
    out
}

/// The grid rotated by +90° (counter-clockwise) about the world origin.
///
/// A quarter turn maps the world point `(x, y)` to `(-y, x)`; cells are
/// permuted exactly (no resampling): the source cell `(col, row)` of a
/// `W × H` grid lands at `(H - 1 - row, col)` in the `H × W` result, and
/// the new origin is the rotated image of the source grid's top-left
/// corner, `(-(oy + H·res), ox)`.
pub fn rotated90(grid: &OccupancyGrid) -> OccupancyGrid {
    let (w, h) = (grid.width(), grid.height());
    let res = grid.resolution();
    let origin = grid.origin();
    let mut out = OccupancyGrid::new(
        h,
        w,
        res,
        Point2::new(-(origin.y + h as f64 * res), origin.x),
    );
    for (idx, state) in grid.iter() {
        let rotated = GridIndex::new(h as i64 - 1 - idx.row, idx.col);
        out.set(rotated, state);
    }
    out
}

/// The pose rigidly translated by `(dx, dy)` meters (heading unchanged).
pub fn translated_pose(pose: Pose2, dx: f64, dy: f64) -> Pose2 {
    Pose2::new(pose.x + dx, pose.y + dy, pose.theta)
}

/// The pose rotated by +90° about the world origin, matching
/// [`rotated90`]: position `(x, y) → (-y, x)`, heading advanced by π/2.
pub fn rotated90_pose(pose: Pose2) -> Pose2 {
    Pose2::new(
        -pose.y,
        pose.x,
        angle::normalize(pose.theta + std::f64::consts::FRAC_PI_2),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellState;

    fn sample_grid() -> OccupancyGrid {
        let mut g = OccupancyGrid::new(7, 5, 0.5, Point2::new(-1.0, 2.0));
        g.fill(CellState::Free);
        g.set(GridIndex::new(0, 0), CellState::Occupied);
        g.set(GridIndex::new(6, 1), CellState::Occupied);
        g.set(GridIndex::new(3, 4), CellState::Unknown);
        g
    }

    #[test]
    fn translation_moves_world_coordinates_only() {
        let g = sample_grid();
        let t = translated(&g, 3.25, -0.75);
        assert_eq!(t.width(), g.width());
        assert_eq!(t.height(), g.height());
        assert_eq!(t.cells(), g.cells());
        for (idx, state) in g.iter() {
            let p = g.index_to_world(idx);
            let q = Point2::new(p.x + 3.25, p.y - 0.75);
            assert_eq!(t.state_at_world(q), state, "at {idx}");
        }
    }

    #[test]
    fn quarter_turn_permutes_cells_exactly() {
        let g = sample_grid();
        let r = rotated90(&g);
        assert_eq!(r.width(), g.height());
        assert_eq!(r.height(), g.width());
        let (f0, o0, u0) = g.census();
        assert_eq!(r.census(), (f0, o0, u0));
        for (idx, state) in g.iter() {
            let p = g.index_to_world(idx);
            let q = Point2::new(-p.y, p.x);
            assert_eq!(r.state_at_world(q), state, "at {idx}");
        }
    }

    #[test]
    fn four_quarter_turns_restore_the_grid() {
        let g = sample_grid();
        let back = rotated90(&rotated90(&rotated90(&rotated90(&g))));
        assert_eq!(back.width(), g.width());
        assert_eq!(back.height(), g.height());
        assert_eq!(back.cells(), g.cells());
        let o = g.origin();
        let b = back.origin();
        assert!((b.x - o.x).abs() < 1e-12 && (b.y - o.y).abs() < 1e-12);
    }

    #[test]
    fn pose_transforms_match_grid_transforms() {
        let pose = Pose2::new(1.5, -2.0, 0.4);
        let t = translated_pose(pose, 3.0, 4.0);
        assert_eq!((t.x, t.y, t.theta), (4.5, 2.0, 0.4));
        let r = rotated90_pose(pose);
        assert!((r.x - 2.0).abs() < 1e-12);
        assert!((r.y - 1.5).abs() < 1e-12);
        assert!((r.theta - (0.4 + std::f64::consts::FRAC_PI_2)).abs() < 1e-12);
        // Heading wraps back into (-π, π].
        let wrapped = rotated90_pose(Pose2::new(0.0, 0.0, 3.0));
        assert!(wrapped.theta <= std::f64::consts::PI);
    }
}
