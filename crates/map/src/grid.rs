//! The occupancy grid: a ternary raster world model.

use raceloc_core::Point2;
use std::fmt;

/// The state of one occupancy-grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CellState {
    /// Traversable space.
    Free,
    /// An obstacle (wall) cell; LiDAR rays terminate here.
    Occupied,
    /// Never observed / outside the track. Treated as opaque by ray casting
    /// so that rays cannot escape through unmapped space.
    #[default]
    Unknown,
}

/// An integer cell coordinate `(col, row)` into an [`OccupancyGrid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct GridIndex {
    /// Column (x direction).
    pub col: i64,
    /// Row (y direction).
    pub row: i64,
}

impl GridIndex {
    /// Creates an index from column and row.
    #[inline]
    pub const fn new(col: i64, row: i64) -> Self {
        Self { col, row }
    }
}

impl From<(i64, i64)> for GridIndex {
    #[inline]
    fn from((col, row): (i64, i64)) -> Self {
        Self { col, row }
    }
}

impl fmt::Display for GridIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.col, self.row)
    }
}

/// A 2-D occupancy grid with a metric origin and resolution.
///
/// Cells are stored row-major; cell `(0, 0)`'s *lower-left corner* sits at
/// `origin`, and cell centers are offset by half a resolution. The grid is
/// axis-aligned (ROS-style maps with zero origin yaw), which is what every
/// consumer in this workspace needs.
///
/// # Examples
///
/// ```
/// use raceloc_map::{CellState, OccupancyGrid};
/// use raceloc_core::Point2;
///
/// let mut grid = OccupancyGrid::new(10, 10, 0.1, Point2::new(-0.5, -0.5));
/// grid.fill(CellState::Free);
/// grid.set_world(Point2::new(0.0, 0.0), CellState::Occupied);
/// assert_eq!(grid.state_at_world(Point2::new(0.0, 0.0)), CellState::Occupied);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancyGrid {
    width: usize,
    height: usize,
    resolution: f64,
    origin: Point2,
    cells: Vec<CellState>,
}

impl OccupancyGrid {
    /// Creates a grid of `width × height` cells, all [`CellState::Unknown`].
    ///
    /// # Panics
    ///
    /// Panics when `width` or `height` is zero or `resolution` is not a
    /// positive finite number.
    pub fn new(width: usize, height: usize, resolution: f64, origin: Point2) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        assert!(
            resolution.is_finite() && resolution > 0.0,
            "resolution must be positive"
        );
        Self {
            width,
            height,
            resolution,
            origin,
            cells: vec![CellState::Unknown; width * height],
        }
    }

    /// Grid width in cells.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height in cells.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of cells.
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Cell edge length in meters.
    #[inline]
    pub fn resolution(&self) -> f64 {
        self.resolution
    }

    /// World coordinate of cell `(0, 0)`'s lower-left corner.
    #[inline]
    pub fn origin(&self) -> Point2 {
        self.origin
    }

    /// Raw cell storage (row-major).
    #[inline]
    pub fn cells(&self) -> &[CellState] {
        &self.cells
    }

    /// Converts a world point to the (possibly out-of-bounds) cell index.
    #[inline]
    pub fn world_to_index(&self, p: Point2) -> GridIndex {
        GridIndex::new(
            ((p.x - self.origin.x) / self.resolution).floor() as i64,
            ((p.y - self.origin.y) / self.resolution).floor() as i64,
        )
    }

    /// World coordinate of the *center* of a cell.
    #[inline]
    pub fn index_to_world(&self, idx: GridIndex) -> Point2 {
        Point2::new(
            self.origin.x + (idx.col as f64 + 0.5) * self.resolution,
            self.origin.y + (idx.row as f64 + 0.5) * self.resolution,
        )
    }

    /// True when the index lies inside the grid.
    #[inline]
    pub fn contains(&self, idx: GridIndex) -> bool {
        idx.col >= 0
            && idx.row >= 0
            && (idx.col as usize) < self.width
            && (idx.row as usize) < self.height
    }

    #[inline]
    fn flat(&self, idx: GridIndex) -> usize {
        idx.row as usize * self.width + idx.col as usize
    }

    /// The state of a cell; out-of-bounds indices read as
    /// [`CellState::Unknown`].
    #[inline]
    pub fn state(&self, idx: GridIndex) -> CellState {
        if self.contains(idx) {
            self.cells[self.flat(idx)]
        } else {
            CellState::Unknown
        }
    }

    /// The state of the cell containing a world point.
    #[inline]
    pub fn state_at_world(&self, p: Point2) -> CellState {
        self.state(self.world_to_index(p))
    }

    /// Sets a cell's state. Out-of-bounds writes are ignored and reported.
    ///
    /// Returns `true` when the write landed inside the grid.
    #[inline]
    pub fn set(&mut self, idx: GridIndex, state: CellState) -> bool {
        if self.contains(idx) {
            let i = self.flat(idx);
            self.cells[i] = state;
            true
        } else {
            false
        }
    }

    /// Sets the cell containing a world point.
    #[inline]
    pub fn set_world(&mut self, p: Point2, state: CellState) -> bool {
        self.set(self.world_to_index(p), state)
    }

    /// Fills every cell with `state`.
    pub fn fill(&mut self, state: CellState) {
        self.cells.fill(state);
    }

    /// True when the cell blocks LiDAR (occupied **or** unknown/out of
    /// bounds). This is the ray-casting opacity convention used throughout
    /// the workspace.
    #[inline]
    pub fn is_opaque(&self, idx: GridIndex) -> bool {
        self.state(idx) != CellState::Free
    }

    /// True when the cell is strictly occupied (a mapped wall).
    #[inline]
    pub fn is_occupied(&self, idx: GridIndex) -> bool {
        self.state(idx) == CellState::Occupied
    }

    /// Iterates over all `(index, state)` pairs, row-major.
    pub fn iter(&self) -> impl Iterator<Item = (GridIndex, CellState)> + '_ {
        (0..self.height).flat_map(move |r| {
            (0..self.width).map(move |c| {
                let idx = GridIndex::new(c as i64, r as i64);
                (idx, self.cells[self.flat(idx)])
            })
        })
    }

    /// Counts cells in each state, returned as `(free, occupied, unknown)`.
    pub fn census(&self) -> (usize, usize, usize) {
        let mut free = 0;
        let mut occ = 0;
        let mut unk = 0;
        for c in &self.cells {
            match c {
                CellState::Free => free += 1,
                CellState::Occupied => occ += 1,
                CellState::Unknown => unk += 1,
            }
        }
        (free, occ, unk)
    }

    /// The world-coordinate bounding box `(min, max)` of the grid.
    pub fn bounds(&self) -> (Point2, Point2) {
        (
            self.origin,
            Point2::new(
                self.origin.x + self.width as f64 * self.resolution,
                self.origin.y + self.height as f64 * self.resolution,
            ),
        )
    }

    /// A stable 64-bit content fingerprint covering the grid's *geometry*
    /// (dimensions, resolution, origin) **and** its cell contents.
    ///
    /// Two grids with identical cell rasters but different metric geometry
    /// (e.g. the same maze at 0.05 m vs 0.10 m resolution) hash differently,
    /// which is what map-artifact caches need: the derived EDT and range LUT
    /// depend on world coordinates, not just cell bytes.
    ///
    /// The hash is FNV-1a over a fixed little-endian encoding, so it is
    /// stable across platforms and process runs (unlike `std::hash`).
    pub fn content_fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
            }
        };
        eat(&(self.width as u64).to_le_bytes());
        eat(&(self.height as u64).to_le_bytes());
        eat(&self.resolution.to_bits().to_le_bytes());
        eat(&self.origin.x.to_bits().to_le_bytes());
        eat(&self.origin.y.to_bits().to_le_bytes());
        for c in &self.cells {
            let tag: u8 = match c {
                CellState::Free => 0,
                CellState::Occupied => 1,
                CellState::Unknown => 2,
            };
            h = (h ^ tag as u64).wrapping_mul(FNV_PRIME);
        }
        h
    }

    /// The maximum possible in-grid ray length (the diagonal), in meters.
    pub fn diagonal(&self) -> f64 {
        let (w, h) = (
            self.width as f64 * self.resolution,
            self.height as f64 * self.resolution,
        );
        w.hypot(h)
    }

    /// Traverses grid cells along the segment from `from` to `to` (Amanatides
    /// & Woo DDA), invoking `visit` per cell, starting with the cell
    /// containing `from`. Traversal stops early when `visit` returns `false`.
    ///
    /// Cells outside the grid are still visited (with out-of-bounds indices),
    /// so callers can implement their own boundary policy.
    pub fn traverse_ray<F: FnMut(GridIndex) -> bool>(
        &self,
        from: Point2,
        to: Point2,
        mut visit: F,
    ) {
        let mut idx = self.world_to_index(from);
        let end = self.world_to_index(to);
        if !visit(idx) {
            return;
        }
        let dx = to.x - from.x;
        let dy = to.y - from.y;
        let step_c: i64 = if dx > 0.0 { 1 } else { -1 };
        let step_r: i64 = if dy > 0.0 { 1 } else { -1 };
        // Parametric distance (in ray t ∈ [0,1]) to the next cell boundary.
        let next_boundary = |i: i64, step: i64, origin: f64| -> f64 {
            let edge = if step > 0 { i + 1 } else { i };
            origin + edge as f64 * self.resolution
        };
        let inv_dx = if dx != 0.0 { 1.0 / dx } else { f64::INFINITY };
        let inv_dy = if dy != 0.0 { 1.0 / dy } else { f64::INFINITY };
        let mut t_max_x = if dx != 0.0 {
            (next_boundary(idx.col, step_c, self.origin.x) - from.x) * inv_dx
        } else {
            f64::INFINITY
        };
        let mut t_max_y = if dy != 0.0 {
            (next_boundary(idx.row, step_r, self.origin.y) - from.y) * inv_dy
        } else {
            f64::INFINITY
        };
        let t_delta_x = (self.resolution * inv_dx).abs();
        let t_delta_y = (self.resolution * inv_dy).abs();
        // Hard cap: a ray can cross at most w+h+2 cells within its extent.
        let max_steps = 2 * (self.width + self.height) + 4;
        for _ in 0..max_steps {
            if idx == end || (t_max_x > 1.0 && t_max_y > 1.0) {
                return;
            }
            if t_max_x < t_max_y {
                t_max_x += t_delta_x;
                idx.col += step_c;
            } else {
                t_max_y += t_delta_y;
                idx.row += step_r;
            }
            if !visit(idx) {
                return;
            }
        }
    }

    /// Renders the grid as ASCII art (`.` free, `#` occupied, space unknown),
    /// downsampled so the output is at most `max_cols` characters wide.
    /// Row 0 is printed at the bottom (y up).
    pub fn to_ascii(&self, max_cols: usize) -> String {
        let stride = (self.width / max_cols.max(1)).max(1);
        let mut out = String::new();
        let mut r = self.height as i64 - 1;
        while r >= 0 {
            let mut c = 0i64;
            while c < self.width as i64 {
                // Aggregate the stride×stride block: occupied wins over free
                // wins over unknown, so walls stay visible when downsampled.
                let mut best = CellState::Unknown;
                for rr in 0..stride as i64 {
                    for cc in 0..stride as i64 {
                        match self.state(GridIndex::new(c + cc, r - rr)) {
                            CellState::Occupied => best = CellState::Occupied,
                            CellState::Free if best == CellState::Unknown => {
                                best = CellState::Free;
                            }
                            _ => {}
                        }
                    }
                }
                out.push(match best {
                    CellState::Free => '.',
                    CellState::Occupied => '#',
                    CellState::Unknown => ' ',
                });
                c += stride as i64;
            }
            out.push('\n');
            r -= stride as i64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> OccupancyGrid {
        OccupancyGrid::new(20, 10, 0.5, Point2::new(-1.0, -1.0))
    }

    #[test]
    fn new_grid_is_unknown() {
        let g = grid();
        assert_eq!(g.census(), (0, 0, 200));
        assert_eq!(g.cell_count(), 200);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_panics() {
        OccupancyGrid::new(0, 5, 0.1, Point2::ORIGIN);
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn bad_resolution_panics() {
        OccupancyGrid::new(5, 5, 0.0, Point2::ORIGIN);
    }

    #[test]
    fn world_index_roundtrip() {
        let g = grid();
        for (c, r) in [(0, 0), (5, 3), (19, 9)] {
            let idx = GridIndex::new(c, r);
            let p = g.index_to_world(idx);
            assert_eq!(g.world_to_index(p), idx);
        }
    }

    #[test]
    fn world_to_index_floor_behavior() {
        let g = grid();
        // Origin corner belongs to cell (0,0).
        assert_eq!(
            g.world_to_index(Point2::new(-1.0, -1.0)),
            GridIndex::new(0, 0)
        );
        // Just below origin is out of bounds (negative index).
        assert_eq!(
            g.world_to_index(Point2::new(-1.01, -1.0)),
            GridIndex::new(-1, 0)
        );
    }

    #[test]
    fn out_of_bounds_reads_unknown() {
        let g = grid();
        assert_eq!(g.state(GridIndex::new(-1, 0)), CellState::Unknown);
        assert_eq!(g.state(GridIndex::new(0, 100)), CellState::Unknown);
        assert!(g.is_opaque(GridIndex::new(-5, -5)));
    }

    #[test]
    fn out_of_bounds_writes_ignored() {
        let mut g = grid();
        assert!(!g.set(GridIndex::new(-1, 0), CellState::Free));
        assert_eq!(g.census(), (0, 0, 200));
    }

    #[test]
    fn set_get_roundtrip() {
        let mut g = grid();
        let idx = GridIndex::new(7, 4);
        assert!(g.set(idx, CellState::Occupied));
        assert_eq!(g.state(idx), CellState::Occupied);
        assert!(g.is_occupied(idx));
        assert!(g.is_opaque(idx));
    }

    #[test]
    fn fill_and_census() {
        let mut g = grid();
        g.fill(CellState::Free);
        assert_eq!(g.census(), (200, 0, 0));
    }

    #[test]
    fn bounds_and_diagonal() {
        let g = grid();
        let (lo, hi) = g.bounds();
        assert_eq!(lo, Point2::new(-1.0, -1.0));
        assert_eq!(hi, Point2::new(9.0, 4.0));
        assert!((g.diagonal() - (10.0f64.powi(2) + 5.0f64.powi(2)).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn traverse_straight_ray_visits_row() {
        let g = grid();
        let mut visited = Vec::new();
        g.traverse_ray(Point2::new(-0.75, -0.75), Point2::new(3.25, -0.75), |idx| {
            visited.push(idx);
            true
        });
        assert_eq!(visited.first(), Some(&GridIndex::new(0, 0)));
        assert_eq!(visited.last(), Some(&GridIndex::new(8, 0)));
        assert_eq!(visited.len(), 9);
        assert!(visited.iter().all(|i| i.row == 0));
    }

    #[test]
    fn traverse_diagonal_is_connected() {
        let g = grid();
        let mut prev: Option<GridIndex> = None;
        g.traverse_ray(Point2::new(-0.9, -0.9), Point2::new(8.9, 3.9), |idx| {
            if let Some(p) = prev {
                let d = (idx.col - p.col).abs() + (idx.row - p.row).abs();
                assert_eq!(d, 1, "4-connected traversal expected");
            }
            prev = Some(idx);
            true
        });
        assert!(prev.is_some());
    }

    #[test]
    fn traverse_early_stop() {
        let g = grid();
        let mut count = 0;
        g.traverse_ray(Point2::new(-0.75, -0.75), Point2::new(8.0, -0.75), |_| {
            count += 1;
            count < 3
        });
        assert_eq!(count, 3);
    }

    #[test]
    fn traverse_zero_length_visits_once() {
        let g = grid();
        let mut count = 0;
        let p = Point2::new(0.1, 0.1);
        g.traverse_ray(p, p, |_| {
            count += 1;
            true
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn ascii_render_shape() {
        let mut g = grid();
        g.fill(CellState::Free);
        g.set(GridIndex::new(0, 0), CellState::Occupied);
        let art = g.to_ascii(40);
        assert!(art.contains('#'));
        assert!(art.lines().count() == 10);
        // Row 0 is at the bottom.
        assert!(art.lines().last().unwrap().starts_with('#'));
    }

    #[test]
    fn iter_covers_all_cells() {
        let g = grid();
        assert_eq!(g.iter().count(), 200);
    }

    #[test]
    fn fingerprint_is_stable_and_covers_cells() {
        let mut a = grid();
        let b = grid();
        assert_eq!(a.content_fingerprint(), b.content_fingerprint());
        a.set(GridIndex::new(3, 3), CellState::Occupied);
        assert_ne!(a.content_fingerprint(), b.content_fingerprint());
    }

    #[test]
    fn fingerprint_covers_geometry_not_just_cells() {
        // Identical cell rasters, different resolution / origin — these
        // describe different worlds and must not collide.
        let base = OccupancyGrid::new(8, 8, 0.1, Point2::ORIGIN);
        let coarse = OccupancyGrid::new(8, 8, 0.2, Point2::ORIGIN);
        let shifted = OccupancyGrid::new(8, 8, 0.1, Point2::new(1.0, 0.0));
        assert_eq!(base.cells(), coarse.cells());
        assert_ne!(base.content_fingerprint(), coarse.content_fingerprint());
        assert_ne!(base.content_fingerprint(), shifted.content_fingerprint());
    }
}
