//! Map import/export in the ROS-style PGM + metadata convention.
//!
//! Maps round-trip through binary PGM (P5): occupied cells are written as
//! black (0), free as white (254), unknown as gray (205) — the thresholds
//! used by the ROS `map_server`.

use crate::grid::{CellState, GridIndex, OccupancyGrid};
use raceloc_core::Point2;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Error produced when parsing a PGM map fails.
#[derive(Debug)]
pub enum ReadMapError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input is not a well-formed binary PGM (P5) file.
    Format(String),
}

impl fmt::Display for ReadMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadMapError::Io(e) => write!(f, "i/o error reading map: {e}"),
            ReadMapError::Format(m) => write!(f, "invalid pgm map: {m}"),
        }
    }
}

impl Error for ReadMapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadMapError::Io(e) => Some(e),
            ReadMapError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for ReadMapError {
    fn from(e: std::io::Error) -> Self {
        ReadMapError::Io(e)
    }
}

const OCCUPIED_GRAY: u8 = 0;
const FREE_GRAY: u8 = 254;
const UNKNOWN_GRAY: u8 = 205;

/// Writes a grid as a binary PGM (P5) image.
///
/// Rows are written top-down (image convention), so row `height-1` of the
/// grid is the first image row. Resolution and origin are recorded in a
/// comment header and recovered by [`read_pgm`].
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_pgm<W: Write>(grid: &OccupancyGrid, mut w: W) -> std::io::Result<()> {
    writeln!(w, "P5")?;
    writeln!(
        w,
        "# raceloc resolution={} origin_x={} origin_y={}",
        grid.resolution(),
        grid.origin().x,
        grid.origin().y
    )?;
    writeln!(w, "{} {}", grid.width(), grid.height())?;
    writeln!(w, "255")?;
    let mut buf = Vec::with_capacity(grid.cell_count());
    for r in (0..grid.height()).rev() {
        for c in 0..grid.width() {
            let g = match grid.state(GridIndex::new(c as i64, r as i64)) {
                CellState::Occupied => OCCUPIED_GRAY,
                CellState::Free => FREE_GRAY,
                CellState::Unknown => UNKNOWN_GRAY,
            };
            buf.push(g);
        }
    }
    w.write_all(&buf)
}

/// Reads a binary PGM (P5) map written by [`write_pgm`] (or by ROS
/// `map_saver`, in which case resolution/origin default to 0.05 m and the
/// origin to zero unless present in a `# raceloc ...` comment).
///
/// Pixels darker than 100 become occupied, lighter than 250 free, anything
/// between unknown — mirroring the `map_server` thresholds.
///
/// # Errors
///
/// Returns [`ReadMapError::Format`] for malformed headers and
/// [`ReadMapError::Io`] for reader failures.
pub fn read_pgm<R: BufRead>(mut r: R) -> Result<OccupancyGrid, ReadMapError> {
    let mut resolution = 0.05f64;
    let mut origin = Point2::ORIGIN;
    let mut tokens: Vec<String> = Vec::new();
    // Read header tokens (magic, width, height, maxval), honoring comments.
    let mut line = String::new();
    while tokens.len() < 4 {
        line.clear();
        let n = r.read_line(&mut line)?;
        if n == 0 {
            return Err(ReadMapError::Format("truncated header".into()));
        }
        let text = line.trim();
        if let Some(comment) = text.strip_prefix('#') {
            for part in comment.split_whitespace() {
                if let Some(v) = part.strip_prefix("resolution=") {
                    resolution = v
                        .parse()
                        .map_err(|_| ReadMapError::Format("bad resolution".into()))?;
                } else if let Some(v) = part.strip_prefix("origin_x=") {
                    origin.x = v
                        .parse()
                        .map_err(|_| ReadMapError::Format("bad origin_x".into()))?;
                } else if let Some(v) = part.strip_prefix("origin_y=") {
                    origin.y = v
                        .parse()
                        .map_err(|_| ReadMapError::Format("bad origin_y".into()))?;
                }
            }
            continue;
        }
        tokens.extend(text.split_whitespace().map(str::to_owned));
    }
    if tokens[0] != "P5" {
        return Err(ReadMapError::Format(format!(
            "expected P5 magic, got {}",
            tokens[0]
        )));
    }
    let width: usize = tokens[1]
        .parse()
        .map_err(|_| ReadMapError::Format("bad width".into()))?;
    let height: usize = tokens[2]
        .parse()
        .map_err(|_| ReadMapError::Format("bad height".into()))?;
    let maxval: usize = tokens[3]
        .parse()
        .map_err(|_| ReadMapError::Format("bad maxval".into()))?;
    if maxval == 0 || maxval > 255 {
        return Err(ReadMapError::Format(format!("unsupported maxval {maxval}")));
    }
    if width == 0 || height == 0 {
        return Err(ReadMapError::Format("zero dimensions".into()));
    }
    let mut data = vec![0u8; width * height];
    r.read_exact(&mut data)
        .map_err(|e| ReadMapError::Format(format!("truncated pixel data: {e}")))?;
    let mut grid = OccupancyGrid::new(width, height, resolution, origin);
    for (i, &px) in data.iter().enumerate() {
        let img_row = i / width;
        let col = i % width;
        let row = height - 1 - img_row;
        let state = if px < 100 {
            CellState::Occupied
        } else if px > 250 {
            CellState::Free
        } else {
            CellState::Unknown
        };
        grid.set(GridIndex::new(col as i64, row as i64), state);
    }
    Ok(grid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_grid() -> OccupancyGrid {
        let mut g = OccupancyGrid::new(7, 5, 0.25, Point2::new(-1.5, 2.0));
        g.fill(CellState::Free);
        g.set(GridIndex::new(0, 0), CellState::Occupied);
        g.set(GridIndex::new(6, 4), CellState::Occupied);
        g.set(GridIndex::new(3, 2), CellState::Unknown);
        g
    }

    #[test]
    fn roundtrip_preserves_grid() {
        let g = sample_grid();
        let mut buf = Vec::new();
        write_pgm(&g, &mut buf).unwrap();
        let g2 = read_pgm(Cursor::new(buf)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn roundtrip_preserves_metadata() {
        let g = sample_grid();
        let mut buf = Vec::new();
        write_pgm(&g, &mut buf).unwrap();
        let g2 = read_pgm(Cursor::new(buf)).unwrap();
        assert_eq!(g2.resolution(), 0.25);
        assert_eq!(g2.origin(), Point2::new(-1.5, 2.0));
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_pgm(Cursor::new(b"P2\n2 2\n255\n0 0 0 0".to_vec())).unwrap_err();
        assert!(matches!(err, ReadMapError::Format(_)));
        assert!(err.to_string().contains("P5"));
    }

    #[test]
    fn rejects_truncated_pixels() {
        let err = read_pgm(Cursor::new(b"P5\n4 4\n255\nab".to_vec())).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(read_pgm(Cursor::new(Vec::new())).is_err());
    }

    #[test]
    fn rejects_zero_dimensions() {
        let err = read_pgm(Cursor::new(b"P5\n0 4\n255\n".to_vec())).unwrap_err();
        assert!(err.to_string().contains("zero"));
    }

    #[test]
    fn reads_foreign_pgm_without_metadata() {
        // 2x1: black then white, no raceloc comment.
        let bytes = b"P5\n2 1\n255\n\x00\xFE".to_vec();
        let g = read_pgm(Cursor::new(bytes)).unwrap();
        assert_eq!(g.resolution(), 0.05);
        assert_eq!(g.state(GridIndex::new(0, 0)), CellState::Occupied);
        assert_eq!(g.state(GridIndex::new(1, 0)), CellState::Free);
    }

    #[test]
    fn midtone_maps_to_unknown() {
        let bytes = b"P5\n1 1\n255\n\xCD".to_vec();
        let g = read_pgm(Cursor::new(bytes)).unwrap();
        assert_eq!(g.state(GridIndex::new(0, 0)), CellState::Unknown);
    }

    #[test]
    fn error_source_chains() {
        use std::error::Error;
        let err = ReadMapError::from(std::io::Error::other("boom"));
        assert!(err.source().is_some());
    }
}
