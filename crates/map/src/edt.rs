//! Exact Euclidean distance transform (Felzenszwalb & Huttenlocher).
//!
//! The distance map feeds two consumers: the ray-marching range method in
//! `raceloc-range` (sphere tracing needs the distance to the nearest
//! obstacle) and the scan-alignment metric (how far is a scan endpoint from
//! the nearest mapped wall).

use crate::grid::{CellState, GridIndex, OccupancyGrid};
use raceloc_core::Point2;

/// A per-cell map of distances (in meters) to the nearest opaque cell.
///
/// # Examples
///
/// ```
/// use raceloc_map::{CellState, DistanceMap, OccupancyGrid};
/// use raceloc_core::Point2;
///
/// let mut grid = OccupancyGrid::new(11, 11, 1.0, Point2::ORIGIN);
/// grid.fill(CellState::Free);
/// grid.set_world(Point2::new(5.5, 5.5), CellState::Occupied);
/// let dm = DistanceMap::from_grid(&grid);
/// // Four cells to the left of the obstacle.
/// assert!((dm.distance_at_world(Point2::new(1.5, 5.5)) - 4.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMap {
    width: usize,
    height: usize,
    resolution: f64,
    origin: Point2,
    /// Distance in meters from each cell center to the nearest opaque cell
    /// center (0 for opaque cells themselves).
    dist: Vec<f32>,
}

impl DistanceMap {
    /// Computes the exact Euclidean distance transform of a grid.
    ///
    /// Opaque cells (occupied or unknown) are the distance-zero set; this
    /// matches the ray-casting opacity convention of
    /// [`OccupancyGrid::is_opaque`].
    pub fn from_grid(grid: &OccupancyGrid) -> Self {
        Self::from_grid_with(grid, |s| s != CellState::Free)
    }

    /// Computes the distance transform to cells selected by `is_obstacle`.
    ///
    /// Use this to measure distance to *occupied* cells only (ignoring
    /// unknown space), as the scan-alignment metric does.
    pub fn from_grid_with<F: Fn(CellState) -> bool>(grid: &OccupancyGrid, is_obstacle: F) -> Self {
        let (w, h) = (grid.width(), grid.height());
        const INF: f64 = 1e20;
        // Squared distances in cell units, row-major.
        let mut f = vec![INF; w * h];
        for (idx, state) in grid.iter() {
            if is_obstacle(state) {
                f[idx.row as usize * w + idx.col as usize] = 0.0;
            }
        }
        // 1-D squared-distance transform along each column, then each row.
        let mut tmp = vec![0.0f64; w.max(h)];
        for c in 0..w {
            let col: Vec<f64> = (0..h).map(|r| f[r * w + c]).collect();
            dt_1d(&col, &mut tmp[..h]);
            for r in 0..h {
                f[r * w + c] = tmp[r];
            }
        }
        for r in 0..h {
            let row: Vec<f64> = f[r * w..(r + 1) * w].to_vec();
            dt_1d(&row, &mut tmp[..w]);
            f[r * w..(r + 1) * w].copy_from_slice(&tmp[..w]);
        }
        let res = grid.resolution();
        let dist = f
            .into_iter()
            .map(|d2| (d2.min(INF).sqrt() * res) as f32)
            .collect();
        Self {
            width: w,
            height: h,
            resolution: res,
            origin: grid.origin(),
            dist,
        }
    }

    /// Grid width in cells.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height in cells.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Cell edge length in meters.
    #[inline]
    pub fn resolution(&self) -> f64 {
        self.resolution
    }

    /// Distance (meters) from a cell center to the nearest obstacle cell.
    /// Out-of-bounds indices read as zero (out of bounds is opaque).
    #[inline]
    pub fn distance(&self, idx: GridIndex) -> f64 {
        if idx.col >= 0
            && idx.row >= 0
            && (idx.col as usize) < self.width
            && (idx.row as usize) < self.height
        {
            self.dist[idx.row as usize * self.width + idx.col as usize] as f64
        } else {
            0.0
        }
    }

    /// Distance (meters) from a world point's cell to the nearest obstacle.
    #[inline]
    pub fn distance_at_world(&self, p: Point2) -> f64 {
        let idx = GridIndex::new(
            ((p.x - self.origin.x) / self.resolution).floor() as i64,
            ((p.y - self.origin.y) / self.resolution).floor() as i64,
        );
        self.distance(idx)
    }

    /// The largest distance value in the map, in meters.
    pub fn max_distance(&self) -> f64 {
        self.dist.iter().copied().fold(0.0f32, f32::max) as f64
    }
}

/// 1-D squared-distance transform (Felzenszwalb & Huttenlocher, 2012).
/// `f` holds input squared distances; `out` receives the lower envelope.
fn dt_1d(f: &[f64], out: &mut [f64]) {
    let n = f.len();
    debug_assert_eq!(out.len(), n);
    if n == 0 {
        return;
    }
    // v[k]: parabola apex indices; z[k]: envelope breakpoints.
    let mut v = vec![0usize; n];
    let mut z = vec![0.0f64; n + 1];
    let mut k = 0usize;
    z[0] = f64::NEG_INFINITY;
    z[1] = f64::INFINITY;
    for q in 1..n {
        let mut s;
        loop {
            let p = v[k];
            s = ((f[q] + (q * q) as f64) - (f[p] + (p * p) as f64)) / (2.0 * (q - p) as f64);
            if s <= z[k] {
                if k == 0 {
                    // Degenerate only with -inf input; cannot occur with
                    // non-negative squared distances, but guard anyway.
                    break;
                }
                k -= 1;
            } else {
                break;
            }
        }
        k += 1;
        v[k] = q;
        z[k] = s;
        z[k + 1] = f64::INFINITY;
    }
    let mut k = 0usize;
    for (q, o) in out.iter_mut().enumerate() {
        while z[k + 1] < q as f64 {
            k += 1;
        }
        let p = v[k];
        let d = q as f64 - p as f64;
        *o = d * d + f[p];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::OccupancyGrid;

    fn brute_force(grid: &OccupancyGrid) -> Vec<f64> {
        let obstacles: Vec<GridIndex> = grid
            .iter()
            .filter(|(_, s)| *s != CellState::Free)
            .map(|(i, _)| i)
            .collect();
        grid.iter()
            .map(|(idx, _)| {
                obstacles
                    .iter()
                    .map(|o| {
                        let dc = (idx.col - o.col) as f64;
                        let dr = (idx.row - o.row) as f64;
                        (dc * dc + dr * dr).sqrt() * grid.resolution()
                    })
                    .fold(f64::INFINITY, f64::min)
            })
            .collect()
    }

    #[test]
    fn matches_brute_force_on_random_grid() {
        let mut grid = OccupancyGrid::new(31, 17, 0.25, Point2::new(-2.0, 1.0));
        grid.fill(CellState::Free);
        // Deterministic pseudo-random obstacle sprinkling.
        let mut state = 0x12345u64;
        for r in 0..17i64 {
            for c in 0..31i64 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if state >> 60 == 0 {
                    grid.set(GridIndex::new(c, r), CellState::Occupied);
                }
            }
        }
        // Ensure at least one obstacle exists.
        grid.set(GridIndex::new(3, 3), CellState::Occupied);
        let dm = DistanceMap::from_grid(&grid);
        let expect = brute_force(&grid);
        for ((idx, _), e) in grid.iter().zip(expect) {
            assert!(
                (dm.distance(idx) - e).abs() < 1e-4,
                "at {idx}: got {} want {e}",
                dm.distance(idx)
            );
        }
    }

    #[test]
    fn all_opaque_is_zero_everywhere() {
        let grid = OccupancyGrid::new(8, 8, 0.5, Point2::ORIGIN); // all Unknown
        let dm = DistanceMap::from_grid(&grid);
        for (idx, _) in grid.iter() {
            assert_eq!(dm.distance(idx), 0.0);
        }
        assert_eq!(dm.max_distance(), 0.0);
    }

    #[test]
    fn single_obstacle_distances() {
        let mut grid = OccupancyGrid::new(9, 9, 1.0, Point2::ORIGIN);
        grid.fill(CellState::Free);
        grid.set(GridIndex::new(4, 4), CellState::Occupied);
        let dm = DistanceMap::from_grid(&grid);
        assert_eq!(dm.distance(GridIndex::new(4, 4)), 0.0);
        assert!((dm.distance(GridIndex::new(0, 4)) - 4.0).abs() < 1e-6);
        assert!((dm.distance(GridIndex::new(0, 0)) - 32.0f64.sqrt()).abs() < 1e-5);
    }

    #[test]
    fn unknown_counts_as_obstacle_by_default() {
        let mut grid = OccupancyGrid::new(5, 5, 1.0, Point2::ORIGIN);
        grid.fill(CellState::Free);
        grid.set(GridIndex::new(0, 0), CellState::Unknown);
        let dm = DistanceMap::from_grid(&grid);
        assert_eq!(dm.distance(GridIndex::new(0, 0)), 0.0);
    }

    #[test]
    fn occupied_only_variant_ignores_unknown() {
        let mut grid = OccupancyGrid::new(5, 5, 1.0, Point2::ORIGIN);
        grid.fill(CellState::Free);
        grid.set(GridIndex::new(0, 0), CellState::Unknown);
        grid.set(GridIndex::new(4, 4), CellState::Occupied);
        let dm = DistanceMap::from_grid_with(&grid, |s| s == CellState::Occupied);
        assert!(dm.distance(GridIndex::new(0, 0)) > 5.0);
        assert_eq!(dm.distance(GridIndex::new(4, 4)), 0.0);
    }

    #[test]
    fn out_of_bounds_distance_is_zero() {
        let mut grid = OccupancyGrid::new(5, 5, 1.0, Point2::ORIGIN);
        grid.fill(CellState::Free);
        grid.set(GridIndex::new(2, 2), CellState::Occupied);
        let dm = DistanceMap::from_grid(&grid);
        assert_eq!(dm.distance(GridIndex::new(-1, 2)), 0.0);
        assert_eq!(dm.distance(GridIndex::new(2, 99)), 0.0);
    }

    #[test]
    fn resolution_scales_distances() {
        for res in [0.1, 0.5, 2.0] {
            let mut grid = OccupancyGrid::new(9, 3, res, Point2::ORIGIN);
            grid.fill(CellState::Free);
            grid.set(GridIndex::new(8, 1), CellState::Occupied);
            let dm = DistanceMap::from_grid(&grid);
            assert!(
                (dm.distance(GridIndex::new(0, 1)) - 8.0 * res).abs() < 1e-5,
                "res={res}"
            );
        }
    }
}
