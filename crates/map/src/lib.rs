#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! Occupancy-grid maps, distance transforms, and race-track generation.
//!
//! This crate provides the 2-D world representation shared by the ray-casting
//! library, the particle filter, the SLAM baseline, and the vehicle
//! simulator:
//!
//! - [`OccupancyGrid`]: a ternary (free / occupied / unknown) grid with
//!   world ↔ cell coordinate transforms.
//! - [`edt`]: an exact Euclidean distance transform (Felzenszwalb), the
//!   substrate for ray-marching range queries and scan-alignment scoring.
//! - [`path::ClosedPath`]: arc-length parameterized closed polylines used for
//!   centerlines and racelines.
//! - [`trackgen`]: procedural corridor-style race tracks (the stand-in for
//!   the paper's physical test track, see DESIGN.md §1).
//! - [`io`]: PGM import/export for interoperability with ROS-style map files.
//! - [`transform`]: exact rigid SE(2) transforms of grids and poses, the
//!   substrate for metamorphic equivariance tests.
//!
//! # Examples
//!
//! ```
//! use raceloc_map::trackgen::{TrackSpec, TrackShape};
//!
//! let track = TrackSpec::new(TrackShape::RoundedRectangle {
//!     width: 14.0,
//!     height: 8.0,
//!     corner_radius: 2.5,
//! })
//! .build();
//! assert!(track.centerline.total_length() > 30.0);
//! assert!(track.grid.cell_count() > 0);
//! ```

pub mod edt;
pub mod grid;
pub mod io;
pub mod path;
pub mod trackgen;
pub mod transform;

pub use edt::DistanceMap;
pub use grid::{CellState, GridIndex, OccupancyGrid};
pub use path::ClosedPath;
pub use trackgen::{Track, TrackShape, TrackSpec};
