//! Arc-length parameterized closed polylines (centerlines and racelines).

use raceloc_core::Point2;

/// A closed polyline with precomputed cumulative arc length.
///
/// Used for track centerlines and racelines: supports sampling a point at an
/// arc-length coordinate, tangent/curvature queries, and projecting an
/// arbitrary point onto the path (the primitive behind lateral-error and
/// lap-progress measurements).
///
/// # Examples
///
/// ```
/// use raceloc_map::ClosedPath;
/// use raceloc_core::Point2;
///
/// // A unit square.
/// let path = ClosedPath::new(vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(1.0, 0.0),
///     Point2::new(1.0, 1.0),
///     Point2::new(0.0, 1.0),
/// ]).unwrap();
/// assert!((path.total_length() - 4.0).abs() < 1e-12);
/// let (s, lateral) = path.project(Point2::new(0.5, -0.2));
/// assert!((s - 0.5).abs() < 1e-9);
/// assert!((lateral - (-0.2)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedPath {
    points: Vec<Point2>,
    /// cum[i] = arc length from points[0] to points[i]; cum[n] = total.
    cum: Vec<f64>,
}

impl ClosedPath {
    /// Creates a closed path from at least three vertices.
    ///
    /// The closing segment from the last vertex back to the first is
    /// implicit. Returns `None` when fewer than three points are given or
    /// any segment is degenerate (zero length).
    pub fn new(points: Vec<Point2>) -> Option<Self> {
        if points.len() < 3 {
            return None;
        }
        let n = points.len();
        let mut cum = Vec::with_capacity(n + 1);
        cum.push(0.0);
        for i in 0..n {
            let seg = points[(i + 1) % n].dist(points[i]);
            if seg < 1e-12 {
                return None;
            }
            cum.push(cum[i] + seg);
        }
        Some(Self { points, cum })
    }

    /// The path vertices.
    #[inline]
    pub fn points(&self) -> &[Point2] {
        &self.points
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always `false`: a valid path has ≥ 3 vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total perimeter length in meters.
    #[inline]
    pub fn total_length(&self) -> f64 {
        *self.cum.last().expect("cum is non-empty")
    }

    /// Wraps an arc-length coordinate into `[0, total_length)`.
    #[inline]
    pub fn wrap_s(&self, s: f64) -> f64 {
        let total = self.total_length();
        let mut w = s % total;
        if w < 0.0 {
            w += total;
        }
        w
    }

    /// Signed forward distance from `s0` to `s1` along the path, in
    /// `(-L/2, L/2]` where `L` is the total length.
    pub fn signed_arc_delta(&self, s0: f64, s1: f64) -> f64 {
        let total = self.total_length();
        let mut d = self.wrap_s(s1) - self.wrap_s(s0);
        if d > total / 2.0 {
            d -= total;
        } else if d <= -total / 2.0 {
            d += total;
        }
        d
    }

    /// Locates the segment containing arc-length `s`; returns
    /// `(segment index, fraction along segment)`.
    fn locate(&self, s: f64) -> (usize, f64) {
        let s = self.wrap_s(s);
        // Binary search in the cumulative lengths.
        let i = match self.cum.binary_search_by(|c| c.total_cmp(&s)) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let i = i.min(self.points.len() - 1);
        let seg_len = self.cum[i + 1] - self.cum[i];
        ((i), (s - self.cum[i]) / seg_len)
    }

    /// The point at arc-length coordinate `s` (wrapped).
    pub fn point_at(&self, s: f64) -> Point2 {
        let (i, t) = self.locate(s);
        let a = self.points[i];
        let b = self.points[(i + 1) % self.points.len()];
        a.lerp(b, t)
    }

    /// The unit tangent at arc-length `s` (direction of travel).
    pub fn tangent_at(&self, s: f64) -> Point2 {
        let (i, _) = self.locate(s);
        let a = self.points[i];
        let b = self.points[(i + 1) % self.points.len()];
        (b - a).normalized().expect("segments are non-degenerate")
    }

    /// The heading (tangent angle) at arc-length `s`.
    #[inline]
    pub fn heading_at(&self, s: f64) -> f64 {
        self.tangent_at(s).angle()
    }

    /// Approximate signed curvature at arc-length `s` (finite differences
    /// over a window `ds`; positive = turning left).
    pub fn curvature_at(&self, s: f64, ds: f64) -> f64 {
        let t0 = self.tangent_at(s - ds);
        let t1 = self.tangent_at(s + ds);
        let dtheta = raceloc_core::angle::diff(t1.angle(), t0.angle());
        dtheta / (2.0 * ds)
    }

    /// Projects a point onto the path.
    ///
    /// Returns `(s, lateral)`: the arc-length of the closest path point and
    /// the signed lateral offset (positive = left of the travel direction).
    pub fn project(&self, p: Point2) -> (f64, f64) {
        let n = self.points.len();
        let mut best = (f64::INFINITY, 0.0, 0.0); // (dist_sq, s, lateral)
        for i in 0..n {
            let a = self.points[i];
            let b = self.points[(i + 1) % n];
            let ab = b - a;
            let len_sq = ab.norm_sq();
            let t = ((p - a).dot(ab) / len_sq).clamp(0.0, 1.0);
            let proj = a + ab * t;
            let d_sq = (p - proj).norm_sq();
            if d_sq < best.0 {
                let s = self.cum[i] + t * (self.cum[i + 1] - self.cum[i]);
                // Signed lateral: cross of tangent with offset vector.
                let tangent = ab.normalized().expect("non-degenerate segment");
                let lateral = tangent.cross(p - proj);
                best = (d_sq, s, lateral);
            }
        }
        (best.1, best.2)
    }

    /// Resamples the path to (approximately) uniform spacing `ds`, returning
    /// a new path. The number of output vertices is `round(L / ds)`, at
    /// least 3.
    pub fn resampled(&self, ds: f64) -> ClosedPath {
        let total = self.total_length();
        let n = ((total / ds).round() as usize).max(3);
        let step = total / n as f64;
        let points: Vec<Point2> = (0..n).map(|i| self.point_at(i as f64 * step)).collect();
        ClosedPath::new(points).expect("resampled path is valid")
    }

    /// Returns a smoothed copy: each vertex moves toward the midpoint of its
    /// neighbors by factor `alpha`, with the motion clamped so that no point
    /// moves farther than `max_offset` from its original position (used to
    /// derive a raceline that stays inside the corridor).
    pub fn smoothed(&self, alpha: f64, iterations: usize, max_offset: f64) -> ClosedPath {
        let n = self.points.len();
        let original = self.points.clone();
        let mut pts = self.points.clone();
        for _ in 0..iterations {
            let prev = pts.clone();
            for i in 0..n {
                let a = prev[(i + n - 1) % n];
                let b = prev[(i + 1) % n];
                let mid = a.lerp(b, 0.5);
                let target = prev[i].lerp(mid, alpha);
                let off = target - original[i];
                let d = off.norm();
                pts[i] = if d > max_offset {
                    original[i] + off * (max_offset / d)
                } else {
                    target
                };
            }
        }
        ClosedPath::new(pts).unwrap_or_else(|| self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn square() -> ClosedPath {
        ClosedPath::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(4.0, 0.0),
            Point2::new(4.0, 4.0),
            Point2::new(0.0, 4.0),
        ])
        .unwrap()
    }

    fn circle(n: usize, r: f64) -> ClosedPath {
        ClosedPath::new(
            (0..n)
                .map(|i| {
                    let a = i as f64 / n as f64 * 2.0 * PI;
                    Point2::new(r * a.cos(), r * a.sin())
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(ClosedPath::new(vec![]).is_none());
        assert!(ClosedPath::new(vec![Point2::ORIGIN, Point2::new(1.0, 0.0)]).is_none());
        assert!(
            ClosedPath::new(vec![Point2::ORIGIN, Point2::ORIGIN, Point2::new(1.0, 0.0)]).is_none()
        );
    }

    #[test]
    fn total_length_square() {
        assert!((square().total_length() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn point_at_wraps() {
        let p = square();
        let a = p.point_at(1.0);
        let b = p.point_at(17.0);
        let c = p.point_at(-15.0);
        assert!(a.dist(b) < 1e-9 && a.dist(c) < 1e-9);
    }

    #[test]
    fn point_at_vertices_and_midpoints() {
        let p = square();
        assert!(p.point_at(0.0).dist(Point2::new(0.0, 0.0)) < 1e-12);
        assert!(p.point_at(4.0).dist(Point2::new(4.0, 0.0)) < 1e-12);
        assert!(p.point_at(6.0).dist(Point2::new(4.0, 2.0)) < 1e-12);
    }

    #[test]
    fn tangent_directions() {
        let p = square();
        assert!(p.tangent_at(1.0).dist(Point2::new(1.0, 0.0)) < 1e-12);
        assert!(p.tangent_at(5.0).dist(Point2::new(0.0, 1.0)) < 1e-12);
        assert!((p.heading_at(9.0) - PI).abs() < 1e-9);
    }

    #[test]
    fn project_onto_side() {
        let p = square();
        let (s, lat) = p.project(Point2::new(2.0, 0.5));
        assert!((s - 2.0).abs() < 1e-9);
        assert!((lat - 0.5).abs() < 1e-9, "lateral {lat}");
        let (_, lat_r) = p.project(Point2::new(2.0, -0.5));
        assert!((lat_r + 0.5).abs() < 1e-9);
    }

    #[test]
    fn project_point_on_path_has_zero_lateral() {
        let p = circle(64, 5.0);
        let q = p.point_at(7.3);
        let (s, lat) = p.project(q);
        assert!(lat.abs() < 1e-9);
        assert!(p.point_at(s).dist(q) < 1e-9);
    }

    #[test]
    fn circle_curvature() {
        let p = circle(256, 5.0);
        let k = p.curvature_at(3.0, 0.5);
        assert!((k - 0.2).abs() < 0.01, "curvature {k}");
    }

    #[test]
    fn square_straight_sections_have_zero_curvature() {
        let p = square();
        assert!(p.curvature_at(2.0, 0.5).abs() < 1e-9);
    }

    #[test]
    fn signed_arc_delta_wraps() {
        let p = square(); // L = 16
        assert!((p.signed_arc_delta(15.0, 1.0) - 2.0).abs() < 1e-12);
        assert!((p.signed_arc_delta(1.0, 15.0) + 2.0).abs() < 1e-12);
        assert_eq!(p.signed_arc_delta(3.0, 3.0), 0.0);
    }

    #[test]
    fn resample_preserves_length_roughly() {
        let p = circle(16, 5.0);
        let r = p.resampled(0.2);
        assert!(r.len() > 100);
        assert!((r.total_length() - p.total_length()).abs() / p.total_length() < 0.02);
    }

    #[test]
    fn smoothing_reduces_curvature_extremes() {
        let p = square().resampled(0.25);
        let sm = p.smoothed(0.5, 50, 0.5);
        let max_k = |path: &ClosedPath| {
            (0..200)
                .map(|i| {
                    path.curvature_at(i as f64 / 200.0 * path.total_length(), 0.3)
                        .abs()
                })
                .fold(0.0f64, f64::max)
        };
        assert!(max_k(&sm) < max_k(&p));
    }

    #[test]
    fn smoothing_respects_max_offset() {
        let p = square().resampled(0.25);
        let sm = p.smoothed(0.5, 200, 0.3);
        for (a, b) in p.points().iter().zip(sm.points()) {
            assert!(a.dist(*b) <= 0.3 + 1e-9);
        }
    }
}
