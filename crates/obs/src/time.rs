//! The workspace's single sanctioned gateway to the wall clock.
//!
//! The determinism rule **R3** enforced by `raceloc-analyze` bans direct
//! `std::time::Instant` / `SystemTime` reads in the localization and
//! simulation crates: estimator *behaviour* must be a pure function of its
//! inputs and seed, never of how fast the host happens to run. Timing that
//! exists purely to be *reported* (per-stage latency in diagnostics, span
//! telemetry) funnels through [`Stopwatch`] instead, which keeps every
//! clock read inside `raceloc-obs` where it is auditable.
//!
//! # Examples
//!
//! ```
//! use raceloc_obs::Stopwatch;
//!
//! let sw = Stopwatch::start();
//! let seconds = sw.elapsed_seconds();
//! assert!(seconds >= 0.0);
//! ```

use std::time::Instant;

/// A monotonic stopwatch wrapping [`std::time::Instant`].
///
/// This is deliberately minimal: it can only measure an elapsed duration,
/// not read absolute time, so code holding one cannot branch on the date or
/// synchronize with other clocks — the measured value is for *reporting*
/// (diagnostics stages, telemetry spans), never for control flow.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts a new stopwatch at the current monotonic instant.
    #[inline]
    pub fn start() -> Self {
        Self(Instant::now())
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    #[inline]
    pub fn elapsed_seconds(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic_and_nonnegative() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_seconds();
        let b = sw.elapsed_seconds();
        assert!(a >= 0.0);
        assert!(b >= a);
    }

    #[test]
    fn copies_share_the_start_instant() {
        let sw = Stopwatch::start();
        let copy = sw;
        assert!(copy.elapsed_seconds() >= 0.0);
        assert!(sw.elapsed_seconds() >= 0.0);
    }
}
