//! JSONL run recording for the closed loop.
//!
//! A [`RunRecorder`] streams one JSON document per line to any writer:
//! first an optional `meta` line describing the run, then one `step` line
//! per correction step. The schema (documented field-by-field in
//! DESIGN.md) is what `examples/race_lq_odom.rs` emits and what the
//! Table III regeneration notes in EXPERIMENTS.md consume.
//!
//! Layout of a `step` line:
//!
//! ```json
//! {"type":"step","step":12,"t":0.3,
//!  "truth":[x,y,theta],"est":[x,y,theta],"correct_s":0.0012,
//!  "diag":{"particles":500,"ess":312.4,"cov_trace":0.02,
//!          "match_score":null,"stages":{"motion":1e-4,"raycast":8e-4}}}
//! ```

use std::borrow::Cow;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use raceloc_core::{Diagnostics, Pose2};

use crate::json::{Json, JsonError};

fn pose_json(p: Pose2) -> Json {
    Json::Arr(vec![Json::num(p.x), Json::num(p.y), Json::num(p.theta)])
}

fn pose_from_json(v: &Json) -> Option<Pose2> {
    let a = v.as_array()?;
    match a {
        [x, y, t] => Some(Pose2::new(x.as_f64()?, y.as_f64()?, t.as_f64()?)),
        _ => None,
    }
}

/// One recorded closed-loop correction step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    /// Zero-based correction-step index.
    pub step: u64,
    /// Simulation time \[s\] of the correction.
    pub stamp: f64,
    /// Ground-truth vehicle pose at the correction instant.
    pub true_pose: Pose2,
    /// The localizer's pose estimate after the correction.
    pub est_pose: Pose2,
    /// Wall-clock duration \[s\] of the correction call.
    pub correct_seconds: f64,
    /// Filter-health diagnostics reported by the localizer.
    pub diag: Diagnostics,
}

impl StepRecord {
    /// Serializes to the JSONL `step` document.
    pub fn to_json(&self) -> Json {
        let diag = Json::Obj(vec![
            (
                "particles".into(),
                Json::opt_num(self.diag.particles.map(|p| p as f64)),
            ),
            ("ess".into(), Json::opt_num(self.diag.ess)),
            (
                "cov_trace".into(),
                Json::opt_num(self.diag.covariance_trace),
            ),
            ("match_score".into(), Json::opt_num(self.diag.match_score)),
            (
                "health".into(),
                match self.diag.health {
                    Some(h) => Json::Str(h.as_str().into()),
                    None => Json::Null,
                },
            ),
            (
                "stages".into(),
                Json::Obj(
                    self.diag
                        .stages
                        .iter()
                        .map(|(n, s)| (n.to_string(), Json::num(*s)))
                        .collect(),
                ),
            ),
        ]);
        Json::Obj(vec![
            ("type".into(), Json::Str("step".into())),
            ("step".into(), Json::num(self.step as f64)),
            ("t".into(), Json::num(self.stamp)),
            ("truth".into(), pose_json(self.true_pose)),
            ("est".into(), pose_json(self.est_pose)),
            ("correct_s".into(), Json::num(self.correct_seconds)),
            ("diag".into(), diag),
        ])
    }

    /// Parses one JSONL line back into a record. Returns `None` for lines
    /// that parse as JSON but are not `step` documents (e.g. `meta`).
    pub fn parse_line(line: &str) -> Result<Option<StepRecord>, JsonError> {
        let doc = Json::parse(line.trim())?;
        Ok(Self::from_json(&doc))
    }

    /// Extracts a record from a parsed `step` document.
    pub fn from_json(doc: &Json) -> Option<StepRecord> {
        if doc.get("type")?.as_str()? != "step" {
            return None;
        }
        let diag_doc = doc.get("diag")?;
        let stages = diag_doc
            .get("stages")
            .and_then(Json::as_object)
            .map(|fields| {
                fields
                    .iter()
                    .filter_map(|(n, v)| Some((Cow::Owned(n.clone()), v.as_f64()?)))
                    .collect()
            })
            .unwrap_or_default();
        let diag = Diagnostics {
            particles: diag_doc
                .get("particles")
                .and_then(Json::as_u64)
                .map(|p| p as usize),
            ess: diag_doc.get("ess").and_then(Json::as_f64),
            covariance_trace: diag_doc.get("cov_trace").and_then(Json::as_f64),
            match_score: diag_doc.get("match_score").and_then(Json::as_f64),
            health: diag_doc
                .get("health")
                .and_then(Json::as_str)
                .and_then(raceloc_core::Health::from_name),
            stages,
        };
        Some(StepRecord {
            step: doc.get("step")?.as_u64()?,
            stamp: doc.get("t")?.as_f64()?,
            true_pose: pose_from_json(doc.get("truth")?)?,
            est_pose: pose_from_json(doc.get("est")?)?,
            correct_seconds: doc.get("correct_s")?.as_f64()?,
            diag,
        })
    }

    /// Euclidean position error between truth and estimate \[m\].
    pub fn position_error(&self) -> f64 {
        let dx = self.true_pose.x - self.est_pose.x;
        let dy = self.true_pose.y - self.est_pose.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// Streams run records as JSON Lines to a writer.
///
/// Construct with [`RunRecorder::new`] around any `Write` (a
/// [`SharedBuffer`] in tests), or [`RunRecorder::to_file`] for a buffered
/// file. Each record call writes exactly one `\n`-terminated line.
pub struct RunRecorder {
    out: Box<dyn Write + Send>,
    steps: u64,
}

impl std::fmt::Debug for RunRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunRecorder")
            .field("steps", &self.steps)
            .finish_non_exhaustive()
    }
}

impl RunRecorder {
    /// Wraps an arbitrary writer.
    pub fn new(out: impl Write + Send + 'static) -> Self {
        Self {
            out: Box::new(out),
            steps: 0,
        }
    }

    /// Creates (truncating) `path` and records into it through a buffer.
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }

    /// Writes a `meta` line: run-level fields such as localizer name, map,
    /// and configuration. Call once, before the first step.
    pub fn record_meta(&mut self, fields: &[(&str, Json)]) -> io::Result<()> {
        let mut obj = vec![("type".to_string(), Json::Str("meta".into()))];
        obj.extend(fields.iter().map(|(k, v)| (k.to_string(), v.clone())));
        writeln!(self.out, "{}", Json::Obj(obj))
    }

    /// Writes one `step` line.
    pub fn record_step(&mut self, rec: &StepRecord) -> io::Result<()> {
        writeln!(self.out, "{}", rec.to_json())?;
        self.steps += 1;
        Ok(())
    }

    /// Number of step lines written so far.
    pub fn steps_written(&self) -> u64 {
        self.steps
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// A cloneable in-memory sink for [`RunRecorder`] — lets tests hand the
/// recorder an owned writer and still read what it produced.
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl SharedBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The buffer contents decoded as UTF-8.
    pub fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("recorder output is UTF-8")
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Parses a full JSONL stream, returning only the step records in order.
pub fn parse_steps(jsonl: &str) -> Result<Vec<StepRecord>, JsonError> {
    let mut out = Vec::new();
    for line in jsonl.lines().filter(|l| !l.trim().is_empty()) {
        if let Some(rec) = StepRecord::parse_line(line)? {
            out.push(rec);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(step: u64) -> StepRecord {
        StepRecord {
            step,
            stamp: 0.025 * step as f64,
            true_pose: Pose2::new(1.0 + step as f64, 2.0, 0.3),
            est_pose: Pose2::new(1.1 + step as f64, 1.9, 0.28),
            correct_seconds: 1.25e-3,
            diag: Diagnostics {
                particles: Some(500),
                ess: Some(312.5),
                covariance_trace: Some(0.0625),
                match_score: None,
                health: Some(raceloc_core::Health::Degraded),
                stages: vec![
                    (Cow::Borrowed("motion"), 1e-4),
                    (Cow::Borrowed("raycast"), 8e-4),
                ],
            },
        }
    }

    #[test]
    fn step_record_round_trips_through_jsonl() {
        let rec = sample_record(12);
        let line = rec.to_json().to_string();
        let back = StepRecord::parse_line(&line).unwrap().expect("is a step");
        // Cow<'static> vs Cow<Owned> compare equal by content.
        assert_eq!(back, rec);
    }

    #[test]
    fn recorder_streams_meta_then_steps() {
        let buf = SharedBuffer::new();
        let mut rec = RunRecorder::new(buf.clone());
        rec.record_meta(&[
            ("localizer", Json::Str("synpf".into())),
            ("particles", Json::num(500.0)),
        ])
        .unwrap();
        for i in 0..3 {
            rec.record_step(&sample_record(i)).unwrap();
        }
        rec.flush().unwrap();
        assert_eq!(rec.steps_written(), 3);

        let text = buf.contents();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let meta = Json::parse(lines[0]).unwrap();
        assert_eq!(meta.get("type").unwrap().as_str(), Some("meta"));
        assert_eq!(meta.get("localizer").unwrap().as_str(), Some("synpf"));

        let steps = parse_steps(&text).unwrap();
        assert_eq!(steps.len(), 3);
        assert_eq!(steps[1].step, 1);
        assert_eq!(steps[2].diag.stage("raycast"), Some(8e-4));
    }

    #[test]
    fn missing_optionals_parse_as_none() {
        let line = r#"{"type":"step","step":0,"t":0,"truth":[0,0,0],"est":[0,0,0],
                       "correct_s":0.001,
                       "diag":{"particles":null,"ess":null,"cov_trace":null,
                               "match_score":null,"stages":{}}}"#
            .replace('\n', " ");
        let rec = StepRecord::parse_line(&line).unwrap().unwrap();
        assert!(rec.diag.is_empty());
    }

    #[test]
    fn non_step_lines_are_skipped_by_parse_steps() {
        let text = "{\"type\":\"meta\"}\n{\"type\":\"other\"}\n";
        assert!(parse_steps(text).unwrap().is_empty());
    }

    #[test]
    fn position_error_is_euclidean() {
        let mut rec = sample_record(0);
        rec.true_pose = Pose2::new(0.0, 0.0, 0.0);
        rec.est_pose = Pose2::new(3.0, 4.0, 0.1);
        assert!((rec.position_error() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn to_file_writes_parseable_jsonl() {
        let dir = std::env::temp_dir();
        let path = dir.join("raceloc_obs_recorder_test.jsonl");
        {
            let mut rec = RunRecorder::to_file(&path).unwrap();
            rec.record_step(&sample_record(0)).unwrap();
            rec.flush().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(parse_steps(&text).unwrap().len(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
