//! Span timers, counters, and the [`Telemetry`] handle that carries them.
//!
//! Design goals, in order:
//!
//! 1. **Disabled is (almost) free.** A default handle holds `None` and every
//!    call is one branch — hot paths (`SynPf::correct`, batch ray casting,
//!    `World` stepping) can stay instrumented unconditionally.
//! 2. **Cheap to thread through.** `Telemetry` is `Clone + Send + Sync`
//!    (an `Option<Arc<Mutex<..>>>`), so sim, localizer, and range caster can
//!    all share one registry without lifetime plumbing.
//! 3. **Deterministic reporting.** Registries are `BTreeMap`s, so snapshots
//!    iterate in stable name order and report output is diffable.
//!
//! Span durations are double-booked: into a [`SpanStat`] (count/total/min/
//! max/last for quick means) and into a same-named latency [`Histogram`]
//! (for tail quantiles à la Table III).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::hist::Histogram;

/// Aggregate statistics for one named span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanStat {
    /// Number of completed spans.
    pub count: u64,
    /// Sum of all span durations \[s\].
    pub total_seconds: f64,
    /// Shortest observed duration \[s\].
    pub min_seconds: f64,
    /// Longest observed duration \[s\].
    pub max_seconds: f64,
    /// Duration of the most recent span \[s\].
    pub last_seconds: f64,
}

impl SpanStat {
    fn new(seconds: f64) -> Self {
        Self {
            count: 1,
            total_seconds: seconds,
            min_seconds: seconds,
            max_seconds: seconds,
            last_seconds: seconds,
        }
    }

    fn observe(&mut self, seconds: f64) {
        self.count += 1;
        self.total_seconds += seconds;
        self.min_seconds = self.min_seconds.min(seconds);
        self.max_seconds = self.max_seconds.max(seconds);
        self.last_seconds = seconds;
    }

    /// Mean span duration \[s\].
    pub fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_seconds / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct Registry {
    spans: BTreeMap<&'static str, SpanStat>,
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Registry {
    fn record_span(&mut self, name: &'static str, seconds: f64) {
        self.spans
            .entry(name)
            .and_modify(|s| s.observe(seconds))
            .or_insert_with(|| SpanStat::new(seconds));
        self.histograms
            .entry(name)
            .or_insert_with(Histogram::latency)
            .record(seconds);
    }
}

/// A cheap, cloneable telemetry handle.
///
/// The default handle is **disabled**: spans, counters, and snapshots all
/// short-circuit on a `None` check. [`Telemetry::enabled`] allocates a
/// shared registry; clones of an enabled handle feed the same registry.
#[derive(Debug, Clone, Default)]
pub struct Telemetry(Option<Arc<Mutex<Registry>>>);

impl Telemetry {
    /// A disabled handle (same as `Telemetry::default()`): every call is a
    /// single branch and records nothing.
    pub fn disabled() -> Self {
        Self(None)
    }

    /// An enabled handle with a fresh, empty registry.
    pub fn enabled() -> Self {
        Self(Some(Arc::new(Mutex::new(Registry::default()))))
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Starts a monotonic span timer; the duration is recorded when the
    /// returned guard drops. On a disabled handle the guard is inert.
    #[must_use = "the span records its duration when dropped"]
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            registry: self.0.clone(),
            name,
            start: Instant::now(),
        }
    }

    /// Runs `f` inside a span — convenient when the timed region is an
    /// expression rather than a scope.
    pub fn time<T>(&self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let _guard = self.span(name);
        f()
    }

    /// Records an externally measured duration under `name`, merging into
    /// the same statistics a [`Span`] would.
    pub fn record_span(&self, name: &'static str, seconds: f64) {
        if let Some(reg) = &self.0 {
            reg.lock().unwrap().record_span(name, seconds);
        }
    }

    /// Increments the counter `name` by `delta`.
    pub fn add(&self, name: &'static str, delta: u64) {
        if let Some(reg) = &self.0 {
            *reg.lock().unwrap().counters.entry(name).or_insert(0) += delta;
        }
    }

    /// An immutable snapshot of everything recorded so far. Empty for a
    /// disabled handle.
    pub fn snapshot(&self) -> Snapshot {
        match &self.0 {
            None => Snapshot::default(),
            Some(reg) => {
                let reg = reg.lock().unwrap();
                Snapshot {
                    spans: reg.spans.clone(),
                    counters: reg.counters.clone(),
                    histograms: reg.histograms.clone(),
                }
            }
        }
    }

    /// Clears all recorded spans, counters, and histograms (the handle
    /// stays enabled). No-op on a disabled handle.
    pub fn reset(&self) {
        if let Some(reg) = &self.0 {
            let mut reg = reg.lock().unwrap();
            reg.spans.clear();
            reg.counters.clear();
            reg.histograms.clear();
        }
    }
}

/// RAII span guard returned by [`Telemetry::span`]; records its elapsed
/// time into the registry on drop.
#[derive(Debug)]
pub struct Span {
    registry: Option<Arc<Mutex<Registry>>>,
    name: &'static str,
    start: Instant,
}

impl Span {
    /// Seconds elapsed since the span started (the span keeps running).
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(reg) = &self.registry {
            let seconds = self.start.elapsed().as_secs_f64();
            reg.lock().unwrap().record_span(self.name, seconds);
        }
    }
}

/// A point-in-time copy of a [`Telemetry`] registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    spans: BTreeMap<&'static str, SpanStat>,
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Snapshot {
    /// Statistics for span `name`, if any span completed under it.
    pub fn span(&self, name: &str) -> Option<&SpanStat> {
        self.spans.get(name)
    }

    /// The value of counter `name`, if it was ever incremented.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The latency histogram fed by span `name`.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All spans in name order.
    pub fn spans(&self) -> impl Iterator<Item = (&'static str, &SpanStat)> + '_ {
        self.spans.iter().map(|(k, v)| (*k, v))
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// A compact multi-line text report (one line per span, then counters),
    /// in deterministic name order.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, s) in self.spans() {
            let _ = writeln!(
                out,
                "{name}: n={} mean={:.3}ms last={:.3}ms min={:.3}ms max={:.3}ms total={:.3}s",
                s.count,
                s.mean_seconds() * 1e3,
                s.last_seconds * 1e3,
                s.min_seconds * 1e3,
                s.max_seconds * 1e3,
                s.total_seconds,
            );
        }
        for (name, v) in self.counters() {
            let _ = writeln!(out, "{name}: {v}");
        }
        out
    }
}

/// Deterministic accumulation of counters across many [`Snapshot`]s.
///
/// Fleet-scale evaluation runs hundreds of independent simulations, each
/// with its own [`Telemetry`] registry; this rolls their counters up into
/// one fleet-level view (`BTreeMap`-backed, so iteration and JSON output
/// are in stable name order). Only counters are absorbed — spans and
/// histograms carry wall-clock durations, which must never leak into
/// deterministic report rows.
///
/// # Examples
///
/// ```
/// use raceloc_obs::{CounterRollup, Telemetry};
///
/// let mut rollup = CounterRollup::new();
/// for run in 0..3u64 {
///     let tel = Telemetry::enabled();
///     tel.add("scans", 10 + run);
///     rollup.absorb(&tel.snapshot());
/// }
/// assert_eq!(rollup.total("scans"), Some(33));
/// assert_eq!(rollup.snapshots(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterRollup {
    totals: BTreeMap<&'static str, u64>,
    snapshots: u64,
}

impl CounterRollup {
    /// An empty rollup.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds every counter of a snapshot into the running totals.
    pub fn absorb(&mut self, snap: &Snapshot) {
        self.absorb_pairs(snap.counters());
        self.snapshots += 1;
    }

    /// Adds already-extracted `(name, value)` counter pairs (one logical
    /// snapshot) into the running totals.
    pub fn absorb_counts(&mut self, pairs: &[(&'static str, u64)]) {
        self.absorb_pairs(pairs.iter().copied());
        self.snapshots += 1;
    }

    fn absorb_pairs(&mut self, pairs: impl Iterator<Item = (&'static str, u64)>) {
        for (name, value) in pairs {
            *self.totals.entry(name).or_insert(0) += value;
        }
    }

    /// Merges another rollup into this one (totals add, snapshot counts
    /// add).
    pub fn merge(&mut self, other: &CounterRollup) {
        for (name, value) in &other.totals {
            *self.totals.entry(name).or_insert(0) += value;
        }
        self.snapshots += other.snapshots;
    }

    /// The accumulated total for one counter, if it ever appeared.
    pub fn total(&self, name: &str) -> Option<u64> {
        self.totals.get(name).copied()
    }

    /// All accumulated counters in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.totals.iter().map(|(k, v)| (*k, *v))
    }

    /// Number of snapshots absorbed so far.
    pub fn snapshots(&self) -> u64 {
        self.snapshots
    }

    /// Whether no counters have been absorbed.
    pub fn is_empty(&self) -> bool {
        self.totals.is_empty()
    }

    /// Serializes the totals as a JSON object in stable name order.
    pub fn to_json(&self) -> crate::Json {
        crate::Json::Obj(
            self.iter()
                .map(|(name, v)| (name.to_string(), crate::Json::num(v as f64)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let tel = Telemetry::disabled();
        {
            let _s = tel.span("work");
        }
        tel.add("n", 5);
        tel.record_span("manual", 0.1);
        let snap = tel.snapshot();
        assert!(snap.span("work").is_none());
        assert!(snap.counter("n").is_none());
        assert!(!tel.is_enabled());
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Telemetry::default().is_enabled());
    }

    #[test]
    fn span_durations_are_monotone_and_aggregate() {
        let tel = Telemetry::enabled();
        for _ in 0..3 {
            let s = tel.span("step");
            assert!(s.elapsed_seconds() >= 0.0);
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        let snap = tel.snapshot();
        let stat = snap.span("step").unwrap();
        assert_eq!(stat.count, 3);
        assert!(stat.min_seconds > 0.0, "monotonic clock moved forward");
        assert!(stat.min_seconds <= stat.max_seconds);
        assert!(stat.total_seconds >= 3.0 * stat.min_seconds - 1e-12);
        assert!(stat.mean_seconds() >= stat.min_seconds - 1e-12);
        assert!(stat.mean_seconds() <= stat.max_seconds + 1e-12);
    }

    #[test]
    fn nested_spans_record_independently() {
        let tel = Telemetry::enabled();
        {
            let _outer = tel.span("outer");
            {
                let _inner = tel.span("inner");
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
        }
        let snap = tel.snapshot();
        let outer = snap.span("outer").unwrap();
        let inner = snap.span("inner").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // The outer span encloses the inner one.
        assert!(outer.total_seconds >= inner.total_seconds);
    }

    #[test]
    fn spans_feed_histograms() {
        let tel = Telemetry::enabled();
        tel.record_span("stage", 1.5e-3);
        tel.record_span("stage", 1.5e-3);
        let snap = tel.snapshot();
        let h = snap.histogram("stage").unwrap();
        assert_eq!(h.total(), 2);
        assert_eq!(h.quantile_upper_bound(0.5), Some(1.6e-3));
    }

    #[test]
    fn clones_share_a_registry() {
        let tel = Telemetry::enabled();
        let clone = tel.clone();
        clone.add("shared", 2);
        tel.add("shared", 3);
        assert_eq!(tel.snapshot().counter("shared"), Some(5));
    }

    #[test]
    fn counters_accumulate_across_threads() {
        let tel = Telemetry::enabled();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let tel = tel.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        tel.add("hits", 1);
                    }
                    let _s = tel.span("worker");
                });
            }
        });
        let snap = tel.snapshot();
        assert_eq!(snap.counter("hits"), Some(400));
        assert_eq!(snap.span("worker").unwrap().count, 4);
    }

    #[test]
    fn reset_clears_but_stays_enabled() {
        let tel = Telemetry::enabled();
        tel.add("n", 1);
        tel.reset();
        assert!(tel.is_enabled());
        assert!(tel.snapshot().counter("n").is_none());
    }

    #[test]
    fn time_wraps_a_closure() {
        let tel = Telemetry::enabled();
        let v = tel.time("calc", || 21 * 2);
        assert_eq!(v, 42);
        assert_eq!(tel.snapshot().span("calc").unwrap().count, 1);
    }

    #[test]
    fn report_is_deterministic_and_named() {
        let tel = Telemetry::enabled();
        tel.record_span("b.stage", 0.001);
        tel.record_span("a.stage", 0.002);
        tel.add("z.count", 7);
        let report = tel.snapshot().report();
        let a = report.find("a.stage").unwrap();
        let b = report.find("b.stage").unwrap();
        assert!(a < b, "spans reported in name order");
        assert!(report.contains("z.count: 7"));
    }

    #[test]
    fn rollup_accumulates_counters_only() {
        let mut rollup = CounterRollup::new();
        let tel = Telemetry::enabled();
        tel.add("a", 2);
        tel.record_span("timed", 0.5); // spans must not leak into the rollup
        rollup.absorb(&tel.snapshot());
        rollup.absorb_counts(&[("a", 3), ("b", 1)]);
        assert_eq!(rollup.total("a"), Some(5));
        assert_eq!(rollup.total("b"), Some(1));
        assert_eq!(rollup.total("timed"), None);
        assert_eq!(rollup.snapshots(), 2);
        assert!(!rollup.is_empty());
    }

    #[test]
    fn rollup_merge_adds_totals_and_counts() {
        let mut a = CounterRollup::new();
        a.absorb_counts(&[("x", 1)]);
        let mut b = CounterRollup::new();
        b.absorb_counts(&[("x", 2), ("y", 5)]);
        a.merge(&b);
        assert_eq!(a.total("x"), Some(3));
        assert_eq!(a.total("y"), Some(5));
        assert_eq!(a.snapshots(), 2);
        let names: Vec<&str> = a.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["x", "y"], "name order is stable");
    }

    #[test]
    fn rollup_json_is_stable_and_parseable() {
        let mut rollup = CounterRollup::new();
        rollup.absorb_counts(&[("b.n", 2), ("a.n", 1)]);
        let text = format!("{}", rollup.to_json());
        assert_eq!(text, "{\"a.n\":1,\"b.n\":2}");
    }
}
