#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! **raceloc-obs** — the observability layer of the raceloc workspace.
//!
//! The paper's claims are about *runtime behaviour under stress*: per-stage
//! sensor-update latency on embedded hardware (Table III) and recovery
//! dynamics under wheel slip. This crate provides the measurement substrate
//! those experiments are regenerated from:
//!
//! - [`Telemetry`] — a cheap, cloneable handle carrying monotonic
//!   [span timers](Telemetry::span), [counters](Telemetry::add), and
//!   fixed-bucket latency [histograms](Histogram). A disabled handle
//!   (the default) costs one branch per call, so instrumented hot paths
//!   (`SynPf::correct`, the SLAM matchers, `World` stepping, batch ray
//!   casting) stay within the paper's latency budget.
//! - [`RunRecorder`] — streams one JSONL record per closed-loop correction
//!   step (ground truth, estimate, per-stage timings, filter
//!   [`Diagnostics`](raceloc_core::Diagnostics)) to any writer, so runs are
//!   machine-readable and latency tables are regenerated from recorded
//!   spans instead of ad-hoc `Instant` calls.
//! - [`Json`] — a minimal JSON value model (writer + parser) used by the
//!   recorder; kept local so the crate stays dependency-free.
//!
//! # Examples
//!
//! ```
//! use raceloc_obs::Telemetry;
//!
//! let tel = Telemetry::enabled();
//! {
//!     let _outer = tel.span("correct");
//!     let _inner = tel.span("correct.raycast");
//! } // both spans record on drop
//! tel.add("scans", 1);
//! let snap = tel.snapshot();
//! assert_eq!(snap.span("correct").unwrap().count, 1);
//! assert_eq!(snap.counter("scans"), Some(1));
//! ```

pub mod hist;
pub mod json;
pub mod recorder;
pub mod telemetry;
pub mod time;

pub use hist::Histogram;
pub use json::{Json, JsonError};
pub use recorder::{parse_steps, RunRecorder, SharedBuffer, StepRecord};
pub use telemetry::{CounterRollup, Snapshot, Span, SpanStat, Telemetry};
pub use time::Stopwatch;
