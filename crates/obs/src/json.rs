//! A minimal JSON value model: enough writer + parser to stream and
//! round-trip the [`RunRecorder`](crate::RunRecorder) JSONL schema without
//! pulling serde into an otherwise dependency-free workspace.
//!
//! Numbers are written with Rust's shortest-round-trip `f64` formatting, so
//! `parse(write(x)) == x` for every finite value. JSON has no NaN/∞; those
//! are written as `null`.

use std::collections::VecDeque;
use std::fmt;

/// A parsed or to-be-written JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// A number, mapping non-finite values to `Null`.
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// An optional number (`None` → `Null`).
    pub fn opt_num(v: Option<f64>) -> Json {
        v.map_or(Json::Null, Json::num)
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object fields, if it is one.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Parses one JSON document, requiring the whole input be consumed.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, lit: &'static str, message: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", "expected null").map(|_| Json::Null),
            Some(b't') => self
                .literal("true", "expected true")
                .map(|_| Json::Bool(true)),
            Some(b'f') => self
                .literal("false", "expected false")
                .map(|_| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        let mut pending_surrogate: Option<u16> = None;
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    if pending_surrogate.is_some() {
                        return Err(self.err("unpaired surrogate"));
                    }
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    let simple = match esc {
                        b'"' => Some('"'),
                        b'\\' => Some('\\'),
                        b'/' => Some('/'),
                        b'n' => Some('\n'),
                        b'r' => Some('\r'),
                        b't' => Some('\t'),
                        b'b' => Some('\u{8}'),
                        b'f' => Some('\u{c}'),
                        b'u' => None,
                        _ => return Err(self.err("unknown escape")),
                    };
                    if let Some(c) = simple {
                        if pending_surrogate.is_some() {
                            return Err(self.err("unpaired surrogate"));
                        }
                        out.push(c);
                        continue;
                    }
                    // \uXXXX, with surrogate-pair handling.
                    let hex = self
                        .bytes
                        .get(self.pos..self.pos + 4)
                        .and_then(|h| std::str::from_utf8(h).ok())
                        .and_then(|h| u16::from_str_radix(h, 16).ok())
                        .ok_or_else(|| self.err("bad \\u escape"))?;
                    self.pos += 4;
                    match (pending_surrogate.take(), hex) {
                        (None, 0xD800..=0xDBFF) => pending_surrogate = Some(hex),
                        (None, _) => match char::from_u32(hex as u32) {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid codepoint")),
                        },
                        (Some(hi), 0xDC00..=0xDFFF) => {
                            let cp = 0x10000 + ((hi as u32 - 0xD800) << 10) + (hex as u32 - 0xDC00);
                            match char::from_u32(cp) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid codepoint")),
                            }
                        }
                        (Some(_), _) => return Err(self.err("unpaired surrogate")),
                    }
                }
                _ => {
                    if pending_surrogate.is_some() {
                        return Err(self.err("unpaired surrogate"));
                    }
                    // Consume one UTF-8 encoded char, validating only its
                    // own bytes: running `from_utf8` over the whole tail
                    // here makes parsing quadratic in document size.
                    if b < 0x80 {
                        if b < 0x20 {
                            return Err(self.err("raw control character"));
                        }
                        out.push(b as char);
                        self.pos += 1;
                    } else {
                        let len = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            0xF0..=0xF7 => 4,
                            _ => return Err(self.err("invalid UTF-8")),
                        };
                        let chunk = self
                            .bytes
                            .get(self.pos..self.pos + len)
                            .ok_or_else(|| self.err("invalid UTF-8"))?;
                        let s =
                            std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                        let c = s.chars().next().ok_or_else(|| self.err("empty char"))?;
                        out.push(c);
                        self.pos += len;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Parses a JSONL stream: one JSON document per non-empty line.
pub fn parse_jsonl(input: &str) -> Result<VecDeque<Json>, JsonError> {
    input
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(Json::parse)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for v in [0.0, 1.0, -2.5, 1e-9, 1.25e-3, 123456789.0, f64::MIN] {
            let text = Json::num(v).to_string();
            assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(v), "{text}");
        }
        assert_eq!(Json::num(f64::NAN), Json::Null);
    }

    #[test]
    fn object_round_trips_preserving_order() {
        let obj = Json::Obj(vec![
            ("b".into(), Json::Num(2.0)),
            ("a".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
            (
                "s".into(),
                Json::Str("with \"quotes\" and \n newline".into()),
            ),
        ]);
        let text = obj.to_string();
        assert_eq!(Json::parse(&text).unwrap(), obj);
        // Keys stay in insertion order.
        let keys: Vec<_> = Json::parse(&text)
            .unwrap()
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.clone())
            .collect();
        assert_eq!(keys, ["b", "a", "s"]);
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = Json::parse(r#""éA 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("éA 😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "nul", "1.2.3", "[1] x"] {
            assert!(Json::parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn jsonl_skips_blank_lines() {
        let docs = parse_jsonl("{\"a\":1}\n\n{\"b\":2}\n").unwrap();
        assert_eq!(docs.len(), 2);
    }
}
