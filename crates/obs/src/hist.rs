//! Fixed-bucket histograms for latency accounting.
//!
//! Buckets are defined by a fixed, strictly increasing boundary ladder:
//! value `v` lands in the first bucket `i` with `v < bounds[i]`, and values
//! at or above the last boundary land in a dedicated overflow bucket. With
//! fixed boundaries, histograms from different runs (or different stages of
//! one run) merge and compare bucket-by-bucket — the property the Table III
//! latency breakdown relies on.

/// The default latency ladder \[seconds\]: the R10 preferred-number series
/// (1, 1.25, 1.6, 2, 2.5, 3.15, 4, 5, 6.3, 8 per decade) from 1 µs to 10 s.
///
/// Ten buckets per decade keep quantile upper bounds within ~25% of the
/// true value everywhere on the ladder — microsecond-scale resolution in
/// the sub-millisecond band where the fused particle pipeline now lands
/// (DESIGN.md §11), while still covering multi-second outliers. The old
/// 1–2–5 ladder could only say "somewhere in \[0.5 ms, 1 ms)" about a
/// 0.8 ms correction step.
pub const LATENCY_BOUNDS_S: [f64; 71] = [
    1e-6, 1.25e-6, 1.6e-6, 2e-6, 2.5e-6, 3.15e-6, 4e-6, 5e-6, 6.3e-6, 8e-6, //
    1e-5, 1.25e-5, 1.6e-5, 2e-5, 2.5e-5, 3.15e-5, 4e-5, 5e-5, 6.3e-5, 8e-5, //
    1e-4, 1.25e-4, 1.6e-4, 2e-4, 2.5e-4, 3.15e-4, 4e-4, 5e-4, 6.3e-4, 8e-4, //
    1e-3, 1.25e-3, 1.6e-3, 2e-3, 2.5e-3, 3.15e-3, 4e-3, 5e-3, 6.3e-3, 8e-3, //
    1e-2, 1.25e-2, 1.6e-2, 2e-2, 2.5e-2, 3.15e-2, 4e-2, 5e-2, 6.3e-2, 8e-2, //
    1e-1, 1.25e-1, 1.6e-1, 2e-1, 2.5e-1, 3.15e-1, 4e-1, 5e-1, 6.3e-1, 8e-1, //
    1.0, 1.25, 1.6, 2.0, 2.5, 3.15, 4.0, 5.0, 6.3, 8.0, //
    10.0,
];

/// A fixed-boundary histogram with an overflow bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` counts; the last is the overflow bucket.
    counts: Vec<u64>,
    total: u64,
    sum: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::latency()
    }
}

impl Histogram {
    /// A histogram over the default latency ladder [`LATENCY_BOUNDS_S`].
    pub fn latency() -> Self {
        Self::with_bounds(LATENCY_BOUNDS_S.to_vec())
    }

    /// A histogram over custom boundaries.
    ///
    /// # Panics
    ///
    /// Panics when `bounds` is empty, non-finite, non-positive, or not
    /// strictly increasing.
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one boundary");
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "boundaries must be strictly increasing");
        }
        assert!(
            bounds.iter().all(|b| b.is_finite() && *b > 0.0),
            "boundaries must be positive and finite"
        );
        let n = bounds.len() + 1;
        Self {
            bounds,
            counts: vec![0; n],
            total: 0,
            sum: 0.0,
        }
    }

    /// The bucket index `v` falls into: the first `i` with `v < bounds[i]`,
    /// or `bounds.len()` (the overflow bucket).
    pub fn bucket_for(&self, v: f64) -> usize {
        self.bounds.partition_point(|&b| b <= v)
    }

    /// Records one observation. Non-finite values are counted as overflow
    /// (they are evidence of a broken timer, not of a fast one).
    pub fn record(&mut self, v: f64) {
        let idx = if v.is_finite() {
            self.bucket_for(v)
        } else {
            self.bounds.len()
        };
        self.counts[idx] += 1;
        self.total += 1;
        if v.is_finite() {
            self.sum += v;
        }
    }

    /// The boundary ladder.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries; last is overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of the recorded (finite) observations.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// An upper bound on the `q`-quantile (`0 <= q <= 1`): the boundary of
    /// the first bucket whose cumulative count reaches `q · total`.
    /// Returns `None` when empty or when the quantile lands in overflow.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return self.bounds.get(i).copied();
            }
        }
        None
    }

    /// Merges another histogram recorded over the same boundaries.
    ///
    /// # Panics
    ///
    /// Panics when the boundary ladders differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "cannot merge: bounds differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ladder_is_strictly_increasing() {
        for w in LATENCY_BOUNDS_S.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn bucket_boundary_invariants() {
        let h = Histogram::latency();
        // Every value lands in the bucket whose half-open interval holds it:
        // bounds[i-1] <= v < bounds[i].
        for (i, &b) in h.bounds().iter().enumerate() {
            // Just below the boundary → bucket i.
            assert_eq!(h.bucket_for(b * (1.0 - 1e-12)), i, "below bound {b}");
            // Exactly at the boundary → next bucket (half-open intervals).
            assert_eq!(h.bucket_for(b), i + 1, "at bound {b}");
        }
        assert_eq!(h.bucket_for(0.0), 0);
        assert_eq!(h.bucket_for(1e9), h.bounds().len());
    }

    #[test]
    fn record_and_counts_sum() {
        let mut h = Histogram::latency();
        let values = [5e-7, 1.5e-6, 1e-3, 1e-3, 0.3, 99.0];
        for v in values {
            h.record(v);
        }
        assert_eq!(h.total(), values.len() as u64);
        assert_eq!(
            h.counts().iter().sum::<u64>(),
            values.len() as u64,
            "counts must sum to total"
        );
        // 99 s exceeds the ladder → overflow bucket.
        assert_eq!(h.counts()[h.bounds().len()], 1);
    }

    #[test]
    fn non_finite_goes_to_overflow() {
        let mut h = Histogram::latency();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.counts()[h.bounds().len()], 2);
        assert_eq!(h.mean(), 0.0); // non-finite values don't pollute the sum
    }

    #[test]
    fn quantile_upper_bound_brackets_median() {
        let mut h = Histogram::latency();
        for _ in 0..100 {
            h.record(1.3e-3); // lands in (1.25e-3, 1.6e-3]
        }
        assert_eq!(h.quantile_upper_bound(0.5), Some(1.6e-3));
        assert_eq!(h.quantile_upper_bound(0.99), Some(1.6e-3));
        assert_eq!(Histogram::latency().quantile_upper_bound(0.5), None);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let mut a = Histogram::latency();
        let mut b = Histogram::latency();
        a.record(1e-3);
        b.record(1e-3);
        b.record(0.5);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.counts().iter().sum::<u64>(), 3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_panic() {
        Histogram::with_bounds(vec![1.0, 0.5]);
    }
}
