//! Tier-1 serve suite: a 64-session mixed-track run must be bit-identical
//! for every thread count, every session must be replayable in isolation
//! from the JSONL stream, same-track sessions must share one artifact
//! build, and backpressure must shed oldest-first.

use raceloc_core::sensor_data::{LaserScan, Odometry};
use raceloc_core::{stream_keys, Pose2, Rng64, Twist2};
use raceloc_map::{Track, TrackShape, TrackSpec};
use raceloc_obs::SharedBuffer;
use raceloc_pf::SynPfConfig;
use raceloc_range::{ArtifactParams, RangeMethod, RayMarching};
use raceloc_serve::{
    parse_serve_steps, session_records, LocalizerSpec, ServeConfig, ServeEngine, SessionId,
    StepRequest, StepResult,
};
use raceloc_slam::CartoLocalizerConfig;

const SESSIONS: usize = 64;
const STEPS: usize = 6;
const DT: f64 = 0.1;
const SPEED: f64 = 3.0;

fn tracks() -> Vec<Track> {
    vec![
        TrackSpec::new(TrackShape::Oval {
            width: 10.0,
            height: 6.0,
        })
        .resolution(0.15)
        .build(),
        TrackSpec::new(TrackShape::RoundedRectangle {
            width: 9.0,
            height: 7.0,
            corner_radius: 1.5,
        })
        .resolution(0.15)
        .build(),
        TrackSpec::new(TrackShape::LShape {
            arm: 8.0,
            notch: 3.0,
            corner_radius: 1.0,
        })
        .resolution(0.15)
        .build(),
    ]
}

fn params() -> ArtifactParams {
    ArtifactParams {
        max_range: 8.0,
        theta_bins: 24,
    }
}

/// Cheap mixed specs: every third session runs a different localizer.
fn spec_for(i: usize) -> LocalizerSpec {
    match i % 3 {
        0 => LocalizerSpec::SynPf {
            config: SynPfConfig {
                particles: 64,
                layout: raceloc_pf::ScanLayout::Boxed {
                    count: 24,
                    aspect: 3.0,
                },
                ..SynPfConfig::default()
            },
            recovery: i.is_multiple_of(6),
        },
        1 => LocalizerSpec::Cartographer(CartoLocalizerConfig {
            max_points: 40,
            window: raceloc_slam::SearchWindow {
                linear: 0.12,
                angular: 0.06,
            },
            linear_step: 0.06,
            angular_step: 0.03,
            ..CartoLocalizerConfig::default()
        }),
        _ => LocalizerSpec::DeadReckoning,
    }
}

/// Deterministic per-session input tape: truth follows the track
/// centerline from a session-specific arc offset; odometry integrates
/// truth deltas with seeded noise; scans are cast from the truth pose.
/// Independent of the engine, so every run sees identical bytes.
fn inputs_for(track: &Track, session: usize) -> Vec<(Odometry, Option<LaserScan>)> {
    let caster = RayMarching::new(&track.grid, params().max_range);
    let mut rng = Rng64::stream(0x1A9E, stream_keys::bench_driver(session as u64));
    let path = &track.centerline;
    let s0 = session as f64 * 0.4;
    let mut odom_pose = Pose2::IDENTITY;
    let mut out = Vec::with_capacity(STEPS);
    for step in 1..=STEPS {
        let s_prev = s0 + (step - 1) as f64 * SPEED * DT;
        let s_now = s0 + step as f64 * SPEED * DT;
        let prev = Pose2::from_point(path.point_at(s_prev), path.heading_at(s_prev));
        let truth = Pose2::from_point(path.point_at(s_now), path.heading_at(s_now));
        let mut delta = prev.relative_to(truth);
        delta.x += rng.gaussian_with(0.0, 0.004);
        delta.y += rng.gaussian_with(0.0, 0.004);
        delta.theta += rng.gaussian_with(0.0, 0.002);
        odom_pose = odom_pose * delta;
        let stamp = step as f64 * DT;
        let odom = Odometry::new(odom_pose, Twist2::new(SPEED, 0.0, 0.0), stamp);
        let beams = 30;
        let fov = 270.0f64.to_radians();
        let inc = fov / (beams - 1) as f64;
        let ranges: Vec<f64> = (0..beams)
            .map(|b| caster.range(truth.x, truth.y, truth.theta - 0.5 * fov + b as f64 * inc))
            .collect();
        let mut scan = LaserScan::new(-0.5 * fov, inc, ranges, params().max_range);
        scan.stamp = stamp;
        out.push((odom, Some(scan)));
    }
    out
}

fn start_pose(track: &Track, session: usize) -> Pose2 {
    let s0 = session as f64 * 0.4;
    Pose2::from_point(
        track.centerline.point_at(s0),
        track.centerline.heading_at(s0),
    )
}

/// Runs the full 64-session fleet and returns every step result in
/// canonical order, plus the engine for counter inspection.
fn run_fleet(threads: usize, recorder: Option<SharedBuffer>) -> (Vec<StepResult>, ServeEngine) {
    let tracks = tracks();
    let mut engine = ServeEngine::new(ServeConfig {
        seed: 42,
        threads,
        queue_capacity: 8192,
        max_sessions: SESSIONS,
        chunk_min: 2,
        ..ServeConfig::default()
    });
    if let Some(buf) = recorder {
        engine.set_recorder(buf);
    }
    let mut ids = Vec::with_capacity(SESSIONS);
    let mut tapes = Vec::with_capacity(SESSIONS);
    for i in 0..SESSIONS {
        let track = &tracks[i % tracks.len()];
        let id = engine
            .open_session(&track.grid, params(), spec_for(i), start_pose(track, i))
            .expect("under max_sessions");
        ids.push(id);
        tapes.push(inputs_for(track, i));
    }
    // Interleave: every session advances one step, drain every two steps
    // so batches mix many small sessions into shared pool chunks.
    let mut all = Vec::new();
    for step in 0..STEPS {
        for (tape, id) in tapes.iter().zip(&ids) {
            let (odom, scan) = tape[step].clone();
            engine
                .submit(StepRequest {
                    session: *id,
                    odom,
                    scan,
                })
                .expect("session is open");
        }
        if step % 2 == 1 || step == STEPS - 1 {
            all.extend(engine.drain());
        }
    }
    all.sort_by_key(|r| (r.session.0, r.seq));
    (all, engine)
}

fn digest(results: &[StepResult]) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    };
    for r in results {
        eat(r.session.0);
        eat(r.seq);
        eat(r.pose.x.to_bits());
        eat(r.pose.y.to_bits());
        eat(r.pose.theta.to_bits());
        eat(r.health.as_str().len() as u64);
    }
    h
}

fn env_threads() -> usize {
    std::env::var("RACELOC_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&t| (1..=64).contains(&t))
        .unwrap_or(2)
}

#[test]
fn sixty_four_sessions_bitwise_identical_across_thread_counts() {
    let (reference, engine) = run_fleet(1, None);
    assert_eq!(reference.len(), SESSIONS * STEPS, "no step lost");
    assert_eq!(engine.shed_total(), 0, "no backpressure in this scenario");
    let want = digest(&reference);
    for threads in [2, env_threads()] {
        let (got, _) = run_fleet(threads, None);
        assert_eq!(digest(&got), want, "threads={threads} diverged");
        assert_eq!(got, reference, "threads={threads} full results differ");
    }
}

#[test]
fn every_session_replays_in_isolation_from_the_jsonl_stream() {
    let buf = SharedBuffer::new();
    let (results, _) = run_fleet(2, Some(buf.clone()));
    let stream = parse_serve_steps(&buf.contents()).expect("recorded stream parses");
    assert_eq!(stream.len(), results.len(), "one line per executed step");

    // Replay one session of each localizer kind. The fresh engine opens
    // the same 64 sessions (ids and therefore RNG streams match) but only
    // feeds the target session — sessions are independent, so its poses
    // must come back bit-identical to the recorded stream.
    let tracks = tracks();
    for target in [0usize, 1, 2, 9] {
        let mut engine = ServeEngine::new(ServeConfig {
            seed: 42,
            threads: 1,
            queue_capacity: 8192,
            max_sessions: SESSIONS,
            chunk_min: 2,
            ..ServeConfig::default()
        });
        for i in 0..SESSIONS {
            let track = &tracks[i % tracks.len()];
            engine
                .open_session(&track.grid, params(), spec_for(i), start_pose(track, i))
                .expect("under max_sessions");
        }
        let recorded = session_records(&stream, SessionId(target as u64));
        assert_eq!(recorded.len(), STEPS);
        for rec in &recorded {
            engine.submit(rec.request()).expect("session is open");
        }
        let replayed = engine.drain();
        assert_eq!(replayed.len(), recorded.len());
        for (rec, res) in recorded.iter().zip(&replayed) {
            assert_eq!(res.session, rec.session);
            assert_eq!(res.seq, rec.seq);
            assert_eq!(res.pose, rec.est, "session {target} seq {}", rec.seq);
            assert_eq!(res.health, rec.health);
        }
    }
}

#[test]
fn ten_same_track_sessions_share_one_artifact_build() {
    let track = &tracks()[0];
    let mut engine = ServeEngine::new(ServeConfig {
        seed: 9,
        threads: 2,
        ..ServeConfig::default()
    });
    let mut ids = Vec::new();
    for i in 0..10 {
        let spec = LocalizerSpec::SynPf {
            config: SynPfConfig {
                particles: 48,
                ..SynPfConfig::default()
            },
            recovery: false,
        };
        let id = engine
            .open_session(&track.grid, params(), spec, start_pose(track, i))
            .expect("under max_sessions");
        ids.push(id);
    }
    assert_eq!(engine.store().builds(), 1, "one bundle for ten sessions");
    assert_eq!(engine.store().hits(), 9);
    assert_eq!(engine.store().len(), 1);
    assert_eq!(engine.store().luts_built(), 0, "LUT is lazy until stepped");

    // Drive every session one correction step: the range LUT is built
    // exactly once, shared by all ten SynPF filters.
    for (i, id) in ids.iter().enumerate() {
        let (odom, scan) = inputs_for(track, i).remove(0);
        engine
            .submit(StepRequest {
                session: *id,
                odom,
                scan,
            })
            .expect("session is open");
    }
    let results = engine.drain();
    assert_eq!(results.len(), 10);
    assert_eq!(engine.store().luts_built(), 1, "ten sessions, one LUT");

    let rollup = engine.rollup();
    assert_eq!(rollup.total("range.artifacts.builds"), Some(1));
    assert_eq!(rollup.total("range.artifacts.hits"), Some(9));
    assert_eq!(rollup.total("range.artifacts.luts_built"), Some(1));
    assert_eq!(rollup.total("serve.sessions.opened"), Some(10));
    assert_eq!(rollup.total("serve.steps"), Some(10));
    assert!(
        rollup.total("par.pool.jobs").unwrap_or(0) > 0,
        "drain went through the worker pool"
    );
    // All ten sessions ran on the same bundle (same content key).
    let keys: Vec<u64> = ids
        .iter()
        .map(|id| engine.close_session(*id).expect("open").artifact_key)
        .collect();
    assert!(keys.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn backpressure_sheds_oldest_first() {
    let track = &tracks()[0];
    let mut engine = ServeEngine::new(ServeConfig {
        seed: 1,
        threads: 1,
        queue_capacity: 4,
        ..ServeConfig::default()
    });
    let id = engine
        .open_session(
            &track.grid,
            params(),
            LocalizerSpec::DeadReckoning,
            start_pose(track, 0),
        )
        .expect("capacity available");
    // Six submissions into a 4-slot queue: the two oldest are shed.
    for k in 0..6 {
        let odom = Odometry::new(
            Pose2::new(k as f64, 0.0, 0.0),
            Twist2::new(1.0, 0.0, 0.0),
            k as f64 * DT,
        );
        engine
            .submit(StepRequest {
                session: id,
                odom,
                scan: None,
            })
            .expect("session is open");
    }
    assert_eq!(engine.queue_len(), 4);
    assert_eq!(engine.shed_total(), 2);
    let results = engine.drain();
    assert_eq!(results.len(), 4, "only the freshest four survive");
    // Dead reckoning echoes the odometry frame walk: the surviving steps
    // are the ones submitted with k = 2..5.
    assert_eq!(results[0].seq, 0);
    assert_eq!(engine.rollup().total("serve.shed"), Some(2));
    let summary = engine.close_session(id).expect("open");
    assert_eq!(summary.sheds, 2);
    assert_eq!(summary.steps, 4);
}

#[test]
fn session_step_quota_sheds_oldest_keeping_newest() {
    let track = &tracks()[0];
    let mut engine = ServeEngine::new(ServeConfig {
        seed: 1,
        threads: 1,
        session_step_quota: 2,
        ..ServeConfig::default()
    });
    let a = engine
        .open_session(
            &track.grid,
            params(),
            LocalizerSpec::DeadReckoning,
            start_pose(track, 0),
        )
        .expect("capacity available");
    let b = engine
        .open_session(
            &track.grid,
            params(),
            LocalizerSpec::DeadReckoning,
            start_pose(track, 1),
        )
        .expect("capacity available");
    // Session a floods five steps; session b stays within quota.
    for k in 0..5 {
        let odom = Odometry::new(
            Pose2::new(k as f64, 0.0, 0.0),
            Twist2::new(1.0, 0.0, 0.0),
            k as f64 * DT,
        );
        engine
            .submit(StepRequest {
                session: a,
                odom,
                scan: None,
            })
            .expect("session is open");
    }
    engine
        .submit(StepRequest {
            session: b,
            odom: Odometry::new(Pose2::new(0.5, 0.0, 0.0), Twist2::new(1.0, 0.0, 0.0), DT),
            scan: None,
        })
        .expect("session is open");
    let results = engine.drain();
    // Quota kept the newest two of a's five requests; b is untouched.
    assert_eq!(results.len(), 3);
    assert_eq!(
        results.iter().filter(|r| r.session == a).count(),
        2,
        "session a executes exactly its quota"
    );
    assert_eq!(engine.budget_shed_total(), 3);
    assert_eq!(engine.shed_total(), 0, "queue backpressure never fired");
    assert_eq!(engine.rollup().total("serve.budget.shed"), Some(3));
    let summary_a = engine.close_session(a).expect("open");
    assert_eq!(summary_a.sheds, 3);
    assert_eq!(summary_a.steps, 2);
    let summary_b = engine.close_session(b).expect("open");
    assert_eq!(summary_b.sheds, 0);
    assert_eq!(summary_b.steps, 1);
}

#[test]
fn unknown_sessions_and_capacity_are_rejected() {
    let track = &tracks()[0];
    let mut engine = ServeEngine::new(ServeConfig {
        max_sessions: 1,
        ..ServeConfig::default()
    });
    let id = engine
        .open_session(
            &track.grid,
            params(),
            LocalizerSpec::DeadReckoning,
            start_pose(track, 0),
        )
        .expect("first session fits");
    let over = engine.open_session(
        &track.grid,
        params(),
        LocalizerSpec::DeadReckoning,
        start_pose(track, 1),
    );
    assert!(matches!(
        over,
        Err(raceloc_serve::ServeError::AtCapacity { limit: 1 })
    ));
    let ghost = SessionId(99);
    let err = engine
        .submit(StepRequest {
            session: ghost,
            odom: Odometry::new(Pose2::IDENTITY, Twist2::ZERO, 0.0),
            scan: None,
        })
        .expect_err("unknown session");
    assert_eq!(err, raceloc_serve::ServeError::UnknownSession(ghost));
    engine.close_session(id).expect("open");
    assert!(engine.close_session(id).is_err(), "double close rejected");
}
