//! Session identity, localizer specifications, and per-session state.

use raceloc_core::localizer::{DeadReckoning, Localizer};
use raceloc_core::{stream_keys, Rng64};
use raceloc_obs::{Snapshot, Telemetry};
use raceloc_pf::{SynPf, SynPfConfig};
use raceloc_range::MapArtifacts;
use raceloc_slam::{CartoLocalizer, CartoLocalizerConfig};
use std::fmt;
use std::sync::Arc;

/// Opaque handle to one localization session inside a
/// [`ServeEngine`](crate::ServeEngine).
///
/// Ids are assigned densely from zero in open order and are never reused,
/// so they double as the session's deterministic RNG stream index
/// (`Rng64::stream(engine_seed, id)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Which localizer a session runs. The engine owns parallelism and
/// randomness: SynPF sessions are forced to `threads = 1` (cross-session
/// batching fills the pool instead) and their seed is replaced with the
/// engine's per-session RNG stream.
// A spec is cloned once per `open_session`, never on the step path, so the
// variant size gap is irrelevant and boxing would only clutter the API.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum LocalizerSpec {
    /// The paper's SynPF Monte-Carlo filter over the bundle's range LUT.
    SynPf {
        /// Filter configuration; `seed` and `threads` are overridden.
        config: SynPfConfig,
        /// Enable augmented-MCL recovery from the bundle's grid.
        recovery: bool,
    },
    /// Cartographer pure localization (scan-to-map matching).
    Cartographer(CartoLocalizerConfig),
    /// Odometry integration only (the robustness floor).
    DeadReckoning,
}

impl LocalizerSpec {
    /// A short stable name for reports and JSONL meta lines.
    pub fn name(&self) -> &'static str {
        match self {
            LocalizerSpec::SynPf { .. } => "synpf",
            LocalizerSpec::Cartographer(_) => "cartographer",
            LocalizerSpec::DeadReckoning => "dead_reckoning",
        }
    }

    /// Builds the boxed localizer for a session over shared artifacts.
    ///
    /// `session_seed` replaces any configured PRNG seed; `tel` is attached
    /// where the localizer supports telemetry.
    pub(crate) fn build(
        &self,
        artifacts: &Arc<MapArtifacts>,
        session_seed: u64,
        tel: Telemetry,
    ) -> Box<dyn Localizer + Send> {
        match self {
            LocalizerSpec::SynPf { config, recovery } => {
                let mut config = config.clone();
                config.seed = session_seed;
                config.threads = 1;
                let mut pf = SynPf::from_artifacts(Arc::clone(artifacts), config);
                if *recovery {
                    pf.enable_recovery_from_artifacts();
                }
                pf.set_telemetry(tel);
                Box::new(pf)
            }
            LocalizerSpec::Cartographer(config) => {
                let mut loc = CartoLocalizer::from_artifacts(artifacts, *config);
                loc.set_telemetry(tel);
                Box::new(loc)
            }
            LocalizerSpec::DeadReckoning => Box::new(DeadReckoning::new()),
        }
    }
}

/// Derives the deterministic seed of a session from the engine seed and the
/// session id (a pure [`Rng64::stream`] draw — no global state).
pub fn session_seed(engine_seed: u64, id: SessionId) -> u64 {
    Rng64::stream(engine_seed, stream_keys::serve_session(id.0)).next_u64()
}

/// Per-session state owned by the engine's session table.
pub(crate) struct SessionSlot {
    /// The session's localizer (serial; the engine parallelizes across
    /// sessions, never within one).
    pub localizer: Box<dyn Localizer + Send>,
    /// Per-session telemetry handle (always enabled).
    pub tel: Telemetry,
    /// Localizer kind name, for summaries and records.
    pub name: &'static str,
    /// Steps completed so far (also the next step's sequence number).
    pub steps: u64,
    /// Requests of this session shed by backpressure.
    pub sheds: u64,
    /// Cache key of the artifact bundle the session was opened on.
    pub artifact_key: u64,
}

/// The terminal report of a closed session.
#[derive(Debug, Clone)]
pub struct SessionSummary {
    /// The closed session's id.
    pub id: SessionId,
    /// Localizer kind name.
    pub name: &'static str,
    /// Total steps executed.
    pub steps: u64,
    /// Requests shed by backpressure while this session was open.
    pub sheds: u64,
    /// Cache key of the artifact bundle the session ran on.
    pub artifact_key: u64,
    /// The session's final telemetry snapshot (spans + counters).
    pub snapshot: Snapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_seed_is_a_pure_stream_draw() {
        let a = session_seed(7, SessionId(3));
        let b = session_seed(7, SessionId(3));
        assert_eq!(a, b);
        assert_ne!(a, session_seed(7, SessionId(4)));
        assert_ne!(a, session_seed(8, SessionId(3)));
        assert_eq!(a, Rng64::stream(7, 3).next_u64());
    }

    #[test]
    fn spec_names_are_stable() {
        assert_eq!(
            LocalizerSpec::SynPf {
                config: SynPfConfig::default(),
                recovery: false,
            }
            .name(),
            "synpf"
        );
        assert_eq!(
            LocalizerSpec::Cartographer(CartoLocalizerConfig::default()).name(),
            "cartographer"
        );
        assert_eq!(LocalizerSpec::DeadReckoning.name(), "dead_reckoning");
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(SessionId(17).to_string(), "s17");
    }
}
