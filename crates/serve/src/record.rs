//! JSONL recording and replay of multi-session serve streams.
//!
//! The engine can stream one line per executed step to any writer, in the
//! canonical `(session, seq)` order (independent of thread count and batch
//! chunking). Each line carries the step's *inputs* (odometry, optional
//! scan) as well as its *outputs* (estimate, health), so any single
//! session can be replayed in isolation: filter the stream by session id,
//! rebuild the [`StepRequest`]s, feed them to a fresh engine with the same
//! spec and map, and the poses must come back bit-identical.
//!
//! Layout of a `serve_step` line:
//!
//! ```json
//! {"type":"serve_step","session":3,"seq":5,
//!  "odom":{"pose":[x,y,th],"twist":[vx,vy,om],"t":0.25},
//!  "scan":{"amin":-1.5,"ainc":0.02,"rmax":10.0,"t":0.25,"ranges":[...]},
//!  "est":[x,y,th],"health":"nominal"}
//! ```
//!
//! `scan` is `null` for odometry-only steps. All floats round-trip exactly
//! through the shortest-representation writer in `raceloc-obs`.

use crate::engine::{StepRequest, StepResult};
use crate::session::SessionId;
use raceloc_core::sensor_data::{LaserScan, Odometry};
use raceloc_core::{Health, Pose2, Twist2};
use raceloc_obs::{Json, JsonError};

fn pose_json(p: Pose2) -> Json {
    Json::Arr(vec![Json::num(p.x), Json::num(p.y), Json::num(p.theta)])
}

fn pose_from_json(v: &Json) -> Option<Pose2> {
    match v.as_array()? {
        [x, y, t] => Some(Pose2::new(x.as_f64()?, y.as_f64()?, t.as_f64()?)),
        _ => None,
    }
}

/// One recorded serve step: the request that was executed plus the result
/// it produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStepRecord {
    /// Session the step belongs to.
    pub session: SessionId,
    /// Per-session sequence number (0-based, gap-free).
    pub seq: u64,
    /// The odometry input.
    pub odom: Odometry,
    /// The scan input, when the step included a correction.
    pub scan: Option<LaserScan>,
    /// The pose estimate after the step.
    pub est: Pose2,
    /// The localizer's health after the step.
    pub health: Health,
}

impl ServeStepRecord {
    /// Builds a record from an executed request/result pair.
    pub fn from_step(req: &StepRequest, res: &StepResult) -> Self {
        Self {
            session: res.session,
            seq: res.seq,
            odom: req.odom,
            scan: req.scan.clone(),
            est: res.pose,
            health: res.health,
        }
    }

    /// The replayable request this record was produced from.
    pub fn request(&self) -> StepRequest {
        StepRequest {
            session: self.session,
            odom: self.odom,
            scan: self.scan.clone(),
        }
    }

    /// Serializes to the JSONL `serve_step` document.
    pub fn to_json(&self) -> Json {
        let odom = Json::Obj(vec![
            ("pose".into(), pose_json(self.odom.pose)),
            (
                "twist".into(),
                Json::Arr(vec![
                    Json::num(self.odom.twist.vx),
                    Json::num(self.odom.twist.vy),
                    Json::num(self.odom.twist.omega),
                ]),
            ),
            ("t".into(), Json::num(self.odom.stamp)),
        ]);
        let scan = match &self.scan {
            Some(s) => Json::Obj(vec![
                ("amin".into(), Json::num(s.angle_min)),
                ("ainc".into(), Json::num(s.angle_increment)),
                ("rmax".into(), Json::num(s.max_range)),
                ("t".into(), Json::num(s.stamp)),
                (
                    "ranges".into(),
                    Json::Arr(s.ranges.iter().map(|&r| Json::num(r)).collect()),
                ),
            ]),
            None => Json::Null,
        };
        Json::Obj(vec![
            ("type".into(), Json::Str("serve_step".into())),
            ("session".into(), Json::num(self.session.0 as f64)),
            ("seq".into(), Json::num(self.seq as f64)),
            ("odom".into(), odom),
            ("scan".into(), scan),
            ("est".into(), pose_json(self.est)),
            ("health".into(), Json::Str(self.health.as_str().into())),
        ])
    }

    /// Extracts a record from a parsed `serve_step` document; `None` for
    /// other document types (e.g. `serve_open` meta lines).
    pub fn from_json(doc: &Json) -> Option<Self> {
        if doc.get("type")?.as_str()? != "serve_step" {
            return None;
        }
        let odom_doc = doc.get("odom")?;
        let twist = match odom_doc.get("twist")?.as_array()? {
            [vx, vy, om] => Twist2::new(vx.as_f64()?, vy.as_f64()?, om.as_f64()?),
            _ => return None,
        };
        let odom = Odometry::new(
            pose_from_json(odom_doc.get("pose")?)?,
            twist,
            odom_doc.get("t")?.as_f64()?,
        );
        let scan = match doc.get("scan")? {
            Json::Null => None,
            s => {
                let ranges = s
                    .get("ranges")?
                    .as_array()?
                    .iter()
                    .map(Json::as_f64)
                    .collect::<Option<Vec<f64>>>()?;
                let mut scan = LaserScan::new(
                    s.get("amin")?.as_f64()?,
                    s.get("ainc")?.as_f64()?,
                    ranges,
                    s.get("rmax")?.as_f64()?,
                );
                scan.stamp = s.get("t")?.as_f64()?;
                Some(scan)
            }
        };
        Some(Self {
            session: SessionId(doc.get("session")?.as_u64()?),
            seq: doc.get("seq")?.as_u64()?,
            odom,
            scan,
            est: pose_from_json(doc.get("est")?)?,
            health: Health::from_name(doc.get("health")?.as_str()?)?,
        })
    }

    /// Parses one JSONL line; `Ok(None)` for non-`serve_step` documents.
    pub fn parse_line(line: &str) -> Result<Option<Self>, JsonError> {
        let doc = Json::parse(line.trim())?;
        Ok(Self::from_json(&doc))
    }
}

/// Parses a full JSONL stream, returning the `serve_step` records in
/// stream order (which is the canonical `(session, seq)` order per batch).
pub fn parse_serve_steps(jsonl: &str) -> Result<Vec<ServeStepRecord>, JsonError> {
    let mut out = Vec::new();
    for line in jsonl.lines().filter(|l| !l.trim().is_empty()) {
        if let Some(rec) = ServeStepRecord::parse_line(line)? {
            out.push(rec);
        }
    }
    Ok(out)
}

/// Filters a parsed stream down to one session's records, ordered by
/// sequence number — the replay input for a fresh single-session engine.
pub fn session_records(records: &[ServeStepRecord], id: SessionId) -> Vec<ServeStepRecord> {
    let mut out: Vec<ServeStepRecord> = records
        .iter()
        .filter(|r| r.session == id)
        .cloned()
        .collect();
    out.sort_by_key(|r| r.seq);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(session: u64, seq: u64, with_scan: bool) -> ServeStepRecord {
        let mut scan = LaserScan::new(-1.5, 0.25, vec![1.0, 2.5, 0.125, 10.0], 10.0);
        scan.stamp = 0.7;
        ServeStepRecord {
            session: SessionId(session),
            seq,
            odom: Odometry::new(
                Pose2::new(1.5, -2.25, 0.3),
                Twist2::new(3.0, 0.0, 0.125),
                0.7,
            ),
            scan: with_scan.then_some(scan),
            est: Pose2::new(1.51, -2.26, 0.29),
            health: Health::Nominal,
        }
    }

    #[test]
    fn record_round_trips_through_jsonl() {
        for with_scan in [true, false] {
            let rec = sample(3, 5, with_scan);
            let line = rec.to_json().to_string();
            let back = ServeStepRecord::parse_line(&line)
                .expect("parses")
                .expect("is a serve_step");
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn request_rebuilds_the_input() {
        let rec = sample(2, 0, true);
        let req = rec.request();
        assert_eq!(req.session, SessionId(2));
        assert_eq!(req.odom, rec.odom);
        assert_eq!(req.scan, rec.scan);
    }

    #[test]
    fn stream_parsing_skips_meta_and_filters_by_session() {
        let mut text = String::from("{\"type\":\"serve_open\",\"session\":0}\n");
        for (s, q) in [(0, 0), (1, 0), (0, 1)] {
            text.push_str(&sample(s, q, s == 0).to_json().to_string());
            text.push('\n');
        }
        let all = parse_serve_steps(&text).expect("parses");
        assert_eq!(all.len(), 3);
        let only0 = session_records(&all, SessionId(0));
        assert_eq!(only0.len(), 2);
        assert_eq!((only0[0].seq, only0[1].seq), (0, 1));
    }
}
