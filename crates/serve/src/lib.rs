#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! **Localization-as-a-service**: a multi-session engine that runs many
//! concurrent localizers — SynPF, Cartographer pure localization, dead
//! reckoning — over shared per-map artifacts and one worker pool.
//!
//! The paper's core claim is that MCL-grade localization is robust enough
//! to run as a commodity service for racing platforms; the F1TENTH survey
//! frames exactly this fleet-of-vehicles deployment. This crate is that
//! deployment shape (DESIGN.md §13):
//!
//! - **Shared artifacts** — sessions on the same track resolve one cached
//!   [`raceloc_range::MapArtifacts`] bundle (grid + EDT + lazily built
//!   range LUT) from the engine's [`raceloc_range::ArtifactStore`], keyed
//!   by a geometry-covering content hash. N sessions, one LUT build.
//! - **Session table** — [`SessionId`]-keyed slots, each with a private
//!   deterministic RNG stream (`Rng64::stream` on the session id) and
//!   per-session telemetry.
//! - **Cross-session batching** — queued [`StepRequest`]s from many small
//!   sessions are packed into dense worker-pool chunks; one session's
//!   steps are always serial, so results are bit-identical for every
//!   thread count.
//! - **Admission control** — a bounded queue sheds the *oldest* request
//!   under pressure (`serve.shed` counter): in localization, fresh data
//!   always beats stale data.
//! - **Observability** — per-session [`SessionSummary`] snapshots, an
//!   engine-wide [`ServeEngine::rollup`], and a JSONL stream from which
//!   any single session can be replayed bit-identically
//!   ([`record::parse_serve_steps`]).
//!
//! # Examples
//!
//! ```
//! use raceloc_map::{TrackShape, TrackSpec};
//! use raceloc_range::ArtifactParams;
//! use raceloc_serve::{LocalizerSpec, ServeConfig, ServeEngine};
//!
//! let track = TrackSpec::new(TrackShape::Oval { width: 10.0, height: 6.0 })
//!     .resolution(0.1)
//!     .build();
//! let mut engine = ServeEngine::new(ServeConfig::default());
//! // Ten cars on one track: a single shared artifact build.
//! for _ in 0..10 {
//!     engine
//!         .open_session(
//!             &track.grid,
//!             ArtifactParams::default(),
//!             LocalizerSpec::DeadReckoning,
//!             track.start_pose(),
//!         )
//!         .expect("capacity available");
//! }
//! assert_eq!(engine.store().builds(), 1);
//! assert_eq!(engine.store().hits(), 9);
//! ```

pub mod engine;
pub mod record;
pub mod session;

pub use engine::{ServeConfig, ServeEngine, ServeError, StepRequest, StepResult};
pub use record::{parse_serve_steps, session_records, ServeStepRecord};
pub use session::{session_seed, LocalizerSpec, SessionId, SessionSummary};
