//! The multi-session serve engine: session table, admission control,
//! cross-session batching, and deterministic drain.

use crate::record::ServeStepRecord;
use crate::session::{session_seed, LocalizerSpec, SessionId, SessionSlot, SessionSummary};
use raceloc_core::sensor_data::{LaserScan, Odometry};
use raceloc_core::{Health, Pose2};
use raceloc_map::OccupancyGrid;
use raceloc_obs::{CounterRollup, Json, Telemetry};
use raceloc_par::{chunk_spans, FnJob, WorkerPool};
use raceloc_range::{ArtifactParams, ArtifactStore};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io::Write;

/// Engine-level configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Master seed; each session draws its own RNG stream from it
    /// ([`session_seed`]), so per-session randomness is independent of open
    /// order *timing*, thread count, and every other session.
    pub seed: u64,
    /// Worker threads for the drain fan-out. Results are bit-identical for
    /// any value (chunking never feeds RNG or per-session state).
    pub threads: usize,
    /// Bounded request queue length; beyond it, admission control sheds
    /// the *oldest* queued request (freshest-data-wins, the right policy
    /// for localization where stale inputs only drag the estimate back).
    pub queue_capacity: usize,
    /// Maximum concurrently open sessions.
    pub max_sessions: usize,
    /// Minimum sessions per pool chunk when draining: small sessions are
    /// packed together so the pool sees few, dense jobs instead of one
    /// tiny job per session.
    pub chunk_min: usize,
    /// Per-session step quota per drain batch (`0` = unlimited). When one
    /// session has more requests queued than this at drain time, the
    /// *oldest* beyond the quota are shed (freshest-data-wins, like queue
    /// backpressure) and booked to `serve.budget.shed` plus the session's
    /// shed count. This is the serve-side compute budget: a session that
    /// floods the engine degrades itself instead of stretching the batch
    /// deadline for everyone (DESIGN.md §14).
    pub session_step_quota: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            threads: 1,
            queue_capacity: 4096,
            max_sessions: 1024,
            chunk_min: 4,
            session_step_quota: 0,
        }
    }
}

/// Why an engine call was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// `open_session` refused: the session table is full.
    AtCapacity {
        /// The configured [`ServeConfig::max_sessions`] limit.
        limit: usize,
    },
    /// The referenced session is not open (never existed or was closed).
    UnknownSession(SessionId),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::AtCapacity { limit } => {
                write!(f, "session table full ({limit} sessions)")
            }
            ServeError::UnknownSession(id) => write!(f, "unknown session {id}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One step of work for a session: a mandatory odometry sample and an
/// optional scan correction.
#[derive(Debug, Clone, PartialEq)]
pub struct StepRequest {
    /// The target session.
    pub session: SessionId,
    /// Odometry input (drives the prediction).
    pub odom: Odometry,
    /// Scan input (drives the correction); `None` coasts on prediction.
    pub scan: Option<LaserScan>,
}

/// The outcome of one executed step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepResult {
    /// The session that stepped.
    pub session: SessionId,
    /// Per-session sequence number (0-based, gap-free).
    pub seq: u64,
    /// Pose estimate after the step.
    pub pose: Pose2,
    /// Localizer health after the step.
    pub health: Health,
}

/// Work moved through the pool: each job carries a contiguous run of
/// sessions (id, slot, its pending requests) and hands the slots back with
/// the step results.
type ChunkWork = Vec<(u64, SessionSlot, Vec<StepRequest>)>;
type ChunkOut = Vec<(u64, SessionSlot, Vec<(StepRequest, StepResult)>)>;
type ChunkJob = FnJob<(), ChunkOut>;

/// A multi-session localization engine over one shared artifact store and
/// one worker pool.
///
/// Sessions are opened against a map + [`LocalizerSpec`]; step requests
/// are submitted into a bounded queue and executed in deterministic
/// batches by [`ServeEngine::drain`]. Each session's steps run serially in
/// submission order with a private RNG stream, so the full multi-session
/// output is bit-identical for every thread count.
///
/// # Examples
///
/// ```
/// use raceloc_core::sensor_data::Odometry;
/// use raceloc_core::{Pose2, Twist2};
/// use raceloc_map::{TrackShape, TrackSpec};
/// use raceloc_range::ArtifactParams;
/// use raceloc_serve::{LocalizerSpec, ServeConfig, ServeEngine, StepRequest};
///
/// let track = TrackSpec::new(TrackShape::Oval { width: 10.0, height: 6.0 })
///     .resolution(0.1)
///     .build();
/// let mut engine = ServeEngine::new(ServeConfig::default());
/// let id = engine
///     .open_session(
///         &track.grid,
///         ArtifactParams::default(),
///         LocalizerSpec::DeadReckoning,
///         track.start_pose(),
///     )
///     .expect("capacity available");
/// engine
///     .submit(StepRequest {
///         session: id,
///         odom: Odometry::new(Pose2::new(0.1, 0.0, 0.0), Twist2::new(1.0, 0.0, 0.0), 0.1),
///         scan: None,
///     })
///     .expect("session is open");
/// let results = engine.drain();
/// assert_eq!(results.len(), 1);
/// assert_eq!(results[0].seq, 0);
/// ```
pub struct ServeEngine {
    config: ServeConfig,
    store: ArtifactStore,
    sessions: BTreeMap<u64, SessionSlot>,
    queue: VecDeque<StepRequest>,
    pool: WorkerPool<(), ChunkJob>,
    tel: Telemetry,
    next_id: u64,
    recorder: Option<Box<dyn Write + Send>>,
}

impl fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeEngine")
            .field("config", &self.config)
            .field("sessions", &self.sessions.len())
            .field("queued", &self.queue.len())
            .field("next_id", &self.next_id)
            .finish_non_exhaustive()
    }
}

impl ServeEngine {
    /// Creates an engine with its own artifact store and worker pool.
    ///
    /// # Panics
    ///
    /// Panics when `queue_capacity`, `max_sessions`, or `chunk_min` is zero.
    pub fn new(config: ServeConfig) -> Self {
        assert!(config.queue_capacity > 0, "queue_capacity must be positive");
        assert!(config.max_sessions > 0, "max_sessions must be positive");
        assert!(config.chunk_min > 0, "chunk_min must be positive");
        Self {
            pool: WorkerPool::new((), config.threads),
            store: ArtifactStore::new(),
            sessions: BTreeMap::new(),
            queue: VecDeque::new(),
            tel: Telemetry::enabled(),
            next_id: 0,
            recorder: None,
            config,
        }
    }

    /// Attaches a JSONL recorder: session opens write a `serve_open` meta
    /// line; every drained step writes a `serve_step` line in canonical
    /// `(session, seq)` order (thread-count-independent bytes).
    pub fn set_recorder(&mut self, out: impl Write + Send + 'static) {
        self.recorder = Some(Box::new(out));
    }

    /// Opens a session: resolves (or builds) the shared artifact bundle for
    /// `(grid, params)`, constructs the localizer with the session's
    /// deterministic RNG stream, and resets it to `start`.
    pub fn open_session(
        &mut self,
        grid: &OccupancyGrid,
        params: ArtifactParams,
        spec: LocalizerSpec,
        start: Pose2,
    ) -> Result<SessionId, ServeError> {
        if self.sessions.len() >= self.config.max_sessions {
            return Err(ServeError::AtCapacity {
                limit: self.config.max_sessions,
            });
        }
        let artifacts = self.store.get_or_build(grid, params);
        let id = SessionId(self.next_id);
        self.next_id += 1;
        let tel = Telemetry::enabled();
        let mut localizer = spec.build(&artifacts, session_seed(self.config.seed, id), tel.clone());
        localizer.reset(start);
        let slot = SessionSlot {
            localizer,
            tel,
            name: spec.name(),
            steps: 0,
            sheds: 0,
            artifact_key: artifacts.key(),
        };
        self.record_open(id, &slot, start);
        self.sessions.insert(id.0, slot);
        self.tel.add("serve.sessions.opened", 1);
        Ok(id)
    }

    /// Queues one step. When the queue is at capacity the *oldest* queued
    /// request is shed first (`serve.shed` counter, attributed to the shed
    /// request's session), then the new request is admitted.
    pub fn submit(&mut self, req: StepRequest) -> Result<(), ServeError> {
        if !self.sessions.contains_key(&req.session.0) {
            return Err(ServeError::UnknownSession(req.session));
        }
        if self.queue.len() >= self.config.queue_capacity {
            if let Some(old) = self.queue.pop_front() {
                self.tel.add("serve.shed", 1);
                if let Some(slot) = self.sessions.get_mut(&old.session.0) {
                    slot.sheds += 1;
                }
            }
        }
        self.queue.push_back(req);
        Ok(())
    }

    /// Executes every queued request as one deterministic batch and
    /// returns the results in `(session, seq)` order.
    ///
    /// Requests are grouped by session (submission order preserved within
    /// each), sessions are packed into contiguous pool chunks
    /// ([`ServeConfig::chunk_min`] per chunk minimum), and each chunk runs
    /// on one worker. A session's steps are always serial, so neither the
    /// chunk layout nor the thread count can change any estimate.
    pub fn drain(&mut self) -> Vec<StepResult> {
        if self.queue.is_empty() {
            return Vec::new();
        }
        let batch_span = self.tel.span("serve.drain");
        // Group by session, preserving per-session submission order.
        let mut by_session: BTreeMap<u64, Vec<StepRequest>> = BTreeMap::new();
        for req in self.queue.drain(..) {
            by_session.entry(req.session.0).or_default().push(req);
        }
        // Lift the involved slots out of the table; BTreeMap iteration
        // gives the deterministic ascending-id work order.
        let mut items: ChunkWork = Vec::with_capacity(by_session.len());
        let quota = self.config.session_step_quota;
        for (id, mut reqs) in by_session {
            match self.sessions.remove(&id) {
                Some(mut slot) => {
                    if quota > 0 && reqs.len() > quota {
                        // Over-quota session: shed the oldest, keep the
                        // newest `quota` requests.
                        let shed = (reqs.len() - quota) as u64;
                        reqs.drain(..reqs.len() - quota);
                        self.tel.add("serve.budget.shed", shed);
                        slot.sheds += shed;
                    }
                    items.push((id, slot, reqs));
                }
                None => self.tel.add("serve.dropped_unknown", reqs.len() as u64),
            }
        }
        let spans: Vec<std::ops::Range<usize>> =
            chunk_spans(items.len(), self.config.chunk_min).collect();
        let mut jobs: Vec<ChunkJob> = Vec::with_capacity(spans.len());
        // Peel chunks off the tail so each split is O(chunk); tags keep the
        // canonical order for the scatter below.
        for (tag, span) in spans.iter().enumerate().rev() {
            let steps: usize = items[span.start..].iter().map(|(_, _, r)| r.len()).sum();
            let mut work = Some(items.split_off(span.start));
            jobs.push(FnJob::new(tag, move |_: &()| run_chunk(work.take())).with_items(steps));
        }
        self.pool.run_batch(&mut jobs);
        let mut results: Vec<StepResult> = Vec::new();
        let mut executed: Vec<(StepRequest, StepResult)> = Vec::new();
        for job in &mut jobs {
            for (id, slot, outcomes) in job.take().into_iter().flatten() {
                results.extend(outcomes.iter().map(|(_, res)| *res));
                executed.extend(outcomes);
                self.sessions.insert(id, slot);
            }
        }
        results.sort_by_key(|r| (r.session.0, r.seq));
        executed.sort_by_key(|(_, r)| (r.session.0, r.seq));
        self.record_steps(&executed);
        self.tel.add("serve.steps", results.len() as u64);
        self.tel.add("serve.batches", 1);
        drop(batch_span);
        results
    }

    /// Closes a session and returns its terminal summary (step count,
    /// backpressure sheds, telemetry snapshot).
    pub fn close_session(&mut self, id: SessionId) -> Result<SessionSummary, ServeError> {
        let slot = self
            .sessions
            .remove(&id.0)
            .ok_or(ServeError::UnknownSession(id))?;
        self.tel.add("serve.sessions.closed", 1);
        Ok(SessionSummary {
            id,
            name: slot.name,
            steps: slot.steps,
            sheds: slot.sheds,
            artifact_key: slot.artifact_key,
            snapshot: slot.tel.snapshot(),
        })
    }

    /// The current pose estimate of an open session.
    pub fn pose(&self, id: SessionId) -> Result<Pose2, ServeError> {
        self.sessions
            .get(&id.0)
            .map(|s| s.localizer.pose())
            .ok_or(ServeError::UnknownSession(id))
    }

    /// Number of currently open sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Number of requests waiting for the next [`ServeEngine::drain`].
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Total requests shed by backpressure since the engine was created.
    pub fn shed_total(&self) -> u64 {
        self.tel.snapshot().counter("serve.shed").unwrap_or(0)
    }

    /// Total requests shed by per-session step quotas
    /// ([`ServeConfig::session_step_quota`]) since the engine was created.
    pub fn budget_shed_total(&self) -> u64 {
        self.tel
            .snapshot()
            .counter("serve.budget.shed")
            .unwrap_or(0)
    }

    /// The engine's shared artifact store (builds/hits counters live here).
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// The engine configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The engine-level telemetry handle (`serve.*` counters and the
    /// `serve.drain` span).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// A point-in-time counter rollup across the engine and every *open*
    /// session: `serve.*` counters, artifact-store counters
    /// (`range.artifacts.*`), worker-pool counters (`par.pool.*`, delta
    /// since the previous rollup), and each session's own telemetry.
    pub fn rollup(&self) -> CounterRollup {
        let mut rollup = CounterRollup::new();
        let infra = Telemetry::enabled();
        self.store.publish_stats(&infra);
        self.pool.publish_stats(&infra);
        rollup.absorb(&infra.snapshot());
        rollup.absorb(&self.tel.snapshot());
        for slot in self.sessions.values() {
            rollup.absorb(&slot.tel.snapshot());
            rollup.absorb_counts(&[("serve.session.steps", slot.steps)]);
        }
        rollup
    }

    fn record_open(&mut self, id: SessionId, slot: &SessionSlot, start: Pose2) {
        let Some(out) = self.recorder.as_mut() else {
            return;
        };
        let doc = Json::Obj(vec![
            ("type".into(), Json::Str("serve_open".into())),
            ("session".into(), Json::num(id.0 as f64)),
            ("localizer".into(), Json::Str(slot.name.into())),
            (
                "artifact_key".into(),
                Json::Str(format!("{:016x}", slot.artifact_key)),
            ),
            (
                "start".into(),
                Json::Arr(vec![
                    Json::num(start.x),
                    Json::num(start.y),
                    Json::num(start.theta),
                ]),
            ),
        ]);
        if writeln!(out, "{doc}").is_err() {
            self.tel.add("serve.record.errors", 1);
        }
    }

    fn record_steps(&mut self, executed: &[(StepRequest, StepResult)]) {
        let Some(out) = self.recorder.as_mut() else {
            return;
        };
        let mut errors = 0u64;
        for (req, res) in executed {
            let line = ServeStepRecord::from_step(req, res).to_json();
            if writeln!(out, "{line}").is_err() {
                errors += 1;
            }
        }
        if errors > 0 {
            self.tel.add("serve.record.errors", errors);
        }
    }
}

/// Executes one chunk of sessions: serial steps per session, sessions in
/// ascending-id order. Pure w.r.t. the pool context, so any worker
/// produces identical results.
// analyze:steady-state
fn run_chunk(work: Option<ChunkWork>) -> ChunkOut {
    let Some(chunk) = work else {
        return Vec::new();
    };
    let mut out: ChunkOut = Vec::with_capacity(chunk.len());
    for (id, mut slot, reqs) in chunk {
        let mut outcomes = Vec::with_capacity(reqs.len());
        for req in reqs {
            let seq = slot.steps;
            slot.localizer.predict(&req.odom);
            let pose = match &req.scan {
                Some(scan) => slot.localizer.correct(scan),
                None => slot.localizer.pose(),
            };
            slot.steps += 1;
            let res = StepResult {
                session: SessionId(id),
                seq,
                pose,
                health: slot.localizer.health(),
            };
            outcomes.push((req, res));
        }
        out.push((id, slot, outcomes));
    }
    out
}
