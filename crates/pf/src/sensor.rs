//! The beam sensor model with a precomputed probability table.
//!
//! The classic four-component beam model (Thrun et al.): a measured range
//! given an expected range mixes a Gaussian hit, an exponential short-return
//! (unmapped obstacles), a max-range miss, and uniform clutter. Following
//! the MIT racecar particle filter (and `rangelibc`), the model is
//! discretized once into a `(expected, measured)` table so a per-beam
//! evaluation is a single lookup — this is what makes the 1.25 ms sensor
//! update of the paper possible on a CPU.

/// Mixture weights and shape parameters of the beam model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeamModelConfig {
    /// Weight of the Gaussian "hit" component.
    pub z_hit: f64,
    /// Weight of the exponential "short" component (unmapped obstacles).
    pub z_short: f64,
    /// Weight of the max-range component.
    pub z_max: f64,
    /// Weight of the uniform clutter component.
    pub z_rand: f64,
    /// Standard deviation of the hit Gaussian \[m\].
    pub sigma_hit: f64,
    /// Decay rate of the short-return exponential \[1/m\].
    pub lambda_short: f64,
    /// Table resolution \[m\] (typically the map resolution).
    pub resolution: f64,
}

impl Default for BeamModelConfig {
    fn default() -> Self {
        Self {
            z_hit: 0.80,
            z_short: 0.06,
            z_max: 0.05,
            z_rand: 0.09,
            sigma_hit: 0.12,
            lambda_short: 1.2,
            resolution: 0.05,
        }
    }
}

/// The discretized beam sensor model.
///
/// Two tables are built from the same mixture densities:
///
/// - the f32 `table` (expected-major), the original evaluator behind
///   [`BeamSensorModel::log_prob`] — retained as the test oracle;
/// - the u16 `qtable` (measured-major), the canonical hot path: each entry
///   stores `round(log p / qscale)` with `qscale = ln(1e-12) / 65535`, so a
///   particle's beam log-likelihoods can be *summed as integers* and
///   converted to a float once per particle. Integer addition is exact and
///   order-free, which is what makes the fused kernel bitwise identical
///   across thread counts without prescribing a float summation order.
///
/// The measured-major layout matches the access pattern of one correction
/// step: the measured bin is fixed per beam across all particles, so each
/// beam reads from a single 402-byte row of the 81 KB table — fully
/// L1/L2-resident.
///
/// # Examples
///
/// ```
/// use raceloc_pf::{BeamModelConfig, BeamSensorModel};
///
/// let model = BeamSensorModel::new(BeamModelConfig::default(), 10.0);
/// // A measurement matching the expectation is more likely than a far-off one.
/// assert!(model.log_prob(5.0, 5.0) > model.log_prob(5.0, 2.0));
/// ```
#[derive(Debug, Clone)]
pub struct BeamSensorModel {
    config: BeamModelConfig,
    max_range: f64,
    bins: usize,
    /// Reciprocal of the table resolution; binning multiplies by this
    /// (one shared rounding path for both evaluators).
    inv_res: f64,
    /// `table[expected_bin * bins + measured_bin]` = log p(measured | expected).
    table: Vec<f32>,
    /// `qtable[measured_bin * bins + expected_bin]` = `round(log p / qscale)`.
    qtable: Vec<u16>,
    /// Log-likelihood per quantization code: `ln(1e-12) / 65535` (negative).
    qscale: f64,
}

impl BeamSensorModel {
    /// Precomputes the table for ranges in `[0, max_range]`.
    ///
    /// # Panics
    ///
    /// Panics when `max_range` or the config resolution is not positive, or
    /// when the mixture weights do not sum to ~1.
    pub fn new(config: BeamModelConfig, max_range: f64) -> Self {
        assert!(max_range > 0.0, "max_range must be positive");
        assert!(config.resolution > 0.0, "table resolution must be positive");
        let wsum = config.z_hit + config.z_short + config.z_max + config.z_rand;
        assert!(
            (wsum - 1.0).abs() < 1e-6,
            "mixture weights must sum to 1 (got {wsum})"
        );
        let bins = (max_range / config.resolution).ceil() as usize + 1;
        let mut table = vec![0.0f32; bins * bins];
        let mut qtable = vec![0u16; bins * bins];
        let qscale = Self::LOG_FLOOR_F64 / f64::from(u16::MAX);
        let res = config.resolution;
        let norm = 1.0 / ((2.0 * std::f64::consts::PI).sqrt() * config.sigma_hit);
        // Row scratch hoisted out of the expected-bin loop; every element
        // is overwritten each iteration.
        let mut row = vec![0.0f64; bins];
        let mut probs = vec![0.0f64; bins];
        for e in 0..bins {
            let expected = e as f64 * res;
            // Normalize the hit component over the truncated support so each
            // row is a proper distribution.
            let mut hit_mass = 0.0;
            for (m, slot) in row.iter_mut().enumerate() {
                let measured = m as f64 * res;
                let d = measured - expected;
                let hit = norm * (-0.5 * d * d / (config.sigma_hit * config.sigma_hit)).exp();
                hit_mass += hit * res;
                *slot = hit;
            }
            let hit_scale = if hit_mass > 1e-12 {
                1.0 / hit_mass
            } else {
                0.0
            };
            // Short component normalization over [0, expected].
            let short_cdf = 1.0 - (-config.lambda_short * expected).exp();
            let mut mass = 0.0;
            for (m, slot) in probs.iter_mut().enumerate() {
                let measured = m as f64 * res;
                let hit = row[m] * hit_scale * res;
                let short = if measured <= expected && short_cdf > 1e-9 {
                    config.lambda_short * (-config.lambda_short * measured).exp() / short_cdf * res
                } else {
                    0.0
                };
                let maxr = if m + 1 == bins { 1.0 } else { 0.0 };
                let rand = res / max_range;
                let p = config.z_hit * hit
                    + config.z_short * short
                    + config.z_max * maxr
                    + config.z_rand * rand;
                mass += p;
                *slot = p;
            }
            // Renormalize the row: when expected ≈ 0 the short component has
            // no support and would otherwise leak its mixture weight.
            let scale = if mass > 1e-12 { 1.0 / mass } else { 1.0 };
            for (m, &p) in probs.iter().enumerate() {
                let logp = ((p * scale).max(1e-12)).ln();
                table[e * bins + m] = logp as f32;
                // Transposed (measured-major) and quantized from the same
                // f64 density; `logp ∈ [ln 1e-12, 0]` so the code fits.
                qtable[m * bins + e] = (logp / qscale).round() as u16;
            }
        }
        Self {
            config,
            max_range,
            bins,
            inv_res: 1.0 / config.resolution,
            table,
            qtable,
            qscale,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &BeamModelConfig {
        &self.config
    }

    /// Number of range bins per axis.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Heap bytes used by both tables (f32 oracle + u16 quantized).
    pub fn memory_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<f32>()
            + self.qtable.len() * std::mem::size_of::<u16>()
    }

    /// Log-probability floor returned on an (impossible) out-of-table
    /// access: `ln(1e-12)`, the same clamp the table rows are built with.
    const LOG_FLOOR: f32 = -27.631021;

    /// The floor in f64, the quantized table's reference point: code 65535
    /// decodes to exactly this value.
    const LOG_FLOOR_F64: f64 = -27.631_021_115_928_547;

    #[inline]
    fn bin(&self, r: f64) -> usize {
        ((r.clamp(0.0, self.max_range) * self.inv_res) as usize).min(self.bins - 1)
    }

    /// Checked table access: `bin` clamps both axes into range, so the
    /// lookup cannot miss; the floor fallback keeps the hot path free of
    /// panic branches (analysis rule R1-idx).
    #[inline]
    fn entry(&self, expected_bin: usize, measured_bin: usize) -> f32 {
        self.table
            .get(expected_bin * self.bins + measured_bin)
            .copied()
            .unwrap_or(Self::LOG_FLOOR)
    }

    /// Log-probability of measuring `measured` when the map predicts
    /// `expected` (both in meters; values are clamped to the table domain).
    ///
    /// This is the retained f32 oracle; the hot path goes through the
    /// quantized accessors below.
    #[inline]
    pub fn log_prob(&self, expected: f64, measured: f64) -> f64 {
        self.entry(self.bin(expected), self.bin(measured)) as f64
    }

    /// Reciprocal of the table resolution, for quantizing expected ranges
    /// to bins outside the model (the `beam_bins_into` fan).
    #[inline]
    pub fn inv_resolution(&self) -> f64 {
        self.inv_res
    }

    /// Largest valid bin index on either table axis.
    #[inline]
    pub fn max_bin(&self) -> u32 {
        (self.bins - 1) as u32
    }

    /// Start offset of a measured range's row in the quantized table.
    /// One lookup per *beam* (not per particle×beam): the row then serves
    /// every particle's expected-bin column reads.
    #[inline]
    pub fn row_offset(&self, measured: f64) -> u32 {
        (self.bin(measured) * self.bins) as u32
    }

    /// Bin index of an expected range — the same rounding as the oracle's
    /// internal binning, exposed for reference implementations.
    #[inline]
    pub fn expected_bin(&self, r: f64) -> u32 {
        self.bin(r) as u32
    }

    /// Quantized-table read by flat index (`row_offset + expected_bin`).
    /// The index is clamped arithmetically, keeping the fused kernel's
    /// inner loop free of panic branches (analysis rule R1-idx); in-contract
    /// callers can never be out of range because both factors are clamped
    /// at construction.
    #[inline]
    pub fn code_at(&self, idx: u32) -> u16 {
        self.qtable[(idx as usize).min(self.qtable.len() - 1)]
    }

    /// Log-likelihood units per quantization code: `ln(1e-12) / 65535`
    /// (negative). A particle's log-weight is
    /// `(Σ beam codes) · quantization_scale() / squash`.
    #[inline]
    pub fn quantization_scale(&self) -> f64 {
        self.qscale
    }

    /// The quantized evaluator in oracle shape: decodes the u16 code for
    /// one `(expected, measured)` pair. Differs from [`Self::log_prob`] by
    /// at most half a quantization step (≈ 2.1·10⁻⁴ nats).
    #[inline]
    pub fn log_prob_quantized(&self, expected: f64, measured: f64) -> f64 {
        let idx = self.row_offset(measured) + self.expected_bin(expected);
        f64::from(self.code_at(idx)) * self.qscale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> BeamSensorModel {
        BeamSensorModel::new(BeamModelConfig::default(), 10.0)
    }

    #[test]
    fn peak_at_expected_range() {
        let m = model();
        for expected in [1.0, 3.0, 7.5] {
            let at_peak = m.log_prob(expected, expected);
            for off in [0.5, 1.0, 2.0] {
                assert!(at_peak > m.log_prob(expected, expected + off));
                assert!(at_peak > m.log_prob(expected, (expected - off).max(0.0)));
            }
        }
    }

    #[test]
    fn short_returns_more_likely_than_long() {
        // Unmapped obstacles produce early returns; the model must prefer a
        // 2 m measurement over a 8 m one when 5 m is expected... short side
        // carries the z_short mass.
        let m = model();
        assert!(m.log_prob(5.0, 2.0) > m.log_prob(5.0, 8.0));
    }

    #[test]
    fn max_range_bin_has_extra_mass() {
        let m = model();
        // Expecting 5 m, a max-range miss is far more likely than a random
        // 9.9 m return.
        assert!(m.log_prob(5.0, 10.0) > m.log_prob(5.0, 9.7) + 1.0);
    }

    #[test]
    fn rows_are_normalized() {
        let m = model();
        for e in [0usize, 40, 100, 199] {
            let sum: f64 = (0..m.bins())
                .map(|b| (m.table[e * m.bins + b] as f64).exp())
                .sum();
            assert!((sum - 1.0).abs() < 0.05, "row {e} sums to {sum}");
        }
    }

    #[test]
    fn out_of_domain_values_clamp() {
        let m = model();
        assert_eq!(m.log_prob(5.0, 50.0), m.log_prob(5.0, 10.0));
        assert_eq!(m.log_prob(-3.0, 1.0), m.log_prob(0.0, 1.0));
    }

    #[test]
    fn log_probs_are_finite() {
        let m = model();
        for e in 0..20 {
            for me in 0..20 {
                let lp = m.log_prob(e as f64 * 0.5, me as f64 * 0.5);
                assert!(lp.is_finite());
                assert!(lp <= 0.5, "log prob {lp} suspiciously high");
            }
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_weights_panic() {
        BeamSensorModel::new(
            BeamModelConfig {
                z_hit: 0.9,
                z_short: 0.9,
                ..BeamModelConfig::default()
            },
            10.0,
        );
    }

    #[test]
    #[should_panic(expected = "max_range")]
    fn bad_range_panics() {
        BeamSensorModel::new(BeamModelConfig::default(), -1.0);
    }

    #[test]
    fn memory_accounting() {
        let m = model();
        // 4 B/entry f32 oracle + 2 B/entry u16 quantized table.
        assert_eq!(m.memory_bytes(), m.bins() * m.bins() * (4 + 2));
    }

    #[test]
    fn quantized_matches_oracle_within_half_step() {
        let m = model();
        let half_step = m.quantization_scale().abs() / 2.0;
        assert!((half_step - 27.631_021 / 65535.0 / 2.0).abs() < 1e-9);
        let mut worst = 0.0f64;
        for e in 0..=40 {
            for me in 0..=40 {
                let (exp, meas) = (e as f64 * 0.25, me as f64 * 0.25);
                let err = (m.log_prob_quantized(exp, meas) - m.log_prob(exp, meas)).abs();
                worst = worst.max(err);
            }
        }
        // Half a u16 step plus the oracle's own f32 rounding of the f64
        // source density.
        assert!(worst <= half_step + 1e-5, "worst error {worst}");
    }

    #[test]
    fn quantized_accessors_compose_to_the_quantized_evaluator() {
        let m = model();
        for (exp, meas) in [
            (0.0, 0.0),
            (3.2, 3.1),
            (9.9, 10.0),
            (5.0, 0.7),
            (12.0, -1.0),
        ] {
            let idx = m.row_offset(meas) + m.expected_bin(exp);
            let via_codes = f64::from(m.code_at(idx)) * m.quantization_scale();
            assert_eq!(via_codes, m.log_prob_quantized(exp, meas));
        }
    }

    #[test]
    fn quantized_preserves_oracle_ordering() {
        // The rankings the filter cares about must survive quantization.
        let m = model();
        assert!(m.log_prob_quantized(5.0, 5.0) > m.log_prob_quantized(5.0, 2.0));
        assert!(m.log_prob_quantized(5.0, 2.0) > m.log_prob_quantized(5.0, 8.0));
        assert!(m.log_prob_quantized(5.0, 10.0) > m.log_prob_quantized(5.0, 9.7) + 1.0);
    }

    #[test]
    fn code_index_clamp_is_total() {
        let m = model();
        let last = (m.bins() * m.bins() - 1) as u32;
        assert_eq!(m.code_at(u32::MAX), m.code_at(last));
    }

    #[test]
    fn integer_beam_sum_equals_per_beam_decode_sum_scaled() {
        // The kernel's weight formula: summing codes then scaling once is
        // exactly Σ (code·qscale) when done in this order.
        let m = model();
        let beams = [(1.0, 1.2), (3.0, 2.9), (7.7, 10.0), (4.4, 0.3)];
        let mut acc: u64 = 0;
        for &(e, me) in &beams {
            acc += u64::from(m.code_at(m.row_offset(me) + m.expected_bin(e)));
        }
        let lw = acc as f64 * m.quantization_scale();
        let per_code: f64 = beams
            .iter()
            .map(|&(e, me)| f64::from(m.code_at(m.row_offset(me) + m.expected_bin(e))))
            .sum::<f64>()
            * m.quantization_scale();
        assert!((lw - per_code).abs() < 1e-12);
        assert!(lw < 0.0);
    }
}

/// Configuration of the likelihood-field ("endpoint") sensor model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LikelihoodFieldConfig {
    /// Weight of the Gaussian hit component.
    pub z_hit: f64,
    /// Weight of the uniform clutter component.
    pub z_rand: f64,
    /// σ of the endpoint-to-wall distance Gaussian \[m\].
    pub sigma: f64,
}

impl Default for LikelihoodFieldConfig {
    fn default() -> Self {
        Self {
            z_hit: 0.9,
            z_rand: 0.1,
            sigma: 0.1,
        }
    }
}

/// The likelihood-field sensor model (Thrun et al. §6.4; AMCL's default):
/// instead of comparing measured against expected ranges, each beam
/// *endpoint* is scored by its distance to the nearest mapped wall, read
/// from a precomputed Euclidean distance transform. No ray casting at all —
/// the cheapest sensor model available, at the cost of ignoring occlusion.
///
/// # Examples
///
/// ```
/// use raceloc_map::{CellState, OccupancyGrid};
/// use raceloc_core::Point2;
/// use raceloc_pf::sensor::{LikelihoodField, LikelihoodFieldConfig};
///
/// let mut grid = OccupancyGrid::new(40, 40, 0.1, Point2::ORIGIN);
/// grid.fill(CellState::Free);
/// grid.set_world(Point2::new(2.0, 2.0), CellState::Occupied);
/// let field = LikelihoodField::new(&grid, LikelihoodFieldConfig::default(), 10.0);
/// // An endpoint on the wall scores higher than one in free space.
/// assert!(field.log_prob_point(Point2::new(2.0, 2.0))
///     > field.log_prob_point(Point2::new(3.5, 3.5)));
/// ```
#[derive(Debug, Clone)]
pub struct LikelihoodField {
    dist: raceloc_map::DistanceMap,
    config: LikelihoodFieldConfig,
    log_norm: f64,
    rand_density: f64,
}

impl LikelihoodField {
    /// Precomputes the distance field over the map's occupied cells.
    ///
    /// # Panics
    ///
    /// Panics when `sigma` is not positive, the mixture weights do not sum
    /// to ~1, or `max_range` is not positive.
    pub fn new(
        grid: &raceloc_map::OccupancyGrid,
        config: LikelihoodFieldConfig,
        max_range: f64,
    ) -> Self {
        assert!(config.sigma > 0.0, "sigma must be positive");
        assert!(max_range > 0.0, "max_range must be positive");
        let wsum = config.z_hit + config.z_rand;
        assert!(
            (wsum - 1.0).abs() < 1e-6,
            "mixture weights must sum to 1 (got {wsum})"
        );
        let dist = raceloc_map::DistanceMap::from_grid_with(grid, |s| {
            s == raceloc_map::CellState::Occupied
        });
        Self {
            dist,
            config,
            log_norm: -0.5 * (2.0 * std::f64::consts::PI).ln() - config.sigma.ln(),
            rand_density: 1.0 / max_range,
        }
    }

    /// Log-probability contribution of one beam endpoint in world
    /// coordinates.
    #[inline]
    pub fn log_prob_point(&self, p: raceloc_core::Point2) -> f64 {
        let d = self.dist.distance_at_world(p);
        let hit = (self.log_norm - 0.5 * d * d / (self.config.sigma * self.config.sigma)).exp();
        (self.config.z_hit * hit + self.config.z_rand * self.rand_density)
            .max(1e-12)
            .ln()
    }

    /// The configuration.
    pub fn config(&self) -> &LikelihoodFieldConfig {
        &self.config
    }
}

#[cfg(test)]
mod likelihood_field_tests {
    use super::*;
    use raceloc_core::Point2;
    use raceloc_map::{CellState, OccupancyGrid};

    fn grid_with_wall() -> OccupancyGrid {
        let mut g = OccupancyGrid::new(60, 60, 0.1, Point2::ORIGIN);
        g.fill(CellState::Free);
        for r in 0..60i64 {
            g.set((40i64, r).into(), CellState::Occupied);
        }
        g
    }

    #[test]
    fn score_decays_with_distance_from_wall() {
        let f = LikelihoodField::new(&grid_with_wall(), LikelihoodFieldConfig::default(), 10.0);
        let on = f.log_prob_point(Point2::new(4.05, 3.0));
        let near = f.log_prob_point(Point2::new(3.85, 3.0));
        let far = f.log_prob_point(Point2::new(2.0, 3.0));
        assert!(on > near);
        assert!(near > far);
    }

    #[test]
    fn clutter_floor_is_finite_everywhere() {
        let f = LikelihoodField::new(&grid_with_wall(), LikelihoodFieldConfig::default(), 10.0);
        let lp = f.log_prob_point(Point2::new(-50.0, -50.0));
        assert!(lp.is_finite());
        // Out-of-map reads as distance zero (opaque), i.e. a hit — the
        // conservative convention shared with the range methods.
    }

    #[test]
    fn sigma_controls_sharpness() {
        let sharp = LikelihoodField::new(
            &grid_with_wall(),
            LikelihoodFieldConfig {
                sigma: 0.05,
                ..LikelihoodFieldConfig::default()
            },
            10.0,
        );
        let blunt = LikelihoodField::new(
            &grid_with_wall(),
            LikelihoodFieldConfig {
                sigma: 0.3,
                ..LikelihoodFieldConfig::default()
            },
            10.0,
        );
        let p = Point2::new(3.7, 3.0); // ~0.3 m off the wall
        let drop_sharp = sharp.log_prob_point(Point2::new(4.05, 3.0)) - sharp.log_prob_point(p);
        let drop_blunt = blunt.log_prob_point(Point2::new(4.05, 3.0)) - blunt.log_prob_point(p);
        assert!(drop_sharp > drop_blunt);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_weights_panic() {
        LikelihoodField::new(
            &grid_with_wall(),
            LikelihoodFieldConfig {
                z_hit: 0.5,
                z_rand: 0.1,
                sigma: 0.1,
            },
            10.0,
        );
    }
}
