//! Particle-filter motion models.
//!
//! Two models are implemented, matching the paper's Fig. 1 comparison:
//!
//! - [`DiffDriveModel`]: the classic odometry motion model of *Probabilistic
//!   Robotics* (Thrun et al., 2005). Noise scales with the magnitude of the
//!   decomposed rotate–translate–rotate step, independent of speed — which
//!   at racing speed produces unrealistically wide heading dispersion
//!   ("particles in infeasible positions", paper §II).
//! - [`TumMotionModel`]: the high-speed model of Stahl et al. (2019) the
//!   paper builds on. Particles are propagated with the measured body
//!   velocity and yaw rate; heading/yaw-rate noise *shrinks* with speed
//!   (the steering envelope narrows as the car goes faster) and the sampled
//!   yaw rate is clamped to the friction limit `|ω| ≤ a_lat/v`. At low speed
//!   both models are similar; at high speed the TUM cloud is a narrow wedge.

use raceloc_core::{Pose2, Rng64, Twist2};

/// A particle propagation model.
///
/// `delta` is the relative odometry motion since the last update (in the
/// previous body frame), `twist` the instantaneous odometry velocity, and
/// `dt` the elapsed time; models may use either representation.
pub trait MotionModel: Send + Sync {
    /// Samples a new particle pose given the odometry increment.
    fn sample(
        &self,
        particle: Pose2,
        delta: Pose2,
        twist: Twist2,
        dt: f64,
        rng: &mut Rng64,
    ) -> Pose2;

    /// A short name for reports ("diff-drive", "tum").
    fn name(&self) -> &str;
}

/// Parameters of the classic odometry (differential-drive) motion model.
///
/// The four `alpha` coefficients follow the textbook convention:
/// `α1` rotation noise from rotation, `α2` rotation noise from translation,
/// `α3` translation noise from translation, `α4` translation noise from
/// rotation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffDriveModel {
    /// Rotation noise from rotation \[rad²/rad²\].
    pub alpha1: f64,
    /// Rotation noise from translation \[rad²/m²\].
    pub alpha2: f64,
    /// Translation noise from translation \[m²/m²\].
    pub alpha3: f64,
    /// Translation noise from rotation \[m²/rad²\].
    pub alpha4: f64,
}

impl Default for DiffDriveModel {
    fn default() -> Self {
        Self {
            alpha1: 0.25,
            alpha2: 0.08,
            alpha3: 0.06,
            alpha4: 0.02,
        }
    }
}

impl MotionModel for DiffDriveModel {
    fn sample(
        &self,
        particle: Pose2,
        delta: Pose2,
        _twist: Twist2,
        _dt: f64,
        rng: &mut Rng64,
    ) -> Pose2 {
        let trans = delta.translation().norm();
        // Decompose into rotate → translate → rotate. For tiny translations
        // the first rotation is ill-defined; attribute everything to rot2.
        let rot1 = if trans < 1e-6 {
            0.0
        } else {
            delta.y.atan2(delta.x)
        };
        let rot2 = raceloc_core::angle::diff(delta.theta, rot1);
        let sigma_rot1 = (self.alpha1 * rot1 * rot1 + self.alpha2 * trans * trans).sqrt();
        let sigma_trans =
            (self.alpha3 * trans * trans + self.alpha4 * (rot1 * rot1 + rot2 * rot2)).sqrt();
        let sigma_rot2 = (self.alpha1 * rot2 * rot2 + self.alpha2 * trans * trans).sqrt();
        let r1 = rng.gaussian_with(rot1, sigma_rot1);
        let tr = rng.gaussian_with(trans, sigma_trans);
        let r2 = rng.gaussian_with(rot2, sigma_rot2);
        let step = Pose2::new(tr * r1.cos(), tr * r1.sin(), r1 + r2);
        particle * step
    }

    fn name(&self) -> &str {
        "diff-drive"
    }
}

impl DiffDriveModel {
    /// Lane (structure-of-arrays) form of [`MotionModel::sample`] over a
    /// whole chunk: same decomposition, same noise, and the *same RNG draw
    /// sequence* (`rot1`, `trans`, `rot2` per particle, in that order) as
    /// calling `sample` in a loop — the lane kernel is draw-for-draw
    /// compatible with the scalar model.
    ///
    /// Differences from the scalar path, by construction:
    /// - the decomposition and σ's are hoisted out of the particle loop
    ///   (they depend only on `delta`);
    /// - headings accumulate unnormalized in the `theta` lane, and the
    ///   `cos`/`sin` lanes are rotated incrementally by the step's own
    ///   `sin_cos` instead of being recomputed from the new heading.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn propagate_lanes(
        &self,
        delta: Pose2,
        rng: &mut Rng64,
        x: &mut [f64],
        y: &mut [f64],
        theta: &mut [f64],
        cos_t: &mut [f64],
        sin_t: &mut [f64],
    ) {
        let trans = delta.translation().norm();
        let rot1 = if trans < 1e-6 {
            0.0
        } else {
            delta.y.atan2(delta.x)
        };
        let rot2 = raceloc_core::angle::diff(delta.theta, rot1);
        let sigma_rot1 = (self.alpha1 * rot1 * rot1 + self.alpha2 * trans * trans).sqrt();
        let sigma_trans =
            (self.alpha3 * trans * trans + self.alpha4 * (rot1 * rot1 + rot2 * rot2)).sqrt();
        let sigma_rot2 = (self.alpha1 * rot2 * rot2 + self.alpha2 * trans * trans).sqrt();
        for i in 0..x.len() {
            let r1 = rng.gaussian_with(rot1, sigma_rot1);
            let tr = rng.gaussian_with(trans, sigma_trans);
            let r2 = rng.gaussian_with(rot2, sigma_rot2);
            let (s1, c1) = r1.sin_cos();
            let dx = tr * c1;
            let dy = tr * s1;
            let dth = r1 + r2;
            let (c0, s0) = (cos_t[i], sin_t[i]);
            x[i] += dx * c0 - dy * s0;
            y[i] += dx * s0 + dy * c0;
            theta[i] += dth;
            let (sd, cd) = dth.sin_cos();
            cos_t[i] = c0 * cd - s0 * sd;
            sin_t[i] = s0 * cd + c0 * sd;
        }
    }
}

/// Parameters of the TUM high-speed motion model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TumMotionModel {
    /// Relative speed noise (σ as a fraction of speed).
    pub sigma_v_rel: f64,
    /// Absolute speed noise σ \[m/s\].
    pub sigma_v_abs: f64,
    /// Yaw-rate noise σ at standstill \[rad/s\].
    pub sigma_omega_0: f64,
    /// Characteristic speed of the noise shrinkage \[m/s\]: at speed `v` the
    /// yaw-rate noise is `σ_ω0 / (1 + v / v_char)`.
    pub v_char: f64,
    /// Lateral acceleration limit used to clamp feasible yaw rates \[m/s²\].
    pub a_lat_max: f64,
    /// Residual position jitter σ \[m\] (keeps the cloud alive at rest).
    pub sigma_pos: f64,
}

impl Default for TumMotionModel {
    fn default() -> Self {
        Self {
            sigma_v_rel: 0.08,
            sigma_v_abs: 0.03,
            sigma_omega_0: 0.9,
            v_char: 1.8,
            a_lat_max: 9.5,
            sigma_pos: 0.005,
        }
    }
}

impl MotionModel for TumMotionModel {
    fn sample(
        &self,
        particle: Pose2,
        _delta: Pose2,
        twist: Twist2,
        dt: f64,
        rng: &mut Rng64,
    ) -> Pose2 {
        let v_meas = twist.vx;
        let speed = v_meas.abs();
        // Speed noise: multiplicative (slip-like) plus a small floor.
        let sigma_v = self.sigma_v_rel * speed + self.sigma_v_abs;
        let v = rng.gaussian_with(v_meas, sigma_v);
        // Heading uncertainty shrinks with speed: the faster the car, the
        // smaller the feasible steering envelope (paper Fig. 1 right).
        let sigma_omega = self.sigma_omega_0 / (1.0 + speed / self.v_char);
        let mut omega = rng.gaussian_with(twist.omega, sigma_omega);
        // Friction limit: a car at speed v cannot yaw faster than a_lat/v.
        if speed > 0.5 {
            let omega_max = self.a_lat_max / speed;
            omega = omega.clamp(-omega_max, omega_max);
        }
        let step = Twist2::new(v, 0.0, omega).integrate(dt);
        let moved = particle * step;
        Pose2::new(
            rng.gaussian_with(moved.x, self.sigma_pos),
            rng.gaussian_with(moved.y, self.sigma_pos),
            moved.theta,
        )
    }

    fn name(&self) -> &str {
        "tum"
    }
}

impl TumMotionModel {
    /// Lane (structure-of-arrays) form of [`MotionModel::sample`] over a
    /// whole chunk, drawing `v`, `ω`, then the two position jitters per
    /// particle in exactly the scalar model's order.
    ///
    /// The twist integration is inlined for `vy = 0` (the model always
    /// builds `Twist2::new(v, 0.0, omega)`), the speed-dependent σ's are
    /// hoisted out of the particle loop, headings accumulate unnormalized
    /// in the `theta` lane, and the `cos`/`sin` lanes are rotated
    /// incrementally by the step's own `sin_cos`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn propagate_lanes(
        &self,
        twist: Twist2,
        dt: f64,
        rng: &mut Rng64,
        x: &mut [f64],
        y: &mut [f64],
        theta: &mut [f64],
        cos_t: &mut [f64],
        sin_t: &mut [f64],
    ) {
        let v_meas = twist.vx;
        let speed = v_meas.abs();
        let sigma_v = self.sigma_v_rel * speed + self.sigma_v_abs;
        let sigma_omega = self.sigma_omega_0 / (1.0 + speed / self.v_char);
        let clamp = speed > 0.5;
        let omega_max = if clamp { self.a_lat_max / speed } else { 0.0 };
        for i in 0..x.len() {
            let v = rng.gaussian_with(v_meas, sigma_v);
            let mut omega = rng.gaussian_with(twist.omega, sigma_omega);
            if clamp {
                omega = omega.clamp(-omega_max, omega_max);
            }
            // Twist2::new(v, 0, omega).integrate(dt), specialized to vy = 0.
            let vxt = v * dt;
            let wt = omega * dt;
            let (sw, cw) = wt.sin_cos();
            let (dx, dy) = if wt.abs() < 1e-9 {
                (vxt, 0.5 * wt * vxt)
            } else {
                (sw / wt * vxt, (1.0 - cw) / wt * vxt)
            };
            let (c0, s0) = (cos_t[i], sin_t[i]);
            let px = x[i] + dx * c0 - dy * s0;
            let py = y[i] + dx * s0 + dy * c0;
            x[i] = rng.gaussian_with(px, self.sigma_pos);
            y[i] = rng.gaussian_with(py, self.sigma_pos);
            theta[i] += wt;
            cos_t[i] = c0 * cw - s0 * sw;
            sin_t[i] = s0 * cw + c0 * sw;
        }
    }
}

/// Propagates a full particle set in place.
pub fn propagate<M: MotionModel + ?Sized>(
    model: &M,
    particles: &mut [Pose2],
    delta: Pose2,
    twist: Twist2,
    dt: f64,
    rng: &mut Rng64,
) {
    for p in particles {
        *p = model.sample(*p, delta, twist, dt, rng);
    }
}

/// Dispersion statistics of a propagated particle cloud, used by the Fig. 1
/// reproduction: standard deviations along-track, across-track, and in
/// heading, relative to the noise-free propagated pose.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloudDispersion {
    /// σ of the longitudinal (along nominal heading) position \[m\].
    pub longitudinal: f64,
    /// σ of the lateral position \[m\].
    pub lateral: f64,
    /// Circular σ of the heading \[rad\].
    pub heading: f64,
}

/// Measures the dispersion of `particles` around the reference pose.
///
/// Returns `None` on an empty set.
pub fn dispersion(particles: &[Pose2], reference: Pose2) -> Option<CloudDispersion> {
    if particles.is_empty() {
        return None;
    }
    let mut lon = raceloc_core::RunningStats::new();
    let mut lat = raceloc_core::RunningStats::new();
    for p in particles {
        let local = reference.inverse_transform(p.translation());
        lon.push(local.x);
        lat.push(local.y);
    }
    let heading = raceloc_core::angle::circular_std(
        particles
            .iter()
            .map(|p| raceloc_core::angle::diff(p.theta, reference.theta)),
    )?;
    Some(CloudDispersion {
        longitudinal: lon.sample_std(),
        lateral: lat.sample_std(),
        heading,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize) -> Vec<Pose2> {
        vec![Pose2::IDENTITY; n]
    }

    fn forward_delta(v: f64, dt: f64) -> (Pose2, Twist2) {
        (Pose2::new(v * dt, 0.0, 0.0), Twist2::new(v, 0.0, 0.0))
    }

    #[test]
    fn diff_drive_mean_matches_odometry() {
        let model = DiffDriveModel::default();
        let mut rng = Rng64::new(1);
        let delta = Pose2::new(0.1, 0.02, 0.05);
        let mut xs = raceloc_core::RunningStats::new();
        let mut ys = raceloc_core::RunningStats::new();
        for _ in 0..20_000 {
            let p = model.sample(Pose2::IDENTITY, delta, Twist2::ZERO, 0.02, &mut rng);
            xs.push(p.x);
            ys.push(p.y);
        }
        assert!((xs.mean() - 0.1).abs() < 0.005, "{}", xs.mean());
        assert!((ys.mean() - 0.02).abs() < 0.005, "{}", ys.mean());
    }

    #[test]
    fn diff_drive_zero_motion_keeps_particles_still() {
        let model = DiffDriveModel::default();
        let mut rng = Rng64::new(2);
        let p = model.sample(
            Pose2::new(1.0, 2.0, 0.3),
            Pose2::IDENTITY,
            Twist2::ZERO,
            0.02,
            &mut rng,
        );
        assert!(p.dist(Pose2::new(1.0, 2.0, 0.3)) < 1e-9);
    }

    #[test]
    fn tum_mean_follows_twist() {
        let model = TumMotionModel::default();
        let mut rng = Rng64::new(3);
        let (delta, twist) = forward_delta(5.0, 0.02);
        let mut xs = raceloc_core::RunningStats::new();
        for _ in 0..20_000 {
            let p = model.sample(Pose2::IDENTITY, delta, twist, 0.02, &mut rng);
            xs.push(p.x);
        }
        assert!((xs.mean() - 0.1).abs() < 0.005, "{}", xs.mean());
    }

    #[test]
    fn tum_heading_noise_shrinks_with_speed() {
        // The paper's Fig. 1: at high speed the TUM cloud's heading (and
        // hence lateral) dispersion collapses relative to low speed.
        let model = TumMotionModel::default();
        let spread = |v: f64| {
            let mut rng = Rng64::new(4);
            let mut particles = cloud(4000);
            let (delta, twist) = forward_delta(v, 0.02);
            // Propagate over 10 steps (0.2 s of motion).
            for _ in 0..10 {
                propagate(&model, &mut particles, delta, twist, 0.02, &mut rng);
            }
            let reference = Pose2::new(v * 0.2, 0.0, 0.0);
            dispersion(&particles, reference).expect("non-empty")
        };
        let slow = spread(0.5);
        let fast = spread(7.0);
        assert!(
            fast.heading < 0.6 * slow.heading,
            "fast {} vs slow {}",
            fast.heading,
            slow.heading
        );
    }

    #[test]
    fn diff_drive_heading_noise_grows_with_speed() {
        // The failure mode motivating the TUM model: the diff-drive spread
        // grows with the step size, i.e. with speed at fixed rate.
        let model = DiffDriveModel::default();
        let spread = |v: f64| {
            let mut rng = Rng64::new(5);
            let mut particles = cloud(4000);
            let (delta, twist) = forward_delta(v, 0.02);
            for _ in 0..10 {
                propagate(&model, &mut particles, delta, twist, 0.02, &mut rng);
            }
            let reference = Pose2::new(v * 0.2, 0.0, 0.0);
            dispersion(&particles, reference).expect("non-empty")
        };
        let slow = spread(0.5);
        let fast = spread(7.0);
        assert!(
            fast.lateral > slow.lateral,
            "fast {} vs slow {}",
            fast.lateral,
            slow.lateral
        );
    }

    #[test]
    fn tum_respects_friction_limit() {
        let model = TumMotionModel {
            sigma_omega_0: 50.0, // absurd noise: only the clamp can save us
            ..TumMotionModel::default()
        };
        let mut rng = Rng64::new(6);
        let v = 6.0;
        let omega_max = model.a_lat_max / v;
        let twist = Twist2::new(v, 0.0, 0.0);
        for _ in 0..2000 {
            let p = model.sample(Pose2::IDENTITY, Pose2::IDENTITY, twist, 0.05, &mut rng);
            // Heading change bounded by clamped yaw rate times dt.
            assert!(p.theta.abs() <= omega_max * 0.05 + 1e-9);
        }
    }

    #[test]
    fn models_are_deterministic_in_seed() {
        let model = TumMotionModel::default();
        let run = || {
            let mut rng = Rng64::new(11);
            let twist = Twist2::new(3.0, 0.0, 0.4);
            (0..50)
                .map(|_| {
                    model
                        .sample(Pose2::IDENTITY, Pose2::IDENTITY, twist, 0.02, &mut rng)
                        .to_array()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn dispersion_empty_is_none() {
        assert!(dispersion(&[], Pose2::IDENTITY).is_none());
    }

    #[test]
    fn dispersion_of_identical_particles_is_zero() {
        let d = dispersion(
            &vec![Pose2::new(1.0, 1.0, 0.5); 10],
            Pose2::new(1.0, 1.0, 0.5),
        )
        .expect("non-empty");
        assert!(d.longitudinal < 1e-12 && d.lateral < 1e-12 && d.heading < 1e-6);
    }

    #[test]
    fn names() {
        assert_eq!(DiffDriveModel::default().name(), "diff-drive");
        assert_eq!(TumMotionModel::default().name(), "tum");
    }
}

/// Property tests pinning the lane (SoA) kernels to the scalar
/// [`MotionModel::sample`] oracle, draw for draw: after propagating the
/// same cloud through both paths with clones of one RNG, the poses agree
/// to float-accumulation tolerance *and the two RNGs are in an identical
/// state* — proving the lane kernel consumed exactly the same gaussian
/// sequence (count and order) as the scalar loop.
#[cfg(test)]
mod lane_oracle_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_pose() -> impl Strategy<Value = Pose2> {
        (-8.0..8.0f64, -8.0..8.0f64, -3.1..3.1f64).prop_map(|(x, y, t)| Pose2::new(x, y, t))
    }

    /// Max |Δ| between a scalar-propagated pose and its lane twin, with the
    /// heading compared circularly (the lane theta is unnormalized).
    fn pose_gap(scalar: Pose2, lx: f64, ly: f64, ltheta: f64) -> f64 {
        let dt = raceloc_core::angle::diff(ltheta, scalar.theta).abs();
        (scalar.x - lx).abs().max((scalar.y - ly).abs()).max(dt)
    }

    type Lanes = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>);

    fn lanes_of(cloud: &[Pose2]) -> Lanes {
        (
            cloud.iter().map(|p| p.x).collect(),
            cloud.iter().map(|p| p.y).collect(),
            cloud.iter().map(|p| p.theta).collect(),
            cloud.iter().map(|p| p.theta.cos()).collect(),
            cloud.iter().map(|p| p.theta.sin()).collect(),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn tum_lanes_match_scalar_draw_for_draw(
            cloud in proptest::collection::vec(arb_pose(), 1..40),
            vx in -9.0..9.0f64,
            omega in -2.0..2.0f64,
            dt in 0.005..0.1f64,
            seed in 0..u64::MAX,
            steps in 1usize..4,
        ) {
            let model = TumMotionModel::default();
            let twist = Twist2::new(vx, 0.0, omega);
            let mut scalar = cloud.clone();
            let mut scalar_rng = Rng64::new(seed);
            let (mut x, mut y, mut theta, mut cos_t, mut sin_t) = lanes_of(&cloud);
            let mut lane_rng = Rng64::new(seed);
            for _ in 0..steps {
                propagate(&model, &mut scalar, Pose2::IDENTITY, twist, dt, &mut scalar_rng);
                model.propagate_lanes(
                    twist, dt, &mut lane_rng,
                    &mut x, &mut y, &mut theta, &mut cos_t, &mut sin_t,
                );
            }
            prop_assert_eq!(&scalar_rng, &lane_rng, "RNG draw sequences diverged");
            for (i, &p) in scalar.iter().enumerate() {
                let gap = pose_gap(p, x[i], y[i], theta[i]);
                prop_assert!(gap < 1e-9, "particle {i}: gap {gap}");
                prop_assert!((cos_t[i] - theta[i].cos()).abs() < 1e-12, "cos lane drifted");
                prop_assert!((sin_t[i] - theta[i].sin()).abs() < 1e-12, "sin lane drifted");
            }
        }

        #[test]
        fn diff_drive_lanes_match_scalar_draw_for_draw(
            cloud in proptest::collection::vec(arb_pose(), 1..40),
            dx in -0.4..0.4f64,
            dy in -0.2..0.2f64,
            dtheta in -0.5..0.5f64,
            seed in 0..u64::MAX,
            steps in 1usize..4,
        ) {
            let model = DiffDriveModel::default();
            let delta = Pose2::new(dx, dy, dtheta);
            let mut scalar = cloud.clone();
            let mut scalar_rng = Rng64::new(seed);
            let (mut x, mut y, mut theta, mut cos_t, mut sin_t) = lanes_of(&cloud);
            let mut lane_rng = Rng64::new(seed);
            for _ in 0..steps {
                propagate(&model, &mut scalar, delta, Twist2::ZERO, 0.02, &mut scalar_rng);
                model.propagate_lanes(
                    delta, &mut lane_rng,
                    &mut x, &mut y, &mut theta, &mut cos_t, &mut sin_t,
                );
            }
            prop_assert_eq!(&scalar_rng, &lane_rng, "RNG draw sequences diverged");
            for (i, &p) in scalar.iter().enumerate() {
                let gap = pose_gap(p, x[i], y[i], theta[i]);
                prop_assert!(gap < 1e-9, "particle {i}: gap {gap}");
            }
        }

        #[test]
        fn diff_drive_zero_motion_consumes_no_draws(
            cloud in proptest::collection::vec(arb_pose(), 1..10),
            seed in 0..u64::MAX,
        ) {
            // σ's are all zero for a zero delta, and gaussian_with(μ, 0)
            // returns μ without touching the generator: the lane kernel
            // must preserve that (chunked RNG streams rely on it).
            let model = DiffDriveModel::default();
            let (mut x, mut y, mut theta, mut cos_t, mut sin_t) = lanes_of(&cloud);
            let mut rng = Rng64::new(seed);
            model.propagate_lanes(
                Pose2::IDENTITY, &mut rng,
                &mut x, &mut y, &mut theta, &mut cos_t, &mut sin_t,
            );
            prop_assert_eq!(&rng, &Rng64::new(seed));
            for (i, &p) in cloud.iter().enumerate() {
                prop_assert!((x[i] - p.x).abs() < 1e-12);
                prop_assert!((y[i] - p.y).abs() < 1e-12);
            }
        }
    }
}
